//! The append-only session journal behind `--journal` / `--resume`.
//!
//! A killed `tv session` used to take its accumulated edits with it.
//! The journal makes the session crash-safe: every accepted command is
//! appended as one self-checking line *after* it executes, so a journal
//! is always a exact prefix of the command stream the session ran, and
//! `--resume` replays that prefix through the ordinary command API —
//! landing on a bit-identical design (same revision, same report
//! fingerprint) before any new command is accepted.
//!
//! # Format
//!
//! ```text
//! #tvj1
//! <fnv64:016x> <revision|-> <fingerprint|-> <command line>
//! ```
//!
//! The first field is an FNV-1a 64 checksum of the rest of the line
//! (everything after the single separating space, excluding the
//! newline). `revision` is the design revision after the command and
//! `fingerprint` the reply's report fingerprint, when the reply carried
//! them (`-` otherwise); both are re-checked during replay, so a resume
//! can never silently land on different bits than the journaled run.
//!
//! # Failure model
//!
//! A crash can only tear the *last* line (appends are sequential and
//! flushed per command). Loading therefore distinguishes:
//!
//! * a torn tail — the final line is incomplete or fails its checksum:
//!   reported as `TV0502`, the tail is dropped, and the valid prefix
//!   replays (the caller truncates the file before appending again);
//! * interior damage — a bad header, a checksum mismatch, or garbage
//!   *before* the last line: the file cannot be trusted as a prefix of
//!   anything, so loading refuses with `TV0501` and the session exits
//!   with the documented failure code instead of guessing.

use std::io::Write;

/// First line of every journal file; bumped if the format changes.
pub const HEADER: &str = "#tvj1";

/// One journaled command with the state stamps its reply carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Design revision in the command's reply, if it reported one.
    pub revision: Option<u64>,
    /// Report fingerprint in the command's reply, if it reported one
    /// (the `"0x..."` string, kept verbatim for bit-exact comparison).
    pub fingerprint: Option<String>,
    /// The command line exactly as the session accepted it.
    pub command: String,
}

/// Why a journal could not be loaded.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The header or an interior line is damaged; the file is not a
    /// trustworthy prefix and resume must refuse (`TV0501`).
    Malformed { line: usize, what: String },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "cannot read journal: {e}"),
            JournalError::Malformed { line, what } => {
                write!(f, "malformed journal at line {line}: {what}")
            }
        }
    }
}

/// A successfully loaded journal.
#[derive(Debug)]
pub struct Loaded {
    /// The validated entries, oldest first.
    pub entries: Vec<Entry>,
    /// Whether a torn final line was dropped (`TV0502`).
    pub torn: bool,
    /// Byte length of the valid prefix (header plus intact entries);
    /// truncating the file here removes the torn tail.
    pub valid_len: u64,
}

/// FNV-1a 64 over `bytes` — the same hash family the fingerprint suite
/// uses, good enough to catch a torn or bit-rotted line.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders one journal line (with trailing newline) for `entry`.
pub fn render_entry(entry: &Entry) -> String {
    let body = format!(
        "{} {} {}",
        entry
            .revision
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into()),
        entry.fingerprint.as_deref().unwrap_or("-"),
        entry.command
    );
    format!("{:016x} {}\n", fnv64(body.as_bytes()), body)
}

/// Parses one complete journal line (no newline) into an entry.
fn parse_entry(line: &str) -> Result<Entry, String> {
    let (sum, body) = line
        .split_once(' ')
        .ok_or_else(|| "missing checksum field".to_string())?;
    let sum = u64::from_str_radix(sum, 16).map_err(|_| format!("bad checksum field {sum:?}"))?;
    if sum != fnv64(body.as_bytes()) {
        return Err("checksum mismatch".into());
    }
    let (rev, rest) = body
        .split_once(' ')
        .ok_or_else(|| "missing revision field".to_string())?;
    let (fp, command) = rest
        .split_once(' ')
        .ok_or_else(|| "missing fingerprint field".to_string())?;
    let revision = if rev == "-" {
        None
    } else {
        Some(
            rev.parse::<u64>()
                .map_err(|_| format!("bad revision field {rev:?}"))?,
        )
    };
    let fingerprint = if fp == "-" {
        None
    } else {
        Some(fp.to_string())
    };
    if command.is_empty() {
        return Err("empty command field".into());
    }
    Ok(Entry {
        revision,
        fingerprint,
        command: command.to_string(),
    })
}

/// Parses journal `text` (the whole file). Only the final line may be
/// damaged (a torn append); anything wrong earlier refuses the file.
pub fn parse(text: &str) -> Result<Loaded, JournalError> {
    // Split keeping track of which segments are newline-terminated: a
    // final segment without its newline is a torn append even if its
    // checksum happens to verify (the crash may have clipped the
    // command mid-token in a way the checksum of the clipped bytes
    // cannot witness — only the missing newline can).
    let mut lines: Vec<&str> = text.split('\n').collect();
    let complete_last = text.ends_with('\n');
    if complete_last {
        lines.pop(); // the empty segment after the final newline
    }
    // The header must be present AND newline-terminated: a file torn
    // during creation has no trustworthy prefix to keep.
    if lines.is_empty() || lines[0] != HEADER || (lines.len() == 1 && !complete_last) {
        return Err(JournalError::Malformed {
            line: 1,
            what: format!("expected header {HEADER:?}"),
        });
    }
    let mut entries = Vec::new();
    let mut torn = false;
    let mut valid_len = (HEADER.len() + 1) as u64;
    let last = lines.len() - 1;
    for (i, line) in lines.iter().enumerate().skip(1) {
        let is_last = i == last;
        match parse_entry(line) {
            Ok(e) if !is_last || complete_last => {
                valid_len += (line.len() + 1) as u64;
                entries.push(e);
            }
            // A damaged or unterminated final line is the torn tail a
            // crash mid-append leaves; drop it and keep the prefix.
            Ok(_) => torn = true,
            Err(_) if is_last => torn = true,
            Err(what) => {
                return Err(JournalError::Malformed { line: i + 1, what });
            }
        }
    }
    Ok(Loaded {
        entries,
        torn,
        valid_len,
    })
}

/// Loads and validates the journal file at `path`.
pub fn load(path: &str) -> Result<Loaded, JournalError> {
    let text = std::fs::read_to_string(path).map_err(JournalError::Io)?;
    parse(&text)
}

/// Truncates the journal at `path` to its valid prefix, removing a torn
/// tail so subsequent appends produce a clean file again.
pub fn truncate_to(path: &str, valid_len: u64) -> std::io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(valid_len)
}

/// The append handle a journaling session holds open.
pub struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Creates (or truncates) a fresh journal at `path` with its header.
    pub fn create(path: &str) -> std::io::Result<Journal> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(HEADER.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        Ok(Journal { file })
    }

    /// Opens an existing journal at `path` for appending (after a
    /// successful resume; the caller has already validated the prefix).
    pub fn open_append(path: &str) -> std::io::Result<Journal> {
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(Journal { file })
    }

    /// Appends one entry, flushed so a crash can tear at most this line.
    /// A transient write failure (the `journal_write` fault site) is
    /// retried once; a second failure is the caller's to surface.
    pub fn append(&mut self, entry: &Entry) -> std::io::Result<()> {
        let line = render_entry(entry);
        let first = match tv_fault::io_error(tv_fault::Site::JournalWrite) {
            Some(e) => {
                tv_obs::incr(tv_obs::Counter::FaultInjected);
                Err(e)
            }
            None => self.write_line(&line),
        };
        first.or_else(|_| {
            tv_obs::incr(tv_obs::Counter::FaultRetries);
            self.write_line(&line)
        })
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rev: u64, fp: &str, cmd: &str) -> Entry {
        Entry {
            revision: Some(rev),
            fingerprint: Some(fp.to_string()),
            command: cmd.to_string(),
        }
    }

    #[test]
    fn entries_round_trip_through_render_and_parse() {
        let e = entry(7, "0xd3698a57bd0b66cb", "edit resize pu_wq0 6 2");
        let text = format!("{HEADER}\n{}", render_entry(&e));
        let loaded = parse(&text).expect("clean journal");
        assert_eq!(loaded.entries, vec![e]);
        assert!(!loaded.torn);
        assert_eq!(loaded.valid_len, text.len() as u64);
    }

    #[test]
    fn stampless_commands_round_trip() {
        let e = Entry {
            revision: None,
            fingerprint: None,
            command: "flow".into(),
        };
        let text = format!("{HEADER}\n{}", render_entry(&e));
        assert_eq!(parse(&text).expect("clean").entries, vec![e]);
    }

    #[test]
    fn torn_final_line_is_dropped_with_prefix_kept() {
        let keep = entry(3, "0xface", "analyze");
        let full = format!("{HEADER}\n{}", render_entry(&keep));
        // A crash mid-append: the last line has no newline.
        let torn = format!("{full}abcd0123 4 - edit resize");
        let loaded = parse(&torn).expect("torn tail is recoverable");
        assert!(loaded.torn);
        assert_eq!(loaded.entries, vec![keep]);
        assert_eq!(loaded.valid_len, full.len() as u64);
        // Even a checksum-valid final line without its newline is torn.
        let almost = full.trim_end_matches('\n').to_string();
        let loaded = parse(&almost).expect("unterminated final line");
        assert!(loaded.torn);
        assert!(loaded.entries.is_empty());
    }

    #[test]
    fn interior_damage_refuses_the_file() {
        let good = render_entry(&entry(1, "-", "demo small"));
        let text = format!("{HEADER}\ngarbage line\n{good}");
        assert!(matches!(
            parse(&text),
            Err(JournalError::Malformed { line: 2, .. })
        ));
        // A wrong header refuses too, whatever follows.
        assert!(parse("#tvj9\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn checksum_catches_bit_rot() {
        let line = render_entry(&entry(2, "0xabcd", "analyze"));
        // Flip one byte of the body.
        let flip = line.len() - 3;
        let mut bytes = line.into_bytes();
        bytes[flip] ^= 1;
        let line = String::from_utf8(bytes).expect("ascii");
        let text = format!("{HEADER}\n{line}{}", render_entry(&entry(3, "-", "flow")));
        assert!(matches!(parse(&text), Err(JournalError::Malformed { .. })));
    }
}
