//! The terminus: replay a command script over a served connection.
//!
//! [`run_client`] speaks the `tv_proto` conversation — `hello`,
//! negotiate, one `request` per script line, `bye` — and writes each
//! reply body as its own line, so a client transcript against a server
//! is byte-identical to the `tv batch` transcript of the same script.
//! That identity is the protocol's core promise and the
//! `tests/integration_serve.rs` suite pins it at several `--jobs`
//! settings.

use std::io::{BufRead, Read, Write};

use tv_proto::{self as proto, Frame, Limits};

/// Who we say we are in `hello`.
pub const CLIENT_NAME: &str = concat!("tv-client/", env!("CARGO_PKG_VERSION"));

/// How a client run ended.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed mid-conversation.
    Io(std::io::Error),
    /// The server refused or the protocol broke; the code is one of
    /// [`proto::codes`].
    Refused { code: String, message: String },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Refused { code, message } => write!(f, "refused ({code}): {message}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<proto::ProtoError> for ClientError {
    fn from(e: proto::ProtoError) -> Self {
        match e {
            proto::ProtoError::Io(io) => ClientError::Io(io),
            other => ClientError::Refused {
                code: other.code().to_string(),
                message: other.to_string(),
            },
        }
    }
}

/// Performs the `hello` handshake on a fresh connection. Returns the
/// replayed-entry count from `hello_ok` (nonzero after a journal-backed
/// reconnect).
pub fn handshake<S: Read + Write>(
    stream: &mut S,
    tenant: &str,
    limits: Limits,
) -> Result<u64, ClientError> {
    proto::write_frame(
        stream,
        &Frame::Hello {
            proto: proto::VERSION,
            tenant: tenant.to_string(),
            client: CLIENT_NAME.to_string(),
            limits,
        },
    )?;
    stream.flush()?;
    match proto::read_frame(stream)? {
        Some(Frame::HelloOk { resumed, .. }) => Ok(resumed),
        Some(Frame::Error { code, message }) => Err(ClientError::Refused { code, message }),
        Some(other) => Err(ClientError::Refused {
            code: proto::codes::MALFORMED_FRAME.to_string(),
            message: format!("expected hello_ok, got {other:?}"),
        }),
        None => Err(ClientError::Refused {
            code: proto::codes::MALFORMED_FRAME.to_string(),
            message: "server closed during handshake".into(),
        }),
    }
}

/// Sends one command and returns its `(body, ok)` reply. Blank and
/// comment lines are evaluated server-side too (they produce an empty
/// body), so the caller need not replicate the session's lexing rules.
pub fn request<S: Read + Write>(
    stream: &mut S,
    id: u64,
    line: &str,
) -> Result<(String, bool), ClientError> {
    proto::write_frame(
        stream,
        &Frame::Request {
            id,
            line: line.to_string(),
        },
    )?;
    stream.flush()?;
    match proto::read_frame(stream)? {
        Some(Frame::Reply {
            id: got, ok, body, ..
        }) => {
            if got != id {
                return Err(ClientError::Refused {
                    code: proto::codes::MALFORMED_FRAME.to_string(),
                    message: format!("reply id {got} for request {id}"),
                });
            }
            Ok((body, ok))
        }
        Some(Frame::Error { code, message }) => Err(ClientError::Refused { code, message }),
        Some(other) => Err(ClientError::Refused {
            code: proto::codes::MALFORMED_FRAME.to_string(),
            message: format!("expected reply, got {other:?}"),
        }),
        None => Err(ClientError::Refused {
            code: proto::codes::MALFORMED_FRAME.to_string(),
            message: "server closed mid-request".into(),
        }),
    }
}

/// Replays `input` (one command per line) over `stream` and writes each
/// non-empty reply body as a line to `out` — the same transcript
/// `tv batch` would produce locally. Stops at a `quit` line (the server
/// closes after answering it) or at end of input (then sends `bye`).
/// Returns the session exit code: 0 when every command succeeded, 1 if
/// any failed.
pub fn run_client<S: Read + Write, R: BufRead, W: Write>(
    stream: &mut S,
    tenant: &str,
    limits: Limits,
    input: R,
    out: &mut W,
) -> Result<u8, ClientError> {
    handshake(stream, tenant, limits)?;
    let mut failed = false;
    let mut id = 0u64;
    for line in input.lines() {
        let line = line.map_err(ClientError::Io)?;
        id += 1;
        let (body, ok) = request(stream, id, &line)?;
        if !body.is_empty() {
            writeln!(out, "{body}").map_err(ClientError::Io)?;
            out.flush().map_err(ClientError::Io)?;
        }
        failed |= !ok;
        if line.trim() == "quit" {
            return Ok(u8::from(failed));
        }
    }
    let _ = proto::write_frame(stream, &Frame::Bye);
    let _ = stream.flush();
    Ok(u8::from(failed))
}
