//! The serving platform: listeners, per-connection sessions, admission.
//!
//! `tv serve` hosts many concurrent [`Session`]s, one per connection,
//! over TCP or a unix socket. The platform is deliberately `std`-only
//! and thread-per-connection: one session command costs milliseconds of
//! engine work, so blocking sockets saturate the analyzer long before
//! thread overhead matters, and every connection gets the PR 7
//! supervisor for free because it *is* a session — panic containment,
//! bounded retry, and the `"recovered"` annotations all apply verbatim
//! to served commands.
//!
//! # Admission control
//!
//! Admission happens at the `hello`, immediately after accept — the
//! accept queue is bounded by the OS backlog plus this check, so an
//! over-capacity server answers with a typed [`tv_proto::codes::BUSY`]
//! error frame instead of stalling or silently dropping. Two caps
//! compose: a global concurrent-session cap (protecting the host) and a
//! per-tenant cap (protecting tenants from each other). Rejections
//! count `serve.rejected`; admissions count `serve.accepted` and raise
//! the `serve.active_peak` high-water mark.
//!
//! A tenant's `hello` may also *ask* for resource clamps
//! (`relax_budget`, `deadline_ms`, `max_nodes`); the server takes the
//! minimum of the ask and its own configured ceiling, so a tenant can
//! restrict its own requests but never exceed the server's limits.
//!
//! # Tenant lifecycle
//!
//! With `--journal-dir`, each tenant's accepted commands append to
//! `<dir>/<tenant>.tvj` — the same checksummed journal format as
//! `tv session --journal` — and a reconnecting tenant's session is
//! restored by replaying that journal through the ordinary command API
//! before `hello_ok` (which reports the replayed count in `resumed`).
//! Replay validates the recorded revision/fingerprint stamps, so a
//! resumed session provably lands on the same bits the lost connection
//! had. Journaling serializes tenants (the per-tenant cap is forced to
//! 1) because two live connections cannot share one append-ordered log.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use tv_core::AnalysisOptions;
use tv_proto::{self as proto, codes, Frame};

use crate::journal;
use crate::session::{reply_fingerprint, reply_revision, Session, TechTable};

/// What this build announces in `hello_ok`.
pub const SERVER_NAME: &str = concat!("tv-serve/", env!("CARGO_PKG_VERSION"));

/// Configuration for one serving process.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Analysis options every hosted session starts from (the ceiling
    /// tenant `hello` limits are clamped against).
    pub options: AnalysisOptions,
    /// Parse-error cap per `load`, as in `tv session --max-errors`.
    pub max_errors: usize,
    /// Global concurrent-session cap.
    pub max_sessions: usize,
    /// Concurrent-session cap per tenant (forced to 1 when
    /// `journal_dir` is set — see the module docs).
    pub max_per_tenant: usize,
    /// Directory for per-tenant journals (`<dir>/<tenant>.tvj`); `None`
    /// disables the durability plane.
    pub journal_dir: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            options: AnalysisOptions::default(),
            max_errors: tv_netlist::DEFAULT_MAX_ERRORS,
            max_sessions: 64,
            max_per_tenant: 8,
            journal_dir: None,
        }
    }
}

/// One live connection's transport.
pub enum Stream {
    /// A TCP connection.
    Tcp(std::net::TcpStream),
    /// A unix-socket connection.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Where a running server listens; clients [`Endpoint::connect`] to it.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A bound TCP address (with the real port even if `:0` was asked).
    Tcp(std::net::SocketAddr),
    /// A unix socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

impl Endpoint {
    /// Opens a client connection to this endpoint. TCP connections
    /// disable Nagle: the protocol is strict request/reply with
    /// single-write frames, so coalescing buys nothing and the
    /// delayed-ACK interaction would cost ~40 ms per round trip.
    pub fn connect(&self) -> std::io::Result<Stream> {
        match self {
            Endpoint::Tcp(addr) => {
                let s = std::net::TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => std::os::unix::net::UnixStream::connect(path).map(Stream::Unix),
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp://{a}"),
            #[cfg(unix)]
            Endpoint::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

enum Listener {
    Tcp(std::net::TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                // Same rationale as `Endpoint::connect`: request/reply
                // framing makes Nagle pure latency.
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// The two session caps plus the live count they guard.
struct Admission {
    max_sessions: usize,
    max_per_tenant: usize,
    state: Mutex<AdmissionState>,
}

#[derive(Default)]
struct AdmissionState {
    active: usize,
    per_tenant: BTreeMap<String, usize>,
}

impl Admission {
    /// Admits `tenant` or returns `None` (the caller sends the typed
    /// `busy` frame). The returned guard releases the slot on drop, so
    /// a panicking connection thread can never leak capacity.
    fn try_admit(self: &Arc<Self>, tenant: &str) -> Option<AdmissionGuard> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let t = s.per_tenant.get(tenant).copied().unwrap_or(0);
        if s.active >= self.max_sessions || t >= self.max_per_tenant {
            return None;
        }
        s.active += 1;
        *s.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        tv_obs::counters::set_max(tv_obs::Counter::ServeActivePeak, s.active as u64);
        Some(AdmissionGuard {
            admission: self.clone(),
            tenant: tenant.to_string(),
        })
    }
}

struct AdmissionGuard {
    admission: Arc<Admission>,
    tenant: String,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        let mut s = self
            .admission
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        s.active = s.active.saturating_sub(1);
        if let Some(n) = s.per_tenant.get_mut(&self.tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                s.per_tenant.remove(&self.tenant);
            }
        }
    }
}

struct ServerCtx {
    config: ServeConfig,
    admission: Arc<Admission>,
    techs: Arc<TechTable>,
}

/// A running server. Dropping the handle (or calling [`stop`]) shuts
/// the accept loop down and joins every connection thread.
///
/// [`stop`]: ServerHandle::stop
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    endpoint: Endpoint,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Where the server listens (the real port when `:0` was bound).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Stops accepting, joins the accept loop (which joins connection
    /// threads), and removes a unix socket file.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Blocks until the accept loop exits on its own (it never does
    /// unless the listener breaks) — the foreground `tv serve` mode.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    fn shutdown(&mut self) {
        let Some(h) = self.accept.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway connection; the
        // loop re-checks the stop flag before handling it.
        let _ = self.endpoint.connect();
        let _ = h.join();
        #[cfg(unix)]
        if let Endpoint::Unix(p) = &self.endpoint {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving on it.
pub fn serve_tcp(addr: &str, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = std::net::TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    Ok(start(Listener::Tcp(listener), Endpoint::Tcp(local), config))
}

/// Binds a unix socket at `path` (replacing a stale one) and serves.
#[cfg(unix)]
pub fn serve_unix(path: &str, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    Ok(start(
        Listener::Unix(listener),
        Endpoint::Unix(path.into()),
        config,
    ))
}

fn start(listener: Listener, endpoint: Endpoint, mut config: ServeConfig) -> ServerHandle {
    if config.journal_dir.is_some() {
        // Two live connections cannot share one append-ordered journal.
        config.max_per_tenant = 1;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let ctx = Arc::new(ServerCtx {
        admission: Arc::new(Admission {
            max_sessions: config.max_sessions,
            max_per_tenant: config.max_per_tenant,
            state: Mutex::new(AdmissionState::default()),
        }),
        techs: TechTable::shared(),
        config,
    });
    let accept = {
        let stop = stop.clone();
        std::thread::spawn(move || accept_loop(listener, ctx, stop))
    };
    ServerHandle {
        stop,
        endpoint,
        accept: Some(accept),
    }
}

fn accept_loop(listener: Listener, ctx: Arc<ServerCtx>, stop: Arc<AtomicBool>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if tv_fault::io_error(tv_fault::Site::Accept).is_some() {
            // An injected accept failure is absorbed: the pending
            // connection stays in the OS backlog and the next loop
            // iteration picks it up.
            tv_obs::incr(tv_obs::Counter::FaultInjected);
            continue;
        }
        match listener.accept() {
            Ok(stream) => {
                if stop.load(Ordering::SeqCst) {
                    break; // the shutdown unblock connection
                }
                let ctx = ctx.clone();
                handlers.push(std::thread::spawn(move || {
                    let mut stream = stream;
                    let _ = serve_connection(&mut stream, &ctx);
                }));
                handlers.retain(|h| !h.is_finished());
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // A transient accept error (EMFILE, a reset mid-accept)
                // must not kill the server; keep listening.
                continue;
            }
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Reads one frame with the `frame_read` fault site in front: the
/// injected failure consumes no bytes, so one counted retry reads the
/// stream as if nothing had happened.
pub(crate) fn read_frame_guarded(
    stream: &mut impl Read,
) -> Result<Option<Frame>, proto::ProtoError> {
    if tv_fault::io_error(tv_fault::Site::FrameRead).is_some() {
        tv_obs::incr(tv_obs::Counter::FaultInjected);
        tv_obs::incr(tv_obs::Counter::ServeRetries);
    }
    proto::read_frame(stream)
}

/// Writes one frame with the `frame_write` fault site in front: the
/// injected failure wrote nothing, so one counted retry performs the
/// real write.
pub(crate) fn write_frame_guarded(stream: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    if tv_fault::io_error(tv_fault::Site::FrameWrite).is_some() {
        tv_obs::incr(tv_obs::Counter::FaultInjected);
        tv_obs::incr(tv_obs::Counter::ServeRetries);
    }
    proto::write_frame(stream, frame)
}

/// Sends a typed refusal and gives up on the connection.
fn refuse(stream: &mut Stream, code: &str, message: &str) {
    let _ = write_frame_guarded(
        stream,
        &Frame::Error {
            code: code.to_string(),
            message: message.to_string(),
        },
    );
    let _ = stream.flush();
}

/// Tenant names route journals to files and key admission maps; keep
/// them boring: 1–64 bytes of `[A-Za-z0-9_.-]`, not starting with a dot.
fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

/// The server's options clamped by a tenant's `hello` asks: the
/// effective limit is the *minimum* of the two wherever both exist.
fn clamp_options(base: &AnalysisOptions, limits: &proto::Limits) -> AnalysisOptions {
    fn tighter(cap: Option<usize>, ask: Option<u64>) -> Option<usize> {
        let ask = ask.map(|v| v as usize);
        match (cap, ask) {
            (Some(c), Some(a)) => Some(c.min(a)),
            (c, a) => a.or(c),
        }
    }
    let mut o = base.clone();
    o.relax_budget = tighter(o.relax_budget, limits.relax_budget);
    o.max_nodes = tighter(o.max_nodes, limits.max_nodes);
    o.deadline = match (
        o.deadline,
        limits.deadline_ms.map(std::time::Duration::from_millis),
    ) {
        (Some(c), Some(a)) => Some(c.min(a)),
        (c, a) => a.or(c),
    };
    o
}

/// Restores a tenant's journaled session (or creates a fresh journal).
/// Returns the replayed-entry count and the open append handle.
fn restore(
    session: &mut Session,
    dir: &str,
    tenant: &str,
) -> Result<(u64, journal::Journal), String> {
    let path = std::path::Path::new(dir).join(format!("{tenant}.tvj"));
    let path = path.to_str().ok_or("journal path is not UTF-8")?;
    if !std::path::Path::new(path).exists() {
        let j = journal::Journal::create(path)
            .map_err(|e| format!("cannot create journal for {tenant}: {e}"))?;
        return Ok((0, j));
    }
    let loaded = journal::load(path).map_err(|e| e.to_string())?;
    if loaded.torn {
        journal::truncate_to(path, loaded.valid_len).map_err(|e| e.to_string())?;
    }
    for (i, entry) in loaded.entries.iter().enumerate() {
        tv_obs::incr(tv_obs::Counter::FaultJournalReplays);
        let (json, ok) = match session.eval(&entry.command) {
            Some(r) => r,
            None => (String::new(), true),
        };
        let diverged = !ok
            || entry
                .revision
                .is_some_and(|want| reply_revision(&json) != Some(want))
            || entry
                .fingerprint
                .as_deref()
                .is_some_and(|want| reply_fingerprint(&json).as_deref() != Some(want));
        if diverged {
            return Err(format!(
                "replay diverged at entry {} ({})",
                i + 1,
                entry.command
            ));
        }
    }
    let j = journal::Journal::open_append(path).map_err(|e| e.to_string())?;
    Ok((loaded.entries.len() as u64, j))
}

/// One connection, cradle to grave: hello, negotiation, admission,
/// optional journal resume, then the request/reply loop. Any return —
/// clean `bye`, `quit`, EOF, or a transport error — ends the connection;
/// the admission guard and journal handle release on the way out.
fn serve_connection(stream: &mut Stream, ctx: &ServerCtx) -> std::io::Result<()> {
    let hello = match read_frame_guarded(stream) {
        Ok(Some(f)) => f,
        Ok(None) => return Ok(()),
        Err(e) => {
            refuse(stream, e.code(), &e.to_string());
            return Ok(());
        }
    };
    let Frame::Hello {
        proto: version,
        tenant,
        client: _,
        limits,
    } = hello
    else {
        refuse(
            stream,
            codes::HELLO_REQUIRED,
            "the first frame must be hello",
        );
        return Ok(());
    };
    if version != proto::VERSION {
        refuse(
            stream,
            codes::VERSION_MISMATCH,
            &format!(
                "server speaks protocol {}, client asked for {version}",
                proto::VERSION
            ),
        );
        return Ok(());
    }
    if !valid_tenant(&tenant) {
        refuse(
            stream,
            codes::BAD_TENANT,
            "tenant must be 1-64 chars of [A-Za-z0-9_.-], not starting with a dot",
        );
        return Ok(());
    }
    let Some(_guard) = ctx.admission.try_admit(&tenant) else {
        tv_obs::incr(tv_obs::Counter::ServeRejected);
        refuse(
            stream,
            codes::BUSY,
            "session caps are full; retry when a session frees up",
        );
        return Ok(());
    };
    tv_obs::incr(tv_obs::Counter::ServeAccepted);
    let options = clamp_options(&ctx.config.options, &limits);
    let mut session = Session::with_techs(options, ctx.config.max_errors, ctx.techs.clone());
    let mut sink = None;
    let mut resumed = 0;
    if let Some(dir) = &ctx.config.journal_dir {
        match restore(&mut session, dir, &tenant) {
            Ok((n, j)) => {
                resumed = n;
                sink = Some(j);
            }
            Err(msg) => {
                refuse(stream, codes::RESUME_FAILED, &msg);
                return Ok(());
            }
        }
    }
    write_frame_guarded(
        stream,
        &Frame::HelloOk {
            proto: proto::VERSION,
            server: SERVER_NAME.to_string(),
            resumed,
        },
    )?;
    stream.flush()?;

    loop {
        let frame = match read_frame_guarded(stream) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()), // client closed without bye
            Err(proto::ProtoError::Io(e)) => return Err(e),
            Err(e) => {
                refuse(stream, e.code(), &e.to_string());
                return Ok(());
            }
        };
        match frame {
            Frame::Bye => return Ok(()),
            Frame::Request { id, line } => {
                tv_obs::incr(tv_obs::Counter::ServeRequests);
                let quit = line.trim() == "quit";
                let (body, ok) = match session.eval(&line) {
                    Some(r) => r,
                    None => (String::new(), true), // blank/comment line
                };
                if ok && !quit && !body.is_empty() {
                    if let Some(j) = sink.as_mut() {
                        j.append(&journal::Entry {
                            revision: reply_revision(&body),
                            fingerprint: reply_fingerprint(&body),
                            command: line.trim().to_string(),
                        })?;
                    }
                }
                write_frame_guarded(stream, &Frame::Reply { id, ok, body })?;
                stream.flush()?;
                if quit {
                    return Ok(());
                }
            }
            _ => {
                refuse(
                    stream,
                    codes::MALFORMED_FRAME,
                    "only request or bye frames after hello",
                );
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admission(max_sessions: usize, max_per_tenant: usize) -> Arc<Admission> {
        Arc::new(Admission {
            max_sessions,
            max_per_tenant,
            state: Mutex::new(AdmissionState::default()),
        })
    }

    #[test]
    fn global_cap_refuses_and_release_readmits() {
        let a = admission(2, 2);
        let g1 = a.try_admit("alice").expect("slot 1");
        let _g2 = a.try_admit("bob").expect("slot 2");
        assert!(a.try_admit("carol").is_none(), "global cap reached");
        drop(g1);
        assert!(a.try_admit("carol").is_some(), "freed slot readmits");
    }

    #[test]
    fn per_tenant_cap_is_independent_of_global_headroom() {
        let a = admission(10, 1);
        let _g = a.try_admit("alice").expect("first");
        assert!(a.try_admit("alice").is_none(), "tenant cap reached");
        assert!(a.try_admit("bob").is_some(), "other tenants unaffected");
    }

    #[test]
    fn tenant_names_are_validated() {
        for good in ["alice", "t-1", "a.b_c", "X"] {
            assert!(valid_tenant(good), "{good:?} must be valid");
        }
        let long = "x".repeat(65);
        for bad in ["", "..", ".hidden", "a/b", "a b", "é", long.as_str()] {
            assert!(!valid_tenant(bad), "{bad:?} must be refused");
        }
    }

    #[test]
    fn limits_clamp_to_the_tighter_side() {
        let base = AnalysisOptions {
            relax_budget: Some(1000),
            max_nodes: None,
            deadline: Some(std::time::Duration::from_millis(500)),
            ..AnalysisOptions::default()
        };
        let limits = tv_proto::Limits {
            relax_budget: Some(2000), // asks for more than the ceiling
            deadline_ms: Some(100),   // asks for less
            max_nodes: Some(50),      // no ceiling configured
        };
        let o = clamp_options(&base, &limits);
        assert_eq!(o.relax_budget, Some(1000), "ceiling wins");
        assert_eq!(o.deadline, Some(std::time::Duration::from_millis(100)));
        assert_eq!(o.max_nodes, Some(50), "ask wins with no ceiling");
        // No asks at all: the server's own values stand.
        let o = clamp_options(&base, &tv_proto::Limits::default());
        assert_eq!(o.relax_budget, Some(1000));
        assert_eq!(o.deadline, Some(std::time::Duration::from_millis(500)));
        assert_eq!(o.max_nodes, None);
    }

    #[test]
    fn journal_dir_forces_tenant_serialization() {
        let config = ServeConfig {
            journal_dir: Some(std::env::temp_dir().display().to_string()),
            max_per_tenant: 8,
            ..ServeConfig::default()
        };
        let handle = serve_tcp("127.0.0.1:0", config).expect("bind");
        // The cap rewrite happens in start(); probe it through behavior:
        // two hellos from one tenant, second must be busy.
        let hello = |tenant: &str| -> (Stream, Frame) {
            let mut s = handle.endpoint().connect().expect("connect");
            proto::write_frame(
                &mut s,
                &Frame::Hello {
                    proto: proto::VERSION,
                    tenant: tenant.into(),
                    client: "test".into(),
                    limits: proto::Limits::default(),
                },
            )
            .expect("hello");
            s.flush().expect("flush");
            let f = proto::read_frame(&mut s).expect("read").expect("frame");
            (s, f)
        };
        let (_live, ok) = hello("tjournal");
        assert!(
            matches!(ok, Frame::HelloOk { .. }),
            "first admitted: {ok:?}"
        );
        let (_second, busy) = hello("tjournal");
        match busy {
            Frame::Error { code, .. } => assert_eq!(code, codes::BUSY),
            other => panic!("expected busy, got {other:?}"),
        }
        drop(_live);
        drop(_second);
        handle.stop();
        let _ = std::fs::remove_file(std::env::temp_dir().join("tjournal.tvj"));
    }
}
