//! The load generator: concurrent script replay with latency percentiles.
//!
//! `tv loadgen` opens N concurrent client connections (one tenant
//! each), replays a batch script over every connection `repeat` times,
//! and reports wall-clock throughput plus per-request latency
//! percentiles (p50/p95/p99). Latencies are measured around one whole
//! request/reply exchange — serialize, network, session work,
//! deserialize — which is what a tenant experiences.
//!
//! Wall-clock numbers are host-dependent by nature, so the report
//! never feeds golden transcripts; it feeds `BENCH_TRAJECTORY.json`,
//! where the committed `pr10-serve` run and the `perf_trajectory
//! --check` p99 gate live.

use std::io::Write as _;
use std::time::Instant;

use tv_proto::Limits;

use crate::client;
use crate::server::Endpoint;

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Times each client replays the whole script.
    pub repeat: usize,
    /// Tenant names are `<prefix><client-index>`.
    pub tenant_prefix: String,
    /// Resource asks each client's `hello` carries.
    pub limits: Limits,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 8,
            repeat: 1,
            tenant_prefix: "loadgen-".into(),
            limits: Limits::default(),
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Concurrent clients driven.
    pub clients: usize,
    /// Script repetitions per client.
    pub repeat: usize,
    /// Requests completed (replies received).
    pub requests: u64,
    /// Requests whose reply was `ok:false`.
    pub failed: u64,
    /// Wall-clock of the whole run, nanoseconds.
    pub wall_ns: u64,
    /// Median request latency, nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile request latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_ns: u64,
    /// Worst request latency, nanoseconds.
    pub max_ns: u64,
}

impl LoadgenReport {
    /// Completed requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.requests as f64 * 1e9 / self.wall_ns as f64
    }

    /// One JSON object for the CLI (times in integer nanoseconds; the
    /// throughput is derived, rounded to 0.1 rps).
    pub fn render_json(&self) -> String {
        format!(
            r#"{{"clients":{},"repeat":{},"requests":{},"failed":{},"wall_ns":{},"throughput_rps":{:.1},"p50_ns":{},"p95_ns":{},"p99_ns":{},"max_ns":{}}}"#,
            self.clients,
            self.repeat,
            self.requests,
            self.failed,
            self.wall_ns,
            self.throughput_rps(),
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.max_ns
        )
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = ((p * n).div_ceil(100)).max(1);
    sorted[(rank - 1) as usize]
}

/// Drives `cfg.clients` concurrent connections against `endpoint`, each
/// replaying `script` `cfg.repeat` times. Lifecycle lines (`quit`,
/// blanks, comments) are stripped — the generator manages its own
/// connections and only measures real commands.
pub fn run_loadgen(
    endpoint: &Endpoint,
    script: &[String],
    cfg: &LoadgenConfig,
) -> Result<LoadgenReport, String> {
    let commands: Vec<&String> = script
        .iter()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#') && t != "quit"
        })
        .collect();
    if commands.is_empty() {
        return Err("loadgen script has no commands".into());
    }
    let started = Instant::now();
    let mut per_client: Vec<Result<(Vec<u64>, u64), String>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|i| {
                let tenant = format!("{}{i}", cfg.tenant_prefix);
                let commands = &commands;
                let limits = cfg.limits.clone();
                s.spawn(move || -> Result<(Vec<u64>, u64), String> {
                    let mut stream = endpoint.connect().map_err(|e| e.to_string())?;
                    client::handshake(&mut stream, &tenant, limits).map_err(|e| e.to_string())?;
                    let mut latencies = Vec::with_capacity(commands.len() * cfg.repeat);
                    let mut failed = 0u64;
                    let mut id = 0u64;
                    for _ in 0..cfg.repeat {
                        for line in commands.iter() {
                            id += 1;
                            let t = Instant::now();
                            let (_body, ok) = client::request(&mut stream, id, line)
                                .map_err(|e| e.to_string())?;
                            latencies.push(t.elapsed().as_nanos() as u64);
                            failed += u64::from(!ok);
                        }
                    }
                    let _ = tv_proto::write_frame(&mut stream, &tv_proto::Frame::Bye);
                    let _ = stream.flush();
                    Ok((latencies, failed))
                })
            })
            .collect();
        for h in handles {
            per_client.push(h.join().unwrap_or_else(|_| Err("client panicked".into())));
        }
    });
    let wall_ns = started.elapsed().as_nanos() as u64;
    let mut latencies = Vec::new();
    let mut failed = 0u64;
    for r in per_client {
        let (l, f) = r?;
        latencies.extend(l);
        failed += f;
    }
    latencies.sort_unstable();
    Ok(LoadgenReport {
        clients: cfg.clients,
        repeat: cfg.repeat,
        requests: latencies.len() as u64,
        failed,
        wall_ns,
        p50_ns: percentile(&latencies, 50),
        p95_ns: percentile(&latencies, 95),
        p99_ns: percentile(&latencies, 99),
        max_ns: latencies.last().copied().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
        let two = [10, 20];
        assert_eq!(percentile(&two, 50), 10);
        assert_eq!(percentile(&two, 99), 20);
    }

    #[test]
    fn report_json_is_one_object() {
        let r = LoadgenReport {
            clients: 8,
            repeat: 2,
            requests: 160,
            failed: 0,
            wall_ns: 1_000_000_000,
            p50_ns: 100,
            p95_ns: 200,
            p99_ns: 300,
            max_ns: 400,
        };
        let j = r.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(r#""throughput_rps":160.0"#));
        assert!(j.contains(r#""p99_ns":300"#));
    }
}
