//! The long-lived session protocol behind `tv session` and `tv batch`.
//!
//! One resident [`Design`] plus a [`PassManager`] serve a stream of
//! newline-delimited commands; every command gets exactly one JSON reply
//! line. The same loop drives the interactive REPL (`tv session`, stdin
//! to stdout) and deterministic replay (`tv batch <script>`), so a
//! committed script plus its golden transcript pin the whole protocol —
//! replies carry revisions, pass traces, and report fingerprints, never
//! wall-clock times.
//!
//! # Command grammar
//!
//! ```text
//! load <file.sim>                      # parse a netlist into the session
//! demo [small|mips32]                  # load a generated datapath
//! edit resize <dev> <w> <l>            # device W/L, microns
//! edit setcap <node> <pf>              # explicit node capacitance
//! edit addnode <name> <in|out|int>     # new node with a role
//! edit adddev <name> <e|d> <gate> <source> <drain> <w> <l>
//! edit rmdev <dev>                     # remove a device
//! edit retech <nmos4um|nmos2um>        # swap the technology file
//! analyze                              # run the pass pipeline
//! paths <from> <to>                    # point-to-point worst path
//! flow                                 # flow resolution statistics
//! revision                             # current design revision
//! metrics                              # deterministic counters since the last metrics
//! quit                                 # end the session
//! ```
//!
//! Blank lines and lines starting with `#` are ignored (batch scripts
//! use them for comments). An unknown or failing command replies
//! `{"ok":false,"code":"TV06xx",...}` and the session continues — one
//! bad line can never kill the session (or a served connection hosting
//! it): `TV0601` names an unknown verb, `TV0602` a known command that
//! failed, and `TV0603` a command the supervisor had to abandon after a
//! panic. The exit code of the whole run is 1 if any command failed, 0
//! otherwise.
//!
//! The `analyze` reply's `fingerprint` is [`report_fingerprint`] — the
//! same golden FNV the equivalence suite pins — and `passes` lists every
//! pass with how it was satisfied (`computed`, `reused`, `revalidated`,
//! `spliced` with a root count, or `cone` with the recomputed-node
//! count), so a transcript documents both the result bits and how
//! little work the pipeline did to get them.

use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use tv_core::propagate::Completion;
use tv_core::{
    flow_fingerprint, report_fingerprint, AnalysisOptions, Analyzer, PassManager, PassOutcome,
    TvError,
};
use tv_flow::analyze as flow_analyze;
use tv_gen::datapath::{datapath, DatapathConfig};
use tv_netlist::{codes, sim_format, Design, DeviceKind, Diagnostics, EditClass, NodeRole, Tech};

use crate::journal;

/// The technologies a process knows, interned once and shared read-only
/// by every session it hosts. `Tech` is a small table of constants, so
/// the sharing buys identity more than memory: a server hosting a
/// thousand tenants hands each the *same* technology object, and a
/// technology tweak (when that becomes a feature) lands in one place.
#[derive(Debug)]
pub struct TechTable {
    /// The 4 µm teaching technology ([`Tech::nmos4um`]), the default.
    pub nmos4um: Tech,
    /// The scaled 2 µm technology ([`Tech::nmos2um`]).
    pub nmos2um: Tech,
}

impl TechTable {
    /// The process-wide shared table.
    pub fn shared() -> Arc<TechTable> {
        static TABLE: OnceLock<Arc<TechTable>> = OnceLock::new();
        TABLE
            .get_or_init(|| {
                Arc::new(TechTable {
                    nmos4um: Tech::nmos4um(),
                    nmos2um: Tech::nmos2um(),
                })
            })
            .clone()
    }

    /// Looks a technology up by its session-command name.
    pub fn get(&self, name: &str) -> Option<&Tech> {
        match name {
            "nmos4um" => Some(&self.nmos4um),
            "nmos2um" => Some(&self.nmos2um),
            _ => None,
        }
    }
}

/// A failing command's typed reply: a stable `TV06xx` code plus the
/// human-readable message. Command handlers return plain `String`
/// errors; the `From` impl stamps them [`codes::SESSION_COMMAND_FAILED`]
/// and the dispatcher reserves [`codes::SESSION_UNKNOWN_COMMAND`] and
/// [`codes::SESSION_PANIC`] for its own failure classes.
pub(crate) struct CmdError {
    pub(crate) code: &'static str,
    pub(crate) msg: String,
}

impl From<String> for CmdError {
    fn from(msg: String) -> CmdError {
        CmdError {
            code: codes::SESSION_COMMAND_FAILED,
            msg,
        }
    }
}

/// One resident design and the demand-driven pipeline serving it.
pub struct Session {
    design: Option<Design>,
    passes: PassManager,
    options: AnalysisOptions,
    max_errors: usize,
    techs: Arc<TechTable>,
    /// Counter baseline for the `metrics` command: each reply reports
    /// the delta since the previous `metrics` (or session start).
    metrics_mark: tv_obs::Snapshot,
    /// Set by a command that failed (or degraded) in a way one bounded
    /// retry can repair; the supervisor consumes it. The value is the
    /// recovery kind reported in the reply's `"recovered"` object.
    retry_hint: Option<&'static str>,
}

/// The reply to one command line.
enum Reply {
    /// Nothing to say (blank line or comment).
    Silent,
    /// One JSON line; `ok` mirrors the `"ok"` field.
    Line { json: String, ok: bool },
    /// A successful `quit`.
    Quit(String),
}

impl Session {
    /// A fresh session with no design loaded. `options` applies to every
    /// `analyze`; `max_errors` caps reported parse errors per `load`.
    pub fn new(options: AnalysisOptions, max_errors: usize) -> Self {
        Session::with_techs(options, max_errors, TechTable::shared())
    }

    /// [`Session::new`] against an explicit technology table (the server
    /// hands every hosted session one `Arc` clone of its own).
    pub fn with_techs(options: AnalysisOptions, max_errors: usize, techs: Arc<TechTable>) -> Self {
        // Sessions always keep the deterministic counter plane on: the
        // `metrics` command reports work done since its last baseline,
        // and the counters are interleaving-independent so this cannot
        // perturb any golden transcript.
        tv_obs::counters::set_enabled(true);
        Session {
            design: None,
            passes: PassManager::new(),
            options,
            max_errors,
            techs,
            metrics_mark: tv_obs::snapshot(),
            retry_hint: None,
        }
    }

    /// The loaded design, if any (tests inspect it).
    pub fn design(&self) -> Option<&Design> {
        self.design.as_ref()
    }

    /// The pipeline serving this session (tests inspect pass state).
    pub fn passes(&self) -> &PassManager {
        &self.passes
    }

    /// Evaluates one command line and returns its JSON reply, or `None`
    /// for blank/comment lines. `quit` returns its reply via the run
    /// loop; calling `eval` again afterwards is allowed.
    pub fn eval(&mut self, line: &str) -> Option<(String, bool)> {
        match self.dispatch(line) {
            Reply::Silent => None,
            Reply::Line { json, ok } => Some((json, ok)),
            Reply::Quit(json) => Some((json, true)),
        }
    }

    fn dispatch(&mut self, line: &str) -> Reply {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Reply::Silent;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        tv_obs::incr(tv_obs::Counter::SessionCommands);
        let _span = tv_obs::span(command_span_label(tokens[0]));
        if tokens[0] == "quit" {
            return Reply::Quit(r#"{"ok":true,"cmd":"quit"}"#.into());
        }
        match self.supervised(&tokens) {
            Ok(json) => Reply::Line { json, ok: true },
            Err(e) => Reply::Line {
                json: format!(
                    r#"{{"ok":false,"code":"{}","error":"{}"}}"#,
                    e.code,
                    json_escape(&e.msg)
                ),
                ok: false,
            },
        }
    }

    /// The per-command supervisor: runs the command with panic
    /// containment, then applies the bounded per-kind retry policy.
    ///
    /// A command may set [`Session::retry_hint`] when it failed — or
    /// succeeded degraded — in a way one retry against reset pipeline
    /// state can repair: a transient read failure (`io`), a typed
    /// internal error (`internal`), a worker-panic degradation
    /// (`worker_panic`), or an exhausted deadline clock (`deadline`).
    /// Engine-level kinds reset the [`PassManager`] first, because
    /// degradation diagnostics live inside cached pass slots and shift
    /// the report fingerprint; only a cold pipeline reproduces the
    /// fault-free reply bits. A retry that comes back clean replaces
    /// the degraded reply and is annotated
    /// `"recovered":{"kind":...,"retries":1}`; a retry that is still
    /// symptomatic is returned as-is — degraded but honest. Exactly one
    /// retry, ever: recovery must never turn a persistent fault into a
    /// loop.
    fn supervised(&mut self, tokens: &[&str]) -> Result<String, CmdError> {
        self.retry_hint = None;
        let first = match catch_unwind(AssertUnwindSafe(|| self.run_cmd(tokens))) {
            Ok(r) => r,
            Err(payload) => {
                // An escaped panic must fail loudly, never kill the
                // session; the pipeline may be mid-update, so drop its
                // state wholesale. Not retried: the command may have
                // partially applied, and a blind re-run could double it.
                self.passes = PassManager::new();
                return Err(CmdError {
                    code: codes::SESSION_PANIC,
                    msg: format!("command panicked: {}", panic_text(&payload)),
                });
            }
        };
        let Some(kind) = self.retry_hint.take() else {
            return first;
        };
        tv_obs::incr(tv_obs::Counter::FaultRetries);
        if kind != "io" {
            self.passes = PassManager::new();
        }
        match catch_unwind(AssertUnwindSafe(|| self.run_cmd(tokens))) {
            Ok(second) => {
                if self.retry_hint.take().is_none() {
                    second.map(|json| annotate_recovered(&json, kind))
                } else {
                    second
                }
            }
            Err(payload) => {
                self.passes = PassManager::new();
                Err(CmdError {
                    code: codes::SESSION_PANIC,
                    msg: format!("command panicked during retry: {}", panic_text(&payload)),
                })
            }
        }
    }

    /// Dispatches one tokenized command (everything but `quit`, which
    /// the caller handles — it must bypass the retry machinery).
    fn run_cmd(&mut self, tokens: &[&str]) -> Result<String, CmdError> {
        match tokens[0] {
            "load" => self.cmd_load(&tokens[1..]).map_err(CmdError::from),
            "demo" => self.cmd_demo(&tokens[1..]).map_err(CmdError::from),
            "edit" => self.cmd_edit(&tokens[1..]).map_err(CmdError::from),
            "analyze" => self.cmd_analyze(&tokens[1..]).map_err(CmdError::from),
            "paths" => self.cmd_paths(&tokens[1..]).map_err(CmdError::from),
            "flow" => self.cmd_flow(&tokens[1..]).map_err(CmdError::from),
            "revision" => self.cmd_revision(&tokens[1..]).map_err(CmdError::from),
            "metrics" => self.cmd_metrics(&tokens[1..]).map_err(CmdError::from),
            other => Err(CmdError {
                code: codes::SESSION_UNKNOWN_COMMAND,
                msg: format!("unknown command {other:?}"),
            }),
        }
    }

    fn cmd_load(&mut self, args: &[&str]) -> Result<String, String> {
        let [path] = args else {
            return Err("load needs <file.sim>".into());
        };
        let text = match tv_fault::io_error(tv_fault::Site::SimRead) {
            Some(e) => {
                tv_obs::incr(tv_obs::Counter::FaultInjected);
                Err(e)
            }
            None => std::fs::read_to_string(path),
        }
        .map_err(|e| {
            // A failed read leaves no partial state behind, so it is
            // always safe to retry once before giving up.
            self.retry_hint = Some("io");
            format!("cannot read {path}: {e}")
        })?;
        let mut diags = Diagnostics::with_max_errors(self.max_errors);
        let popts = sim_format::ParseOptions {
            jobs: self.options.effective_jobs(),
            ..sim_format::ParseOptions::default()
        };
        let netlist = sim_format::parse_recovering_with(
            &text,
            self.techs.nmos4um.clone(),
            &mut diags,
            &popts,
        )
        .map_err(|e| {
            // Nothing was installed, so a re-read-and-re-parse is
            // safe; on a genuinely bad file the retry fails the
            // same way and the error stands.
            self.retry_hint = Some("parse");
            format!("unrecoverable parse failure in {path}: {e}")
        })?;
        let errors = diags.error_count();
        self.install(Design::new(netlist));
        let d = self.design.as_ref().expect("just installed");
        Ok(format!(
            r#"{{"ok":true,"cmd":"load","path":"{}","nodes":{},"devices":{},"parse_errors":{},"revision":{}}}"#,
            json_escape(path),
            d.netlist().node_count(),
            d.netlist().device_count(),
            errors,
            d.revision().0
        ))
    }

    fn cmd_demo(&mut self, args: &[&str]) -> Result<String, String> {
        let config = match args {
            [] | ["mips32"] => DatapathConfig::mips32(),
            ["small"] => DatapathConfig::small(),
            [other, ..] => return Err(format!("unknown demo config {other:?}")),
        };
        let which = if args == ["small"] { "small" } else { "mips32" };
        let dp = datapath(self.techs.nmos4um.clone(), config);
        self.install(Design::new(dp.netlist));
        let d = self.design.as_ref().expect("just installed");
        Ok(format!(
            r#"{{"ok":true,"cmd":"demo","config":"{}","nodes":{},"devices":{},"revision":{}}}"#,
            which,
            d.netlist().node_count(),
            d.netlist().device_count(),
            d.revision().0
        ))
    }

    /// Installs a new design, dropping all pass state from the previous
    /// one (a fresh manager: slot fingerprints must not carry across
    /// designs).
    fn install(&mut self, design: Design) {
        self.design = Some(design);
        self.passes = PassManager::new();
    }

    fn cmd_edit(&mut self, args: &[&str]) -> Result<String, String> {
        let techs = self.techs.clone();
        let design = self.design.as_mut().ok_or("no design loaded")?;
        let (kind, receipt) = match args {
            ["resize", dev, w, l] => {
                let id = device_named(design, dev)?;
                let (w, l) = (num(w, "width")?, num(l, "length")?);
                (
                    "resize",
                    design.resize_device(id, w, l).map_err(|e| e.to_string())?,
                )
            }
            ["setcap", node, pf] => {
                let id = node_named(design, node)?;
                let pf = num(pf, "capacitance")?;
                (
                    "setcap",
                    design.set_node_cap(id, pf).map_err(|e| e.to_string())?,
                )
            }
            ["addnode", name, role] => {
                let role = match *role {
                    "in" => NodeRole::Input,
                    "out" => NodeRole::Output,
                    "int" => NodeRole::Internal,
                    other => return Err(format!("unknown node role {other:?} (in|out|int)")),
                };
                ("addnode", design.add_node(name, role).1)
            }
            ["adddev", name, kind, gate, source, drain, w, l] => {
                let kind = match *kind {
                    "e" => DeviceKind::Enhancement,
                    "d" => DeviceKind::Depletion,
                    other => return Err(format!("unknown device kind {other:?} (e|d)")),
                };
                let (g, s, dr) = (
                    node_named(design, gate)?,
                    node_named(design, source)?,
                    node_named(design, drain)?,
                );
                let (w, l) = (num(w, "width")?, num(l, "length")?);
                (
                    "adddev",
                    design
                        .add_device(name, kind, g, s, dr, w, l)
                        .map_err(|e| e.to_string())?
                        .1,
                )
            }
            ["rmdev", dev] => {
                let id = device_named(design, dev)?;
                ("rmdev", design.remove_device(id))
            }
            ["retech", tech] => {
                let tech = techs
                    .get(tech)
                    .ok_or_else(|| format!("unknown tech {tech:?} (nmos4um|nmos2um)"))?
                    .clone();
                ("retech", design.retech(tech))
            }
            _ => {
                return Err(
                    "edit needs resize|setcap|addnode|adddev|rmdev|retech with its operands".into(),
                )
            }
        };
        let class = match receipt.class {
            EditClass::Parametric => "parametric",
            EditClass::Structural => "structural",
            EditClass::Tech => "tech",
        };
        Ok(format!(
            r#"{{"ok":true,"cmd":"edit","kind":"{}","class":"{}","dirty_nodes":{},"revision":{}}}"#,
            kind,
            class,
            receipt.dirty.len(),
            receipt.revision.0
        ))
    }

    fn cmd_analyze(&mut self, args: &[&str]) -> Result<String, String> {
        if !args.is_empty() {
            return Err("analyze takes no operands".into());
        }
        let design = self.design.as_ref().ok_or("no design loaded")?;
        let report = match self.passes.try_analyze(design, &self.options) {
            Ok(report) => report,
            Err(e) => {
                if matches!(e, TvError::Internal { .. }) {
                    self.retry_hint = Some("internal");
                }
                return Err(e.to_string());
            }
        };
        // A report can also come back *degraded*: a worker panic forced
        // a serial fallback (and left a TV0303 diagnostic that shifts
        // the fingerprint), or the deadline clock fired early and the
        // propagation is incomplete. Both are one-shot conditions worth
        // a single retry against a cold pipeline.
        if report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::ANALYSIS_WORKER_PANIC)
        {
            self.retry_hint = Some("worker_panic");
        } else if std::iter::once(&report.combinational)
            .chain(report.phases.iter().map(|p| &p.result))
            .any(|r| r.completion == Completion::DeadlineExceeded)
        {
            self.retry_hint = Some("deadline");
        }
        let fp = report_fingerprint(design.netlist(), &report);
        let mut passes = String::new();
        for (i, ev) in self.passes.last_trace().iter().enumerate() {
            if i > 0 {
                passes.push(',');
            }
            let outcome = match ev.outcome {
                PassOutcome::Reused => r#""reused""#.to_string(),
                PassOutcome::Computed => r#""computed""#.to_string(),
                PassOutcome::Revalidated => r#""revalidated""#.to_string(),
                PassOutcome::Spliced { roots } => format!(r#""spliced","roots":{roots}"#),
                PassOutcome::Cone { recomputed } => {
                    format!(r#""cone","recomputed":{recomputed}"#)
                }
            };
            passes.push_str(&format!(
                r#"{{"pass":"{}","outcome":{}}}"#,
                ev.pass.name(),
                outcome
            ));
        }
        Ok(format!(
            r#"{{"ok":true,"cmd":"analyze","revision":{},"fingerprint":"{:#018x}","complete":{},"latches":{},"checks":{},"min_cycle":{},"critical":{},"passes":[{}]}}"#,
            design.revision().0,
            fp,
            report.is_complete(),
            report.latches.len(),
            report.checks.len(),
            json_opt_f64(report.min_cycle),
            json_opt_f64(report.combinational.critical_arrival()),
            passes
        ))
    }

    fn cmd_paths(&mut self, args: &[&str]) -> Result<String, String> {
        let [from, to] = args else {
            return Err("paths needs <from-node> <to-node>".into());
        };
        let design = self.design.as_ref().ok_or("no design loaded")?;
        let f = node_named(design, from)?;
        let t = node_named(design, to)?;
        let nl = design.netlist();
        match Analyzer::new(nl).path_query(f, t, &self.options) {
            Some(path) => {
                let mut steps = String::new();
                for (i, s) in path.steps.iter().enumerate() {
                    if i > 0 {
                        steps.push(',');
                    }
                    steps.push_str(&format!(
                        r#"{{"node":"{}","edge":"{}","at":{}}}"#,
                        json_escape(nl.node_name(s.node)),
                        match s.edge {
                            tv_core::propagate::Edge::Rise => "rise",
                            tv_core::propagate::Edge::Fall => "fall",
                        },
                        json_f64(s.at)
                    ));
                }
                Ok(format!(
                    r#"{{"ok":true,"cmd":"paths","from":"{}","to":"{}","arrival":{},"steps":[{}]}}"#,
                    json_escape(from),
                    json_escape(to),
                    json_f64(path.arrival()),
                    steps
                ))
            }
            None => Err(format!("{to} is not reachable from {from}")),
        }
    }

    fn cmd_flow(&mut self, args: &[&str]) -> Result<String, String> {
        if !args.is_empty() {
            return Err("flow takes no operands".into());
        }
        let design = self.design.as_ref().ok_or("no design loaded")?;
        let nl = design.netlist();
        let flow = flow_analyze(nl, &self.options.rules);
        let r = flow.report(nl);
        Ok(format!(
            r#"{{"ok":true,"cmd":"flow","devices":{},"pass_devices":{},"oriented":{},"bidirectional":{},"unresolved":{},"stages":{},"fingerprint":"{:#018x}"}}"#,
            r.devices,
            r.pass_devices,
            r.oriented,
            r.bidirectional,
            r.unresolved,
            r.stages,
            flow_fingerprint(nl, &flow)
        ))
    }

    fn cmd_metrics(&mut self, args: &[&str]) -> Result<String, String> {
        if !args.is_empty() {
            return Err("metrics takes no operands".into());
        }
        let now = tv_obs::snapshot();
        let delta = now.since(&self.metrics_mark);
        self.metrics_mark = now;
        Ok(format!(
            r#"{{"ok":true,"cmd":"metrics","counters":{}}}"#,
            delta.render_json()
        ))
    }

    fn cmd_revision(&mut self, args: &[&str]) -> Result<String, String> {
        if !args.is_empty() {
            return Err("revision takes no operands".into());
        }
        let design = self.design.as_ref().ok_or("no design loaded")?;
        Ok(format!(
            r#"{{"ok":true,"cmd":"revision","revision":{}}}"#,
            design.revision().0
        ))
    }
}

/// Best-effort text of a caught panic payload (panics raised with
/// `panic!("{}", ...)` carry a `String`; literals carry `&str`).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".into()
    }
}

/// Appends `"recovered":{"kind":...,"retries":1}` to a reply object, so
/// transcripts show both that the command succeeded and that it took
/// the supervisor to get there.
fn annotate_recovered(json: &str, kind: &str) -> String {
    match json.strip_suffix('}') {
        Some(body) => format!(r#"{body},"recovered":{{"kind":"{kind}","retries":1}}}}"#),
        None => json.to_string(),
    }
}

/// Extracts the `"revision":<n>` stamp from a reply line, if present
/// (replies are generated by this module, so plain text scanning is
/// exact — no reply nests another object with a `revision` key first).
pub fn reply_revision(json: &str) -> Option<u64> {
    let rest = &json[json.find(r#""revision":"#)? + r#""revision":"#.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the `"fingerprint":"0x..."` stamp from a reply line.
pub fn reply_fingerprint(json: &str) -> Option<String> {
    let rest = &json[json.find(r#""fingerprint":""#)? + r#""fingerprint":""#.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Static span label for a session command (span names must be
/// `&'static str`; unknown commands share one bucket).
fn command_span_label(cmd: &str) -> &'static str {
    match cmd {
        "load" => "session.load",
        "demo" => "session.demo",
        "edit" => "session.edit",
        "analyze" => "session.analyze",
        "paths" => "session.paths",
        "flow" => "session.flow",
        "revision" => "session.revision",
        "metrics" => "session.metrics",
        _ => "session.other",
    }
}

fn node_named(design: &Design, name: &str) -> Result<tv_netlist::NodeId, String> {
    design
        .netlist()
        .node_by_name(name)
        .ok_or_else(|| format!("unknown node {name:?}"))
}

fn device_named(design: &Design, name: &str) -> Result<tv_netlist::DeviceId, String> {
    design
        .netlist()
        .device_by_name(name)
        .ok_or_else(|| format!("unknown device {name:?}"))
}

fn num(s: &str, what: &str) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|_| format!("bad {what} {s:?}"))?;
    if !v.is_finite() {
        return Err(format!("bad {what} {s:?}"));
    }
    Ok(v)
}

/// Finite floats render with Rust's shortest round-trip `Display`;
/// that representation is platform-independent, so golden transcripts
/// are stable.
fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite());
    // Bare integers are still valid JSON numbers, no fixup needed.
    format!("{v}")
}

fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => json_f64(x),
        _ => "null".into(),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs a whole session: reads commands from `input` line by line,
/// writes one JSON reply line per command to `out`, stops at `quit` or
/// end of input. Returns the session exit code: 0 when every command
/// succeeded, 1 if any failed.
pub fn run_session<R: BufRead, W: Write>(
    input: R,
    out: &mut W,
    options: AnalysisOptions,
    max_errors: usize,
) -> std::io::Result<u8> {
    run_session_with(input, out, options, max_errors, None, None)
}

/// [`run_session`] with the crash-safety plane attached.
///
/// With `journal`, every accepted (non-quit, `ok:true`) command is
/// appended to the file after it executes, stamped with the revision
/// and fingerprint its reply carried. With `resume`, the journal at
/// that path is validated and replayed through the ordinary command
/// API *before* any input is read; replay must land on the recorded
/// stamps exactly (else `TV0503` refuses), a torn tail is dropped and
/// truncated with a `TV0502` note, and interior damage refuses with
/// `TV0501`. After a successful resume, the same file continues to
/// receive appends, so resume composes with itself.
pub fn run_session_with<R: BufRead, W: Write>(
    input: R,
    out: &mut W,
    options: AnalysisOptions,
    max_errors: usize,
    journal: Option<&str>,
    resume: Option<&str>,
) -> std::io::Result<u8> {
    let mut session = Session::new(options, max_errors);
    let mut failed = false;
    let journal_path = resume.or(journal);
    let mut sink = None;
    if let Some(path) = resume {
        let loaded = match journal::load(path) {
            Ok(l) => l,
            Err(e) => {
                let code = match e {
                    journal::JournalError::Io(_) => codes::JOURNAL_IO,
                    journal::JournalError::Malformed { .. } => codes::JOURNAL_MALFORMED,
                };
                writeln!(
                    out,
                    r#"{{"ok":false,"cmd":"resume","code":"{}","error":"{}"}}"#,
                    code,
                    json_escape(&e.to_string())
                )?;
                return Ok(1);
            }
        };
        if loaded.torn {
            // Drop the torn tail on disk too, so the file we go on
            // appending to is exactly the prefix we replayed.
            journal::truncate_to(path, loaded.valid_len)?;
        }
        let mut last_revision = None;
        let mut last_fingerprint = None;
        for (i, entry) in loaded.entries.iter().enumerate() {
            tv_obs::incr(tv_obs::Counter::FaultJournalReplays);
            let reply = session.eval(&entry.command);
            let (json, ok) = match reply {
                Some(r) => r,
                None => (String::new(), true),
            };
            let diverged = !ok
                || entry
                    .revision
                    .is_some_and(|want| reply_revision(&json) != Some(want))
                || entry
                    .fingerprint
                    .as_deref()
                    .is_some_and(|want| reply_fingerprint(&json).as_deref() != Some(want));
            if diverged {
                writeln!(
                    out,
                    r#"{{"ok":false,"cmd":"resume","code":"{}","error":"replay diverged at entry {} ({})"}}"#,
                    codes::JOURNAL_DIVERGED,
                    i + 1,
                    json_escape(&entry.command)
                )?;
                return Ok(1);
            }
            last_revision = reply_revision(&json).or(last_revision);
            last_fingerprint = reply_fingerprint(&json).or(last_fingerprint);
        }
        writeln!(
            out,
            r#"{{"ok":true,"cmd":"resume","replayed":{},"torn":{},"revision":{},"fingerprint":{}}}"#,
            loaded.entries.len(),
            loaded.torn,
            last_revision
                .map(|r| r.to_string())
                .unwrap_or_else(|| "null".into()),
            last_fingerprint
                .map(|f| format!("\"{f}\""))
                .unwrap_or_else(|| "null".into()),
        )?;
        out.flush()?;
        sink = Some(journal::Journal::open_append(path)?);
    } else if let Some(path) = journal_path {
        sink = Some(journal::Journal::create(path)?);
    }
    for line in input.lines() {
        let line = line?;
        let quit = line.trim() == "quit";
        if let Some((json, ok)) = session.eval(&line) {
            writeln!(out, "{json}")?;
            out.flush()?;
            failed |= !ok;
            if ok && !quit {
                if let Some(j) = sink.as_mut() {
                    j.append(&journal::Entry {
                        revision: reply_revision(&json),
                        fingerprint: reply_fingerprint(&json),
                        command: line.trim().to_string(),
                    })?;
                }
            }
        }
        if quit {
            break;
        }
    }
    Ok(if failed { 1 } else { 0 })
}
