//! The serving plane: long-lived sessions, crash-safe journals, and the
//! multi-tenant `tv serve` server with its client and load generator.
//!
//! The crate split mirrors the engine/protocol/platform/client
//! separation of the STEAM/gwr system the ROADMAP names:
//!
//! | layer | module | what it is |
//! |---|---|---|
//! | engine | [`session`] | one resident `Design` + pass pipeline, command → JSON reply |
//! | durability | [`journal`] | append-only checksummed command log, `--resume` replay |
//! | platform | [`server`] | TCP/unix listeners, thread-per-connection, admission control |
//! | terminus | [`client`] | script replay over a connection, transcript on stdout |
//! | driver | [`loadgen`] | concurrent script replay publishing latency percentiles |
//!
//! The wire protocol itself lives one crate down in `tv_proto`, so the
//! frame format is testable without dragging in the engine. Everything
//! here is `std`-only: the server is thread-per-connection over blocking
//! sockets, which at the session protocol's request rates (one analyze
//! is milliseconds of compute) saturates the engine long before the
//! platform becomes the bottleneck.

#![forbid(unsafe_code)]

pub mod client;
pub mod journal;
pub mod loadgen;
pub mod server;
pub mod session;

pub use server::{ServeConfig, ServerHandle};
pub use session::TechTable;
