//! Switch-level logic simulation — the MOSSIM-style companion to the
//! analog engine.
//!
//! Bryant's switch-level model (contemporary with TV) simulates MOS
//! circuits as switches with **signal strengths**: a node's logic value is
//! decided by the strongest conducting path to a source, with ternary
//! values {0, 1, X} and *charge retention* on isolated nodes — which is
//! exactly what dynamic nMOS needs (latches hold their sampled value when
//! the pass gate closes; ratioed pull-downs overpower depletion loads).
//!
//! The strength lattice, strongest first:
//!
//! | strength | source |
//! |---|---|
//! | `Driven` | rails and externally driven nodes |
//! | `Strong` | paths through enhancement channels |
//! | `Weak` | paths through depletion loads |
//! | `Charge` | an isolated node's stored state |
//!
//! A path's strength is the weakest device on it; a node takes the value
//! of its strongest *definite* contribution unless an equal-or-stronger
//! conflicting (or X-gated "maybe") path exists, in which case it is `X`.
//! Evaluation iterates to a fixpoint (gate values feed channel
//! conductance); a sweep cap turns oscillation into an error instead of a
//! hang.
//!
//! Compared to the analog engine this is ~10³× faster and value-exact for
//! restoring logic, at the price of no timing — the two simulators answer
//! complementary questions (what/when), just as MOSSIM and SPICE did.

use tv_netlist::{DeviceKind, Netlist, NodeId};

/// A ternary logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Logic low.
    Zero,
    /// Logic high (degraded highs through pass gates still read as high).
    One,
    /// Unknown / conflict.
    X,
}

impl Level {
    fn invert(self) -> Level {
        match self {
            Level::Zero => Level::One,
            Level::One => Level::Zero,
            Level::X => Level::X,
        }
    }
}

/// Error returned when the network will not settle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OscillationError {
    /// How many sweeps ran before giving up.
    pub sweeps: usize,
}

impl std::fmt::Display for OscillationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "switch-level network did not settle in {} sweeps",
            self.sweeps
        )
    }
}

impl std::error::Error for OscillationError {}

/// Channel conduction state under the current gate values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Conduct {
    Off,
    On,
    Maybe, // gate is X
}

/// Path strengths, ordered. `Driven` only labels sources; path strength
/// through devices is capped at `Strong`.
const CHARGE: u8 = 0;
const WEAK: u8 = 1;
const STRONG: u8 = 2;
const DRIVEN: u8 = 3;

/// A switch-level simulator over one netlist.
///
/// # Example
///
/// An inverter, exercised through its truth table:
///
/// ```
/// use tv_netlist::{NetlistBuilder, Tech};
/// use tv_sim::switch::{Level, SwitchSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new(Tech::nmos4um());
/// let a = b.input("a");
/// let out = b.output("out");
/// b.inverter("i", a, out);
/// let nl = b.finish()?;
///
/// let mut sim = SwitchSim::new(&nl);
/// sim.set(a, Level::One);
/// sim.settle()?;
/// assert_eq!(sim.value(out), Level::Zero);
/// sim.set(a, Level::Zero);
/// sim.settle()?;
/// assert_eq!(sim.value(out), Level::One);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SwitchSim<'a> {
    netlist: &'a Netlist,
    /// Current value per node.
    values: Vec<Level>,
    /// Whether the node is externally driven (rails + `set` nodes).
    driven: Vec<bool>,
    /// Sweep cap before declaring oscillation.
    max_sweeps: usize,
}

impl<'a> SwitchSim<'a> {
    /// Creates a simulator with every non-rail node at `X` and only the
    /// rails driven.
    pub fn new(netlist: &'a Netlist) -> Self {
        let n = netlist.node_count();
        let mut values = vec![Level::X; n];
        let mut driven = vec![false; n];
        values[netlist.vdd().index()] = Level::One;
        values[netlist.gnd().index()] = Level::Zero;
        driven[netlist.vdd().index()] = true;
        driven[netlist.gnd().index()] = true;
        SwitchSim {
            netlist,
            values,
            driven,
            max_sweeps: 200,
        }
    }

    /// Drives a node to a level (stays driven until [`SwitchSim::release`]).
    pub fn set(&mut self, node: NodeId, level: Level) {
        self.values[node.index()] = level;
        self.driven[node.index()] = true;
    }

    /// Stops driving a node; it keeps its value as stored charge until the
    /// network overwrites it.
    pub fn release(&mut self, node: NodeId) {
        self.driven[node.index()] = false;
    }

    /// The current value of a node.
    pub fn value(&self, node: NodeId) -> Level {
        self.values[node.index()]
    }

    /// Iterates evaluation sweeps until the network settles, returning the
    /// sweep count.
    ///
    /// # Errors
    ///
    /// Returns [`OscillationError`] if no fixpoint is reached within the
    /// sweep cap (a ring oscillator, or an X-fed loop).
    pub fn settle(&mut self) -> Result<usize, OscillationError> {
        for sweep in 1..=self.max_sweeps {
            if !self.sweep_once() {
                return Ok(sweep);
            }
        }
        Err(OscillationError {
            sweeps: self.max_sweeps,
        })
    }

    /// One global evaluation: recompute every non-driven node from path
    /// strengths under current gate values. Returns whether anything
    /// changed.
    fn sweep_once(&mut self) -> bool {
        let nl = self.netlist;
        let n = nl.node_count();

        // Channel conduction per device under the current gate values.
        let conduct: Vec<Conduct> = nl
            .devices()
            .map(|dref| {
                let d = dref.device;
                match d.kind() {
                    DeviceKind::Depletion => Conduct::On, // always conducting
                    DeviceKind::Enhancement => match self.values[d.gate().index()] {
                        Level::One => Conduct::On,
                        Level::Zero => Conduct::Off,
                        Level::X => Conduct::Maybe,
                    },
                }
            })
            .collect();

        // Best definite/maybe path strengths for value-1 and value-0
        // contributions at every node.
        let mut s1 = vec![CHARGE; n];
        let mut s0 = vec![CHARGE; n];
        let mut m1 = vec![CHARGE; n];
        let mut m0 = vec![CHARGE; n];

        // Sources: driven nodes (rails included).
        for idx in 0..n {
            if !self.driven[idx] {
                continue;
            }
            match self.values[idx] {
                Level::One => s1[idx] = DRIVEN,
                Level::Zero => s0[idx] = DRIVEN,
                Level::X => {
                    m1[idx] = DRIVEN;
                    m0[idx] = DRIVEN;
                }
            }
        }

        // Relax until stable: path strength = min(source, weakest device),
        // maximized over paths. The lattice is tiny, so a handful of
        // passes converges; cap at node count for safety.
        let device_strength = |dref: tv_netlist::DeviceRef<'_>| match dref.device.kind() {
            DeviceKind::Depletion => WEAK,
            DeviceKind::Enhancement => STRONG,
        };
        let mut changed = true;
        let mut guard = 0;
        while changed && guard <= n + 4 {
            changed = false;
            guard += 1;
            for dref in nl.devices() {
                let c = conduct[dref.id.index()];
                if c == Conduct::Off {
                    continue;
                }
                let ds = device_strength(dref);
                let a = dref.device.source().index();
                let b = dref.device.drain().index();
                // Driven nodes never import strength: an input pin is not
                // overwritten by the network.
                let mut relax = |from: usize, to: usize| {
                    if self.driven[to] {
                        return;
                    }
                    let def_ok = c == Conduct::On;
                    // Definite contributions survive only through ON
                    // devices; anything through a Maybe device is a maybe.
                    let cand_s1 = if def_ok { s1[from].min(ds) } else { CHARGE };
                    let cand_s0 = if def_ok { s0[from].min(ds) } else { CHARGE };
                    let cand_m1 = (m1[from].max(if def_ok { CHARGE } else { s1[from] })).min(ds);
                    let cand_m0 = (m0[from].max(if def_ok { CHARGE } else { s0[from] })).min(ds);
                    if cand_s1 > s1[to] {
                        s1[to] = cand_s1;
                        changed = true;
                    }
                    if cand_s0 > s0[to] {
                        s0[to] = cand_s0;
                        changed = true;
                    }
                    if cand_m1 > m1[to] {
                        m1[to] = cand_m1;
                        changed = true;
                    }
                    if cand_m0 > m0[to] {
                        m0[to] = cand_m0;
                        changed = true;
                    }
                };
                relax(a, b);
                relax(b, a);
            }
        }

        // Resolve node values.
        let mut any_change = false;
        for idx in 0..n {
            if self.driven[idx] {
                continue;
            }
            let best = s1[idx].max(s0[idx]).max(m1[idx]).max(m0[idx]);
            let new = if best == CHARGE {
                // Isolated: retain stored charge.
                self.values[idx]
            } else if s1[idx] >= best && s0[idx] < best && m0[idx] < best {
                Level::One
            } else if s0[idx] >= best && s1[idx] < best && m1[idx] < best {
                Level::Zero
            } else {
                Level::X
            };
            if new != self.values[idx] {
                self.values[idx] = new;
                any_change = true;
            }
        }
        any_change
    }

    /// Convenience: drive `node`, settle, and return the sweep count.
    ///
    /// # Errors
    ///
    /// Propagates [`OscillationError`] from [`SwitchSim::settle`].
    pub fn apply(&mut self, node: NodeId, level: Level) -> Result<usize, OscillationError> {
        self.set(node, level);
        self.settle()
    }
}

/// Truth-table helper: the inverse of a level (public for test builders).
pub fn invert(level: Level) -> Level {
    level.invert()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_netlist::{NetlistBuilder, Tech};

    fn builder() -> NetlistBuilder {
        NetlistBuilder::new(Tech::nmos4um())
    }

    #[test]
    fn inverter_truth_table_with_x() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let mut sim = SwitchSim::new(&nl);
        for (input, expect) in [
            (Level::Zero, Level::One),
            (Level::One, Level::Zero),
            (Level::X, Level::X),
        ] {
            sim.apply(a, input).unwrap();
            assert_eq!(sim.value(out), expect, "in={input:?}");
        }
    }

    #[test]
    fn nand_and_nor_truth_tables() {
        let mut b = builder();
        let x = b.input("x");
        let y = b.input("y");
        let nand = b.node("nand");
        let nor = b.node("nor");
        b.nand("g1", &[x, y], nand);
        b.nor("g2", &[x, y], nor);
        let nl = b.finish().unwrap();
        let mut sim = SwitchSim::new(&nl);
        use Level::{One, Zero};
        for (vx, vy, e_nand, e_nor) in [
            (Zero, Zero, One, One),
            (Zero, One, One, Zero),
            (One, Zero, One, Zero),
            (One, One, Zero, Zero),
        ] {
            sim.set(x, vx);
            sim.set(y, vy);
            sim.settle().unwrap();
            assert_eq!(sim.value(nand), e_nand, "nand({vx:?},{vy:?})");
            assert_eq!(sim.value(nor), e_nor, "nor({vx:?},{vy:?})");
        }
    }

    #[test]
    fn dynamic_latch_samples_and_holds() {
        let mut b = builder();
        let phi = b.clock("phi1", 0);
        let d = b.input("d");
        let qb = b.node("qb");
        let store = b.dynamic_latch("l", phi, d, qb);
        let nl = b.finish().unwrap();
        let mut sim = SwitchSim::new(&nl);

        // Clock open, D = 1: storage follows, output inverts.
        sim.set(d, Level::One);
        sim.apply(phi, Level::One).unwrap();
        assert_eq!(sim.value(store), Level::One);
        assert_eq!(sim.value(qb), Level::Zero);

        // Clock closes; D changes — the stored value must HOLD.
        sim.apply(phi, Level::Zero).unwrap();
        sim.apply(d, Level::Zero).unwrap();
        assert_eq!(sim.value(store), Level::One, "charge retention failed");
        assert_eq!(sim.value(qb), Level::Zero);

        // Clock reopens: new value sampled.
        sim.apply(phi, Level::One).unwrap();
        assert_eq!(sim.value(store), Level::Zero);
        assert_eq!(sim.value(qb), Level::One);
    }

    #[test]
    fn pulldown_overpowers_depletion_load() {
        // The ratioed-logic premise: with the pull-down on, the strong
        // GND path must beat the always-on weak load.
        let mut b = builder();
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let mut sim = SwitchSim::new(&nl);
        sim.apply(a, Level::One).unwrap();
        assert_eq!(sim.value(out), Level::Zero);
    }

    #[test]
    fn precharged_bus_cycle() {
        let mut b = builder();
        let phi = b.clock("phi2", 1);
        let en = b.input("en");
        let bus = b.node("bus");
        b.precharge("pre", phi, bus);
        let gnd = b.gnd();
        b.enhancement("dis", en, gnd, bus, 8.0, 4.0);
        let nl = b.finish().unwrap();
        let mut sim = SwitchSim::new(&nl);

        // Precharge with discharge off: bus goes high.
        sim.set(en, Level::Zero);
        sim.apply(phi, Level::One).unwrap();
        assert_eq!(sim.value(bus), Level::One);
        // Precharge ends: bus holds its charge.
        sim.apply(phi, Level::Zero).unwrap();
        assert_eq!(sim.value(bus), Level::One);
        // Discharge path opens: bus falls.
        sim.apply(en, Level::One).unwrap();
        assert_eq!(sim.value(bus), Level::Zero);
    }

    #[test]
    fn pass_mux_selects() {
        let mut b = builder();
        let s0 = b.input("s0");
        let s1 = b.input("s1");
        let a = b.input("a");
        let bb = b.input("b");
        let an = b.node("an");
        let bn = b.node("bn");
        b.inverter("ia", a, an);
        b.inverter("ib", bb, bn);
        let m = b.node("m");
        b.pass("p0", s0, an, m);
        b.pass("p1", s1, bn, m);
        let out = b.node("out");
        b.inverter("im", m, out);
        let nl = b.finish().unwrap();
        let mut sim = SwitchSim::new(&nl);

        sim.set(a, Level::One); // an = 0
        sim.set(bb, Level::Zero); // bn = 1
        sim.set(s0, Level::One);
        sim.set(s1, Level::Zero);
        sim.settle().unwrap();
        assert_eq!(sim.value(m), Level::Zero);
        assert_eq!(sim.value(out), Level::One);

        sim.set(s0, Level::Zero);
        sim.set(s1, Level::One);
        sim.settle().unwrap();
        assert_eq!(sim.value(m), Level::One);
        assert_eq!(sim.value(out), Level::Zero);
    }

    #[test]
    fn ratioed_fight_resolves_toward_the_strong_pulldown() {
        // A weak (depletion-load) 1 against a strong (enhancement) 0
        // through equal pass gates: the pull-down side wins — exactly the
        // ratioed-logic premise.
        let mut b = builder();
        let c = b.input("c");
        let hi = b.input("hi");
        let lo = b.input("lo");
        let x1 = b.node("x1");
        let x2 = b.node("x2");
        b.inverter("i1", lo, x1); // x1 = 1 via the weak load when lo = 0
        b.inverter("i2", hi, x2); // x2 = 0 via the strong pull-down
        let m = b.node("m");
        b.pass("p1", c, x1, m);
        b.pass("p2", c, x2, m);
        let nl = b.finish().unwrap();
        let mut sim = SwitchSim::new(&nl);
        sim.set(lo, Level::Zero);
        sim.set(hi, Level::One);
        sim.apply(c, Level::One).unwrap();
        assert_eq!(sim.value(m), Level::Zero);
    }

    #[test]
    fn equal_strength_conflict_resolves_to_x() {
        // Two *driven inputs* of opposite value shorted through equal pass
        // gates: both contributions arrive at Strong — a genuine conflict.
        let mut b = builder();
        let c = b.input("c");
        let hi = b.input("hi");
        let lo = b.input("lo");
        let m = b.node("m");
        b.pass("p1", c, hi, m);
        b.pass("p2", c, lo, m);
        let sink = b.node("sink");
        b.pass("p3", c, m, sink);
        let nl = b.finish().unwrap();
        let mut sim = SwitchSim::new(&nl);
        sim.set(hi, Level::One);
        sim.set(lo, Level::Zero);
        sim.apply(c, Level::One).unwrap();
        assert_eq!(sim.value(m), Level::X, "1-vs-0 at equal strength is X");
    }

    #[test]
    fn x_gate_makes_maybe_conflict() {
        // A pass gate with an X control between a driven 1 and a charged 0
        // node: the destination becomes X (may or may not conduct).
        let mut b = builder();
        let c = b.input("c");
        let a = b.input("a");
        let src = b.node("src");
        b.inverter("i", a, src);
        let dst = b.node("dst");
        b.pass("p", c, src, dst);
        let sink = b.node("sink");
        b.pass("p2", c, dst, sink);
        let nl = b.finish().unwrap();
        let mut sim = SwitchSim::new(&nl);
        sim.set(a, Level::Zero); // src = 1
                                 // Pre-store a 0 on dst by driving then releasing.
        sim.set(dst, Level::Zero);
        sim.settle().unwrap();
        sim.release(dst);
        sim.apply(c, Level::X).unwrap();
        assert_eq!(sim.value(dst), Level::X);
    }

    #[test]
    fn ring_oscillator_reports_oscillation() {
        let mut b = builder();
        let n0 = b.node("n0");
        let n1 = b.node("n1");
        let n2 = b.node("n2");
        b.inverter("g0", n2, n0);
        b.inverter("g1", n0, n1);
        b.inverter("g2", n1, n2);
        let nl = b.finish().unwrap();
        let mut sim = SwitchSim::new(&nl);
        // Kick it out of the X fixpoint by forcing a node momentarily.
        sim.set(n0, Level::One);
        sim.settle().unwrap();
        sim.release(n0);
        let err = sim.settle().unwrap_err();
        assert!(err.sweeps > 0);
        assert!(err.to_string().contains("did not settle"));
    }

    #[test]
    fn master_slave_register_transfers_on_phases() {
        let mut b = builder();
        let phi1 = b.clock("phi1", 0);
        let phi2 = b.clock("phi2", 1);
        let d = b.input("d");
        let m = b.node("m");
        b.dynamic_latch("master", phi1, d, m);
        let q = b.node("q");
        b.dynamic_latch("slave", phi2, m, q);
        let nl = b.finish().unwrap();
        let mut sim = SwitchSim::new(&nl);

        // φ1: sample D=1 into the master (m = D̅ = 0).
        sim.set(d, Level::One);
        sim.set(phi2, Level::Zero);
        sim.apply(phi1, Level::One).unwrap();
        assert_eq!(sim.value(m), Level::Zero);

        // φ2: transfer into the slave (q = m̅ = 1).
        sim.set(phi1, Level::Zero);
        sim.apply(phi2, Level::One).unwrap();
        assert_eq!(sim.value(q), Level::One);

        // Change D mid-φ2: the master is closed, nothing moves.
        sim.apply(d, Level::Zero).unwrap();
        assert_eq!(sim.value(m), Level::Zero);
        assert_eq!(sim.value(q), Level::One);
    }
}
