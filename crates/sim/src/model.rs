//! Shichman–Hodges level-1 MOS model.
//!
//! The simplest model that reproduces the behaviors nMOS timing depends
//! on: square-law saturation, the linear (triode) region, depletion
//! devices conducting at V_GS = 0, symmetric channels, and pass
//! transistors charging only to V_DD − V_T. Units: V, mA, kΩ
//! (k′ in mA/V² makes the output milliamperes).

use tv_netlist::{Device, DeviceKind, Tech};

/// Drain–source channel current of a device, mA, given its terminal
/// voltages. Positive means conventional current flows from the `drain`
/// argument's node toward the `source` argument's node.
///
/// The channel is symmetric: the electrical source is whichever channel
/// terminal is at the lower potential, exactly as in silicon. Subthreshold
/// conduction is neglected (the 1983 convention).
///
/// # Example
///
/// ```
/// use tv_netlist::{DeviceKind, Tech};
/// use tv_sim::model::channel_current;
///
/// let t = Tech::nmos4um();
/// // Enhancement device fully on, drain at VDD, source at 0:
/// let i_on = channel_current(DeviceKind::Enhancement, 8.0, 4.0, t.vdd, 0.0, t.vdd, &t);
/// assert!(i_on > 0.0);
/// // Gate at 0: off.
/// let i_off = channel_current(DeviceKind::Enhancement, 8.0, 4.0, 0.0, 0.0, t.vdd, &t);
/// assert_eq!(i_off, 0.0);
/// ```
pub fn channel_current(
    kind: DeviceKind,
    w_um: f64,
    l_um: f64,
    vg: f64,
    vs: f64,
    vd: f64,
    tech: &Tech,
) -> f64 {
    // Orient so the electrical source is the lower channel terminal.
    let (lo, hi, sign) = if vd >= vs {
        (vs, vd, 1.0)
    } else {
        (vd, vs, -1.0)
    };
    let vt = match kind {
        DeviceKind::Enhancement => tech.vt_enh,
        DeviceKind::Depletion => tech.vt_dep,
    };
    let vgs = vg - lo;
    let vov = vgs - vt;
    if vov <= 0.0 {
        return 0.0; // cut off
    }
    let vds = hi - lo;
    let beta = tech.kprime * w_um / l_um;
    let i = if vds < vov {
        beta * (vov * vds - 0.5 * vds * vds) // triode
    } else {
        0.5 * beta * vov * vov // saturation
    };
    sign * i
}

/// Channel current of a netlist [`Device`] given the voltages at its gate,
/// source, and drain terminals (in that order). Positive flows from the
/// netlist `drain` terminal toward the netlist `source` terminal.
pub fn device_current(device: &Device, vg: f64, vs: f64, vd: f64, tech: &Tech) -> f64 {
    channel_current(
        device.kind(),
        device.width(),
        device.length(),
        vg,
        vs,
        vd,
        tech,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Tech {
        Tech::nmos4um()
    }

    #[test]
    fn cutoff_below_threshold() {
        let t = tech();
        assert_eq!(
            channel_current(DeviceKind::Enhancement, 4.0, 4.0, 0.9, 0.0, 5.0, &t),
            0.0
        );
        // Just above threshold: conducts.
        assert!(channel_current(DeviceKind::Enhancement, 4.0, 4.0, 1.1, 0.0, 5.0, &t) > 0.0);
    }

    #[test]
    fn depletion_conducts_at_zero_vgs() {
        let t = tech();
        let i = channel_current(DeviceKind::Depletion, 4.0, 4.0, 0.0, 0.0, 5.0, &t);
        assert!(i > 0.0, "depletion load must conduct with gate at source");
    }

    #[test]
    fn symmetric_channel_flips_sign() {
        let t = tech();
        let fwd = channel_current(DeviceKind::Enhancement, 4.0, 4.0, 5.0, 0.0, 3.0, &t);
        let rev = channel_current(DeviceKind::Enhancement, 4.0, 4.0, 5.0, 3.0, 0.0, &t);
        assert!((fwd + rev).abs() < 1e-15);
        assert!(fwd > 0.0);
    }

    #[test]
    fn saturation_current_is_square_law() {
        let t = tech();
        // vgs - vt = 2 and 4: saturation currents scale by 4.
        let i2 = channel_current(DeviceKind::Enhancement, 4.0, 4.0, 3.0, 0.0, 5.0, &t);
        let i4 = channel_current(DeviceKind::Enhancement, 4.0, 4.0, 5.0, 0.0, 5.0, &t);
        assert!((i4 / i2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn triode_region_below_saturation() {
        let t = tech();
        // vov = 4, vds = 1 (triode): i = beta(4·1 − 0.5)
        let beta = t.kprime; // W = L
        let i = channel_current(DeviceKind::Enhancement, 4.0, 4.0, 5.0, 0.0, 1.0, &t);
        assert!((i - beta * 3.5).abs() < 1e-12);
    }

    #[test]
    fn current_scales_with_aspect() {
        let t = tech();
        let narrow = channel_current(DeviceKind::Enhancement, 4.0, 4.0, 5.0, 0.0, 5.0, &t);
        let wide = channel_current(DeviceKind::Enhancement, 8.0, 4.0, 5.0, 0.0, 5.0, &t);
        assert!((wide / narrow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pass_transistor_stops_at_degraded_high() {
        let t = tech();
        // Gate at VDD, source charging up: once source reaches VDD − VT the
        // device cuts off.
        let nearly = t.vdd - t.vt_enh - 0.01;
        let at = t.vdd - t.vt_enh;
        assert!(channel_current(DeviceKind::Enhancement, 4.0, 4.0, t.vdd, nearly, t.vdd, &t) > 0.0);
        assert_eq!(
            channel_current(DeviceKind::Enhancement, 4.0, 4.0, t.vdd, at, t.vdd, &t),
            0.0
        );
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let t = tech();
        assert_eq!(
            channel_current(DeviceKind::Enhancement, 4.0, 4.0, 5.0, 2.0, 2.0, &t),
            0.0
        );
    }
}
