//! Export of simulation results: CSV for plotting tools and a quick
//! ASCII oscillogram for terminal inspection.

use std::fmt::Write as _;

use tv_netlist::{Netlist, NodeId};

use crate::engine::SimResult;

/// Renders the traces of the given nodes as CSV: a `time_ns` column plus
/// one column per node (named after the netlist node). Nodes are sampled
/// on the first node's time base by linear interpolation, so traces with
/// different record strides line up.
///
/// Returns `None` if no requested node has a recorded trace.
pub fn to_csv(result: &SimResult, netlist: &Netlist, nodes: &[NodeId]) -> Option<String> {
    let recorded: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|&n| result.trace(n).is_some())
        .collect();
    let base = result.trace(*recorded.first()?)?;

    let mut out = String::new();
    let _ = write!(out, "time_ns");
    for &n in &recorded {
        let _ = write!(out, ",{}", netlist.node_name(n));
    }
    let _ = writeln!(out);
    for &t in base.times() {
        let _ = write!(out, "{t}");
        for &n in &recorded {
            let v = result
                .trace(n)
                .and_then(|tr| tr.sample(t))
                .unwrap_or(f64::NAN);
            let _ = write!(out, ",{v:.5}");
        }
        let _ = writeln!(out);
    }
    Some(out)
}

/// Renders one node's trace as a fixed-width ASCII oscillogram:
/// `rows` lines of `cols` characters, `*` marking the waveform, with the
/// voltage scale on the left. Good enough to eyeball a transient in a
/// terminal; use [`to_csv`] for real plotting.
///
/// Returns `None` if the node has no recorded trace or it is empty.
pub fn ascii_plot(
    result: &SimResult,
    netlist: &Netlist,
    node: NodeId,
    cols: usize,
    rows: usize,
) -> Option<String> {
    let tr = result.trace(node)?;
    if tr.is_empty() || cols == 0 || rows == 0 {
        return None;
    }
    let t0 = *tr.times().first()?;
    let t1 = *tr.times().last()?;
    let span = (t1 - t0).max(1e-12);
    let (v_lo, v_hi) = tr
        .voltages()
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let v_span = (v_hi - v_lo).max(1e-9);

    let mut grid = vec![vec![b' '; cols]; rows];
    for (col, cell_col) in (0..cols).zip(0..) {
        let t = t0 + span * col as f64 / (cols - 1).max(1) as f64;
        let v = tr.sample(t)?;
        let frac = (v - v_lo) / v_span;
        let row = ((1.0 - frac) * (rows - 1) as f64).round() as usize;
        grid[row.min(rows - 1)][cell_col as usize] = b'*';
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} [{:.2}..{:.2} V, {:.2}..{:.2} ns]",
        netlist.node_name(node),
        v_lo,
        v_hi,
        t0,
        t1
    );
    for (i, line) in grid.into_iter().enumerate() {
        let v_label = v_hi - v_span * i as f64 / (rows - 1).max(1) as f64;
        let _ = writeln!(
            out,
            "{:>6.2} |{}",
            v_label,
            String::from_utf8(line).expect("ascii grid")
        );
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimOptions, Simulator};
    use crate::stimulus::{Stimulus, Waveform};
    use tv_netlist::{NetlistBuilder, Tech};

    fn run_inverter() -> (Netlist, SimResult, NodeId, NodeId) {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let a = nl.node_by_name("a").unwrap();
        let out = nl.node_by_name("out").unwrap();
        let mut stim = Stimulus::new(&nl);
        stim.drive(a, Waveform::step_up(1.0, 5.0));
        let r = Simulator::new(&nl, stim, SimOptions::for_duration(5.0)).run();
        (nl, r, a, out)
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (nl, r, a, out) = run_inverter();
        let csv = to_csv(&r, &nl, &[a, out]).expect("traces recorded");
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_ns,a,out"));
        let first = lines.next().expect("data rows");
        assert_eq!(first.split(',').count(), 3);
        assert!(csv.lines().count() > 100);
    }

    #[test]
    fn csv_skips_unrecorded_nodes() {
        let (nl, r, a, _) = run_inverter();
        let ghost = nl.vdd();
        // vdd IS recorded (record=None records all); use a fake subset
        // check instead: only `a` requested.
        let csv = to_csv(&r, &nl, &[a]).unwrap();
        assert!(csv.starts_with("time_ns,a"));
        let _ = ghost;
    }

    #[test]
    fn csv_of_nothing_is_none() {
        let (nl, r, _, _) = run_inverter();
        assert!(to_csv(&r, &nl, &[]).is_none());
    }

    #[test]
    fn ascii_plot_shapes_and_labels() {
        let (nl, r, _, out) = run_inverter();
        let plot = ascii_plot(&r, &nl, out, 60, 12).expect("plottable");
        assert!(plot.starts_with("out ["));
        // 12 rows plus the header.
        assert_eq!(plot.lines().count(), 13);
        assert!(plot.contains('*'));
    }

    #[test]
    fn ascii_plot_degenerate_sizes() {
        let (nl, r, _, out) = run_inverter();
        assert!(ascii_plot(&r, &nl, out, 0, 10).is_none());
        assert!(ascii_plot(&r, &nl, out, 10, 0).is_none());
    }
}
