//! The explicit transient integrator.
//!
//! Node voltages evolve by `C·dV/dt = −Σ I_out` with device currents from
//! the level-1 model. Integration is forward Euler with automatic
//! sub-stepping whenever any node would move more than
//! [`SimOptions::dv_max`] in one step, which keeps the explicit scheme
//! stable even around strong super-buffer drivers on tiny nodes. A small
//! floor capacitance on every free node (real nodes always have parasitic
//! capacitance) bounds the stiffness.

use std::collections::HashMap;

use tv_netlist::{Netlist, NodeId};

use crate::model::device_current;
use crate::stimulus::Stimulus;
use crate::waveform::Trace;

/// Time-integration scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Forward Euler (first order). The default: the technology's
    /// resistance calibration was performed against it.
    #[default]
    Euler,
    /// Heun's method (explicit trapezoidal, second order): roughly the
    /// same cost per step as two Euler steps with far smaller error —
    /// use it to check Euler's convergence.
    Heun,
}

/// Integrator configuration.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Nominal time step, ns.
    pub dt: f64,
    /// Simulation end time, ns.
    pub t_stop: f64,
    /// Pre-roll with stimuli frozen at t = 0 to reach a quiescent state
    /// before the transient proper, ns.
    pub settle: f64,
    /// Largest voltage change allowed per (sub-)step, V; steps exceeding it
    /// are subdivided.
    pub dv_max: f64,
    /// Floor capacitance added to every free node, pF.
    pub c_floor: f64,
    /// Record every `record_stride`-th step (1 = every step).
    pub record_stride: usize,
    /// Nodes to record; `None` records every node.
    pub record: Option<Vec<NodeId>>,
    /// Integration scheme.
    pub method: Method,
}

impl SimOptions {
    /// Sensible defaults for a transient of the given duration: 0.5 ps
    /// steps, 10 ns settle, every node recorded at ≤ 4000 samples.
    pub fn for_duration(t_stop: f64) -> Self {
        let dt = 5e-4;
        let steps = (t_stop / dt).ceil() as usize;
        SimOptions {
            dt,
            t_stop,
            settle: 200.0,
            dv_max: 0.05,
            c_floor: 1e-3,
            record_stride: (steps / 4000).max(1),
            record: None,
            method: Method::Euler,
        }
    }
}

/// Recorded result of a transient run.
#[derive(Debug, Clone)]
pub struct SimResult {
    traces: HashMap<NodeId, Trace>,
    final_v: Vec<f64>,
}

impl SimResult {
    /// The recorded trace of a node, if it was recorded.
    pub fn trace(&self, node: NodeId) -> Option<&Trace> {
        self.traces.get(&node)
    }

    /// Final voltage of every node, indexed by node id.
    pub fn final_voltages(&self) -> &[f64] {
        &self.final_v
    }
}

/// A transient simulation of one netlist under one stimulus.
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    stimulus: Stimulus,
    options: SimOptions,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulation. Nothing runs until [`Simulator::run`].
    pub fn new(netlist: &'a Netlist, stimulus: Stimulus, options: SimOptions) -> Self {
        Simulator {
            netlist,
            stimulus,
            options,
        }
    }

    /// Runs the transient and returns the recorded traces.
    pub fn run(&self) -> SimResult {
        let nl = self.netlist;
        let n = nl.node_count();
        let opts = &self.options;

        let driven: Vec<bool> = {
            let mut d = vec![false; n];
            for node in self.stimulus.driven_nodes() {
                d[node.index()] = true;
            }
            d
        };

        // Effective capacitance of free nodes.
        let caps: Vec<f64> = nl
            .node_ids()
            .map(|id| nl.node_cap(id) + opts.c_floor)
            .collect();

        // Initial state: driven nodes at their t=0 value, free nodes at 0.
        let mut v = vec![0.0; n];
        for id in nl.node_ids() {
            if let Some(val) = self.stimulus.value(id, 0.0) {
                v[id.index()] = val;
            }
        }

        let record_set: Vec<NodeId> = match &opts.record {
            Some(nodes) => nodes.clone(),
            None => nl.node_ids().collect(),
        };
        let mut traces: HashMap<NodeId, Trace> =
            record_set.iter().map(|&id| (id, Trace::new())).collect();

        let mut i_out = vec![0.0; n];

        // Settle: march with stimuli frozen at t = 0. A coarser step is
        // fine here — the sub-stepping in `step` guards stability, and
        // only the final quiescent point matters.
        let settle_dt = opts.dt * 10.0;
        let settle_steps = (opts.settle / settle_dt).ceil() as usize;
        for _ in 0..settle_steps {
            self.step(&driven, &caps, &mut v, &mut i_out, settle_dt, None);
        }

        // Transient proper.
        let steps = (opts.t_stop / opts.dt).ceil() as usize;
        let mut t = 0.0;
        for k in 0..=steps {
            if k % opts.record_stride == 0 {
                for &id in &record_set {
                    traces
                        .get_mut(&id)
                        .expect("trace exists")
                        .push(t, v[id.index()]);
                }
            }
            if k == steps {
                break;
            }
            // Update driven nodes to their value at the *end* of the step.
            let t_next = t + opts.dt;
            for id in nl.node_ids() {
                if let Some(val) = self.stimulus.value(id, t_next) {
                    v[id.index()] = val;
                }
            }
            self.step(&driven, &caps, &mut v, &mut i_out, opts.dt, None);
            t = t_next;
        }

        SimResult { traces, final_v: v }
    }

    /// Accumulates the net current flowing *out* of every node into
    /// `i_out` under the voltages `v`.
    fn currents(&self, v: &[f64], i_out: &mut [f64]) {
        let nl = self.netlist;
        i_out.fill(0.0);
        for dref in nl.devices() {
            let d = dref.device;
            let i = device_current(
                d,
                v[d.gate().index()],
                v[d.source().index()],
                v[d.drain().index()],
                nl.tech(),
            );
            // Positive i flows drain → source: out of drain, into source.
            i_out[d.drain().index()] += i;
            i_out[d.source().index()] -= i;
        }
    }

    /// One integration step of length `dt` (scheme per options),
    /// recursively subdivided while any free node would move more than
    /// `dv_max`.
    fn step(
        &self,
        driven: &[bool],
        caps: &[f64],
        v: &mut [f64],
        i_out: &mut [f64],
        dt: f64,
        depth: Option<u32>,
    ) {
        let depth = depth.unwrap_or(0);
        self.currents(v, i_out);

        let mut worst_dv = 0.0_f64;
        for idx in 0..v.len() {
            if driven[idx] {
                continue;
            }
            let dv = -dt * i_out[idx] / caps[idx];
            worst_dv = worst_dv.max(dv.abs());
        }

        if worst_dv > self.options.dv_max && depth < 12 {
            let half = dt / 2.0;
            self.step(driven, caps, v, i_out, half, Some(depth + 1));
            self.step(driven, caps, v, i_out, half, Some(depth + 1));
            return;
        }

        match self.options.method {
            Method::Euler => {
                for idx in 0..v.len() {
                    if driven[idx] {
                        continue;
                    }
                    v[idx] -= dt * i_out[idx] / caps[idx];
                }
            }
            Method::Heun => {
                // Predictor (Euler), then average the slopes.
                let k1: Vec<f64> = i_out.to_vec();
                let mut predicted = v.to_vec();
                for idx in 0..v.len() {
                    if driven[idx] {
                        continue;
                    }
                    predicted[idx] -= dt * k1[idx] / caps[idx];
                }
                self.currents(&predicted, i_out);
                for idx in 0..v.len() {
                    if driven[idx] {
                        continue;
                    }
                    v[idx] -= dt * 0.5 * (k1[idx] + i_out[idx]) / caps[idx];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Waveform;
    use tv_netlist::{NetlistBuilder, Tech};

    #[test]
    fn heun_agrees_with_euler_at_fine_steps() {
        let (nl, a, out) = inverter_netlist(0.1);
        let delay_with = |method: Method| {
            let mut stim = Stimulus::new(&nl);
            stim.drive(a, Waveform::step_up(1.0, 5.0));
            let mut opts = SimOptions::for_duration(20.0);
            opts.method = method;
            let r = Simulator::new(&nl, stim, opts).run();
            r.trace(out)
                .unwrap()
                .crossing_down(2.5, 1.0)
                .expect("falls")
        };
        let euler = delay_with(Method::Euler);
        let heun = delay_with(Method::Heun);
        let err = (euler - heun).abs() / heun;
        assert!(err < 0.02, "schemes disagree: euler {euler} heun {heun}");
    }

    #[test]
    fn heun_converges_faster_than_euler_at_coarse_steps() {
        let (nl, a, out) = inverter_netlist(0.1);
        let delay_with = |method: Method, dt: f64| {
            let mut stim = Stimulus::new(&nl);
            stim.drive(a, Waveform::step_up(1.0, 5.0));
            let mut opts = SimOptions::for_duration(20.0);
            opts.method = method;
            opts.dt = dt;
            opts.dv_max = 5.0; // disable sub-stepping: measure the scheme
            let r = Simulator::new(&nl, stim, opts).run();
            r.trace(out)
                .unwrap()
                .crossing_down(2.5, 1.0)
                .expect("falls")
        };
        let reference = delay_with(Method::Heun, 1e-4);
        let coarse = 0.02;
        let euler_err = (delay_with(Method::Euler, coarse) - reference).abs();
        let heun_err = (delay_with(Method::Heun, coarse) - reference).abs();
        assert!(
            heun_err < euler_err,
            "heun {heun_err} should beat euler {euler_err} at dt={coarse}"
        );
    }

    fn inverter_netlist(load_pf: f64) -> (Netlist, NodeId, NodeId) {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("i", a, out);
        b.add_cap(out, load_pf).unwrap();
        let nl = b.finish().unwrap();
        let a = nl.node_by_name("a").unwrap();
        let out = nl.node_by_name("out").unwrap();
        (nl, a, out)
    }

    #[test]
    fn inverter_inverts_dc() {
        let (nl, a, out) = inverter_netlist(0.05);
        let mut stim = Stimulus::new(&nl);
        stim.drive(a, Waveform::Const(0.0));
        let r = Simulator::new(&nl, stim, SimOptions::for_duration(5.0)).run();
        // Input low: output settles high (full VDD through depletion load).
        let v_out = r.final_voltages()[out.index()];
        assert!(v_out > 4.5, "output was {v_out}");

        let mut stim = Stimulus::new(&nl);
        stim.drive(a, Waveform::Const(5.0));
        let r = Simulator::new(&nl, stim, SimOptions::for_duration(5.0)).run();
        // Input high: ratioed low level, well under the switching threshold.
        let v_out = r.final_voltages()[out.index()];
        assert!(v_out < 1.5, "output was {v_out}");
        assert!(v_out > 0.0, "ratioed logic low is not exactly zero");
    }

    #[test]
    fn inverter_fall_faster_than_rise() {
        let (nl, a, out) = inverter_netlist(0.1);
        // Falling output: input steps up.
        let mut stim = Stimulus::new(&nl);
        stim.drive(a, Waveform::step_up(1.0, 5.0));
        let r = Simulator::new(&nl, stim, SimOptions::for_duration(30.0)).run();
        let fall = r
            .trace(out)
            .unwrap()
            .crossing_down(2.5, 1.0)
            .expect("output must fall")
            - 1.0;

        // Rising output: input steps down.
        let mut stim = Stimulus::new(&nl);
        stim.drive(a, Waveform::step_down(1.0, 5.0));
        let r = Simulator::new(&nl, stim, SimOptions::for_duration(30.0)).run();
        let rise = r
            .trace(out)
            .unwrap()
            .crossing_up(2.5, 1.0)
            .expect("output must rise")
            - 1.0;

        assert!(
            rise > 2.0 * fall,
            "ratioed nMOS rise ({rise} ns) must be much slower than fall ({fall} ns)"
        );
    }

    #[test]
    fn pass_transistor_charges_to_degraded_high() {
        let tech = Tech::nmos4um();
        let mut b = NetlistBuilder::new(tech.clone());
        let d = b.input("d");
        let g = b.input("g");
        let s = b.node("s");
        b.pass("p", g, d, s);
        b.add_cap(s, 0.05).unwrap();
        let nl = b.finish().unwrap();
        let s = nl.node_by_name("s").unwrap();
        let mut stim = Stimulus::new(&nl);
        stim.drive(nl.node_by_name("d").unwrap(), Waveform::Const(5.0));
        stim.drive(nl.node_by_name("g").unwrap(), Waveform::Const(5.0));
        let r = Simulator::new(&nl, stim, SimOptions::for_duration(50.0)).run();
        let v = r.final_voltages()[s.index()];
        let expect = tech.degraded_high();
        assert!(
            (v - expect).abs() < 0.15,
            "storage node reached {v} V, expected ≈ {expect} V"
        );
    }

    #[test]
    fn heavier_load_is_slower() {
        let delays: Vec<f64> = [0.05, 0.4]
            .iter()
            .map(|&load| {
                let (nl, a, out) = inverter_netlist(load);
                let mut stim = Stimulus::new(&nl);
                stim.drive(a, Waveform::step_up(1.0, 5.0));
                let r = Simulator::new(&nl, stim, SimOptions::for_duration(40.0)).run();
                r.trace(out).unwrap().crossing_down(2.5, 1.0).unwrap() - 1.0
            })
            .collect();
        assert!(delays[1] > 3.0 * delays[0]);
    }

    #[test]
    fn record_subset_limits_traces() {
        let (nl, a, out) = inverter_netlist(0.05);
        let mut stim = Stimulus::new(&nl);
        stim.drive(a, Waveform::Const(0.0));
        let mut opts = SimOptions::for_duration(2.0);
        opts.record = Some(vec![out]);
        let r = Simulator::new(&nl, stim, opts).run();
        assert!(r.trace(out).is_some());
        assert!(r.trace(a).is_none());
    }

    #[test]
    fn traces_are_time_ordered_and_nonempty() {
        let (nl, a, out) = inverter_netlist(0.05);
        let mut stim = Stimulus::new(&nl);
        stim.drive(a, Waveform::step_up(1.0, 5.0));
        let r = Simulator::new(&nl, stim, SimOptions::for_duration(5.0)).run();
        let tr = r.trace(out).unwrap();
        assert!(tr.len() > 100);
        let times = tr.times();
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
