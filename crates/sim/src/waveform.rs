//! Recorded voltage traces and crossing-time queries.

/// A sampled voltage waveform: strictly increasing times (ns) with the
/// voltage (V) at each sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    t: Vec<f64>,
    v: Vec<f64>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` does not advance monotonically.
    pub fn push(&mut self, t: f64, v: f64) {
        debug_assert!(
            self.t.last().is_none_or(|&last| t > last),
            "trace samples must advance in time"
        );
        self.t.push(t);
        self.v.push(v);
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether the trace holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Sample times, ns.
    #[inline]
    pub fn times(&self) -> &[f64] {
        &self.t
    }

    /// Sample voltages, V.
    #[inline]
    pub fn voltages(&self) -> &[f64] {
        &self.v
    }

    /// The final voltage, or `None` for an empty trace.
    pub fn final_voltage(&self) -> Option<f64> {
        self.v.last().copied()
    }

    /// Voltage at time `t` by linear interpolation (clamped to the ends).
    pub fn sample(&self, t: f64) -> Option<f64> {
        if self.t.is_empty() {
            return None;
        }
        if t <= self.t[0] {
            return Some(self.v[0]);
        }
        if t >= *self.t.last().unwrap() {
            return self.final_voltage();
        }
        let idx = self.t.partition_point(|&x| x < t);
        let (t0, t1) = (self.t[idx - 1], self.t[idx]);
        let (v0, v1) = (self.v[idx - 1], self.v[idx]);
        Some(v0 + (v1 - v0) * (t - t0) / (t1 - t0))
    }

    /// First time at or after `after` when the trace crosses `threshold`
    /// going **up**, by linear interpolation. `None` if it never does.
    pub fn crossing_up(&self, threshold: f64, after: f64) -> Option<f64> {
        self.crossing(threshold, after, true)
    }

    /// First time at or after `after` when the trace crosses `threshold`
    /// going **down**.
    pub fn crossing_down(&self, threshold: f64, after: f64) -> Option<f64> {
        self.crossing(threshold, after, false)
    }

    fn crossing(&self, threshold: f64, after: f64, rising: bool) -> Option<f64> {
        for i in 1..self.t.len() {
            if self.t[i] < after {
                continue;
            }
            let (v0, v1) = (self.v[i - 1], self.v[i]);
            let crossed = if rising {
                v0 < threshold && v1 >= threshold
            } else {
                v0 > threshold && v1 <= threshold
            };
            if crossed {
                let (t0, t1) = (self.t[i - 1], self.t[i]);
                let frac = (threshold - v0) / (v1 - v0);
                let t = t0 + frac * (t1 - t0);
                if t >= after {
                    return Some(t);
                }
            }
        }
        None
    }

    /// 10–90% transition time of the first monotone swing after `after`
    /// between `v_low` and `v_high`, ns. Returns `None` if the swing never
    /// completes. `rising` selects the direction.
    pub fn transition_time(
        &self,
        v_low: f64,
        v_high: f64,
        after: f64,
        rising: bool,
    ) -> Option<f64> {
        let swing = v_high - v_low;
        let (p10, p90) = (v_low + 0.1 * swing, v_low + 0.9 * swing);
        if rising {
            let t10 = self.crossing_up(p10, after)?;
            let t90 = self.crossing_up(p90, t10)?;
            Some(t90 - t10)
        } else {
            let t90 = self.crossing_down(p90, after)?;
            let t10 = self.crossing_down(p10, t90)?;
            Some(t10 - t90)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_trace() -> Trace {
        // 0 V at t=0 rising linearly to 5 V at t=5.
        let mut tr = Trace::new();
        for i in 0..=50 {
            let t = i as f64 * 0.1;
            tr.push(t, t.min(5.0));
        }
        tr
    }

    #[test]
    fn sample_interpolates_and_clamps() {
        let tr = ramp_trace();
        assert!((tr.sample(2.55).unwrap() - 2.55).abs() < 1e-9);
        assert_eq!(tr.sample(-1.0), Some(0.0));
        assert_eq!(tr.sample(99.0), tr.final_voltage());
        assert_eq!(Trace::new().sample(0.0), None);
    }

    #[test]
    fn crossing_up_finds_interpolated_time() {
        let tr = ramp_trace();
        let t = tr.crossing_up(2.5, 0.0).unwrap();
        assert!((t - 2.5).abs() < 1e-9);
    }

    #[test]
    fn crossing_down_on_falling_trace() {
        let mut tr = Trace::new();
        for i in 0..=50 {
            let t = i as f64 * 0.1;
            tr.push(t, 5.0 - t.min(5.0));
        }
        let t = tr.crossing_down(2.5, 0.0).unwrap();
        assert!((t - 2.5).abs() < 1e-9);
        assert_eq!(tr.crossing_up(2.5, 0.0), None);
    }

    #[test]
    fn crossing_respects_after() {
        let mut tr = Trace::new();
        // Two rising crossings of 2.5: at t≈1 and t≈5.
        let shape = [0.0, 5.0, 0.0, 0.0, 0.0, 5.0, 5.0];
        for (i, &v) in shape.iter().enumerate() {
            tr.push(i as f64, v);
        }
        let first = tr.crossing_up(2.5, 0.0).unwrap();
        let second = tr.crossing_up(2.5, 2.0).unwrap();
        assert!(first < 1.0 + 1e-9);
        assert!(second > 4.0);
    }

    #[test]
    fn transition_time_of_linear_ramp() {
        let tr = ramp_trace();
        // 10%..90% of a 0→5 V linear 5 ns ramp is 4 ns.
        let tt = tr.transition_time(0.0, 5.0, 0.0, true).unwrap();
        assert!((tt - 4.0).abs() < 1e-9);
    }

    #[test]
    fn never_crossing_returns_none() {
        let tr = ramp_trace();
        assert_eq!(tr.crossing_up(7.0, 0.0), None);
        assert_eq!(tr.transition_time(0.0, 12.0, 0.0, true), None);
    }
}
