//! Delay and transition-time measurements on simulation results — the
//! quantities TV's evaluation tables compare against SPICE.

use tv_netlist::{NodeId, Tech};

use crate::engine::SimResult;

/// Which way an edge goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Low-to-high crossing.
    Rising,
    /// High-to-low crossing.
    Falling,
}

/// 50%-to-50% delay from the first switching edge on `input` to the first
/// subsequent switching edge on `output`, ns. Both nodes must have been
/// recorded. Returns `None` if either never crosses the threshold.
///
/// This is the convention of every delay table of the era: measure from
/// the input's crossing of VDD/2 to the output's crossing of VDD/2.
pub fn delay_50(result: &SimResult, input: NodeId, output: NodeId, tech: &Tech) -> Option<f64> {
    let vth = tech.switch_voltage();
    let t_in = first_crossing(result, input, vth, 0.0)?.0;
    let (t_out, _) = first_crossing(result, output, vth, t_in)?;
    Some(t_out - t_in)
}

/// Like [`delay_50`] but demanding specific edge directions, which
/// disambiguates measurements when nodes toggle more than once.
pub fn delay_50_edges(
    result: &SimResult,
    input: NodeId,
    in_edge: Edge,
    output: NodeId,
    out_edge: Edge,
    tech: &Tech,
) -> Option<f64> {
    let vth = tech.switch_voltage();
    let tr_in = result.trace(input)?;
    let t_in = match in_edge {
        Edge::Rising => tr_in.crossing_up(vth, 0.0)?,
        Edge::Falling => tr_in.crossing_down(vth, 0.0)?,
    };
    let tr_out = result.trace(output)?;
    let t_out = match out_edge {
        Edge::Rising => tr_out.crossing_up(vth, t_in)?,
        Edge::Falling => tr_out.crossing_down(vth, t_in)?,
    };
    Some(t_out - t_in)
}

/// First crossing of `threshold` on `node` at or after `after`, in either
/// direction, returning the time and the edge direction.
pub fn first_crossing(
    result: &SimResult,
    node: NodeId,
    threshold: f64,
    after: f64,
) -> Option<(f64, Edge)> {
    let tr = result.trace(node)?;
    let up = tr.crossing_up(threshold, after);
    let down = tr.crossing_down(threshold, after);
    match (up, down) {
        (Some(u), Some(d)) if u <= d => Some((u, Edge::Rising)),
        (Some(_), Some(d)) => Some((d, Edge::Falling)),
        (Some(u), None) => Some((u, Edge::Rising)),
        (None, Some(d)) => Some((d, Edge::Falling)),
        (None, None) => None,
    }
}

/// 10–90% transition time of the first swing on `node` after `after`, ns.
/// The swing is measured against the full rail span of the technology.
pub fn transition_time(
    result: &SimResult,
    node: NodeId,
    edge: Edge,
    after: f64,
    tech: &Tech,
) -> Option<f64> {
    result
        .trace(node)?
        .transition_time(0.0, tech.vdd, after, edge == Edge::Rising)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimOptions, Simulator};
    use crate::stimulus::{Stimulus, Waveform};
    use tv_netlist::{NetlistBuilder, Tech};

    fn two_inverters() -> (tv_netlist::Netlist, NodeId, NodeId, NodeId) {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let mid = b.node("mid");
        let out = b.output("out");
        b.inverter("i1", a, mid);
        b.inverter("i2", mid, out);
        b.add_cap(out, 0.05).unwrap();
        let nl = b.finish().unwrap();
        let a = nl.node_by_name("a").unwrap();
        let mid = nl.node_by_name("mid").unwrap();
        let out = nl.node_by_name("out").unwrap();
        (nl, a, mid, out)
    }

    #[test]
    fn two_stage_delay_exceeds_one_stage() {
        let tech = Tech::nmos4um();
        let (nl, a, mid, out) = two_inverters();
        let mut stim = Stimulus::new(&nl);
        stim.drive(a, Waveform::step_up(1.0, tech.vdd));
        let r = Simulator::new(&nl, stim, SimOptions::for_duration(40.0)).run();
        let d_mid = delay_50(&r, a, mid, &tech).unwrap();
        let d_out = delay_50(&r, a, out, &tech).unwrap();
        assert!(d_mid > 0.0);
        assert!(d_out > d_mid);
    }

    #[test]
    fn edge_directed_delay_matches_physics() {
        let tech = Tech::nmos4um();
        let (nl, a, mid, out) = two_inverters();
        let mut stim = Stimulus::new(&nl);
        stim.drive(a, Waveform::step_up(1.0, tech.vdd));
        let r = Simulator::new(&nl, stim, SimOptions::for_duration(40.0)).run();
        // a rises → mid falls → out rises.
        let d1 = delay_50_edges(&r, a, Edge::Rising, mid, Edge::Falling, &tech).unwrap();
        let d2 = delay_50_edges(&r, a, Edge::Rising, out, Edge::Rising, &tech).unwrap();
        assert!(d1 > 0.0 && d2 > d1);
        // The wrong direction never happens.
        assert!(delay_50_edges(&r, a, Edge::Rising, mid, Edge::Rising, &tech).is_none());
    }

    #[test]
    fn transition_time_rise_slower_than_fall() {
        let tech = Tech::nmos4um();
        let (nl, a, mid, out) = two_inverters();
        let mut stim = Stimulus::new(&nl);
        stim.drive(a, Waveform::step_up(1.0, tech.vdd));
        let r = Simulator::new(&nl, stim, SimOptions::for_duration(60.0)).run();
        let fall_mid = transition_time(&r, mid, Edge::Falling, 1.0, &tech).unwrap();
        let rise_out = transition_time(&r, out, Edge::Rising, 1.0, &tech).unwrap();
        assert!(rise_out > fall_mid, "depletion-load rise must be slower");
    }

    #[test]
    fn missing_trace_returns_none() {
        let tech = Tech::nmos4um();
        let (nl, a, _mid, out) = two_inverters();
        let mut stim = Stimulus::new(&nl);
        stim.drive(a, Waveform::step_up(1.0, tech.vdd));
        let mut opts = SimOptions::for_duration(5.0);
        opts.record = Some(vec![a]);
        let r = Simulator::new(&nl, stim, opts).run();
        assert_eq!(delay_50(&r, a, out, &tech), None);
    }
}
