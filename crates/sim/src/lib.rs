//! Transient circuit simulation for nMOS netlists — the workspace's SPICE
//! substitute.
//!
//! The TV paper validated its static delay estimates against SPICE runs of
//! extracted critical paths. SPICE itself is unavailable here, so this
//! crate implements the minimum honest replacement: a nonlinear transient
//! simulator with
//!
//! * a **Shichman–Hodges level-1 MOS model** ([`model`]) covering both
//!   enhancement and depletion devices with symmetric channels (so pass
//!   transistors and their degraded-high behavior come out naturally);
//! * an **explicit integrator** ([`engine`]) over the extracted node
//!   capacitances, with per-step voltage-change limiting for stability;
//! * **waveform sources** ([`stimulus`]): step, ramp, pulse, and two-phase
//!   clock generators;
//! * **measurement helpers** ([`measure`]): 50% crossing delays and
//!   10–90% transition times, the quantities the paper's tables compare;
//! * **exports** ([`export`]): CSV traces and terminal oscillograms;
//! * a **switch-level simulator** ([`switch`]): Bryant/MOSSIM-style
//!   ternary strength-based logic simulation with charge retention —
//!   ~10³× faster than the analog engine for functional questions.
//!
//! # Example
//!
//! Measure the falling delay of a standard inverter driving a 0.1 pF load:
//!
//! ```
//! use tv_netlist::{NetlistBuilder, Tech};
//! use tv_sim::{measure, Simulator, SimOptions, Stimulus, Waveform};
//!
//! # fn main() -> Result<(), tv_netlist::NetlistError> {
//! let tech = Tech::nmos4um();
//! let mut b = NetlistBuilder::new(tech.clone());
//! let a = b.input("a");
//! let out = b.output("out");
//! b.inverter("i", a, out);
//! b.add_cap(out, 0.1)?;
//! let nl = b.finish()?;
//!
//! let mut stim = Stimulus::new(&nl);
//! stim.drive(a, Waveform::step_up(1.0, tech.vdd)); // rise at t = 1 ns
//! let result = Simulator::new(&nl, stim, SimOptions::for_duration(20.0)).run();
//! let delay = measure::delay_50(&result, a, out, &tech).expect("output fell");
//! assert!(delay > 0.0 && delay < 5.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod export;
pub mod measure;
pub mod model;
pub mod stimulus;
pub mod switch;
pub mod waveform;

pub use engine::{Method, SimOptions, SimResult, Simulator};
pub use stimulus::{Stimulus, Waveform};
pub use waveform::Trace;
