//! Waveform sources driving inputs and clocks.

use std::collections::HashMap;

use tv_netlist::{Netlist, NodeId, NodeRole};

/// An analytically defined voltage waveform, volts as a function of ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Waveform {
    /// Constant voltage.
    Const(f64),
    /// Steps from `v0` to `v1` at `t0` (ideal edge).
    Step {
        /// Edge time, ns.
        t0: f64,
        /// Level before the edge, V.
        v0: f64,
        /// Level after the edge, V.
        v1: f64,
    },
    /// Linear ramp from `v0` (before `t0`) to `v1` (after `t1`).
    Ramp {
        /// Ramp start, ns.
        t0: f64,
        /// Ramp end, ns.
        t1: f64,
        /// Starting level, V.
        v0: f64,
        /// Final level, V.
        v1: f64,
    },
    /// Periodic pulse train: high `v1` for `width` ns starting at
    /// `t0 + k·period`, otherwise `v0`. Ideal edges.
    Pulse {
        /// First rising edge, ns.
        t0: f64,
        /// Repetition period, ns.
        period: f64,
        /// High time per period, ns.
        width: f64,
        /// Low level, V.
        v0: f64,
        /// High level, V.
        v1: f64,
    },
}

impl Waveform {
    /// A step from 0 V up to `vdd` at time `t0`.
    pub fn step_up(t0: f64, vdd: f64) -> Self {
        Waveform::Step {
            t0,
            v0: 0.0,
            v1: vdd,
        }
    }

    /// A step from `vdd` down to 0 V at time `t0`.
    pub fn step_down(t0: f64, vdd: f64) -> Self {
        Waveform::Step {
            t0,
            v0: vdd,
            v1: 0.0,
        }
    }

    /// The waveform's value at time `t` ns, volts.
    pub fn value(&self, t: f64) -> f64 {
        match *self {
            Waveform::Const(v) => v,
            Waveform::Step { t0, v0, v1 } => {
                if t < t0 {
                    v0
                } else {
                    v1
                }
            }
            Waveform::Ramp { t0, t1, v0, v1 } => {
                if t <= t0 {
                    v0
                } else if t >= t1 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
            Waveform::Pulse {
                t0,
                period,
                width,
                v0,
                v1,
            } => {
                if t < t0 {
                    return v0;
                }
                let phase = (t - t0) % period;
                if phase < width {
                    v1
                } else {
                    v0
                }
            }
        }
    }
}

/// The set of externally driven nodes and their waveforms.
///
/// Rails are always driven (VDD to the supply, GND to zero); any other
/// node can be attached to a [`Waveform`] with [`Stimulus::drive`].
/// Undriven inputs idle at 0 V unless given a waveform.
#[derive(Debug, Clone)]
pub struct Stimulus {
    waveforms: HashMap<NodeId, Waveform>,
}

impl Stimulus {
    /// Creates a stimulus for a netlist: rails driven, everything else
    /// free.
    pub fn new(netlist: &Netlist) -> Self {
        let mut waveforms = HashMap::new();
        waveforms.insert(netlist.vdd(), Waveform::Const(netlist.tech().vdd));
        waveforms.insert(netlist.gnd(), Waveform::Const(0.0));
        Stimulus { waveforms }
    }

    /// Attaches a waveform to a node, replacing any previous one. The node
    /// becomes voltage-driven for the whole simulation.
    pub fn drive(&mut self, node: NodeId, w: Waveform) -> &mut Self {
        self.waveforms.insert(node, w);
        self
    }

    /// Drives both phases of a two-phase non-overlapping clock: φ1 high
    /// during `[0, phase_width)` of each cycle, φ2 high during
    /// `[phase_width + gap, cycle − gap)`, with `gap` of non-overlap
    /// between them. Clock nodes are found by their [`NodeRole::Clock`]
    /// phase index.
    pub fn drive_two_phase(
        &mut self,
        netlist: &Netlist,
        cycle: f64,
        phase_width: f64,
        gap: f64,
    ) -> &mut Self {
        let vdd = netlist.tech().vdd;
        for &(node, phase) in netlist.clocks() {
            let w = match phase {
                0 => Waveform::Pulse {
                    t0: 0.0,
                    period: cycle,
                    width: phase_width,
                    v0: 0.0,
                    v1: vdd,
                },
                _ => Waveform::Pulse {
                    t0: phase_width + gap,
                    period: cycle,
                    width: cycle - phase_width - 2.0 * gap,
                    v0: 0.0,
                    v1: vdd,
                },
            };
            self.waveforms.insert(node, w);
        }
        self
    }

    /// The waveform driving `node`, if any.
    pub fn waveform(&self, node: NodeId) -> Option<&Waveform> {
        self.waveforms.get(&node)
    }

    /// Iterates over all driven nodes.
    pub fn driven_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.waveforms.keys().copied()
    }

    /// Voltage of a driven node at time `t`, or `None` if the node is free.
    pub fn value(&self, node: NodeId, t: f64) -> Option<f64> {
        self.waveforms.get(&node).map(|w| w.value(t))
    }

    /// Verifies all primary inputs are driven, returning the names of any
    /// that are not — running with floating inputs is usually a test bug.
    pub fn undriven_inputs(&self, netlist: &Netlist) -> Vec<String> {
        netlist
            .node_ids()
            .filter(|&n| {
                matches!(netlist.node(n).role(), NodeRole::Input | NodeRole::Clock(_))
                    && !self.waveforms.contains_key(&n)
            })
            .map(|n| netlist.node_name(n).to_owned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_netlist::{NetlistBuilder, Tech};

    #[test]
    fn step_switches_at_edge() {
        let w = Waveform::step_up(2.0, 5.0);
        assert_eq!(w.value(1.999), 0.0);
        assert_eq!(w.value(2.0), 5.0);
        assert_eq!(w.value(10.0), 5.0);
    }

    #[test]
    fn ramp_interpolates() {
        let w = Waveform::Ramp {
            t0: 1.0,
            t1: 3.0,
            v0: 0.0,
            v1: 4.0,
        };
        assert_eq!(w.value(0.0), 0.0);
        assert!((w.value(2.0) - 2.0).abs() < 1e-12);
        assert_eq!(w.value(5.0), 4.0);
    }

    #[test]
    fn pulse_repeats() {
        let w = Waveform::Pulse {
            t0: 0.0,
            period: 10.0,
            width: 4.0,
            v0: 0.0,
            v1: 5.0,
        };
        assert_eq!(w.value(1.0), 5.0);
        assert_eq!(w.value(5.0), 0.0);
        assert_eq!(w.value(11.0), 5.0); // second cycle
        assert_eq!(w.value(-1.0), 0.0); // before start
    }

    #[test]
    fn rails_are_always_driven() {
        let nl = NetlistBuilder::new(Tech::nmos4um()).finish().unwrap();
        let s = Stimulus::new(&nl);
        assert_eq!(s.value(nl.vdd(), 0.0), Some(5.0));
        assert_eq!(s.value(nl.gnd(), 123.0), Some(0.0));
    }

    #[test]
    fn two_phase_clocks_never_overlap() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi1 = b.clock("phi1", 0);
        let phi2 = b.clock("phi2", 1);
        let nl = b.finish().unwrap();
        let mut s = Stimulus::new(&nl);
        s.drive_two_phase(&nl, 20.0, 8.0, 1.0);
        let mut t = 0.0;
        while t < 60.0 {
            let v1 = s.value(phi1, t).unwrap();
            let v2 = s.value(phi2, t).unwrap();
            assert!(
                !(v1 > 2.5 && v2 > 2.5),
                "phases overlap at t={t}: {v1} {v2}"
            );
            t += 0.05;
        }
    }

    #[test]
    fn undriven_inputs_are_reported() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        b.input("forgotten");
        let out = b.node("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let mut s = Stimulus::new(&nl);
        s.drive(a, Waveform::Const(0.0));
        assert_eq!(s.undriven_inputs(&nl), vec!["forgotten".to_string()]);
    }
}
