//! Electrical nodes (nets) and their user-declared roles.

use crate::intern::Symbol;

/// The role a node was declared with, as known *before* any analysis.
///
/// This is what a layout extractor or the designer supplies: which nets are
/// power rails, primary inputs/outputs, or clocks. Everything finer
/// (precharged, storage, bus, …) is *inferred* by `tv-flow` and lives there
/// as [`tv-flow`'s classification], not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodeRole {
    /// An ordinary internal net (the default).
    #[default]
    Internal,
    /// The positive supply rail.
    Vdd,
    /// The ground rail.
    Gnd,
    /// A primary input: driven from off-chip, a signal-flow source.
    Input,
    /// A primary output: observed off-chip, a signal-flow sink.
    Output,
    /// A clock net, with the index of the phase that drives it
    /// (0 = φ1, 1 = φ2 in a two-phase scheme).
    Clock(u8),
}

impl NodeRole {
    /// Whether this node is one of the two power rails.
    #[inline]
    pub fn is_rail(self) -> bool {
        matches!(self, NodeRole::Vdd | NodeRole::Gnd)
    }

    /// Whether this node is externally driven (rail, input, or clock) and
    /// therefore a *source* of signal flow rather than something computed
    /// on chip.
    #[inline]
    pub fn is_external_source(self) -> bool {
        matches!(
            self,
            NodeRole::Vdd | NodeRole::Gnd | NodeRole::Input | NodeRole::Clock(_)
        )
    }
}

/// An electrical node: a net with a name, a role, and extracted capacitance.
///
/// The name is an interned [`Symbol`]; resolve it to text through the
/// netlist that owns the node ([`crate::Netlist::node_name`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    pub(crate) name: Symbol,
    pub(crate) role: NodeRole,
    /// Explicit (wiring/extra) capacitance attached to this node, pF.
    /// Device gate and diffusion capacitance is accounted separately by
    /// [`crate::CapModel`] so geometry edits don't double-count.
    pub(crate) extra_cap: f64,
}

impl Node {
    pub(crate) fn new(name: Symbol, role: NodeRole) -> Self {
        Node {
            name,
            role,
            extra_cap: 0.0,
        }
    }

    /// The node's interned name. Resolve it to a string with
    /// [`crate::Netlist::node_name`] (or the owning interner).
    #[inline]
    pub fn symbol(&self) -> Symbol {
        self.name
    }

    /// The declared role of this node.
    #[inline]
    pub fn role(&self) -> NodeRole {
        self.role
    }

    /// Explicit wiring capacitance attached to this node, pF (not
    /// including device gate/diffusion capacitance).
    #[inline]
    pub fn extra_cap(&self) -> f64 {
        self.extra_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_role_is_internal() {
        assert_eq!(NodeRole::default(), NodeRole::Internal);
    }

    #[test]
    fn rails_are_rails() {
        assert!(NodeRole::Vdd.is_rail());
        assert!(NodeRole::Gnd.is_rail());
        assert!(!NodeRole::Input.is_rail());
        assert!(!NodeRole::Clock(0).is_rail());
    }

    #[test]
    fn external_sources_include_inputs_and_clocks() {
        assert!(NodeRole::Input.is_external_source());
        assert!(NodeRole::Clock(1).is_external_source());
        assert!(NodeRole::Vdd.is_external_source());
        assert!(!NodeRole::Output.is_external_source());
        assert!(!NodeRole::Internal.is_external_source());
    }

    #[test]
    fn node_carries_symbol_and_zero_initial_cap() {
        let n = Node::new(Symbol::from_index(7), NodeRole::Internal);
        assert_eq!(n.symbol().index(), 7);
        assert_eq!(n.extra_cap(), 0.0);
    }
}
