//! The immutable, fully-indexed netlist produced by [`crate::NetlistBuilder`].

use crate::cap::CapModel;
use crate::intern::Interner;
use crate::{Device, DeviceId, Node, NodeId, NodeRole, Tech};

/// A device together with its id, as yielded by [`Netlist::devices`].
#[derive(Debug, Clone, Copy)]
pub struct DeviceRef<'a> {
    /// The device's identifier.
    pub id: DeviceId,
    /// The device itself.
    pub device: &'a Device,
}

/// The devices incident on one node, split by how they touch it.
///
/// Returned by [`Netlist::node_devices`]; both slices are sorted by id.
#[derive(Debug, Clone, Copy)]
pub struct NodeDevices<'a> {
    /// Devices whose **gate** is this node (the node drives them).
    pub gated: &'a [DeviceId],
    /// Devices whose **channel** (source or drain) touches this node.
    pub channel: &'a [DeviceId],
}

/// An immutable transistor-level netlist with full connectivity indexes.
///
/// Construct one with [`crate::NetlistBuilder`] or by parsing the `.sim`
/// interchange format ([`crate::sim_format::parse`]). Node ids 0 and 1 are
/// always VDD and GND.
///
/// Node names live in a string [`Interner`]; the gate and channel
/// adjacency are compressed-sparse-row (one offsets array plus one flat
/// payload array each), so a whole netlist is a handful of flat
/// allocations regardless of node count.
///
/// # Example
///
/// ```
/// use tv_netlist::{NetlistBuilder, Tech};
///
/// # fn main() -> Result<(), tv_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(Tech::nmos4um());
/// let a = b.input("a");
/// let out = b.output("out");
/// b.inverter("inv0", a, out);
/// let nl = b.finish()?;
/// assert_eq!(nl.node_by_name("out"), Some(out));
/// // The input node sees one transistor gate:
/// assert_eq!(nl.node_devices(a).gated.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) tech: Tech,
    pub(crate) nodes: Vec<Node>,
    pub(crate) devices: Vec<Device>,
    /// Node names. Symbols and node ids are 1:1 (the builder's
    /// get-or-create keeps them dense and parallel), so `node_of_symbol`
    /// doubles as the name→node lookup table.
    pub(crate) names: Interner,
    pub(crate) node_of_symbol: Vec<NodeId>,
    /// CSR offsets/payload: devices whose gate is node `n` occupy
    /// `gate_devs[gate_starts[n] as usize..gate_starts[n + 1] as usize]`.
    pub(crate) gate_starts: Vec<u32>,
    pub(crate) gate_devs: Vec<DeviceId>,
    /// CSR offsets/payload: devices whose source or drain is node `n`.
    pub(crate) channel_starts: Vec<u32>,
    pub(crate) channel_devs: Vec<DeviceId>,
    /// Per node: total capacitance (extra + gate + diffusion), pF.
    pub(crate) total_cap: Vec<f64>,
    /// Role indexes, in id order — cached so per-phase analysis can read
    /// them without allocating.
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) clocks: Vec<(NodeId, u8)>,
}

impl Netlist {
    /// The technology this netlist was extracted in.
    #[inline]
    pub fn tech(&self) -> &Tech {
        &self.tech
    }

    /// The VDD rail node (always id 0).
    #[inline]
    pub fn vdd(&self) -> NodeId {
        NodeId(0)
    }

    /// The GND rail node (always id 1).
    #[inline]
    pub fn gnd(&self) -> NodeId {
        NodeId(1)
    }

    /// Number of nodes, including the two rails.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of transistors.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this netlist.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The name of the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this netlist.
    #[inline]
    pub fn node_name(&self, id: NodeId) -> &str {
        self.names.resolve(self.nodes[id.index()].name)
    }

    /// The device with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this netlist.
    #[inline]
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Looks a node up by name.
    #[inline]
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).map(|s| self.node_of_symbol[s.index()])
    }

    /// Iterates over all node ids in index order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Iterates over all devices with their ids.
    pub fn devices(&self) -> impl ExactSizeIterator<Item = DeviceRef<'_>> + '_ {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, device)| DeviceRef {
                id: DeviceId(i as u32),
                device,
            })
    }

    /// The devices incident on `node`, split into gate vs channel contact.
    #[inline]
    pub fn node_devices(&self, node: NodeId) -> NodeDevices<'_> {
        let i = node.index();
        NodeDevices {
            gated: &self.gate_devs[self.gate_starts[i] as usize..self.gate_starts[i + 1] as usize],
            channel: &self.channel_devs
                [self.channel_starts[i] as usize..self.channel_starts[i + 1] as usize],
        }
    }

    /// Total capacitance on `node` (wiring + gate + diffusion), pF.
    ///
    /// Rails report their (physically meaningless) attached capacitance;
    /// analysis code never charges or discharges a rail.
    #[inline]
    pub fn node_cap(&self, node: NodeId) -> f64 {
        self.total_cap[node.index()]
    }

    /// Sum of capacitance over all non-rail nodes, pF — a proxy for chip
    /// size used in reports.
    pub fn total_capacitance(&self) -> f64 {
        self.node_ids()
            .filter(|&n| !self.node(n).role().is_rail())
            .map(|n| self.node_cap(n))
            .sum()
    }

    /// All primary input nodes, in id order.
    #[inline]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// All primary output nodes, in id order.
    #[inline]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// All clock nodes with their phase index, in id order.
    #[inline]
    pub fn clocks(&self) -> &[(NodeId, u8)] {
        &self.clocks
    }

    /// Looks a device up by name. Linear scan — device names are not
    /// indexed (they are only needed for reports and interactive edits),
    /// so callers on a hot path should hold on to the [`DeviceId`].
    pub fn device_by_name(&self, name: &str) -> Option<DeviceId> {
        self.devices
            .iter()
            .position(|d| d.name() == name)
            .map(|i| DeviceId(i as u32))
    }

    /// Recomputes the per-node total capacitance table. Called by the
    /// builder on `finish`; exposed for callers that mutate capacitance via
    /// a rebuilt netlist.
    pub(crate) fn recompute_caps(&mut self) {
        let model = CapModel::new(&self.tech);
        self.total_cap = model.node_caps(&self.nodes, &self.devices);
    }

    /// Rebuilds every derived index — the gate/channel CSR adjacency, the
    /// role vectors, and the capacitance table — from `nodes` and
    /// `devices`. The builder's `finish` and the [`crate::Design`] edit
    /// API both funnel through here so a structurally edited netlist is
    /// indistinguishable from a freshly built one.
    pub(crate) fn rebuild_indexes(&mut self) {
        let n = self.nodes.len();

        // CSR adjacency in two counting passes: per-node degrees first,
        // prefix sums into offsets, then a cursor pass drops each device
        // into its slot. Device order within a node matches the old
        // nested-Vec push order (ascending device id) by construction.
        let mut gate_starts = vec![0u32; n + 1];
        let mut channel_starts = vec![0u32; n + 1];
        for d in &self.devices {
            gate_starts[d.gate().index() + 1] += 1;
            channel_starts[d.source().index() + 1] += 1;
            channel_starts[d.drain().index() + 1] += 1;
        }
        for i in 0..n {
            gate_starts[i + 1] += gate_starts[i];
            channel_starts[i + 1] += channel_starts[i];
        }
        let mut gate_devs = vec![DeviceId(0); gate_starts[n] as usize];
        let mut channel_devs = vec![DeviceId(0); channel_starts[n] as usize];
        let mut gate_cursor = gate_starts.clone();
        let mut channel_cursor = channel_starts.clone();
        for (i, d) in self.devices.iter().enumerate() {
            let id = DeviceId(i as u32);
            let g = &mut gate_cursor[d.gate().index()];
            gate_devs[*g as usize] = id;
            *g += 1;
            let s = &mut channel_cursor[d.source().index()];
            channel_devs[*s as usize] = id;
            *s += 1;
            let t = &mut channel_cursor[d.drain().index()];
            channel_devs[*t as usize] = id;
            *t += 1;
        }
        self.gate_starts = gate_starts;
        self.gate_devs = gate_devs;
        self.channel_starts = channel_starts;
        self.channel_devs = channel_devs;

        self.inputs.clear();
        self.outputs.clear();
        self.clocks.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            match node.role() {
                NodeRole::Input => self.inputs.push(id),
                NodeRole::Output => self.outputs.push(id),
                NodeRole::Clock(p) => self.clocks.push((id, p)),
                _ => {}
            }
        }
        self.recompute_caps();
    }

    /// Reopens the netlist as a builder for engineering-change-order
    /// edits: everything (nodes, roles, devices, explicit capacitance) is
    /// carried over, and new structure can be added before `finish`ing a
    /// new netlist. Node and device ids of existing elements are
    /// preserved.
    pub fn to_builder(&self) -> crate::NetlistBuilder {
        crate::NetlistBuilder::from_parts(
            self.tech.clone(),
            self.nodes.clone(),
            self.devices.clone(),
            self.names.clone(),
            self.node_of_symbol.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{NetlistBuilder, Tech};

    #[test]
    fn rails_have_fixed_ids() {
        let b = NetlistBuilder::new(Tech::nmos4um());
        let nl = b.finish().expect("empty netlist is valid");
        assert_eq!(nl.vdd().index(), 0);
        assert_eq!(nl.gnd().index(), 1);
        assert_eq!(nl.node_count(), 2);
        assert_eq!(nl.device_count(), 0);
    }

    #[test]
    fn adjacency_distinguishes_gate_from_channel() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("inv0", a, out);
        let nl = b.finish().unwrap();

        // Input `a` gates the pull-down, touches no channel.
        let at_a = nl.node_devices(a);
        assert_eq!(at_a.gated.len(), 1);
        assert!(at_a.channel.is_empty());

        // `out` touches both channels (pull-up and pull-down) and, being
        // load-connected, also the depletion gate.
        let at_out = nl.node_devices(out);
        assert_eq!(at_out.channel.len(), 2);
        assert_eq!(at_out.gated.len(), 1);
    }

    #[test]
    fn name_lookup_round_trips() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let x = b.node("x");
        let nl = b.finish().unwrap();
        assert_eq!(nl.node_by_name("x"), Some(x));
        assert_eq!(nl.node_by_name("y"), None);
        assert_eq!(nl.node_name(x), "x");
    }

    #[test]
    fn inputs_outputs_clocks_filters() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let q = b.output("q");
        let phi1 = b.clock("phi1", 0);
        let nl = b.finish().unwrap();
        assert_eq!(nl.inputs(), vec![a]);
        assert_eq!(nl.outputs(), vec![q]);
        assert_eq!(nl.clocks(), vec![(phi1, 0)]);
    }

    #[test]
    fn total_capacitance_excludes_rails() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("inv0", a, out);
        b.add_cap(out, 0.5).unwrap();
        let nl = b.finish().unwrap();
        let rail_cap = nl.node_cap(nl.vdd()) + nl.node_cap(nl.gnd());
        let sum: f64 = nl.node_ids().map(|n| nl.node_cap(n)).sum();
        assert!((nl.total_capacitance() - (sum - rail_cap)).abs() < 1e-12);
        assert!(nl.node_cap(out) >= 0.5);
    }
}
