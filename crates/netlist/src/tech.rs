//! Technology parameters for an nMOS process.
//!
//! The defaults model the 4 µm (λ = 2 µm) depletion-load nMOS process of
//! Mead & Conway's *Introduction to VLSI Systems*, which is the process the
//! Stanford MIPS chip analyzed in the TV paper was designed in.

/// Electrical and geometric parameters of an nMOS process.
///
/// All timing in this workspace derives from four numbers here: the
/// per-square channel resistances, the gate-oxide capacitance, and the
/// diffusion capacitance. The remaining fields parameterize the level-1
/// MOS model used by the transient simulator and the electrical rule
/// checks (pull-up/pull-down ratios).
///
/// # Example
///
/// ```
/// use tv_netlist::Tech;
///
/// let tech = Tech::nmos4um();
/// // A minimum-size enhancement device (W = L = 2λ = 4 µm) is one square:
/// assert_eq!(tech.channel_resistance(4.0, 4.0), tech.r_enh_sq);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tech {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Enhancement-device threshold voltage, volts (positive).
    pub vt_enh: f64,
    /// Depletion-device threshold voltage, volts (negative: conducts at
    /// V_GS = 0, which is what makes it usable as a pull-up load).
    pub vt_dep: f64,
    /// Process transconductance k′ = µ·C_ox, in mA/V².
    pub kprime: f64,
    /// Effective switching resistance of one square (W = L) of enhancement
    /// channel, kΩ. Multiplied by L/W for an actual device.
    pub r_enh_sq: f64,
    /// Effective pull-up resistance of one square of depletion channel
    /// operated as a load (gate tied to source), kΩ.
    pub r_dep_sq: f64,
    /// Gate-oxide capacitance, pF/µm².
    pub c_gate_per_um2: f64,
    /// Source/drain diffusion capacitance per µm of device width, pF/µm.
    pub c_diff_per_um: f64,
    /// Minimum feature size λ, µm. Minimum drawn gate is 2λ × 2λ.
    pub lambda: f64,
    /// Required pull-up/pull-down resistance ratio for an inverter driven
    /// by a restored (full-swing) signal. 4 in the standard process.
    pub ratio_restored: f64,
    /// Required ratio when any pull-down input arrives *through a pass
    /// transistor* (degraded high level VDD − V_T). 8 in the standard
    /// process.
    pub ratio_through_pass: f64,
    /// Logic threshold used when converting analog waveforms to switching
    /// times, as a fraction of VDD (0.5 = the 50% crossing convention).
    pub switch_fraction: f64,
    /// Multiplier on a pass transistor's channel resistance for **rising**
    /// transfers. With its gate at VDD the device starves as the output
    /// approaches VDD − V_T, so rising edges through pass devices are
    /// effectively slower than falling ones.
    pub pass_rise_factor: f64,
}

impl Tech {
    /// The canonical 4 µm (λ = 2 µm) nMOS process of the early 1980s.
    ///
    /// Values follow Mead & Conway: V_DD = 5 V, enhancement V_T ≈ +1 V,
    /// depletion V_T ≈ −3 V, ≈ 0.4 fF/µm² of gate oxide. The per-square
    /// effective resistances are *calibrated against the level-1 MOS
    /// model* this workspace simulates with: integrating C·dv/I(v) across
    /// the 50% crossing gives R_eff ≈ 0.48/k′ per square for both the
    /// enhancement pull-down (V_GS = V_DD) and the depletion load
    /// (V_GS = 0, |V_T| = 3 V) — so that `R·C·ln 2` is the simulator's
    /// t₅₀ on a single stage. For falls (enhancement pull-downs,
    /// discharging from V_DD) that integral gives ≈ 24 kΩ per square; for
    /// rises (depletion loads, charging from the ratioed low ≈ 0.3 V, a
    /// larger swing) it gives ≈ 35 kΩ per square. The shipped values carry
    /// a few percent of margin so the analyzer errs on the late side, the
    /// convention of every production timing verifier. Note the electrical
    /// rise/fall asymmetry of the standard 4:1 inverter therefore comes
    /// out near 5.5:1, matching the simulator, even though the drawn
    /// geometry ratio is 4:1.
    pub fn nmos4um() -> Self {
        Tech {
            vdd: 5.0,
            vt_enh: 1.0,
            vt_dep: -3.0,
            kprime: 0.02, // 20 µA/V²
            r_enh_sq: 26.0,
            r_dep_sq: 36.0,
            c_gate_per_um2: 4.0e-4, // 0.4 fF/µm²
            c_diff_per_um: 2.0e-4,  // 0.2 fF per µm of width per terminal
            lambda: 2.0,
            ratio_restored: 4.0,
            ratio_through_pass: 8.0,
            switch_fraction: 0.5,
            pass_rise_factor: 2.0,
        }
    }

    /// A hypothetical scaled 2 µm process (λ = 1 µm), for scaling studies.
    ///
    /// First-order constant-field scaling: resistances per square stay the
    /// same, areal capacitance doubles, diffusion capacitance per µm stays
    /// flat, voltages unchanged (nMOS did not scale voltage in practice).
    pub fn nmos2um() -> Self {
        Tech {
            lambda: 1.0,
            c_gate_per_um2: 8.0e-4,
            ..Self::nmos4um()
        }
    }

    /// Effective switching resistance of an enhancement channel of the
    /// given drawn width and length (µm): `r_enh_sq · L / W`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `w_um` is not strictly positive.
    #[inline]
    pub fn channel_resistance(&self, w_um: f64, l_um: f64) -> f64 {
        debug_assert!(w_um > 0.0, "device width must be positive");
        self.r_enh_sq * l_um / w_um
    }

    /// Effective pull-up resistance of a depletion load of the given drawn
    /// geometry: `r_dep_sq · L / W`.
    #[inline]
    pub fn load_resistance(&self, w_um: f64, l_um: f64) -> f64 {
        debug_assert!(w_um > 0.0, "device width must be positive");
        self.r_dep_sq * l_um / w_um
    }

    /// Gate capacitance of a device of the given drawn geometry, pF.
    #[inline]
    pub fn gate_capacitance(&self, w_um: f64, l_um: f64) -> f64 {
        self.c_gate_per_um2 * w_um * l_um
    }

    /// Diffusion capacitance contributed by one source/drain terminal of a
    /// device of the given width, pF.
    #[inline]
    pub fn diffusion_capacitance(&self, w_um: f64) -> f64 {
        self.c_diff_per_um * w_um
    }

    /// Minimum drawn gate dimension, µm (2λ).
    #[inline]
    pub fn min_size(&self) -> f64 {
        2.0 * self.lambda
    }

    /// The voltage of the logic switching threshold, volts.
    #[inline]
    pub fn switch_voltage(&self) -> f64 {
        self.vdd * self.switch_fraction
    }

    /// The degraded high level after passing through an nMOS pass
    /// transistor: V_DD − V_T(enh), volts.
    #[inline]
    pub fn degraded_high(&self) -> f64 {
        self.vdd - self.vt_enh
    }
}

impl Default for Tech {
    fn default() -> Self {
        Self::nmos4um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_4um_process() {
        assert_eq!(Tech::default(), Tech::nmos4um());
    }

    #[test]
    fn one_square_is_the_sheet_resistance() {
        let t = Tech::nmos4um();
        assert_eq!(t.channel_resistance(4.0, 4.0), t.r_enh_sq);
        assert_eq!(t.load_resistance(2.0, 2.0), t.r_dep_sq);
        assert!(t.r_dep_sq > t.r_enh_sq, "rises are slower per square");
    }

    #[test]
    fn resistance_scales_with_aspect_ratio() {
        let t = Tech::nmos4um();
        // Wider device: lower resistance.
        assert!(t.channel_resistance(8.0, 2.0) < t.channel_resistance(4.0, 2.0));
        // Longer device: higher resistance.
        assert!(t.channel_resistance(4.0, 8.0) > t.channel_resistance(4.0, 2.0));
        // A 4:1 load is four times one square.
        let four_to_one = t.load_resistance(2.0, 8.0);
        assert!((four_to_one - 4.0 * t.r_dep_sq).abs() < 1e-12);
    }

    #[test]
    fn standard_inverter_ratio_is_at_least_four() {
        // Pull-down W=4 L=2 (half a square), pull-up W=2 L=4 (two squares):
        // drawn ratio 4 (the Mead & Conway standard inverter); electrically
        // the rise calibration makes it ~5.5.
        let t = Tech::nmos4um();
        let r_pd = t.channel_resistance(4.0, 2.0);
        let r_pu = t.load_resistance(2.0, 4.0);
        let ratio = r_pu / r_pd;
        assert!((4.0..7.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn capacitances_are_positive_and_scale_with_area() {
        let t = Tech::nmos4um();
        let small = t.gate_capacitance(4.0, 4.0);
        let big = t.gate_capacitance(8.0, 4.0);
        assert!(small > 0.0);
        assert!((big - 2.0 * small).abs() < 1e-15);
        assert!(t.diffusion_capacitance(4.0) > 0.0);
    }

    #[test]
    fn degraded_high_is_vdd_minus_vt() {
        let t = Tech::nmos4um();
        assert!((t.degraded_high() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_process_has_denser_oxide() {
        let t4 = Tech::nmos4um();
        let t2 = Tech::nmos2um();
        assert!(t2.c_gate_per_um2 > t4.c_gate_per_um2);
        assert!(t2.min_size() < t4.min_size());
    }
}
