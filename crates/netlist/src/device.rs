//! Transistors: the only active element in an nMOS process.

use crate::{NodeId, Tech};

/// The two transistor species available in a depletion-load nMOS process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Normally-off device (V_T > 0): pull-downs and pass transistors.
    Enhancement,
    /// Normally-on device (V_T < 0): used with gate tied to source as the
    /// pull-up load of ratioed logic.
    Depletion,
}

impl DeviceKind {
    /// One-letter code used by the `.sim` interchange format
    /// (`e` = enhancement, `d` = depletion).
    #[inline]
    pub fn sim_code(self) -> char {
        match self {
            DeviceKind::Enhancement => 'e',
            DeviceKind::Depletion => 'd',
        }
    }
}

/// One of the three terminals of a MOS transistor.
///
/// Source and drain are symmetric in layout; which is which is a matter of
/// signal-flow direction, decided later by `tv-flow`. The netlist keeps the
/// extractor's arbitrary labeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminal {
    /// The insulated control terminal.
    Gate,
    /// First channel terminal (extractor's labeling; electrically
    /// interchangeable with [`Terminal::Drain`]).
    Source,
    /// Second channel terminal.
    Drain,
}

/// A single MOS transistor with drawn geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    pub(crate) name: String,
    pub(crate) kind: DeviceKind,
    pub(crate) gate: NodeId,
    pub(crate) source: NodeId,
    pub(crate) drain: NodeId,
    /// Drawn channel width, µm.
    pub(crate) w_um: f64,
    /// Drawn channel length, µm.
    pub(crate) l_um: f64,
}

impl Device {
    /// The device's name as given at construction.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enhancement or depletion.
    #[inline]
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The gate node.
    #[inline]
    pub fn gate(&self) -> NodeId {
        self.gate
    }

    /// The first channel terminal node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The second channel terminal node.
    #[inline]
    pub fn drain(&self) -> NodeId {
        self.drain
    }

    /// Drawn channel width, µm.
    #[inline]
    pub fn width(&self) -> f64 {
        self.w_um
    }

    /// Drawn channel length, µm.
    #[inline]
    pub fn length(&self) -> f64 {
        self.l_um
    }

    /// The node at the given terminal.
    #[inline]
    pub fn terminal(&self, t: Terminal) -> NodeId {
        match t {
            Terminal::Gate => self.gate,
            Terminal::Source => self.source,
            Terminal::Drain => self.drain,
        }
    }

    /// Given one channel terminal, the opposite one.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not one of this device's channel terminals, or
    /// if the channel is shorted (`source == drain` — rejected by netlist
    /// validation, so it cannot occur in a built [`crate::Netlist`]).
    #[inline]
    pub fn other_channel_end(&self, node: NodeId) -> NodeId {
        assert_ne!(
            self.source, self.drain,
            "device {} has a shorted channel",
            self.name
        );
        if node == self.source {
            self.drain
        } else if node == self.drain {
            self.source
        } else {
            panic!("{node} is not a channel terminal of device {}", self.name)
        }
    }

    /// Whether `node` is connected to this device's channel (source or
    /// drain, as opposed to the gate).
    #[inline]
    pub fn channel_touches(&self, node: NodeId) -> bool {
        node == self.source || node == self.drain
    }

    /// Effective switching resistance of this device in the given
    /// technology, kΩ. For depletion devices this is the load (pull-up)
    /// resistance; for enhancement devices the fully-on channel resistance.
    #[inline]
    pub fn resistance(&self, tech: &Tech) -> f64 {
        match self.kind {
            DeviceKind::Enhancement => tech.channel_resistance(self.w_um, self.l_um),
            DeviceKind::Depletion => tech.load_resistance(self.w_um, self.l_um),
        }
    }

    /// Gate capacitance presented to whatever drives this device's gate, pF.
    #[inline]
    pub fn gate_cap(&self, tech: &Tech) -> f64 {
        tech.gate_capacitance(self.w_um, self.l_um)
    }

    /// Aspect ratio W/L (dimensionless). Large for strong pull-downs,
    /// small (< 1) for weak loads.
    #[inline]
    pub fn aspect(&self) -> f64 {
        self.w_um / self.l_um
    }

    /// Whether this depletion device is wired as a classic load: gate tied
    /// to one of its own channel terminals.
    #[inline]
    pub fn is_load_connected(&self) -> bool {
        self.kind == DeviceKind::Depletion && (self.gate == self.source || self.gate == self.drain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn dev(kind: DeviceKind, g: u32, s: u32, d: u32) -> Device {
        Device {
            name: "m".into(),
            kind,
            gate: NodeId(g),
            source: NodeId(s),
            drain: NodeId(d),
            w_um: 4.0,
            l_um: 2.0,
        }
    }

    #[test]
    fn terminal_lookup_matches_fields() {
        let m = dev(DeviceKind::Enhancement, 5, 6, 7);
        assert_eq!(m.terminal(Terminal::Gate), NodeId(5));
        assert_eq!(m.terminal(Terminal::Source), NodeId(6));
        assert_eq!(m.terminal(Terminal::Drain), NodeId(7));
    }

    #[test]
    fn other_channel_end_flips() {
        let m = dev(DeviceKind::Enhancement, 5, 6, 7);
        assert_eq!(m.other_channel_end(NodeId(6)), NodeId(7));
        assert_eq!(m.other_channel_end(NodeId(7)), NodeId(6));
    }

    #[test]
    #[should_panic(expected = "not a channel terminal")]
    fn other_channel_end_rejects_gate() {
        let m = dev(DeviceKind::Enhancement, 5, 6, 7);
        m.other_channel_end(NodeId(5));
    }

    #[test]
    fn channel_touches_ignores_gate() {
        let m = dev(DeviceKind::Enhancement, 5, 6, 7);
        assert!(m.channel_touches(NodeId(6)));
        assert!(m.channel_touches(NodeId(7)));
        assert!(!m.channel_touches(NodeId(5)));
    }

    #[test]
    fn resistance_uses_the_right_sheet() {
        let t = Tech::nmos4um();
        let e = dev(DeviceKind::Enhancement, 1, 2, 3);
        let d = Device {
            kind: DeviceKind::Depletion,
            ..e.clone()
        };
        assert_eq!(e.resistance(&t), t.channel_resistance(4.0, 2.0));
        assert_eq!(d.resistance(&t), t.load_resistance(4.0, 2.0));
    }

    #[test]
    fn load_connection_detection() {
        // Gate tied to source: classic depletion load.
        let mut d = dev(DeviceKind::Depletion, 6, 6, 0);
        assert!(d.is_load_connected());
        d.kind = DeviceKind::Enhancement;
        assert!(!d.is_load_connected());
    }

    #[test]
    fn sim_codes() {
        assert_eq!(DeviceKind::Enhancement.sim_code(), 'e');
        assert_eq!(DeviceKind::Depletion.sim_code(), 'd');
    }
}
