//! Reader/writer for a `.sim`-style transistor interchange format.
//!
//! The MOSIS/Berkeley `.sim` format was how 1983 layout extractors handed
//! transistor netlists to analyzers like TV. This module implements a
//! documented dialect of it:
//!
//! ```text
//! | anything            comment
//! e g s d L W           enhancement transistor (geometry in µm)
//! d g s d L W           depletion transistor
//! C n cap               explicit capacitance on node n, femtofarads
//! i n                   declare n a primary input
//! o n                   declare n a primary output
//! k n p                 declare n a clock of phase p (0 = φ1, 1 = φ2)
//! ```
//!
//! Node names are arbitrary whitespace-free tokens; `VDD` and `GND` are the
//! rails. Geometry is in µm (the historical format used centimicrons; the
//! writer emits a header comment naming the unit so files are
//! self-describing).
//!
//! # Example
//!
//! ```
//! use tv_netlist::{sim_format, NetlistBuilder, Tech};
//!
//! # fn main() -> Result<(), tv_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new(Tech::nmos4um());
//! let a = b.input("a");
//! let out = b.output("out");
//! b.inverter("inv", a, out);
//! let nl = b.finish()?;
//!
//! let text = sim_format::write(&nl);
//! let back = sim_format::parse(&text, Tech::nmos4um())?;
//! assert_eq!(back.device_count(), nl.device_count());
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use crate::diag::{codes, Diagnostic, Diagnostics};
use crate::{Netlist, NetlistBuilder, NetlistError, NodeRole, Tech};

/// Serializes a netlist to the `.sim` dialect described in the module docs.
///
/// Only *explicit* capacitance is emitted (`C` lines); gate and diffusion
/// capacitance is re-derived from geometry on parse, so a round trip
/// reproduces the same totals.
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| nmos-tv sim file, geometry in um, caps in fF");
    let _ = writeln!(
        out,
        "| nodes={} devices={}",
        netlist.node_count(),
        netlist.device_count()
    );
    for id in netlist.node_ids() {
        let node = netlist.node(id);
        match node.role() {
            NodeRole::Input => {
                let _ = writeln!(out, "i {}", netlist.node_name(id));
            }
            NodeRole::Output => {
                let _ = writeln!(out, "o {}", netlist.node_name(id));
            }
            NodeRole::Clock(p) => {
                let _ = writeln!(out, "k {} {}", netlist.node_name(id), p);
            }
            _ => {}
        }
        if node.extra_cap() > 0.0 {
            // pF -> fF for the file.
            let _ = writeln!(
                out,
                "C {} {}",
                netlist.node_name(id),
                node.extra_cap() * 1000.0
            );
        }
    }
    for dref in netlist.devices() {
        let d = dref.device;
        let _ = writeln!(
            out,
            "{} {} {} {} {} {}",
            d.kind().sim_code(),
            netlist.node_name(d.gate()),
            netlist.node_name(d.source()),
            netlist.node_name(d.drain()),
            d.length(),
            d.width(),
        );
    }
    out
}

/// One whitespace-separated field of a `.sim` line, with its 1-based
/// character column in the raw line.
struct Field<'a> {
    col: usize,
    text: &'a str,
}

/// Splits a raw line into fields, tracking 1-based character columns so
/// diagnostics can point at the offending token, not just the line.
fn fields_with_cols(raw: &str) -> Vec<Field<'_>> {
    let mut out = Vec::new();
    let mut start: Option<(usize, usize)> = None; // (1-based col, byte offset)
    let mut col = 0usize;
    for (byte, c) in raw.char_indices() {
        col += 1;
        if c.is_whitespace() {
            if let Some((s_col, s_byte)) = start.take() {
                out.push(Field {
                    col: s_col,
                    text: &raw[s_byte..byte],
                });
            }
        } else if start.is_none() {
            start = Some((col, byte));
        }
    }
    if let Some((s_col, s_byte)) = start {
        out.push(Field {
            col: s_col,
            text: &raw[s_byte..],
        });
    }
    out
}

/// A problem found on one line, located at a token.
struct LineProblem {
    code: &'static str,
    col: usize,
    message: String,
    /// The strict-mode error this maps to (structural problems keep
    /// their historical [`NetlistError`] variants).
    strict: Option<NetlistError>,
}

impl LineProblem {
    fn at(code: &'static str, col: usize, message: String) -> Self {
        LineProblem {
            code,
            col,
            message,
            strict: None,
        }
    }
}

/// Parses the `.sim` dialect into a netlist under the given technology.
///
/// This is the **strict** entry point: the first malformed line aborts
/// the parse. Use [`parse_recovering`] to collect every problem in one
/// pass instead.
///
/// # Errors
///
/// Returns [`NetlistError::SimParse`] for malformed lines (with the
/// 1-based line number and column of the offending token) and the
/// matching structural error ([`NetlistError::ShortedChannel`],
/// [`NetlistError::BadGeometry`], [`NetlistError::BadCapacitance`]) for
/// degenerate devices in the file.
pub fn parse(text: &str, tech: Tech) -> Result<Netlist, NetlistError> {
    let mut sink = Diagnostics::with_max_errors(1);
    parse_inner(text, tech, &mut sink, true)
}

/// Parses the `.sim` dialect with **error recovery**: every malformed
/// line is reported into `diags` (severity `Error`, with line/column)
/// and skipped, and the netlist is built from the remaining good lines.
/// Degenerate devices (shorted channel, bad geometry, bad capacitance)
/// are likewise reported and dropped instead of poisoning the build.
///
/// A UTF-8 BOM is tolerated (and reported as an info diagnostic), as are
/// CRLF line endings. Once the sink's error cap is reached further error
/// diagnostics are counted but dropped; parsing continues so every valid
/// line still contributes to the netlist.
///
/// Returns the (possibly partial) netlist; inspect
/// [`Diagnostics::has_errors`] to learn whether the input was clean.
///
/// # Errors
///
/// Only a failure to finalize the recovered netlist — which recovery
/// prevents by construction — is returned as `Err`.
pub fn parse_recovering(
    text: &str,
    tech: Tech,
    diags: &mut Diagnostics,
) -> Result<Netlist, NetlistError> {
    parse_inner(text, tech, diags, false)
}

fn parse_inner(
    text: &str,
    tech: Tech,
    diags: &mut Diagnostics,
    strict: bool,
) -> Result<Netlist, NetlistError> {
    let _span = tv_obs::span("parse.sim");
    let mut b = NetlistBuilder::new(tech);
    let mut dev_count = 0usize;
    let mut line_count = 0u64;
    // Tolerate a UTF-8 byte-order mark from Windows-side extractors.
    let body = if let Some(stripped) = text.strip_prefix('\u{feff}') {
        if !strict {
            diags.push(Diagnostic::info(
                codes::PARSE_SUPPRESSED,
                "input begins with a UTF-8 byte-order mark (stripped)".to_string(),
            ));
        }
        stripped
    } else {
        text
    };
    for (i, raw) in body.lines().enumerate() {
        let lineno = i + 1;
        line_count += 1;
        // Fault plane: a chunk boundary every 64 lines is a trust
        // boundary — a mid-read failure must surface as a loud parse
        // error, never a half-ingested netlist.
        if lineno % 64 == 0 && tv_fault::fault_point!(tv_fault::Site::ParseChunk) {
            tv_obs::incr(tv_obs::Counter::FaultInjected);
            return Err(NetlistError::SimParse {
                line: lineno,
                col: 1,
                message: "injected fault at parse_chunk (tv_fault)".to_string(),
            });
        }
        // `str::lines` strips a trailing `\r`; handle stray interior ones
        // (classic Mac line endings concatenated into one "line") by
        // trimming, matching the historical whitespace-tolerant readers.
        let line = raw.trim();
        if line.is_empty() || line.starts_with('|') {
            continue;
        }
        match parse_line(&mut b, raw, &mut dev_count) {
            Ok(()) => {}
            Err(p) => {
                if strict {
                    return Err(p.strict.unwrap_or(NetlistError::SimParse {
                        line: lineno,
                        col: p.col,
                        message: p.message,
                    }));
                }
                // Past the error cap the sink drops and counts; parsing
                // continues so every valid line still reaches the netlist.
                diags.push(Diagnostic::error(p.code, p.message).at(lineno, p.col));
            }
        }
    }
    tv_obs::add(tv_obs::Counter::ParseLines, line_count);
    tv_obs::add(tv_obs::Counter::ParseDevices, dev_count as u64);
    b.finish()
}

/// Parses one non-comment line into the builder, or reports its problem.
/// On `Err`, nothing was added to the builder (degenerate devices are
/// validated *before* insertion so a recovered netlist always finishes).
fn parse_line(b: &mut NetlistBuilder, raw: &str, dev_count: &mut usize) -> Result<(), LineProblem> {
    let fields = fields_with_cols(raw);
    let f0 = &fields[0];
    let num = |f: &Field<'_>, what: &str| -> Result<f64, LineProblem> {
        f.text.parse::<f64>().map_err(|_| {
            LineProblem::at(
                codes::PARSE_BAD_NUMBER,
                f.col,
                format!("bad {what} {:?}", f.text),
            )
        })
    };
    match f0.text {
        "e" | "d" => {
            if fields.len() != 6 {
                return Err(LineProblem::at(
                    codes::PARSE_FIELD_COUNT,
                    f0.col,
                    format!("transistor line needs 6 fields, got {}", fields.len()),
                ));
            }
            let l = num(&fields[4], "length")?;
            let w = num(&fields[5], "width")?;
            let name = format!("m{dev_count}");
            // Validate the device *before* creating any node or device so
            // a rejected line leaves the builder untouched.
            if fields[2].text == fields[3].text {
                return Err(LineProblem {
                    code: codes::PARSE_SHORTED_CHANNEL,
                    col: fields[3].col,
                    message: format!(
                        "device {name:?} has source and drain on the same node {:?}",
                        fields[2].text
                    ),
                    strict: Some(NetlistError::ShortedChannel { device: name }),
                });
            }
            if !w.is_finite() || !l.is_finite() || w <= 0.0 || l <= 0.0 {
                return Err(LineProblem {
                    code: codes::PARSE_BAD_GEOMETRY,
                    col: fields[4].col,
                    message: format!(
                        "device {name:?} has non-positive geometry W={w} µm, L={l} µm"
                    ),
                    strict: Some(NetlistError::BadGeometry {
                        device: name,
                        w_um: w,
                        l_um: l,
                    }),
                });
            }
            let g = b.node(fields[1].text);
            let s = b.node(fields[2].text);
            let dr = b.node(fields[3].text);
            *dev_count += 1;
            if f0.text == "e" {
                b.enhancement(name, g, s, dr, w, l);
            } else {
                b.depletion(name, g, s, dr, w, l);
            }
        }
        "C" => {
            if fields.len() != 3 {
                return Err(LineProblem::at(
                    codes::PARSE_FIELD_COUNT,
                    f0.col,
                    "capacitance line needs 3 fields".into(),
                ));
            }
            let ff = fields[2].text.parse::<f64>().map_err(|_| {
                LineProblem::at(
                    codes::PARSE_BAD_NUMBER,
                    fields[2].col,
                    format!("bad capacitance {:?}", fields[2].text),
                )
            })?;
            let pf = ff / 1000.0;
            if !pf.is_finite() || pf < 0.0 {
                return Err(LineProblem {
                    code: codes::PARSE_BAD_CAP,
                    col: fields[2].col,
                    message: format!(
                        "node {:?} given invalid capacitance {pf} pF",
                        fields[1].text
                    ),
                    strict: Some(NetlistError::BadCapacitance {
                        node: fields[1].text.to_string(),
                        cap_pf: pf,
                    }),
                });
            }
            let n = b.node(fields[1].text);
            b.add_cap(n, pf).expect("validated above");
        }
        "i" => {
            if fields.len() != 2 {
                return Err(LineProblem::at(
                    codes::PARSE_FIELD_COUNT,
                    f0.col,
                    "input line needs 2 fields".into(),
                ));
            }
            b.input(fields[1].text);
        }
        "o" => {
            if fields.len() != 2 {
                return Err(LineProblem::at(
                    codes::PARSE_FIELD_COUNT,
                    f0.col,
                    "output line needs 2 fields".into(),
                ));
            }
            b.output(fields[1].text);
        }
        "k" => {
            if fields.len() != 3 {
                return Err(LineProblem::at(
                    codes::PARSE_FIELD_COUNT,
                    f0.col,
                    "clock line needs 3 fields".into(),
                ));
            }
            let p = fields[2].text.parse::<u8>().map_err(|_| {
                LineProblem::at(
                    codes::PARSE_BAD_NUMBER,
                    fields[2].col,
                    format!("bad phase {:?}", fields[2].text),
                )
            })?;
            b.clock(fields[1].text, p);
        }
        other => {
            return Err(LineProblem::at(
                codes::PARSE_UNKNOWN_RECORD,
                f0.col,
                format!("unknown record type {other:?}"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetlistBuilder, Tech};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let phi = b.clock("phi1", 0);
        let out = b.output("out");
        let mid = b.node("mid");
        b.inverter("i1", a, mid);
        b.pass("p1", phi, mid, out);
        b.add_cap(out, 0.123).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure_and_caps() {
        let nl = sample();
        let text = write(&nl);
        let back = parse(&text, Tech::nmos4um()).unwrap();
        assert_eq!(back.device_count(), nl.device_count());
        assert_eq!(back.node_count(), nl.node_count());
        assert_eq!(back.inputs().len(), 1);
        assert_eq!(back.outputs().len(), 1);
        assert_eq!(back.clocks(), {
            let n = back.node_by_name("phi1").unwrap();
            vec![(n, 0)]
        });
        let out = back.node_by_name("out").unwrap();
        let orig_out = nl.node_by_name("out").unwrap();
        assert!((back.node_cap(out) - nl.node_cap(orig_out)).abs() < 1e-9);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "| header\n\n| another comment\ni a\n";
        let nl = parse(text, Tech::nmos4um()).unwrap();
        assert_eq!(nl.inputs().len(), 1);
    }

    #[test]
    fn malformed_transistor_line_reports_line_number() {
        let text = "| ok\ne a b\n";
        let err = parse(text, Tech::nmos4um()).unwrap_err();
        match err {
            NetlistError::SimParse { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn unknown_record_is_an_error() {
        let err = parse("z foo\n", Tech::nmos4um()).unwrap_err();
        assert!(matches!(err, NetlistError::SimParse { .. }));
    }

    #[test]
    fn bad_number_is_an_error() {
        let err = parse("e a b c four 4\n", Tech::nmos4um()).unwrap_err();
        assert!(matches!(err, NetlistError::SimParse { .. }));
    }

    #[test]
    fn shorted_channel_in_file_is_caught() {
        let err = parse("e g x x 2 4\n", Tech::nmos4um()).unwrap_err();
        assert!(matches!(err, NetlistError::ShortedChannel { .. }));
    }

    #[test]
    fn writer_emits_rails_by_name() {
        let nl = sample();
        let text = write(&nl);
        assert!(text.contains("GND"));
        assert!(text.contains("VDD"));
    }

    #[test]
    fn parse_error_reports_offending_column() {
        // "four" starts at column 9 of "e a b c four 4".
        let err = parse("e a b c four 4\n", Tech::nmos4um()).unwrap_err();
        match err {
            NetlistError::SimParse { line, col, message } => {
                assert_eq!(line, 1);
                assert_eq!(col, 9);
                assert!(message.contains("four"), "message was {message:?}");
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn recovering_parse_collects_all_errors_in_one_pass() {
        // Three distinct problems: unknown record, bad field count, bad number.
        let text = "i a\nz what\ne a b\nC out nope\no out\n";
        let mut diags = Diagnostics::new();
        let nl = parse_recovering(text, Tech::nmos4um(), &mut diags).unwrap();
        assert_eq!(diags.error_count(), 3);
        let seen: Vec<&str> = diags.items().iter().map(|d| d.code).collect();
        assert!(seen.contains(&codes::PARSE_UNKNOWN_RECORD));
        assert!(seen.contains(&codes::PARSE_FIELD_COUNT));
        assert!(seen.contains(&codes::PARSE_BAD_NUMBER));
        // The good lines still built a netlist.
        assert_eq!(nl.inputs().len(), 1);
        assert_eq!(nl.outputs().len(), 1);
    }

    #[test]
    fn recovering_parse_drops_degenerate_devices_but_keeps_the_rest() {
        let text = "i a\ne a x x 2 4\ne a GND out 2 4\no out\n";
        let mut diags = Diagnostics::new();
        let nl = parse_recovering(text, Tech::nmos4um(), &mut diags).unwrap();
        assert_eq!(diags.error_count(), 1);
        assert_eq!(diags.items()[0].code, codes::PARSE_SHORTED_CHANNEL);
        assert_eq!(nl.device_count(), 1);
    }

    #[test]
    fn recovering_parse_respects_error_cap() {
        let mut text = String::new();
        for _ in 0..10 {
            text.push_str("z junk\n");
        }
        let mut diags = Diagnostics::with_max_errors(3);
        parse_recovering(&text, Tech::nmos4um(), &mut diags).unwrap();
        assert_eq!(diags.error_count(), 3);
        assert_eq!(diags.suppressed(), 7, "the rest are counted, not kept");
        assert!(diags.render_text(None).contains("suppressed"));
    }

    #[test]
    fn empty_input_parses_to_empty_netlist() {
        let mut diags = Diagnostics::new();
        let nl = parse_recovering("", Tech::nmos4um(), &mut diags).unwrap();
        assert!(!diags.has_errors());
        assert_eq!(nl.device_count(), 0);
    }

    #[test]
    fn bom_prefixed_input_is_tolerated() {
        let text = "\u{feff}| header\ni a\n";
        let mut diags = Diagnostics::new();
        let nl = parse_recovering(text, Tech::nmos4um(), &mut diags).unwrap();
        assert!(!diags.has_errors());
        assert_eq!(nl.inputs().len(), 1);
        // The BOM is surfaced as an informational note, not an error.
        assert!(diags
            .items()
            .iter()
            .any(|d| d.message.contains("byte-order")));
    }

    #[test]
    fn crlf_input_parses_cleanly() {
        let text = "| header\r\ni a\r\no out\r\ne a GND out 2 4\r\n";
        let mut diags = Diagnostics::new();
        let nl = parse_recovering(text, Tech::nmos4um(), &mut diags).unwrap();
        assert!(!diags.has_errors(), "diags: {:?}", diags.items());
        assert_eq!(nl.device_count(), 1);
    }

    #[test]
    fn truncated_input_reports_the_partial_last_line() {
        // A transistor line cut off mid-record, as from a truncated copy.
        let nl = sample();
        let full = write(&nl);
        let cut = &full[..full.len() - 8];
        let mut diags = Diagnostics::new();
        let back = parse_recovering(cut, Tech::nmos4um(), &mut diags).unwrap();
        assert!(diags.has_errors());
        assert!(back.device_count() < nl.device_count());
    }
}
