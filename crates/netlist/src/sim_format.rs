//! Reader/writer for a `.sim`-style transistor interchange format.
//!
//! The MOSIS/Berkeley `.sim` format was how 1983 layout extractors handed
//! transistor netlists to analyzers like TV. This module implements a
//! documented dialect of it:
//!
//! ```text
//! | anything            comment
//! e g s d L W           enhancement transistor (geometry in µm)
//! d g s d L W           depletion transistor
//! C n cap               explicit capacitance on node n, femtofarads
//! i n                   declare n a primary input
//! o n                   declare n a primary output
//! k n p                 declare n a clock of phase p (0 = φ1, 1 = φ2)
//! ```
//!
//! Node names are arbitrary whitespace-free tokens; `VDD` and `GND` are the
//! rails. Geometry is in µm (the historical format used centimicrons; the
//! writer emits a header comment naming the unit so files are
//! self-describing).
//!
//! # Scale
//!
//! The reader is built for million-device files. A cheap byte-level
//! **pre-scan** sizes the intern arena, the symbol table, and the
//! node/device stores before the first record is built, so the hot loop
//! performs zero growth reallocations (`ingest.reallocs` counts any that
//! slip through — the verify gate asserts it stays zero). With
//! [`ParseOptions::jobs`] above one, the input is split on line
//! boundaries into fixed-size chunks — a pure function of the input
//! bytes, never of the job count — scanned by worker threads, and merged
//! **deterministically**: the resulting netlist and the diagnostic
//! stream (codes, order, columns, `--max-errors` truncation) are
//! byte-identical to the serial reader's at any `jobs` setting.
//!
//! # Example
//!
//! ```
//! use tv_netlist::{sim_format, NetlistBuilder, Tech};
//!
//! # fn main() -> Result<(), tv_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new(Tech::nmos4um());
//! let a = b.input("a");
//! let out = b.output("out");
//! b.inverter("inv", a, out);
//! let nl = b.finish()?;
//!
//! let text = sim_format::write(&nl);
//! let back = sim_format::parse(&text, Tech::nmos4um())?;
//! assert_eq!(back.device_count(), nl.device_count());
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::diag::{codes, Diagnostic, Diagnostics};
use crate::intern::{Interner, Symbol};
use crate::{DeviceKind, Netlist, NetlistBuilder, NetlistError, NodeId, NodeRole, Tech};

/// Serializes a netlist to the `.sim` dialect described in the module docs.
///
/// Only *explicit* capacitance is emitted (`C` lines); gate and diffusion
/// capacitance is re-derived from geometry on parse, so a round trip
/// reproduces the same totals.
pub fn write(netlist: &Netlist) -> String {
    // Pre-size the output so million-device exports append into one
    // allocation instead of quadratically regrowing: names are counted
    // exactly, numeric fields and separators by a worst-case width.
    let mut cap = 96usize;
    for id in netlist.node_ids() {
        let node = netlist.node(id);
        let name_len = netlist.node_name(id).len();
        match node.role() {
            NodeRole::Input | NodeRole::Output => cap += name_len + 3,
            NodeRole::Clock(_) => cap += name_len + 6,
            _ => {}
        }
        if node.extra_cap() > 0.0 {
            cap += name_len + 28;
        }
    }
    for dref in netlist.devices() {
        let d = dref.device;
        cap += 8
            + netlist.node_name(d.gate()).len()
            + netlist.node_name(d.source()).len()
            + netlist.node_name(d.drain()).len()
            + 48;
    }
    let mut out = String::with_capacity(cap);
    let _ = writeln!(out, "| nmos-tv sim file, geometry in um, caps in fF");
    let _ = writeln!(
        out,
        "| nodes={} devices={}",
        netlist.node_count(),
        netlist.device_count()
    );
    for id in netlist.node_ids() {
        let node = netlist.node(id);
        match node.role() {
            NodeRole::Input => {
                let _ = writeln!(out, "i {}", netlist.node_name(id));
            }
            NodeRole::Output => {
                let _ = writeln!(out, "o {}", netlist.node_name(id));
            }
            NodeRole::Clock(p) => {
                let _ = writeln!(out, "k {} {}", netlist.node_name(id), p);
            }
            _ => {}
        }
        if node.extra_cap() > 0.0 {
            // pF -> fF for the file.
            let _ = writeln!(
                out,
                "C {} {}",
                netlist.node_name(id),
                node.extra_cap() * 1000.0
            );
        }
    }
    for dref in netlist.devices() {
        let d = dref.device;
        let _ = writeln!(
            out,
            "{} {} {} {} {} {}",
            d.kind().sim_code(),
            netlist.node_name(d.gate()),
            netlist.node_name(d.source()),
            netlist.node_name(d.drain()),
            d.length(),
            d.width(),
        );
    }
    out
}

/// Tuning knobs for the recovering reader (see [`parse_recovering_with`]).
#[derive(Debug, Clone)]
pub struct ParseOptions {
    /// Worker threads for chunk scanning. `1` (the default) is fully
    /// serial; `0` expands to the machine's available parallelism.
    /// Results are bit-identical at any setting.
    pub jobs: usize,
    /// Target chunk size in bytes; each chunk is extended to the next
    /// line boundary. Chunking is a pure function of the input and this
    /// knob — never of `jobs` — so the `ingest.chunks` counter and every
    /// downstream artifact are jobs-independent.
    pub chunk_bytes: usize,
}

/// Default chunk target: 1 MiB of text per worker unit.
pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            jobs: 1,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
        }
    }
}

/// Parses the `.sim` dialect into a netlist under the given technology.
///
/// This is the **strict** entry point: the first malformed line aborts
/// the parse. Use [`parse_recovering`] to collect every problem in one
/// pass instead.
///
/// # Errors
///
/// Returns [`NetlistError::SimParse`] for malformed lines (with the
/// 1-based line number and column of the offending token) and the
/// matching structural error ([`NetlistError::ShortedChannel`],
/// [`NetlistError::BadGeometry`], [`NetlistError::BadCapacitance`]) for
/// degenerate devices in the file.
pub fn parse(text: &str, tech: Tech) -> Result<Netlist, NetlistError> {
    let mut sink = Diagnostics::with_max_errors(1);
    parse_inner(text, tech, &mut sink, true, &ParseOptions::default())
}

/// Parses the `.sim` dialect with **error recovery**: every malformed
/// line is reported into `diags` (severity `Error`, with line/column)
/// and skipped, and the netlist is built from the remaining good lines.
/// Degenerate devices (shorted channel, bad geometry, bad capacitance)
/// are likewise reported and dropped instead of poisoning the build.
///
/// A UTF-8 BOM is tolerated (and reported as an info diagnostic), as are
/// CRLF line endings. Once the sink's error cap is reached further error
/// diagnostics are counted but dropped; parsing continues so every valid
/// line still contributes to the netlist.
///
/// Returns the (possibly partial) netlist; inspect
/// [`Diagnostics::has_errors`] to learn whether the input was clean.
///
/// # Errors
///
/// Only a failure to finalize the recovered netlist — which recovery
/// prevents by construction — is returned as `Err`.
pub fn parse_recovering(
    text: &str,
    tech: Tech,
    diags: &mut Diagnostics,
) -> Result<Netlist, NetlistError> {
    parse_inner(text, tech, diags, false, &ParseOptions::default())
}

/// [`parse_recovering`] with explicit [`ParseOptions`] — the entry point
/// for chunk-parallel ingest. The netlist and the diagnostic stream are
/// bit-identical to the serial reader's at any `jobs` setting.
///
/// # Errors
///
/// As [`parse_recovering`].
pub fn parse_recovering_with(
    text: &str,
    tech: Tech,
    diags: &mut Diagnostics,
    opts: &ParseOptions,
) -> Result<Netlist, NetlistError> {
    parse_inner(text, tech, diags, false, opts)
}

fn parse_inner(
    text: &str,
    tech: Tech,
    diags: &mut Diagnostics,
    strict: bool,
    opts: &ParseOptions,
) -> Result<Netlist, NetlistError> {
    let _span = tv_obs::span("parse.sim");
    // Tolerate a UTF-8 byte-order mark from Windows-side extractors.
    let body = if let Some(stripped) = text.strip_prefix('\u{feff}') {
        if !strict {
            diags.push(Diagnostic::info(
                codes::PARSE_SUPPRESSED,
                "input begins with a UTF-8 byte-order mark (stripped)".to_string(),
            ));
        }
        stripped
    } else {
        text
    };
    // Pre-scan: one byte sweep that sizes every structure the build
    // will touch, so the hot loop below never grows an allocation.
    let pre = prescan(body);
    let mut b = NetlistBuilder::new(tech);
    b.reserve(pre.name_tokens + 2, pre.dev_lines, pre.name_bytes);
    let realloc_base = b.growth_events();
    // Chunk boundaries are a pure function of the input bytes, computed
    // on every path so `ingest.chunks` never depends on `jobs`.
    let chunks = split_chunks(body, opts.chunk_bytes);
    let jobs = if opts.jobs == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        opts.jobs
    };
    let (line_count, dev_count) = if !strict && jobs > 1 && chunks.len() > 1 {
        parse_chunked(&mut b, body, &chunks, diags, pre.lines, jobs)?
    } else {
        parse_serial_body(&mut b, body, diags, strict)?
    };
    tv_obs::add(tv_obs::Counter::ParseLines, line_count);
    tv_obs::add(tv_obs::Counter::ParseDevices, dev_count as u64);
    tv_obs::add(tv_obs::Counter::IngestChunks, chunks.len().max(1) as u64);
    tv_obs::add(tv_obs::Counter::IngestBytes, body.len() as u64);
    tv_obs::add(tv_obs::Counter::IngestPrescanSyms, pre.name_tokens as u64);
    tv_obs::add(
        tv_obs::Counter::IngestReallocs,
        b.growth_events() - realloc_base,
    );
    tv_obs::add(tv_obs::Counter::IngestPeakAllocEst, pre.peak_alloc_est());
    b.finish()
}

// ----- pre-scan --------------------------------------------------------

/// What one cheap byte sweep learns about the input before parsing: the
/// sizing facts that let [`NetlistBuilder::reserve`] pre-empt every
/// growth reallocation of the build.
struct Prescan {
    /// Lines, counted exactly as `str::lines` counts them.
    lines: u64,
    /// Lines whose first token is a transistor record (`e`/`d`) — the
    /// device-store reservation.
    dev_lines: usize,
    /// Name tokens the parse will intern (an upper bound on distinct
    /// node names): three per transistor line, one per `C`/`i`/`o`/`k`.
    name_tokens: usize,
    /// Total bytes of those name tokens — the intern-arena reservation.
    name_bytes: usize,
}

impl Prescan {
    /// Deterministic estimate (bytes) of the peak allocation the
    /// pre-sized ingest structures reserve, surfaced as
    /// `ingest.peak_alloc_est`. A pure function of the input text.
    fn peak_alloc_est(&self) -> u64 {
        let nodes = self.name_tokens as u64 + 2;
        let table = (2 * (nodes + 1)).next_power_of_two().max(16);
        self.name_bytes as u64
            + (nodes + 1) * 4
            + table * 4
            + nodes * (std::mem::size_of::<crate::Node>() + std::mem::size_of::<NodeId>()) as u64
            + self.dev_lines as u64 * std::mem::size_of::<crate::Device>() as u64
    }
}

/// ASCII whitespace as `char::is_whitespace` sees it (U+0009–U+000D and
/// space), so the byte-level sweeps agree with the char-level reader.
#[inline]
fn is_ws(b: u8) -> bool {
    matches!(b, b'\t'..=b'\r' | b' ')
}

fn prescan(body: &str) -> Prescan {
    let bytes = body.as_bytes();
    let mut p = Prescan {
        lines: 0,
        dev_lines: 0,
        name_tokens: 0,
        name_bytes: 0,
    };
    let mut i = 0usize;
    while i < bytes.len() {
        p.lines += 1;
        let eol = match bytes[i..].iter().position(|&b| b == b'\n') {
            Some(k) => i + k,
            None => bytes.len(),
        };
        let line = &bytes[i..eol];
        let mut j = 0usize;
        while j < line.len() && is_ws(line[j]) {
            j += 1;
        }
        if j < line.len() {
            let mut k = j;
            while k < line.len() && !is_ws(line[k]) {
                k += 1;
            }
            let names_wanted = match line[j] {
                b'e' | b'd' if k - j == 1 => {
                    p.dev_lines += 1;
                    3
                }
                b'C' | b'i' | b'o' | b'k' if k - j == 1 => 1,
                _ => 0,
            };
            let mut taken = 0;
            while taken < names_wanted && k < line.len() {
                while k < line.len() && is_ws(line[k]) {
                    k += 1;
                }
                if k >= line.len() {
                    break;
                }
                let s = k;
                while k < line.len() && !is_ws(line[k]) {
                    k += 1;
                }
                p.name_tokens += 1;
                p.name_bytes += k - s;
                taken += 1;
            }
        }
        i = if eol < bytes.len() { eol + 1 } else { eol };
    }
    p
}

/// Splits the input into chunks of roughly `chunk_bytes`, each extended
/// to end just past a newline so no line ever straddles two chunks. A
/// pure function of the input bytes and the knob — never of `jobs`.
fn split_chunks(body: &str, chunk_bytes: usize) -> Vec<&str> {
    let cb = chunk_bytes.max(1);
    let bytes = body.as_bytes();
    let mut chunks = Vec::with_capacity(body.len() / cb + 1);
    let mut start = 0usize;
    while start < bytes.len() {
        let mut end = (start + cb).min(bytes.len());
        while end < bytes.len() && bytes[end - 1] != b'\n' {
            end += 1;
        }
        chunks.push(&body[start..end]);
        start = end;
    }
    chunks
}

// ----- line scanning ---------------------------------------------------

const MAX_FIELDS: usize = 6;

/// One whitespace-separated field of a `.sim` line, with its 1-based
/// character column in the raw line.
#[derive(Clone, Copy, Default)]
struct Field<'a> {
    col: usize,
    text: &'a str,
}

/// Splits a raw line into up to [`MAX_FIELDS`] stack-stored fields,
/// tracking 1-based *character* columns so diagnostics can point at the
/// offending token. Returns the total field count, which may exceed the
/// stored count (error messages report it). ASCII lines — the entirety
/// of machine-written files — take a byte loop; anything else falls back
/// to a char walk with identical column semantics.
fn split_fields<'a>(raw: &'a str, out: &mut [Field<'a>; MAX_FIELDS]) -> usize {
    let mut n = 0usize;
    if raw.is_ascii() {
        let bytes = raw.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            while i < bytes.len() && is_ws(bytes[i]) {
                i += 1;
            }
            if i >= bytes.len() {
                break;
            }
            let start = i;
            while i < bytes.len() && !is_ws(bytes[i]) {
                i += 1;
            }
            if n < MAX_FIELDS {
                out[n] = Field {
                    col: start + 1,
                    text: &raw[start..i],
                };
            }
            n += 1;
        }
    } else {
        let mut start: Option<(usize, usize)> = None; // (1-based col, byte offset)
        let mut col = 0usize;
        for (byte, c) in raw.char_indices() {
            col += 1;
            if c.is_whitespace() {
                if let Some((s_col, s_byte)) = start.take() {
                    if n < MAX_FIELDS {
                        out[n] = Field {
                            col: s_col,
                            text: &raw[s_byte..byte],
                        };
                    }
                    n += 1;
                }
            } else if start.is_none() {
                start = Some((col, byte));
            }
        }
        if let Some((s_col, s_byte)) = start {
            if n < MAX_FIELDS {
                out[n] = Field {
                    col: s_col,
                    text: &raw[s_byte..],
                };
            }
            n += 1;
        }
    }
    n
}

/// One validated `.sim` record, borrowing its name tokens from the line.
/// Scanning is split from building so chunk workers can scan without a
/// builder and the serial path can build without re-validating.
enum Record<'a> {
    /// Blank or comment line.
    Skip,
    /// `e`/`d` transistor line, fully validated.
    Device {
        kind: DeviceKind,
        g: &'a str,
        s: &'a str,
        d: &'a str,
        w: f64,
        l: f64,
    },
    /// `C` explicit-capacitance line (already converted to pF).
    Cap { node: &'a str, pf: f64 },
    /// `i`/`o`/`k` role declaration.
    Role { node: &'a str, role: NodeRole },
}

/// A problem found on one line, located at a token. Device-numbered
/// messages are materialized later, once the global index of the
/// would-be device is known (chunk workers don't know it).
struct ScanProblem {
    code: &'static str,
    col: usize,
    kind: ProblemKind,
}

enum ProblemKind {
    /// Message fully known at scan time.
    Plain(String),
    /// Transistor with source and drain on the same node.
    Shorted { node: String },
    /// Transistor with non-positive or non-finite geometry.
    Geometry { w: f64, l: f64 },
    /// Negative or non-finite explicit capacitance.
    BadCap { node: String, pf: f64 },
}

impl ScanProblem {
    fn plain(code: &'static str, col: usize, message: String) -> Self {
        ScanProblem {
            code,
            col,
            kind: ProblemKind::Plain(message),
        }
    }

    /// The recovering-mode message, given the index the device would
    /// have taken had the line been accepted.
    fn into_message(self, dev_index: usize) -> String {
        match self.kind {
            ProblemKind::Plain(m) => m,
            ProblemKind::Shorted { node } => {
                let name = format!("m{dev_index}");
                format!("device {name:?} has source and drain on the same node {node:?}")
            }
            ProblemKind::Geometry { w, l } => {
                let name = format!("m{dev_index}");
                format!("device {name:?} has non-positive geometry W={w} µm, L={l} µm")
            }
            ProblemKind::BadCap { node, pf } => {
                format!("node {node:?} given invalid capacitance {pf} pF")
            }
        }
    }

    /// The strict-mode error (structural problems keep their historical
    /// [`NetlistError`] variants).
    fn into_strict(self, lineno: usize, dev_index: usize) -> NetlistError {
        match self.kind {
            ProblemKind::Plain(message) => NetlistError::SimParse {
                line: lineno,
                col: self.col,
                message,
            },
            ProblemKind::Shorted { .. } => NetlistError::ShortedChannel {
                device: format!("m{dev_index}"),
            },
            ProblemKind::Geometry { w, l } => NetlistError::BadGeometry {
                device: format!("m{dev_index}"),
                w_um: w,
                l_um: l,
            },
            ProblemKind::BadCap { node, pf } => NetlistError::BadCapacitance { node, cap_pf: pf },
        }
    }
}

/// Scans one raw line into a validated [`Record`] without touching any
/// builder. On `Err` the line contributes nothing to the netlist, so a
/// recovered build always finishes.
fn scan_line(raw: &str) -> Result<Record<'_>, ScanProblem> {
    let mut fields = [Field::default(); MAX_FIELDS];
    let total = split_fields(raw, &mut fields);
    if total == 0 || fields[0].text.starts_with('|') {
        return Ok(Record::Skip);
    }
    let f0 = fields[0];
    let num = |f: &Field<'_>, what: &str| -> Result<f64, ScanProblem> {
        f.text.parse::<f64>().map_err(|_| {
            ScanProblem::plain(
                codes::PARSE_BAD_NUMBER,
                f.col,
                format!("bad {what} {:?}", f.text),
            )
        })
    };
    match f0.text {
        "e" | "d" => {
            if total != 6 {
                return Err(ScanProblem::plain(
                    codes::PARSE_FIELD_COUNT,
                    f0.col,
                    format!("transistor line needs 6 fields, got {total}"),
                ));
            }
            let l = num(&fields[4], "length")?;
            let w = num(&fields[5], "width")?;
            // Validate the device *before* anything reaches a builder so
            // a rejected line leaves the netlist untouched.
            if fields[2].text == fields[3].text {
                return Err(ScanProblem {
                    code: codes::PARSE_SHORTED_CHANNEL,
                    col: fields[3].col,
                    kind: ProblemKind::Shorted {
                        node: fields[2].text.to_string(),
                    },
                });
            }
            if !w.is_finite() || !l.is_finite() || w <= 0.0 || l <= 0.0 {
                return Err(ScanProblem {
                    code: codes::PARSE_BAD_GEOMETRY,
                    col: fields[4].col,
                    kind: ProblemKind::Geometry { w, l },
                });
            }
            Ok(Record::Device {
                kind: if f0.text == "e" {
                    DeviceKind::Enhancement
                } else {
                    DeviceKind::Depletion
                },
                g: fields[1].text,
                s: fields[2].text,
                d: fields[3].text,
                w,
                l,
            })
        }
        "C" => {
            if total != 3 {
                return Err(ScanProblem::plain(
                    codes::PARSE_FIELD_COUNT,
                    f0.col,
                    "capacitance line needs 3 fields".into(),
                ));
            }
            let ff = fields[2].text.parse::<f64>().map_err(|_| {
                ScanProblem::plain(
                    codes::PARSE_BAD_NUMBER,
                    fields[2].col,
                    format!("bad capacitance {:?}", fields[2].text),
                )
            })?;
            let pf = ff / 1000.0;
            if !pf.is_finite() || pf < 0.0 {
                return Err(ScanProblem {
                    code: codes::PARSE_BAD_CAP,
                    col: fields[2].col,
                    kind: ProblemKind::BadCap {
                        node: fields[1].text.to_string(),
                        pf,
                    },
                });
            }
            Ok(Record::Cap {
                node: fields[1].text,
                pf,
            })
        }
        "i" => {
            if total != 2 {
                return Err(ScanProblem::plain(
                    codes::PARSE_FIELD_COUNT,
                    f0.col,
                    "input line needs 2 fields".into(),
                ));
            }
            Ok(Record::Role {
                node: fields[1].text,
                role: NodeRole::Input,
            })
        }
        "o" => {
            if total != 2 {
                return Err(ScanProblem::plain(
                    codes::PARSE_FIELD_COUNT,
                    f0.col,
                    "output line needs 2 fields".into(),
                ));
            }
            Ok(Record::Role {
                node: fields[1].text,
                role: NodeRole::Output,
            })
        }
        "k" => {
            if total != 3 {
                return Err(ScanProblem::plain(
                    codes::PARSE_FIELD_COUNT,
                    f0.col,
                    "clock line needs 3 fields".into(),
                ));
            }
            let p = fields[2].text.parse::<u8>().map_err(|_| {
                ScanProblem::plain(
                    codes::PARSE_BAD_NUMBER,
                    fields[2].col,
                    format!("bad phase {:?}", fields[2].text),
                )
            })?;
            Ok(Record::Role {
                node: fields[1].text,
                role: NodeRole::Clock(p),
            })
        }
        other => Err(ScanProblem::plain(
            codes::PARSE_UNKNOWN_RECORD,
            f0.col,
            format!("unknown record type {other:?}"),
        )),
    }
}

/// Builds one accepted record into the builder. Shared by the serial
/// reader, the fault-replay prefix, and the worker-panic fallback.
#[inline]
fn apply_record(b: &mut NetlistBuilder, rec: Record<'_>, dev_count: &mut usize) {
    match rec {
        Record::Skip => {}
        Record::Device {
            kind,
            g,
            s,
            d,
            w,
            l,
        } => {
            let gn = b.node(g);
            let sn = b.node(s);
            let dn = b.node(d);
            let name = format!("m{}", *dev_count);
            *dev_count += 1;
            match kind {
                DeviceKind::Enhancement => {
                    b.enhancement(name, gn, sn, dn, w, l);
                }
                DeviceKind::Depletion => {
                    b.depletion(name, gn, sn, dn, w, l);
                }
            }
        }
        Record::Cap { node, pf } => {
            let n = b.node(node);
            b.add_cap(n, pf).expect("validated by scan");
        }
        Record::Role { node, role } => {
            let id = b.node(node);
            b.set_role(id, role);
        }
    }
}

// ----- serial reader ---------------------------------------------------

fn parse_serial_body(
    b: &mut NetlistBuilder,
    body: &str,
    diags: &mut Diagnostics,
    strict: bool,
) -> Result<(u64, usize), NetlistError> {
    let mut dev_count = 0usize;
    let mut line_count = 0u64;
    for (i, raw) in body.lines().enumerate() {
        let lineno = i + 1;
        line_count += 1;
        // Fault plane: a chunk boundary every 64 lines is a trust
        // boundary — a mid-read failure must surface as a loud parse
        // error, never a half-ingested netlist.
        if lineno % 64 == 0 && tv_fault::fault_point!(tv_fault::Site::ParseChunk) {
            tv_obs::incr(tv_obs::Counter::FaultInjected);
            return Err(NetlistError::SimParse {
                line: lineno,
                col: 1,
                message: "injected fault at parse_chunk (tv_fault)".to_string(),
            });
        }
        match scan_line(raw) {
            Ok(rec) => apply_record(b, rec, &mut dev_count),
            Err(p) => {
                if strict {
                    return Err(p.into_strict(lineno, dev_count));
                }
                // Past the error cap the sink drops and counts; parsing
                // continues so every valid line still reaches the netlist.
                let (code, col) = (p.code, p.col);
                diags.push(Diagnostic::error(code, p.into_message(dev_count)).at(lineno, col));
            }
        }
    }
    Ok((line_count, dev_count))
}

// ----- chunk-parallel reader -------------------------------------------

/// Everything one worker learned about its chunk, in local coordinates.
/// The merge replays it against the shared builder in chunk order, which
/// reproduces the serial reader's first-seen node order, device
/// numbering, capacitance accumulation order, and diagnostic stream
/// byte for byte.
struct ChunkOut {
    /// Local symbol table: every name token of every accepted record,
    /// interned in line order — within a chunk, local symbol order *is*
    /// the serial first-seen order.
    names: Interner,
    /// Accepted transistors, in line order, terminals as local symbols.
    devs: Vec<ChunkDev>,
    /// Role and capacitance records, in line order. Capacitance is
    /// replayed per record (not pre-summed) so float accumulation
    /// grouping matches the serial reader exactly.
    events: Vec<ChunkEvent>,
    /// Rejected lines, chunk-relative, capped at the sink's error cap
    /// (the global stream can never keep more from one chunk).
    problems: Vec<ChunkProblem>,
    /// Error lines beyond the retained cap — merged via
    /// [`Diagnostics::note_suppressed`].
    overflow: usize,
    /// Lines in the chunk, blank and comment included.
    lines: u64,
}

struct ChunkDev {
    kind: DeviceKind,
    g: u32,
    s: u32,
    d: u32,
    w: f64,
    l: f64,
}

enum ChunkEvent {
    Role(u32, NodeRole),
    Cap(u32, f64),
}

struct ChunkProblem {
    /// 1-based line within the chunk.
    line_rel: u32,
    /// Accepted devices in this chunk before this line (for device
    /// numbering in messages).
    dev_rel: u32,
    problem: ScanProblem,
}

/// Scans one chunk into local coordinates. Pure function of the chunk
/// text — runs on a worker thread with no shared state.
fn scan_chunk(chunk: &str, retain: usize) -> ChunkOut {
    let mut out = ChunkOut {
        names: Interner::with_capacity(chunk.len() / 16),
        devs: Vec::new(),
        events: Vec::new(),
        problems: Vec::new(),
        overflow: 0,
        lines: 0,
    };
    for (i, raw) in chunk.lines().enumerate() {
        out.lines += 1;
        match scan_line(raw) {
            Ok(Record::Skip) => {}
            Ok(Record::Device {
                kind,
                g,
                s,
                d,
                w,
                l,
            }) => {
                let g = out.names.intern(g).index() as u32;
                let s = out.names.intern(s).index() as u32;
                let d = out.names.intern(d).index() as u32;
                out.devs.push(ChunkDev {
                    kind,
                    g,
                    s,
                    d,
                    w,
                    l,
                });
            }
            Ok(Record::Cap { node, pf }) => {
                let sym = out.names.intern(node).index() as u32;
                out.events.push(ChunkEvent::Cap(sym, pf));
            }
            Ok(Record::Role { node, role }) => {
                let sym = out.names.intern(node).index() as u32;
                out.events.push(ChunkEvent::Role(sym, role));
            }
            Err(p) => {
                if out.problems.len() < retain {
                    out.problems.push(ChunkProblem {
                        line_rel: (i + 1) as u32,
                        dev_rel: out.devs.len() as u32,
                        problem: p,
                    });
                } else {
                    out.overflow += 1;
                }
            }
        }
    }
    out
}

fn parse_chunked(
    b: &mut NetlistBuilder,
    body: &str,
    chunks: &[&str],
    diags: &mut Diagnostics,
    total_lines: u64,
    jobs: usize,
) -> Result<(u64, usize), NetlistError> {
    // Fault plane: the serial reader probes the parse_chunk site every
    // 64 lines, in line order. Replay the same probe sequence up front
    // so an armed plan fires at the identical boundary; if it does,
    // degrade to the serial reader for the completed prefix and return
    // the identical error.
    let mut fired: Option<usize> = None;
    let mut lb = 64u64;
    while lb <= total_lines {
        if tv_fault::fault_point!(tv_fault::Site::ParseChunk) {
            fired = Some(lb as usize);
            break;
        }
        lb += 64;
    }
    if let Some(line) = fired {
        let mut dev_count = 0usize;
        for (i, raw) in body.lines().take(line - 1).enumerate() {
            match scan_line(raw) {
                Ok(rec) => apply_record(b, rec, &mut dev_count),
                Err(p) => {
                    let (code, col) = (p.code, p.col);
                    diags.push(Diagnostic::error(code, p.into_message(dev_count)).at(i + 1, col));
                }
            }
        }
        tv_obs::incr(tv_obs::Counter::FaultInjected);
        return Err(NetlistError::SimParse {
            line,
            col: 1,
            message: "injected fault at parse_chunk (tv_fault)".to_string(),
        });
    }

    // Scan: a worker pool pulls chunk indices off a shared counter.
    // Each scan is wrapped in `catch_unwind` (the PR 2 panic-isolation
    // pattern) so one poisoned chunk degrades, never crashes.
    let retain = diags.max_errors();
    let next = AtomicUsize::new(0);
    let workers = jobs.min(chunks.len());
    let mut slots: Vec<Option<Result<ChunkOut, ()>>> = (0..chunks.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut mine: Vec<(usize, Result<ChunkOut, ()>)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        scan_chunk(chunks[i], retain)
                    }));
                    mine.push((i, r.map_err(|_| ())));
                }
                mine
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("scan worker is panic-isolated") {
                slots[i] = Some(r);
            }
        }
    });

    // Merge, strictly in chunk order.
    let mut line_base = 0u64;
    let mut dev_count = 0usize;
    for (ci, slot) in slots.into_iter().enumerate() {
        match slot.expect("every chunk was scanned") {
            Ok(out) => {
                // Interning local symbols in index order reproduces the
                // serial first-seen node creation order.
                let mut remap: Vec<NodeId> = Vec::with_capacity(out.names.len());
                for sym in 0..out.names.len() {
                    remap.push(b.node(out.names.resolve(Symbol::from_index(sym))));
                }
                for ev in &out.events {
                    match *ev {
                        ChunkEvent::Role(sym, role) => b.set_role(remap[sym as usize], role),
                        ChunkEvent::Cap(sym, pf) => {
                            b.add_cap(remap[sym as usize], pf)
                                .expect("validated by scan");
                        }
                    }
                }
                let dev_base = dev_count;
                for d in &out.devs {
                    let name = format!("m{dev_count}");
                    dev_count += 1;
                    match d.kind {
                        DeviceKind::Enhancement => {
                            b.enhancement(
                                name,
                                remap[d.g as usize],
                                remap[d.s as usize],
                                remap[d.d as usize],
                                d.w,
                                d.l,
                            );
                        }
                        DeviceKind::Depletion => {
                            b.depletion(
                                name,
                                remap[d.g as usize],
                                remap[d.s as usize],
                                remap[d.d as usize],
                                d.w,
                                d.l,
                            );
                        }
                    }
                }
                for p in out.problems {
                    let lineno = line_base + p.line_rel as u64;
                    let (code, col) = (p.problem.code, p.problem.col);
                    let message = p.problem.into_message(dev_base + p.dev_rel as usize);
                    diags.push(Diagnostic::error(code, message).at(lineno as usize, col));
                }
                diags.note_suppressed(out.overflow);
                line_base += out.lines;
            }
            Err(()) => {
                // A worker panicked on this chunk: report it and degrade
                // the chunk to the serial reader, exactly like PR 2's
                // per-level propagation fallback.
                tv_obs::incr(tv_obs::Counter::FaultDegraded);
                diags.push(Diagnostic::warning(
                    codes::ANALYSIS_WORKER_PANIC,
                    "a parse worker panicked; chunk reparsed serially".to_string(),
                ));
                let mut lines = 0u64;
                for (i, raw) in chunks[ci].lines().enumerate() {
                    lines += 1;
                    match scan_line(raw) {
                        Ok(rec) => apply_record(b, rec, &mut dev_count),
                        Err(p) => {
                            let lineno = line_base + i as u64 + 1;
                            let (code, col) = (p.code, p.col);
                            diags.push(
                                Diagnostic::error(code, p.into_message(dev_count))
                                    .at(lineno as usize, col),
                            );
                        }
                    }
                }
                line_base += lines;
            }
        }
    }
    Ok((line_base, dev_count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetlistBuilder, Tech};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let phi = b.clock("phi1", 0);
        let out = b.output("out");
        let mid = b.node("mid");
        b.inverter("i1", a, mid);
        b.pass("p1", phi, mid, out);
        b.add_cap(out, 0.123).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure_and_caps() {
        let nl = sample();
        let text = write(&nl);
        let back = parse(&text, Tech::nmos4um()).unwrap();
        assert_eq!(back.device_count(), nl.device_count());
        assert_eq!(back.node_count(), nl.node_count());
        assert_eq!(back.inputs().len(), 1);
        assert_eq!(back.outputs().len(), 1);
        assert_eq!(back.clocks(), {
            let n = back.node_by_name("phi1").unwrap();
            vec![(n, 0)]
        });
        let out = back.node_by_name("out").unwrap();
        let orig_out = nl.node_by_name("out").unwrap();
        assert!((back.node_cap(out) - nl.node_cap(orig_out)).abs() < 1e-9);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "| header\n\n| another comment\ni a\n";
        let nl = parse(text, Tech::nmos4um()).unwrap();
        assert_eq!(nl.inputs().len(), 1);
    }

    #[test]
    fn malformed_transistor_line_reports_line_number() {
        let text = "| ok\ne a b\n";
        let err = parse(text, Tech::nmos4um()).unwrap_err();
        match err {
            NetlistError::SimParse { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn unknown_record_is_an_error() {
        let err = parse("z foo\n", Tech::nmos4um()).unwrap_err();
        assert!(matches!(err, NetlistError::SimParse { .. }));
    }

    #[test]
    fn bad_number_is_an_error() {
        let err = parse("e a b c four 4\n", Tech::nmos4um()).unwrap_err();
        assert!(matches!(err, NetlistError::SimParse { .. }));
    }

    #[test]
    fn shorted_channel_in_file_is_caught() {
        let err = parse("e g x x 2 4\n", Tech::nmos4um()).unwrap_err();
        assert!(matches!(err, NetlistError::ShortedChannel { .. }));
    }

    #[test]
    fn writer_emits_rails_by_name() {
        let nl = sample();
        let text = write(&nl);
        assert!(text.contains("GND"));
        assert!(text.contains("VDD"));
    }

    #[test]
    fn parse_error_reports_offending_column() {
        // "four" starts at column 9 of "e a b c four 4".
        let err = parse("e a b c four 4\n", Tech::nmos4um()).unwrap_err();
        match err {
            NetlistError::SimParse { line, col, message } => {
                assert_eq!(line, 1);
                assert_eq!(col, 9);
                assert!(message.contains("four"), "message was {message:?}");
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn recovering_parse_collects_all_errors_in_one_pass() {
        // Three distinct problems: unknown record, bad field count, bad number.
        let text = "i a\nz what\ne a b\nC out nope\no out\n";
        let mut diags = Diagnostics::new();
        let nl = parse_recovering(text, Tech::nmos4um(), &mut diags).unwrap();
        assert_eq!(diags.error_count(), 3);
        let seen: Vec<&str> = diags.items().iter().map(|d| d.code).collect();
        assert!(seen.contains(&codes::PARSE_UNKNOWN_RECORD));
        assert!(seen.contains(&codes::PARSE_FIELD_COUNT));
        assert!(seen.contains(&codes::PARSE_BAD_NUMBER));
        // The good lines still built a netlist.
        assert_eq!(nl.inputs().len(), 1);
        assert_eq!(nl.outputs().len(), 1);
    }

    #[test]
    fn recovering_parse_drops_degenerate_devices_but_keeps_the_rest() {
        let text = "i a\ne a x x 2 4\ne a GND out 2 4\no out\n";
        let mut diags = Diagnostics::new();
        let nl = parse_recovering(text, Tech::nmos4um(), &mut diags).unwrap();
        assert_eq!(diags.error_count(), 1);
        assert_eq!(diags.items()[0].code, codes::PARSE_SHORTED_CHANNEL);
        assert_eq!(nl.device_count(), 1);
    }

    #[test]
    fn recovering_parse_respects_error_cap() {
        let mut text = String::new();
        for _ in 0..10 {
            text.push_str("z junk\n");
        }
        let mut diags = Diagnostics::with_max_errors(3);
        parse_recovering(&text, Tech::nmos4um(), &mut diags).unwrap();
        assert_eq!(diags.error_count(), 3);
        assert_eq!(diags.suppressed(), 7, "the rest are counted, not kept");
        assert!(diags.render_text(None).contains("suppressed"));
    }

    #[test]
    fn empty_input_parses_to_empty_netlist() {
        let mut diags = Diagnostics::new();
        let nl = parse_recovering("", Tech::nmos4um(), &mut diags).unwrap();
        assert!(!diags.has_errors());
        assert_eq!(nl.device_count(), 0);
    }

    #[test]
    fn bom_prefixed_input_is_tolerated() {
        let text = "\u{feff}| header\ni a\n";
        let mut diags = Diagnostics::new();
        let nl = parse_recovering(text, Tech::nmos4um(), &mut diags).unwrap();
        assert!(!diags.has_errors());
        assert_eq!(nl.inputs().len(), 1);
        // The BOM is surfaced as an informational note, not an error.
        assert!(diags
            .items()
            .iter()
            .any(|d| d.message.contains("byte-order")));
    }

    #[test]
    fn crlf_input_parses_cleanly() {
        let text = "| header\r\ni a\r\no out\r\ne a GND out 2 4\r\n";
        let mut diags = Diagnostics::new();
        let nl = parse_recovering(text, Tech::nmos4um(), &mut diags).unwrap();
        assert!(!diags.has_errors(), "diags: {:?}", diags.items());
        assert_eq!(nl.device_count(), 1);
    }

    #[test]
    fn truncated_input_reports_the_partial_last_line() {
        // A transistor line cut off mid-record, as from a truncated copy.
        let nl = sample();
        let full = write(&nl);
        let cut = &full[..full.len() - 8];
        let mut diags = Diagnostics::new();
        let back = parse_recovering(cut, Tech::nmos4um(), &mut diags).unwrap();
        assert!(diags.has_errors());
        assert!(back.device_count() < nl.device_count());
    }

    // ----- chunk-parallel determinism ----------------------------------

    /// A workload with repeated structure, cross-chunk node reuse, and
    /// interleaved bad lines — the adversarial case for chunked ingest.
    fn mixed_text(bad_every: usize) -> String {
        let mut t = String::from("| mixed workload\ni a\nk phi1 0\n");
        for n in 0..400 {
            t.push_str(&format!("e a n{} n{} 2 4\n", n, n + 1));
            t.push_str(&format!("C n{} 1.5\n", n % 7));
            if bad_every != 0 && n % bad_every == 0 {
                t.push_str("z junk line\n");
                t.push_str(&format!("e a n{n} n{n} 2 4\n")); // shorted
            }
        }
        t.push_str("o n400\n");
        t
    }

    fn opts(jobs: usize, chunk_bytes: usize) -> ParseOptions {
        ParseOptions { jobs, chunk_bytes }
    }

    #[test]
    fn chunked_parse_is_bit_identical_to_serial() {
        let text = mixed_text(13);
        let mut serial_diags = Diagnostics::new();
        let serial = parse_recovering(&text, Tech::nmos4um(), &mut serial_diags).unwrap();
        for jobs in [2, 3, 8] {
            for chunk_bytes in [64, 301, 4096] {
                let mut diags = Diagnostics::new();
                let nl = parse_recovering_with(
                    &text,
                    Tech::nmos4um(),
                    &mut diags,
                    &opts(jobs, chunk_bytes),
                )
                .unwrap();
                // The writer is canonical: byte-equal output means equal
                // nodes, names, order, roles, caps, and devices.
                assert_eq!(
                    write(&nl),
                    write(&serial),
                    "netlist drift at jobs={jobs} chunk_bytes={chunk_bytes}"
                );
                assert_eq!(
                    diags.render_text(None),
                    serial_diags.render_text(None),
                    "diagnostic drift at jobs={jobs} chunk_bytes={chunk_bytes}"
                );
                assert_eq!(diags.suppressed(), serial_diags.suppressed());
            }
        }
    }

    #[test]
    fn chunked_parse_matches_error_cap_truncation_exactly() {
        let text = mixed_text(3); // many errors, cap will truncate
        let mut serial_diags = Diagnostics::with_max_errors(5);
        let serial = parse_recovering(&text, Tech::nmos4um(), &mut serial_diags).unwrap();
        assert!(serial_diags.suppressed() > 0, "cap must actually engage");
        for jobs in [2, 8] {
            let mut diags = Diagnostics::with_max_errors(5);
            let nl = parse_recovering_with(&text, Tech::nmos4um(), &mut diags, &opts(jobs, 128))
                .unwrap();
            assert_eq!(write(&nl), write(&serial));
            assert_eq!(diags.render_text(None), serial_diags.render_text(None));
            assert_eq!(diags.render_json(None), serial_diags.render_json(None));
            assert_eq!(diags.suppressed(), serial_diags.suppressed());
        }
    }

    #[test]
    fn bad_line_longer_than_a_chunk_is_reported_once_with_exact_position() {
        // The malformed line is far longer than chunk_bytes, so the
        // splitter must extend a chunk across it rather than tearing it.
        let long_name = "n".repeat(300);
        let text = format!("i a\ne a {long_name} {long_name} 2 4\no out\n");
        let mut serial_diags = Diagnostics::new();
        let serial = parse_recovering(&text, Tech::nmos4um(), &mut serial_diags).unwrap();
        let mut diags = Diagnostics::new();
        let nl = parse_recovering_with(&text, Tech::nmos4um(), &mut diags, &opts(4, 16)).unwrap();
        assert_eq!(write(&nl), write(&serial));
        assert_eq!(diags.render_text(None), serial_diags.render_text(None));
        assert_eq!(diags.error_count(), 1);
        let d = &diags.items()[0];
        assert_eq!(d.code, codes::PARSE_SHORTED_CHANNEL);
        assert_eq!(d.line, Some(2));
        assert_eq!(d.col, Some(5 + long_name.len() as u32 + 1));
    }

    #[test]
    fn chunk_split_is_a_pure_line_respecting_cover() {
        let text = mixed_text(7);
        for chunk_bytes in [1, 50, 777] {
            let chunks = split_chunks(&text, chunk_bytes);
            assert_eq!(chunks.concat(), text, "chunks must cover the input");
            for c in &chunks[..chunks.len() - 1] {
                assert!(c.ends_with('\n'), "interior chunk tore a line");
            }
        }
    }

    #[test]
    fn prescan_reserve_eliminates_builder_growth() {
        let text = mixed_text(0);
        let pre = prescan(&text);
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        b.reserve(pre.name_tokens + 2, pre.dev_lines, pre.name_bytes);
        let base = b.growth_events();
        let mut diags = Diagnostics::new();
        parse_serial_body(&mut b, &text, &mut diags, false).unwrap();
        assert_eq!(b.growth_events(), base, "pre-sized parse still grew");
        assert!(b.device_count() > 0);
    }

    #[test]
    fn prescan_counts_match_str_lines_and_records() {
        let text = "| c\n\ni a\ne a b c 2 4\nC b 1\nk phi1 0\ntrailing no newline";
        let pre = prescan(text);
        assert_eq!(pre.lines, text.lines().count() as u64);
        assert_eq!(pre.dev_lines, 1);
        // 3 device names + C + i + k node tokens.
        assert_eq!(pre.name_tokens, 6);
        assert_eq!(
            pre.name_bytes,
            "abc".len() + "b".len() + "a".len() + "phi1".len()
        );
        assert!(pre.peak_alloc_est() > 0);
    }
}
