//! Reader/writer for a `.sim`-style transistor interchange format.
//!
//! The MOSIS/Berkeley `.sim` format was how 1983 layout extractors handed
//! transistor netlists to analyzers like TV. This module implements a
//! documented dialect of it:
//!
//! ```text
//! | anything            comment
//! e g s d L W           enhancement transistor (geometry in µm)
//! d g s d L W           depletion transistor
//! C n cap               explicit capacitance on node n, femtofarads
//! i n                   declare n a primary input
//! o n                   declare n a primary output
//! k n p                 declare n a clock of phase p (0 = φ1, 1 = φ2)
//! ```
//!
//! Node names are arbitrary whitespace-free tokens; `VDD` and `GND` are the
//! rails. Geometry is in µm (the historical format used centimicrons; the
//! writer emits a header comment naming the unit so files are
//! self-describing).
//!
//! # Example
//!
//! ```
//! use tv_netlist::{sim_format, NetlistBuilder, Tech};
//!
//! # fn main() -> Result<(), tv_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new(Tech::nmos4um());
//! let a = b.input("a");
//! let out = b.output("out");
//! b.inverter("inv", a, out);
//! let nl = b.finish()?;
//!
//! let text = sim_format::write(&nl);
//! let back = sim_format::parse(&text, Tech::nmos4um())?;
//! assert_eq!(back.device_count(), nl.device_count());
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use crate::{DeviceKind, Netlist, NetlistBuilder, NetlistError, NodeRole, Tech};

/// Serializes a netlist to the `.sim` dialect described in the module docs.
///
/// Only *explicit* capacitance is emitted (`C` lines); gate and diffusion
/// capacitance is re-derived from geometry on parse, so a round trip
/// reproduces the same totals.
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| nmos-tv sim file, geometry in um, caps in fF");
    let _ = writeln!(
        out,
        "| nodes={} devices={}",
        netlist.node_count(),
        netlist.device_count()
    );
    for id in netlist.node_ids() {
        let node = netlist.node(id);
        match node.role() {
            NodeRole::Input => {
                let _ = writeln!(out, "i {}", node.name());
            }
            NodeRole::Output => {
                let _ = writeln!(out, "o {}", node.name());
            }
            NodeRole::Clock(p) => {
                let _ = writeln!(out, "k {} {}", node.name(), p);
            }
            _ => {}
        }
        if node.extra_cap() > 0.0 {
            // pF -> fF for the file.
            let _ = writeln!(out, "C {} {}", node.name(), node.extra_cap() * 1000.0);
        }
    }
    for dref in netlist.devices() {
        let d = dref.device;
        let _ = writeln!(
            out,
            "{} {} {} {} {} {}",
            d.kind().sim_code(),
            netlist.node(d.gate()).name(),
            netlist.node(d.source()).name(),
            netlist.node(d.drain()).name(),
            d.length(),
            d.width(),
        );
    }
    out
}

/// Parses the `.sim` dialect into a netlist under the given technology.
///
/// # Errors
///
/// Returns [`NetlistError::SimParse`] for malformed lines (with the 1-based
/// line number) and propagates any structural error found when finishing
/// the netlist (e.g. a shorted channel in the file).
pub fn parse(text: &str, tech: Tech) -> Result<Netlist, NetlistError> {
    let mut b = NetlistBuilder::new(tech);
    let mut dev_count = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('|') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let bad = |message: String| NetlistError::SimParse {
            line: lineno,
            message,
        };
        match fields[0] {
            "e" | "d" => {
                if fields.len() != 6 {
                    return Err(bad(format!(
                        "transistor line needs 6 fields, got {}",
                        fields.len()
                    )));
                }
                let g = b.node(fields[1]);
                let s = b.node(fields[2]);
                let dr = b.node(fields[3]);
                let l: f64 = fields[4]
                    .parse()
                    .map_err(|_| bad(format!("bad length {:?}", fields[4])))?;
                let w: f64 = fields[5]
                    .parse()
                    .map_err(|_| bad(format!("bad width {:?}", fields[5])))?;
                let kind = if fields[0] == "e" {
                    DeviceKind::Enhancement
                } else {
                    DeviceKind::Depletion
                };
                let name = format!("m{dev_count}");
                dev_count += 1;
                match kind {
                    DeviceKind::Enhancement => b.enhancement(name, g, s, dr, w, l),
                    DeviceKind::Depletion => b.depletion(name, g, s, dr, w, l),
                };
            }
            "C" => {
                if fields.len() != 3 {
                    return Err(bad("capacitance line needs 3 fields".into()));
                }
                let n = b.node(fields[1]);
                let ff: f64 = fields[2]
                    .parse()
                    .map_err(|_| bad(format!("bad capacitance {:?}", fields[2])))?;
                b.add_cap(n, ff / 1000.0)?;
            }
            "i" => {
                if fields.len() != 2 {
                    return Err(bad("input line needs 2 fields".into()));
                }
                b.input(fields[1]);
            }
            "o" => {
                if fields.len() != 2 {
                    return Err(bad("output line needs 2 fields".into()));
                }
                b.output(fields[1]);
            }
            "k" => {
                if fields.len() != 3 {
                    return Err(bad("clock line needs 3 fields".into()));
                }
                let p: u8 = fields[2]
                    .parse()
                    .map_err(|_| bad(format!("bad phase {:?}", fields[2])))?;
                b.clock(fields[1], p);
            }
            other => {
                return Err(bad(format!("unknown record type {other:?}")));
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetlistBuilder, Tech};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let phi = b.clock("phi1", 0);
        let out = b.output("out");
        let mid = b.node("mid");
        b.inverter("i1", a, mid);
        b.pass("p1", phi, mid, out);
        b.add_cap(out, 0.123).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure_and_caps() {
        let nl = sample();
        let text = write(&nl);
        let back = parse(&text, Tech::nmos4um()).unwrap();
        assert_eq!(back.device_count(), nl.device_count());
        assert_eq!(back.node_count(), nl.node_count());
        assert_eq!(back.inputs().len(), 1);
        assert_eq!(back.outputs().len(), 1);
        assert_eq!(back.clocks(), {
            let n = back.node_by_name("phi1").unwrap();
            vec![(n, 0)]
        });
        let out = back.node_by_name("out").unwrap();
        let orig_out = nl.node_by_name("out").unwrap();
        assert!((back.node_cap(out) - nl.node_cap(orig_out)).abs() < 1e-9);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "| header\n\n| another comment\ni a\n";
        let nl = parse(text, Tech::nmos4um()).unwrap();
        assert_eq!(nl.inputs().len(), 1);
    }

    #[test]
    fn malformed_transistor_line_reports_line_number() {
        let text = "| ok\ne a b\n";
        let err = parse(text, Tech::nmos4um()).unwrap_err();
        match err {
            NetlistError::SimParse { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn unknown_record_is_an_error() {
        let err = parse("z foo\n", Tech::nmos4um()).unwrap_err();
        assert!(matches!(err, NetlistError::SimParse { .. }));
    }

    #[test]
    fn bad_number_is_an_error() {
        let err = parse("e a b c four 4\n", Tech::nmos4um()).unwrap_err();
        assert!(matches!(err, NetlistError::SimParse { .. }));
    }

    #[test]
    fn shorted_channel_in_file_is_caught() {
        let err = parse("e g x x 2 4\n", Tech::nmos4um()).unwrap_err();
        assert!(matches!(err, NetlistError::ShortedChannel { .. }));
    }

    #[test]
    fn writer_emits_rails_by_name() {
        let nl = sample();
        let text = write(&nl);
        assert!(text.contains("GND"));
        assert!(text.contains("VDD"));
    }
}
