//! The unified diagnostic stream shared by every pipeline layer.
//!
//! Extracted netlists arrive truncated, mis-labelled, or structurally
//! degenerate, and a production analyzer must report *all* of a file's
//! problems in one run instead of bailing at the first. Every layer —
//! the `.sim` parser, the structural lints ([`crate::validate`]), the
//! signal-flow fixpoint, and the timing engine's resource guards — emits
//! [`Diagnostic`]s into one [`Diagnostics`] sink, so a single renderer
//! (human text or machine JSON) covers parse, lint, and analysis output.
//!
//! Each diagnostic carries a **stable code** (`TV0xxx`) so downstream
//! tooling can filter without string-matching messages:
//!
//! | range | layer |
//! |---|---|
//! | `TV00xx` | `.sim`/SPICE parse and structural ingest |
//! | `TV01xx` | netlist lints ([`crate::validate`]) |
//! | `TV02xx` | signal-flow resolution |
//! | `TV03xx` | timing engine resource guards and worker isolation |
//! | `TV04xx` | electrical rule checks |
//! | `TV05xx` | session journal recovery and observability readers |
//! | `TV06xx` | session command dispatch (typed `ok:false` replies) |
//! | `TV07xx` | serving-plane wire protocol (defined in `tv_proto`) |

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Purely informational (e.g. suppression notices).
    Info,
    /// Suspicious but analysis proceeds (lints, partial results).
    Warning,
    /// The input or analysis is genuinely broken at this point.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. The numeric ranges are documented in the
/// module docs; codes are never reused once published.
pub mod codes {
    /// Unknown `.sim` record type.
    pub const PARSE_UNKNOWN_RECORD: &str = "TV0001";
    /// A `.sim` record with the wrong number of fields.
    pub const PARSE_FIELD_COUNT: &str = "TV0002";
    /// A numeric field that does not parse.
    pub const PARSE_BAD_NUMBER: &str = "TV0003";
    /// A negative or non-finite explicit capacitance.
    pub const PARSE_BAD_CAP: &str = "TV0004";
    /// A transistor whose source and drain are the same node.
    pub const PARSE_SHORTED_CHANNEL: &str = "TV0005";
    /// A transistor with non-positive or non-finite geometry.
    pub const PARSE_BAD_GEOMETRY: &str = "TV0006";
    /// Further errors were suppressed by the `--max-errors` cap.
    pub const PARSE_SUPPRESSED: &str = "TV0007";

    /// A node gates transistors but nothing can ever drive it.
    pub const LINT_FLOATING_GATE: &str = "TV0101";
    /// A channel-only node that connects to nothing else.
    pub const LINT_DEAD_END: &str = "TV0102";
    /// An enhancement channel bridging VDD and GND.
    pub const LINT_RAIL_BRIDGE: &str = "TV0103";
    /// A depletion device wired as neither load nor buffer.
    pub const LINT_STRAY_DEPLETION: &str = "TV0104";
    /// A primary input that is also driven on-chip.
    pub const LINT_DRIVEN_INPUT: &str = "TV0105";

    /// A pass transistor no direction rule could orient.
    pub const FLOW_UNRESOLVED: &str = "TV0201";
    /// A pass transistor proven genuinely bidirectional.
    pub const FLOW_BIDIRECTIONAL: &str = "TV0202";

    /// The relaxation budget was exhausted; arrivals are partial.
    pub const ANALYSIS_BUDGET_EXHAUSTED: &str = "TV0301";
    /// The wall-clock deadline expired; arrivals are partial.
    pub const ANALYSIS_DEADLINE: &str = "TV0302";
    /// A worker thread panicked and its level was degraded to serial.
    pub const ANALYSIS_WORKER_PANIC: &str = "TV0303";
    /// The netlist exceeds the configured size guard.
    pub const ANALYSIS_TOO_LARGE: &str = "TV0304";
    /// A combinational cycle was detected (residue did not settle).
    pub const ANALYSIS_CYCLIC: &str = "TV0305";

    /// Pull-up/pull-down ratio below the technology requirement.
    pub const CHECK_RATIO: &str = "TV0401";
    /// Stored charge may redistribute onto undriven capacitance.
    pub const CHECK_CHARGE_SHARING: &str = "TV0402";
    /// A node derived from both clock phases.
    pub const CHECK_CLOCK_CONFLICT: &str = "TV0403";

    /// A session journal whose header or interior is malformed; the
    /// file cannot be trusted and resume is refused.
    pub const JOURNAL_MALFORMED: &str = "TV0501";
    /// A session journal with a torn final entry (a crash mid-append);
    /// the tail is dropped and replay proceeds from the valid prefix.
    pub const JOURNAL_TRUNCATED: &str = "TV0502";
    /// A replayed journal entry whose revision or fingerprint does not
    /// match what the journal recorded; resume is refused.
    pub const JOURNAL_DIVERGED: &str = "TV0503";
    /// The journal file could not be read or appended.
    pub const JOURNAL_IO: &str = "TV0504";
    /// A `--trace` file `tv trace-check` could not parse.
    pub const OBS_BAD_TRACE: &str = "TV0505";
    /// A `--metrics` dump a reader could not parse.
    pub const OBS_BAD_METRICS: &str = "TV0506";

    /// A session command whose verb the dispatcher does not know. The
    /// reply is `ok:false` with this code; the session (and any served
    /// connection hosting it) stays alive.
    pub const SESSION_UNKNOWN_COMMAND: &str = "TV0601";
    /// A known session command that failed (bad arguments, analysis
    /// error, missing file). The session stays alive.
    pub const SESSION_COMMAND_FAILED: &str = "TV0602";
    /// A session command that panicked past the supervisor's retry
    /// budget; the command is abandoned but the session stays alive.
    pub const SESSION_PANIC: &str = "TV0603";
}

/// One reportable condition, with a stable code and an optional source
/// location (1-based line and column into the input file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable `TV0xxx` code (see [`codes`]).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// 1-based line in the input file, when the condition has one.
    pub line: Option<u32>,
    /// 1-based column of the offending token, when known.
    pub col: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// An error diagnostic without a source location.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            line: None,
            col: None,
            message: message.into(),
        }
    }

    /// A warning diagnostic without a source location.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// An info diagnostic without a source location.
    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Info,
            ..Diagnostic::error(code, message)
        }
    }

    /// Attaches a 1-based line/column source location.
    pub fn at(mut self, line: usize, col: usize) -> Self {
        self.line = Some(line as u32);
        self.col = Some(col as u32);
        self
    }

    /// Renders the diagnostic as one human-readable line, prefixed with
    /// `path:` when a path is given (the GCC-style format editors parse).
    pub fn render_text(&self, path: Option<&str>) -> String {
        let mut s = String::new();
        if let Some(p) = path {
            s.push_str(p);
            s.push(':');
        }
        if let Some(l) = self.line {
            s.push_str(&l.to_string());
            s.push(':');
            if let Some(c) = self.col {
                s.push_str(&c.to_string());
                s.push(':');
            }
        }
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&format!(
            "{} [{}]: {}",
            self.severity, self.code, self.message
        ));
        s
    }

    /// Renders the diagnostic as one JSON object.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"code\":\"{}\"", self.code));
        s.push_str(&format!(",\"severity\":\"{}\"", self.severity));
        if let Some(l) = self.line {
            s.push_str(&format!(",\"line\":{l}"));
        }
        if let Some(c) = self.col {
            s.push_str(&format!(",\"col\":{c}"));
        }
        s.push_str(&format!(",\"message\":\"{}\"", json_escape(&self.message)));
        s.push('}');
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_text(None))
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The accumulating sink every pipeline layer pushes into.
///
/// A fresh sink performs **no allocation** until the first diagnostic
/// arrives, so threading one through a clean-input hot path is free.
/// The error cap (`--max-errors`) bounds work on pathological inputs:
/// once `max_errors` error-severity diagnostics have been recorded,
/// [`Diagnostics::push`] reports saturation so producers can stop, and a
/// single suppression notice is appended.
#[derive(Debug, Clone)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
    max_errors: usize,
    suppressed: usize,
}

impl Default for Diagnostics {
    fn default() -> Self {
        Self::new()
    }
}

/// The default error cap, matching the CLI's `--max-errors` default.
pub const DEFAULT_MAX_ERRORS: usize = 20;

impl Diagnostics {
    /// An empty sink with the default error cap.
    pub fn new() -> Self {
        Self::with_max_errors(DEFAULT_MAX_ERRORS)
    }

    /// An empty sink capping error-severity diagnostics at `max_errors`
    /// (0 is treated as 1 — a rejection must always carry at least one
    /// diagnostic).
    pub fn with_max_errors(max_errors: usize) -> Self {
        Diagnostics {
            items: Vec::new(),
            max_errors: max_errors.max(1),
            suppressed: 0,
        }
    }

    /// Records a diagnostic. Returns `false` once the error cap is
    /// reached — producers should stop generating more errors (further
    /// pushes of error diagnostics are counted but dropped).
    pub fn push(&mut self, d: Diagnostic) -> bool {
        tv_obs::incr(tv_obs::Counter::DiagnosticsEmitted);
        if d.severity == Severity::Error && self.error_count() >= self.max_errors {
            self.suppressed += 1;
            return false;
        }
        self.items.push(d);
        self.error_count() < self.max_errors
    }

    /// Records every diagnostic of an iterator (the cap still applies).
    pub fn extend(&mut self, items: impl IntoIterator<Item = Diagnostic>) {
        for d in items {
            self.push(d);
        }
    }

    /// All recorded diagnostics, in arrival order (plus a trailing
    /// suppression notice when the cap was hit).
    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Number of recorded diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty() && self.suppressed == 0
    }

    /// Number of error-severity diagnostics recorded.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics recorded.
    pub fn warning_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error diagnostics dropped by the cap.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// The error cap this sink was built with.
    pub fn max_errors(&self) -> usize {
        self.max_errors
    }

    /// Records that `n` error diagnostics were generated but dropped
    /// without ever being materialized. Byte-for-byte equivalent to `n`
    /// capped [`Diagnostics::push`] calls: the suppressed tally and the
    /// `DiagnosticsEmitted` counter advance identically — which is how
    /// the chunk-parallel `.sim` parser merges each worker's overflow.
    pub fn note_suppressed(&mut self, n: usize) {
        tv_obs::add(tv_obs::Counter::DiagnosticsEmitted, n as u64);
        self.suppressed += n;
    }

    /// Consumes the sink, yielding the diagnostics (with a suppression
    /// notice appended when any were dropped).
    pub fn into_items(mut self) -> Vec<Diagnostic> {
        if self.suppressed > 0 {
            let n = self.suppressed;
            self.items.push(Diagnostic::info(
                codes::PARSE_SUPPRESSED,
                format!("{n} further error(s) suppressed by the error cap"),
            ));
        }
        self.items
    }

    /// Renders every diagnostic as human-readable text, one per line.
    pub fn render_text(&self, path: Option<&str>) -> String {
        let mut s = String::new();
        for d in &self.items {
            s.push_str(&d.render_text(path));
            s.push('\n');
        }
        if self.suppressed > 0 {
            s.push_str(&format!(
                "{} further error(s) suppressed by the error cap\n",
                self.suppressed
            ));
        }
        s
    }

    /// Renders the whole stream as one JSON document:
    /// `{"diagnostics":[...],"errors":N,"warnings":M,"suppressed":K}`.
    pub fn render_json(&self, path: Option<&str>) -> String {
        let mut s = String::from("{\"diagnostics\":[");
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.render_json());
        }
        s.push_str(&format!(
            "],\"errors\":{},\"warnings\":{},\"suppressed\":{}",
            self.error_count(),
            self.warning_count(),
            self.suppressed
        ));
        if let Some(p) = path {
            s.push_str(&format!(",\"path\":\"{}\"", json_escape(p)));
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_includes_location_and_code() {
        let d = Diagnostic::error(codes::PARSE_BAD_NUMBER, "bad length \"four\"").at(3, 9);
        assert_eq!(
            d.render_text(Some("a.sim")),
            "a.sim:3:9: error [TV0003]: bad length \"four\""
        );
        let d = Diagnostic::warning(codes::LINT_DEAD_END, "dead-end node");
        assert_eq!(d.render_text(None), "warning [TV0102]: dead-end node");
    }

    #[test]
    fn json_rendering_escapes_and_carries_fields() {
        let d = Diagnostic::error(codes::PARSE_UNKNOWN_RECORD, "unknown \"z\"\n").at(1, 1);
        let j = d.render_json();
        assert!(j.contains("\"code\":\"TV0001\""));
        assert!(j.contains("\"line\":1"));
        assert!(j.contains("\\\"z\\\"\\n"), "{j}");
    }

    #[test]
    fn sink_caps_errors_and_counts_suppressed() {
        let mut sink = Diagnostics::with_max_errors(2);
        assert!(sink.push(Diagnostic::error(codes::PARSE_BAD_NUMBER, "e1")));
        assert!(!sink.push(Diagnostic::error(codes::PARSE_BAD_NUMBER, "e2")));
        assert!(!sink.push(Diagnostic::error(codes::PARSE_BAD_NUMBER, "e3")));
        // Warnings are unaffected by the cap.
        sink.push(Diagnostic::warning(codes::LINT_DEAD_END, "w"));
        assert_eq!(sink.error_count(), 2);
        assert_eq!(sink.warning_count(), 1);
        assert_eq!(sink.suppressed(), 1);
        let items = sink.into_items();
        assert_eq!(items.last().unwrap().code, codes::PARSE_SUPPRESSED);
    }

    #[test]
    fn empty_sink_allocates_nothing_and_renders_empty() {
        let sink = Diagnostics::new();
        assert!(sink.is_empty());
        assert_eq!(sink.len(), 0);
        assert_eq!(sink.render_text(None), "");
        assert!(sink.render_json(None).starts_with("{\"diagnostics\":[]"));
    }

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn json_stream_has_summary_counts() {
        let mut sink = Diagnostics::new();
        sink.push(Diagnostic::error(codes::PARSE_FIELD_COUNT, "x"));
        sink.push(Diagnostic::warning(codes::FLOW_UNRESOLVED, "y"));
        let j = sink.render_json(Some("f.sim"));
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("\"warnings\":1"));
        assert!(j.contains("\"path\":\"f.sim\""));
    }
}
