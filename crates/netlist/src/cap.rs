//! Node capacitance extraction from device geometry.

use crate::{Device, Node, Tech};

/// Computes per-node capacitance the way a 1983 extractor did: each node's
/// total load is its explicit wiring capacitance, plus the gate-oxide
/// capacitance of every transistor it gates, plus one diffusion
/// contribution per channel terminal sitting on it.
///
/// # Example
///
/// ```
/// use tv_netlist::{CapModel, Tech};
///
/// let tech = Tech::nmos4um();
/// let model = CapModel::new(&tech);
/// // A minimum gate (4 µm × 4 µm) presents 6.4 fF of oxide:
/// let c = model.gate_contribution(4.0, 4.0);
/// assert!((c - 0.0064).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct CapModel {
    c_gate_per_um2: f64,
    c_diff_per_um: f64,
}

impl CapModel {
    /// Builds a capacitance model from a technology's parameters.
    pub fn new(tech: &Tech) -> Self {
        CapModel {
            c_gate_per_um2: tech.c_gate_per_um2,
            c_diff_per_um: tech.c_diff_per_um,
        }
    }

    /// Gate-oxide capacitance of one device of the given geometry, pF.
    #[inline]
    pub fn gate_contribution(&self, w_um: f64, l_um: f64) -> f64 {
        self.c_gate_per_um2 * w_um * l_um
    }

    /// Diffusion capacitance of one channel terminal of the given width, pF.
    #[inline]
    pub fn diffusion_contribution(&self, w_um: f64) -> f64 {
        self.c_diff_per_um * w_um
    }

    /// Computes the total capacitance of every node.
    ///
    /// Returns a vector indexed by node id: wiring + Σ gate + Σ diffusion.
    pub fn node_caps(&self, nodes: &[Node], devices: &[Device]) -> Vec<f64> {
        let mut caps: Vec<f64> = nodes.iter().map(|n| n.extra_cap()).collect();
        for d in devices {
            caps[d.gate().index()] += self.gate_contribution(d.width(), d.length());
            caps[d.source().index()] += self.diffusion_contribution(d.width());
            caps[d.drain().index()] += self.diffusion_contribution(d.width());
        }
        caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetlistBuilder, Tech};

    #[test]
    fn gate_cap_dominates_min_device() {
        let t = Tech::nmos4um();
        let m = CapModel::new(&t);
        // For a minimum 4×4 µm device, gate (6.4 fF) > one diffusion (0.8 fF).
        assert!(m.gate_contribution(4.0, 4.0) > m.diffusion_contribution(4.0));
    }

    #[test]
    fn fanout_multiplies_gate_load() {
        let t = Tech::nmos4um();
        let mut b = NetlistBuilder::new(t.clone());
        let a = b.input("a");
        // Three inverters all gated by `a`.
        for i in 0..3 {
            let out = b.node(format!("o{i}"));
            b.inverter(format!("inv{i}"), a, out);
        }
        let nl = b.finish().unwrap();
        let per_gate = t.gate_capacitance(8.0, 4.0); // builder's pull-down: W=2·min, L=min
                                                     // `a` has no channel contacts, so its cap is exactly 3 gate loads.
        assert!((nl.node_cap(a) - 3.0 * per_gate).abs() < 1e-12);
    }

    #[test]
    fn explicit_cap_adds_on_top() {
        let t = Tech::nmos4um();
        let mut b = NetlistBuilder::new(t);
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("inv0", a, out);
        let base = {
            let nl = b.clone().finish().unwrap();
            nl.node_cap(out)
        };
        b.add_cap(out, 1.25).unwrap();
        let nl = b.finish().unwrap();
        assert!((nl.node_cap(out) - (base + 1.25)).abs() < 1e-12);
    }

    #[test]
    fn empty_netlist_has_zero_caps() {
        let nl = NetlistBuilder::new(Tech::nmos4um()).finish().unwrap();
        assert_eq!(nl.node_cap(nl.vdd()), 0.0);
        assert_eq!(nl.node_cap(nl.gnd()), 0.0);
    }
}
