//! A revisioned, editable design database around an immutable [`Netlist`].
//!
//! Jouppi's TV was meant to be re-run over a *live* layout: the designer
//! resizes a driver, the verifier answers again. [`Design`] is the
//! database that makes that cheap. It owns one netlist and exposes a
//! typed edit API — resize a device, change a node capacitance, add or
//! remove a device, switch technology — where every edit:
//!
//! * bumps a monotonically increasing [`Revision`],
//! * bumps only the *revision counters* of the facts it can change
//!   (topology, geometry, capacitance, technology), and
//! * records the set of **dirty nodes** whose electrical surroundings
//!   changed, so downstream passes can re-derive just the affected cone
//!   instead of reparsing the chip.
//!
//! The counters are the contract consumed by the pass pipeline in
//! `tv-core`: signal-flow direction and latch finding depend only on
//! `topo_rev` (they never read W/L or capacitance), while delay
//! calculation also depends on `geom_rev`, `cap_rev`, and `tech_rev`.
//! A capacitance edit therefore cannot invalidate flow resolution *by
//! construction*.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Device, DeviceId, DeviceKind, Netlist, NetlistError, NodeId, NodeRole, Tech};

/// Global design-identity counter: every [`Design`] (and every
/// [`DesignStamp::unique`]) gets an id no other design in this process
/// shares, so cached pass results can never be confused across designs.
static NEXT_DESIGN_ID: AtomicU64 = AtomicU64::new(1);

/// A monotonically increasing edit counter. Revision 0 is the freshly
/// loaded design; every successful edit increments it by exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Revision(pub u64);

impl std::fmt::Display for Revision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// What kind of fact an edit can change, from the invalidation engine's
/// point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EditClass {
    /// Geometry or capacitance only: node/device *sets* and connectivity
    /// are untouched, so flow, qualification, and latches stay valid.
    Parametric,
    /// Nodes or devices were added/removed/rewired: everything derived
    /// from connectivity is suspect.
    Structural,
    /// The technology file changed: every resistance and capacitance on
    /// the chip changed, but connectivity did not.
    Tech,
}

/// The receipt returned by every edit: which revision the design is now
/// at, how the edit classifies, and which nodes it dirtied (empty means
/// "all nodes" for structural and tech edits).
#[derive(Debug, Clone, PartialEq)]
pub struct EditReceipt {
    /// The design's revision after this edit.
    pub revision: Revision,
    /// Parametric, structural, or tech.
    pub class: EditClass,
    /// Non-rail nodes whose electrical neighborhood changed. Empty for
    /// [`EditClass::Structural`] and [`EditClass::Tech`] edits, which
    /// dirty the whole design.
    pub dirty: Vec<NodeId>,
}

/// A snapshot of the design's revision counters — the fingerprint inputs
/// the pass pipeline hashes. Two stamps comparing equal on a counter
/// guarantees the corresponding fact set is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignStamp {
    /// Process-unique identity of the design this stamp came from.
    pub design: u64,
    /// Bumped by edits that change nodes, devices, roles, or connectivity.
    pub topo: u64,
    /// Bumped by edits that change device W/L.
    pub geom: u64,
    /// Bumped by edits that change node capacitance (explicit wiring cap
    /// or, transitively, gate/diffusion cap via geometry/structure).
    pub cap: u64,
    /// Bumped by technology swaps.
    pub tech: u64,
}

impl DesignStamp {
    /// A stamp that can never equal any other stamp: used by the one-shot
    /// `Analyzer` path so a throwaway analysis never aliases a cached one.
    pub fn unique() -> Self {
        let id = NEXT_DESIGN_ID.fetch_add(1, Ordering::Relaxed);
        DesignStamp {
            design: id,
            topo: 0,
            geom: 0,
            cap: 0,
            tech: 0,
        }
    }
}

/// The answer to "what changed since revision R?", used to decide between
/// splicing a few timing-graph roots and rebuilding from scratch.
#[derive(Debug, Clone, PartialEq)]
pub enum DirtySince {
    /// Nothing changed: the queried revision is current.
    Clean,
    /// Only parametric edits happened; the union of their dirty nodes.
    Nodes(Vec<NodeId>),
    /// A structural or tech edit happened (or the log no longer reaches
    /// back that far): treat everything as dirty.
    All,
}

/// How many edit records the dirty log retains. A session that performs
/// more edits than this between analyses simply falls back to "all dirty"
/// — correctness never depends on the log, only splice precision does.
const DIRTY_LOG_CAP: usize = 4096;

#[derive(Debug, Clone)]
enum DirtyScope {
    Nodes(Vec<NodeId>),
    All,
}

/// A live, editable design: one [`Netlist`] plus the revision counters
/// and dirty log described in the [module docs](self).
///
/// # Example
///
/// ```
/// use tv_netlist::{Design, NetlistBuilder, Tech};
///
/// # fn main() -> Result<(), tv_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(Tech::nmos4um());
/// let a = b.input("a");
/// let out = b.output("out");
/// let (_pu, pd) = b.inverter("i1", a, out);
/// let mut design = Design::new(b.finish()?);
///
/// let before = design.stamp();
/// let receipt = design.resize_device(pd, 8.0, 2.0)?;
/// assert_eq!(receipt.dirty, vec![a, out]); // gate + non-rail channel end
/// let after = design.stamp();
/// assert_eq!(before.topo, after.topo);     // connectivity untouched
/// assert_ne!(before.geom, after.geom);     // geometry changed
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Design {
    netlist: Netlist,
    design_id: u64,
    revision: u64,
    topo_rev: u64,
    geom_rev: u64,
    cap_rev: u64,
    tech_rev: u64,
    /// `(revision-after-edit, scope)` per edit, oldest first, capped at
    /// [`DIRTY_LOG_CAP`].
    log: VecDeque<(u64, DirtyScope)>,
}

impl Design {
    /// Wraps a freshly built or parsed netlist at revision 0.
    pub fn new(netlist: Netlist) -> Self {
        Design {
            netlist,
            design_id: NEXT_DESIGN_ID.fetch_add(1, Ordering::Relaxed),
            revision: 0,
            topo_rev: 0,
            geom_rev: 0,
            cap_rev: 0,
            tech_rev: 0,
            log: VecDeque::new(),
        }
    }

    /// The current netlist. Immutable — all mutation goes through the
    /// typed edit API so the revision counters cannot be bypassed.
    #[inline]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Unwraps the design back into its netlist.
    pub fn into_netlist(self) -> Netlist {
        self.netlist
    }

    /// The current revision (0 = as loaded).
    #[inline]
    pub fn revision(&self) -> Revision {
        Revision(self.revision)
    }

    /// The current counter snapshot for fingerprinting.
    #[inline]
    pub fn stamp(&self) -> DesignStamp {
        DesignStamp {
            design: self.design_id,
            topo: self.topo_rev,
            geom: self.geom_rev,
            cap: self.cap_rev,
            tech: self.tech_rev,
        }
    }

    /// Everything dirtied strictly after `since`, or [`DirtySince::All`]
    /// if a structural/tech edit intervened or the log has been trimmed
    /// past that point.
    pub fn dirty_since(&self, since: Revision) -> DirtySince {
        if since.0 >= self.revision {
            return DirtySince::Clean;
        }
        // The log must cover every revision in (since, current]; its
        // entries are consecutive, so it suffices that the oldest retained
        // entry is no later than since+1.
        match self.log.front() {
            Some(&(oldest, _)) if oldest <= since.0 + 1 => {}
            _ => return DirtySince::All,
        }
        let mut nodes = Vec::new();
        for (rev, scope) in &self.log {
            if *rev <= since.0 {
                continue;
            }
            match scope {
                DirtyScope::All => return DirtySince::All,
                DirtyScope::Nodes(ns) => nodes.extend_from_slice(ns),
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        DirtySince::Nodes(nodes)
    }

    fn record(&mut self, class: EditClass, dirty: Vec<NodeId>) -> EditReceipt {
        self.revision += 1;
        let scope = match class {
            EditClass::Parametric => DirtyScope::Nodes(dirty.clone()),
            EditClass::Structural | EditClass::Tech => DirtyScope::All,
        };
        if self.log.len() == DIRTY_LOG_CAP {
            self.log.pop_front();
        }
        self.log.push_back((self.revision, scope));
        EditReceipt {
            revision: Revision(self.revision),
            class,
            dirty,
        }
    }

    /// The non-rail nodes electrically adjacent to a device: its gate and
    /// both channel ends, deduplicated. This is the dirty set of any edit
    /// local to that device.
    fn device_neighborhood(&self, dev: DeviceId) -> Vec<NodeId> {
        let d = self.netlist.device(dev);
        let mut dirty = Vec::with_capacity(3);
        for n in [d.gate(), d.source(), d.drain()] {
            if !self.netlist.node(n).role().is_rail() && !dirty.contains(&n) {
                dirty.push(n);
            }
        }
        dirty.sort_unstable();
        dirty
    }

    // ----- parametric edits -------------------------------------------

    /// Resizes a device's drawn channel to `w_um` × `l_um`.
    ///
    /// Parametric: bumps `geom_rev` and `cap_rev` (gate/diffusion
    /// capacitance follows geometry); dirties the device's gate and
    /// channel nodes.
    ///
    /// # Errors
    ///
    /// [`NetlistError::BadGeometry`] if either dimension is non-positive
    /// or non-finite; the design is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is not from this design's netlist.
    pub fn resize_device(
        &mut self,
        dev: DeviceId,
        w_um: f64,
        l_um: f64,
    ) -> Result<EditReceipt, NetlistError> {
        if !w_um.is_finite() || !l_um.is_finite() || w_um <= 0.0 || l_um <= 0.0 {
            return Err(NetlistError::BadGeometry {
                device: self.netlist.device(dev).name().to_owned(),
                w_um,
                l_um,
            });
        }
        let dirty = self.device_neighborhood(dev);
        {
            let d = &mut self.netlist.devices[dev.index()];
            d.w_um = w_um;
            d.l_um = l_um;
        }
        self.netlist.recompute_caps();
        self.geom_rev += 1;
        self.cap_rev += 1;
        Ok(self.record(EditClass::Parametric, dirty))
    }

    /// Sets a node's explicit wiring capacitance to `cap_pf` (absolute,
    /// not additive — the session's "what if this wire were shorter"
    /// primitive).
    ///
    /// Parametric: bumps `cap_rev` only; dirties just that node.
    ///
    /// # Errors
    ///
    /// [`NetlistError::BadCapacitance`] if the value is negative or
    /// non-finite; the design is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not from this design's netlist.
    pub fn set_node_cap(&mut self, node: NodeId, cap_pf: f64) -> Result<EditReceipt, NetlistError> {
        if !cap_pf.is_finite() || cap_pf < 0.0 {
            return Err(NetlistError::BadCapacitance {
                node: self.netlist.node_name(node).to_owned(),
                cap_pf,
            });
        }
        self.netlist.nodes[node.index()].extra_cap = cap_pf;
        self.netlist.recompute_caps();
        self.cap_rev += 1;
        let dirty = if self.netlist.node(node).role().is_rail() {
            Vec::new()
        } else {
            vec![node]
        };
        Ok(self.record(EditClass::Parametric, dirty))
    }

    // ----- structural edits -------------------------------------------

    /// Gets or creates a node by name with the given role (same
    /// get-or-create / role-upgrade semantics as the builder).
    ///
    /// Structural: connectivity facts may change (a role upgrade turns an
    /// internal net into a flow source or sink), so `topo_rev` bumps.
    pub fn add_node(&mut self, name: &str, role: NodeRole) -> (NodeId, EditReceipt) {
        let sym = self.netlist.names.intern(name);
        let id = if sym.index() < self.netlist.node_of_symbol.len() {
            let id = self.netlist.node_of_symbol[sym.index()];
            if role != NodeRole::Internal {
                self.netlist.nodes[id.index()].role = role;
            }
            id
        } else {
            let id = NodeId(self.netlist.nodes.len() as u32);
            self.netlist.nodes.push(crate::Node::new(sym, role));
            self.netlist.node_of_symbol.push(id);
            id
        };
        self.netlist.rebuild_indexes();
        self.topo_rev += 1;
        (id, self.record(EditClass::Structural, Vec::new()))
    }

    /// Adds a transistor between existing nodes.
    ///
    /// Structural: bumps `topo_rev`, `geom_rev`, and `cap_rev`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::ShortedChannel`] if `source == drain`,
    /// [`NetlistError::BadGeometry`] for non-positive dimensions; the
    /// design is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if a node id is not from this design's netlist.
    #[allow(clippy::too_many_arguments)] // gate/source/drain/W/L is the domain's natural arity
    pub fn add_device(
        &mut self,
        name: &str,
        kind: DeviceKind,
        gate: NodeId,
        source: NodeId,
        drain: NodeId,
        w_um: f64,
        l_um: f64,
    ) -> Result<(DeviceId, EditReceipt), NetlistError> {
        if source == drain {
            return Err(NetlistError::ShortedChannel {
                device: name.to_owned(),
            });
        }
        if !w_um.is_finite() || !l_um.is_finite() || w_um <= 0.0 || l_um <= 0.0 {
            return Err(NetlistError::BadGeometry {
                device: name.to_owned(),
                w_um,
                l_um,
            });
        }
        for n in [gate, source, drain] {
            assert!(
                n.index() < self.netlist.nodes.len(),
                "node {n} out of range"
            );
        }
        let id = DeviceId(self.netlist.devices.len() as u32);
        self.netlist.devices.push(Device {
            name: name.to_owned(),
            kind,
            gate,
            source,
            drain,
            w_um,
            l_um,
        });
        self.netlist.rebuild_indexes();
        self.topo_rev += 1;
        self.geom_rev += 1;
        self.cap_rev += 1;
        Ok((id, self.record(EditClass::Structural, Vec::new())))
    }

    /// Removes a device. **Device ids above `dev` shift down by one**
    /// (the netlist keeps devices dense and in insertion order); node ids
    /// are stable. Callers holding device ids must re-resolve them.
    ///
    /// Structural: bumps `topo_rev`, `geom_rev`, and `cap_rev`.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is not from this design's netlist.
    pub fn remove_device(&mut self, dev: DeviceId) -> EditReceipt {
        self.netlist.devices.remove(dev.index());
        self.netlist.rebuild_indexes();
        self.topo_rev += 1;
        self.geom_rev += 1;
        self.cap_rev += 1;
        self.record(EditClass::Structural, Vec::new())
    }

    // ----- tech edits -------------------------------------------------

    /// Swaps the technology (e.g. a 4 µm → 2 µm shrink what-if). Every
    /// resistance and capacitance changes; connectivity does not.
    ///
    /// Tech: bumps `tech_rev` and `cap_rev`.
    pub fn retech(&mut self, tech: Tech) -> EditReceipt {
        self.netlist.tech = tech;
        self.netlist.recompute_caps();
        self.tech_rev += 1;
        self.cap_rev += 1;
        self.record(EditClass::Tech, Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn design() -> (Design, NodeId, NodeId, DeviceId, DeviceId) {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let out = b.output("out");
        let (pu, pd) = b.inverter("i1", a, out);
        (Design::new(b.finish().unwrap()), a, out, pu, pd)
    }

    #[test]
    fn resize_bumps_geom_not_topo() {
        let (mut d, a, out, _pu, pd) = design();
        let before = d.stamp();
        let r = d.resize_device(pd, 8.0, 2.0).unwrap();
        let after = d.stamp();
        assert_eq!(r.class, EditClass::Parametric);
        assert_eq!(r.dirty, vec![a, out]);
        assert_eq!(before.topo, after.topo);
        assert_eq!(before.tech, after.tech);
        assert_ne!(before.geom, after.geom);
        assert_ne!(before.cap, after.cap);
        assert_eq!(d.netlist().device(pd).width(), 8.0);
        assert_eq!(d.revision(), Revision(1));
    }

    #[test]
    fn resize_updates_caps() {
        let (mut d, a, _out, _pu, pd) = design();
        let before = d.netlist().node_cap(a);
        d.resize_device(pd, 16.0, 8.0).unwrap();
        // `a` drives the pull-down gate: 4x the gate area, more gate cap.
        assert!(d.netlist().node_cap(a) > before);
    }

    #[test]
    fn bad_resize_leaves_design_unchanged() {
        let (mut d, _a, _out, _pu, pd) = design();
        let before = d.stamp();
        let w = d.netlist().device(pd).width();
        assert!(d.resize_device(pd, -1.0, 2.0).is_err());
        assert_eq!(d.stamp(), before);
        assert_eq!(d.revision(), Revision(0));
        assert_eq!(d.netlist().device(pd).width(), w);
    }

    #[test]
    fn cap_edit_bumps_only_cap() {
        let (mut d, _a, out, _pu, _pd) = design();
        let before = d.stamp();
        let r = d.set_node_cap(out, 0.75).unwrap();
        let after = d.stamp();
        assert_eq!(r.dirty, vec![out]);
        assert_eq!(before.topo, after.topo);
        assert_eq!(before.geom, after.geom);
        assert_ne!(before.cap, after.cap);
        assert!(d.netlist().node_cap(out) >= 0.75);
        // Absolute, not additive.
        d.set_node_cap(out, 0.25).unwrap();
        let c = d.netlist().node(out).extra_cap();
        assert_eq!(c, 0.25);
    }

    #[test]
    fn structural_edit_bumps_topo_and_rebuilds_indexes() {
        let (mut d, a, out, _pu, _pd) = design();
        let before = d.stamp();
        let chans_before = d.netlist().node_devices(out).channel.len();
        let (id, r) = d
            .add_device("m9", DeviceKind::Enhancement, a, NodeId(1), out, 4.0, 2.0)
            .unwrap();
        assert_eq!(r.class, EditClass::Structural);
        assert_ne!(before.topo, d.stamp().topo);
        assert_eq!(
            d.netlist().node_devices(out).channel.len(),
            chans_before + 1
        );
        assert!(d.netlist().node_devices(a).gated.contains(&id));

        d.remove_device(id);
        assert_eq!(d.netlist().node_devices(out).channel.len(), chans_before);
    }

    #[test]
    fn add_device_validates_before_mutating() {
        let (mut d, a, out, _pu, _pd) = design();
        let n = d.netlist().device_count();
        assert!(d
            .add_device("bad", DeviceKind::Enhancement, a, out, out, 4.0, 2.0)
            .is_err());
        assert!(d
            .add_device("bad", DeviceKind::Enhancement, a, NodeId(1), out, 0.0, 2.0)
            .is_err());
        assert_eq!(d.netlist().device_count(), n);
        assert_eq!(d.revision(), Revision(0));
    }

    #[test]
    fn retech_bumps_tech_and_recomputes() {
        let (mut d, a, _out, _pu, _pd) = design();
        let cap4 = d.netlist().node_cap(a);
        let r = d.retech(Tech::nmos2um());
        assert_eq!(r.class, EditClass::Tech);
        assert_ne!(d.netlist().node_cap(a), cap4);
        assert_eq!(d.stamp().topo, 0);
        assert_eq!(d.stamp().tech, 1);
    }

    #[test]
    fn dirty_since_accumulates_and_collapses() {
        let (mut d, a, out, _pu, pd) = design();
        let r0 = d.revision();
        assert_eq!(d.dirty_since(r0), DirtySince::Clean);

        d.set_node_cap(out, 0.5).unwrap();
        d.resize_device(pd, 8.0, 2.0).unwrap();
        match d.dirty_since(r0) {
            DirtySince::Nodes(ns) => assert_eq!(ns, vec![a, out]),
            other => panic!("expected Nodes, got {other:?}"),
        }

        let r2 = d.revision();
        d.retech(Tech::nmos2um());
        assert_eq!(d.dirty_since(r2), DirtySince::All);
        assert_eq!(d.dirty_since(r0), DirtySince::All);
        assert_eq!(d.dirty_since(d.revision()), DirtySince::Clean);
    }

    #[test]
    fn dirty_log_overflow_degrades_to_all() {
        let (mut d, _a, out, _pu, _pd) = design();
        let r0 = d.revision();
        for i in 0..(DIRTY_LOG_CAP + 8) {
            d.set_node_cap(out, 0.001 * i as f64).unwrap();
        }
        assert_eq!(d.dirty_since(r0), DirtySince::All);
        // A recent revision is still precisely tracked.
        let recent = Revision(d.revision().0 - 2);
        match d.dirty_since(recent) {
            DirtySince::Nodes(ns) => assert_eq!(ns, vec![out]),
            other => panic!("expected Nodes, got {other:?}"),
        }
    }

    #[test]
    fn stamps_are_design_unique() {
        let (d1, ..) = design();
        let (d2, ..) = design();
        assert_ne!(d1.stamp().design, d2.stamp().design);
        assert_ne!(DesignStamp::unique(), DesignStamp::unique());
    }

    #[test]
    fn add_node_upgrades_role() {
        let (mut d, _a, _out, _pu, _pd) = design();
        let (n, r) = d.add_node("late_in", NodeRole::Input);
        assert_eq!(r.class, EditClass::Structural);
        assert!(d.netlist().inputs().contains(&n));
        let (n2, _) = d.add_node("late_in", NodeRole::Internal);
        assert_eq!(n, n2); // get-or-create, no downgrade
        assert!(d.netlist().inputs().contains(&n));
    }
}
