//! SPICE deck export.
//!
//! Writes a netlist as a SPICE `.cir` deck with level-1 MOS models whose
//! parameters mirror [`crate::Tech`], so anyone with a real SPICE can
//! re-run this workspace's validation experiments against an independent
//! simulator. (The bundled `tv-sim` implements the same level-1 equations;
//! this export is the bridge to the outside world.)
//!
//! Dialect notes:
//! * node names pass through as SPICE node identifiers, with `VDD`/`GND`
//!   mapped to node `vdd` and ground `0`;
//! * every transistor becomes an `M` card referencing the `ENH` or `DEP`
//!   model; explicit node capacitance becomes a `C` card;
//! * inputs and clocks are emitted as commented `V` card stubs for the
//!   user to fill in with their stimulus.

use std::fmt::Write as _;

use crate::{DeviceKind, Netlist, NodeId};

/// Renders the netlist as a SPICE deck.
///
/// # Example
///
/// ```
/// use tv_netlist::{spice, NetlistBuilder, Tech};
///
/// # fn main() -> Result<(), tv_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(Tech::nmos4um());
/// let a = b.input("a");
/// let out = b.output("out");
/// b.inverter("inv", a, out);
/// let nl = b.finish()?;
/// let deck = spice::write(&nl);
/// assert!(deck.contains(".model ENH NMOS"));
/// assert!(deck.contains("Vdd vdd 0 DC 5"));
/// # Ok(())
/// # }
/// ```
pub fn write(netlist: &Netlist) -> String {
    let tech = netlist.tech();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "* nmos-tv export: {} devices, {} nodes",
        netlist.device_count(),
        netlist.node_count()
    );
    let _ = writeln!(out, "* units: um geometry; levels per Tech::nmos4um");
    let _ = writeln!(
        out,
        ".model ENH NMOS (LEVEL=1 VTO={} KP={}u LAMBDA=0)",
        tech.vt_enh,
        tech.kprime * 1000.0
    );
    let _ = writeln!(
        out,
        ".model DEP NMOS (LEVEL=1 VTO={} KP={}u LAMBDA=0)",
        tech.vt_dep,
        tech.kprime * 1000.0
    );
    let _ = writeln!(out, "Vdd vdd 0 DC {}", tech.vdd);

    let name_of = |n: NodeId| -> String {
        if n == netlist.vdd() {
            "vdd".to_string()
        } else if n == netlist.gnd() {
            "0".to_string()
        } else {
            sanitize(netlist.node_name(n))
        }
    };

    for dref in netlist.devices() {
        let d = dref.device;
        let model = match d.kind() {
            DeviceKind::Enhancement => "ENH",
            DeviceKind::Depletion => "DEP",
        };
        // M<name> drain gate source bulk model L W  (bulk tied to ground,
        // the nMOS substrate).
        let _ = writeln!(
            out,
            "M{} {} {} {} 0 {} L={}u W={}u",
            sanitize(d.name()),
            name_of(d.drain()),
            name_of(d.gate()),
            name_of(d.source()),
            model,
            d.length(),
            d.width(),
        );
    }

    for id in netlist.node_ids() {
        let node = netlist.node(id);
        if node.extra_cap() > 0.0 {
            let _ = writeln!(
                out,
                "C{} {} 0 {}p",
                sanitize(netlist.node_name(id)),
                name_of(id),
                node.extra_cap()
            );
        }
    }

    for &id in netlist.inputs() {
        let _ = writeln!(
            out,
            "* Vin_{0} {0} 0 PULSE(...)   <- supply your stimulus",
            name_of(id)
        );
    }
    for &(id, phase) in netlist.clocks() {
        let _ = writeln!(
            out,
            "* Vclk_{0} {0} 0 PULSE(...)  <- phase {1} clock",
            name_of(id),
            phase + 1
        );
    }
    let _ = writeln!(out, ".end");
    out
}

/// SPICE node/element identifiers dislike punctuation; map everything
/// non-alphanumeric to `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetlistBuilder, Tech};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let phi = b.clock("phi1", 0);
        let out = b.output("out.q"); // punctuation to sanitize
        let mid = b.node("mid");
        b.inverter("i1", a, mid);
        b.pass("p1", phi, mid, out);
        b.add_cap(out, 0.25).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn deck_has_models_supply_and_end() {
        let deck = write(&sample());
        assert!(deck.contains(".model ENH NMOS (LEVEL=1 VTO=1"));
        assert!(deck.contains(".model DEP NMOS (LEVEL=1 VTO=-3"));
        assert!(deck.contains("Vdd vdd 0 DC 5"));
        assert!(deck.trim_end().ends_with(".end"));
    }

    #[test]
    fn every_device_becomes_an_m_card() {
        let nl = sample();
        let deck = write(&nl);
        let m_cards = deck.lines().filter(|l| l.starts_with('M')).count();
        assert_eq!(m_cards, nl.device_count());
    }

    #[test]
    fn rails_map_to_spice_conventions() {
        let deck = write(&sample());
        // The inverter pull-up touches vdd; the pull-down touches ground 0.
        assert!(deck.contains(" vdd "));
        assert!(!deck.contains("GND"));
    }

    #[test]
    fn explicit_caps_are_emitted_in_pf() {
        let deck = write(&sample());
        assert!(deck.contains("0.25p"));
    }

    #[test]
    fn names_are_sanitized() {
        let deck = write(&sample());
        assert!(deck.contains("out_q"));
        assert!(!deck.contains("out.q"));
    }

    #[test]
    fn stimulus_stubs_for_inputs_and_clocks() {
        let deck = write(&sample());
        assert!(deck.contains("* Vin_a"));
        assert!(deck.contains("* Vclk_phi1"));
        assert!(deck.contains("phase 1 clock"));
    }
}
