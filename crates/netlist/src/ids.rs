//! Typed identifiers for nodes and devices.
//!
//! Raw `usize` indices invite mixing up "node 3" and "device 3"; these
//! newtypes make that a compile error while staying `Copy` and free.

use std::fmt;

/// Identifier of an electrical node (net) within a [`crate::Netlist`].
///
/// Node ids are dense indices assigned in creation order; `NodeId(0)` and
/// `NodeId(1)` are always the power rails VDD and GND respectively (see
/// [`crate::Netlist::vdd`] / [`crate::Netlist::gnd`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of a transistor within a [`crate::Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub(crate) u32);

impl NodeId {
    /// Returns the dense index of this node, suitable for indexing
    /// per-node side tables (`Vec`s of length [`crate::Netlist::node_count`]).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `NodeId` from a dense index.
    ///
    /// Intended for iterating side tables; the caller is responsible for the
    /// index having come from the same netlist.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl DeviceId {
    /// Returns the dense index of this device, suitable for indexing
    /// per-device side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `DeviceId` from a dense index.
    ///
    /// Intended for iterating side tables; the caller is responsible for the
    /// index having come from the same netlist.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        DeviceId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, NodeId(42));
    }

    #[test]
    fn device_id_round_trips_through_index() {
        let id = DeviceId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id, DeviceId(7));
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", DeviceId(9)), "t9");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(DeviceId(0) < DeviceId(10));
    }
}
