//! The crate-wide error type.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, validating, or parsing a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// Two nodes were declared with the same name.
    DuplicateNode(String),
    /// A name was looked up that no node carries.
    UnknownNode(String),
    /// A device's source and drain are the same node (shorted channel).
    ShortedChannel {
        /// Name of the offending device.
        device: String,
    },
    /// A device geometry was non-positive.
    BadGeometry {
        /// Name of the offending device.
        device: String,
        /// Drawn width, µm.
        w_um: f64,
        /// Drawn length, µm.
        l_um: f64,
    },
    /// An explicit capacitance was negative or non-finite.
    BadCapacitance {
        /// Name of the node the capacitance was attached to.
        node: String,
        /// The rejected value, pF.
        cap_pf: f64,
    },
    /// A `.sim` file line could not be parsed.
    SimParse {
        /// 1-based line number in the input.
        line: usize,
        /// 1-based column of the offending token in that line.
        col: usize,
        /// What was wrong (names the offending token where one exists).
        message: String,
    },
    /// The netlist failed structural validation.
    Invalid(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateNode(name) => {
                write!(f, "duplicate node name {name:?}")
            }
            NetlistError::UnknownNode(name) => {
                write!(f, "unknown node name {name:?}")
            }
            NetlistError::ShortedChannel { device } => {
                write!(f, "device {device:?} has source and drain on the same node")
            }
            NetlistError::BadGeometry { device, w_um, l_um } => {
                write!(
                    f,
                    "device {device:?} has non-positive geometry W={w_um} µm, L={l_um} µm"
                )
            }
            NetlistError::BadCapacitance { node, cap_pf } => {
                write!(f, "node {node:?} given invalid capacitance {cap_pf} pF")
            }
            NetlistError::SimParse { line, col, message } => {
                write!(
                    f,
                    "sim format parse error at line {line}, column {col}: {message}"
                )
            }
            NetlistError::Invalid(msg) => write!(f, "invalid netlist: {msg}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::DuplicateNode("out".into());
        assert!(e.to_string().contains("duplicate node"));
        let e = NetlistError::SimParse {
            line: 12,
            col: 3,
            message: "expected 6 fields".into(),
        };
        assert!(e.to_string().contains("line 12"));
        assert!(e.to_string().contains("column 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<NetlistError>();
    }
}
