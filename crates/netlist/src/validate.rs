//! Structural sanity checks on a finished netlist.
//!
//! These are the "is this even a plausible chip" checks an analyzer runs
//! before attempting timing: floating gates, undriven nodes, devices
//! bridging the rails, depletion devices not wired as loads. They return
//! *diagnostics*, not errors — a netlist mid-assembly legitimately trips
//! some of them, and TV-class tools printed them as warnings.

use std::fmt;

use crate::diag::{codes, Diagnostic};
use crate::{DeviceKind, Netlist, NodeId, NodeRole};

/// A single structural diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Issue {
    /// A node gates a transistor but nothing can ever drive the node: it
    /// has no channel contact, is not an input/clock, and is not a rail.
    FloatingGate {
        /// The floating node.
        node: NodeId,
        /// Its name.
        name: String,
    },
    /// A non-rail node touches channels only — nothing gates anything from
    /// it and it is not an output, so it is dead weight (often an extractor
    /// artifact).
    DeadEnd {
        /// The dead node.
        node: NodeId,
        /// Its name.
        name: String,
    },
    /// An enhancement device's channel directly bridges VDD and GND — a
    /// short circuit whenever its gate is high.
    RailBridge {
        /// Name of the offending device.
        device: String,
    },
    /// A depletion device that is neither load-connected nor gated by an
    /// internal node (super-buffer style); almost always an extraction bug.
    StrayDepletion {
        /// Name of the offending device.
        device: String,
    },
    /// A primary input also has channel contacts to internal devices'
    /// drivers — legal but worth flagging because it complicates direction
    /// analysis.
    DrivenInput {
        /// The input node.
        node: NodeId,
        /// Its name.
        name: String,
    },
}

impl Issue {
    /// The stable diagnostic code for this issue kind (`TV01xx` range).
    pub fn code(&self) -> &'static str {
        match self {
            Issue::FloatingGate { .. } => codes::LINT_FLOATING_GATE,
            Issue::DeadEnd { .. } => codes::LINT_DEAD_END,
            Issue::RailBridge { .. } => codes::LINT_RAIL_BRIDGE,
            Issue::StrayDepletion { .. } => codes::LINT_STRAY_DEPLETION,
            Issue::DrivenInput { .. } => codes::LINT_DRIVEN_INPUT,
        }
    }

    /// Renders this issue as a [`Diagnostic`] on the unified stream.
    ///
    /// Structural lints are warnings: a netlist that trips them is still
    /// analyzable, just suspicious (matching how TV printed them).
    pub fn diagnostic(&self) -> Diagnostic {
        Diagnostic::warning(self.code(), self.to_string())
    }
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Issue::FloatingGate { name, .. } => write!(f, "floating gate node {name:?}"),
            Issue::DeadEnd { name, .. } => write!(f, "dead-end node {name:?}"),
            Issue::RailBridge { device } => {
                write!(f, "device {device:?} bridges VDD and GND")
            }
            Issue::StrayDepletion { device } => {
                write!(
                    f,
                    "depletion device {device:?} is not wired as a load or buffer"
                )
            }
            Issue::DrivenInput { name, .. } => {
                write!(f, "primary input {name:?} is also driven on-chip")
            }
        }
    }
}

/// Runs all structural checks and returns every diagnostic found, in a
/// deterministic order (by node id, then device id).
pub fn check(netlist: &Netlist) -> Vec<Issue> {
    let mut issues = Vec::new();

    for id in netlist.node_ids() {
        let node = netlist.node(id);
        let role = node.role();
        if role.is_rail() {
            continue;
        }
        let at = netlist.node_devices(id);
        let gates_something = !at.gated.is_empty();
        let has_channel = !at.channel.is_empty();
        if gates_something && !has_channel && !role.is_external_source() {
            issues.push(Issue::FloatingGate {
                node: id,
                name: netlist.node_name(id).to_owned(),
            });
        }
        if !gates_something
            && has_channel
            && role == NodeRole::Internal
            && channel_only_endpoint(netlist, id)
        {
            issues.push(Issue::DeadEnd {
                node: id,
                name: netlist.node_name(id).to_owned(),
            });
        }
        if role == NodeRole::Input && has_channel && is_restored_here(netlist, id) {
            issues.push(Issue::DrivenInput {
                node: id,
                name: netlist.node_name(id).to_owned(),
            });
        }
    }

    for dref in netlist.devices() {
        let d = dref.device;
        let bridges = (d.source() == netlist.vdd() && d.drain() == netlist.gnd())
            || (d.source() == netlist.gnd() && d.drain() == netlist.vdd());
        if d.kind() == DeviceKind::Enhancement && bridges {
            issues.push(Issue::RailBridge {
                device: d.name().to_owned(),
            });
        }
        if d.kind() == DeviceKind::Depletion && !d.is_load_connected() {
            // A super-buffer pull-up is gated by another node and has one
            // channel end on VDD; anything else is stray.
            let buffer_like = d.source() == netlist.vdd() || d.drain() == netlist.vdd();
            if !buffer_like {
                issues.push(Issue::StrayDepletion {
                    device: d.name().to_owned(),
                });
            }
        }
    }

    issues
}

/// Whether a node is only ever the far end of pass channels that lead
/// nowhere else — i.e. removing it removes no connectivity.
fn channel_only_endpoint(netlist: &Netlist, node: NodeId) -> bool {
    let at = netlist.node_devices(node);
    at.channel.len() == 1
}

/// Whether some device pulls this node toward a rail through its channel
/// (an on-chip driver), as opposed to only pass-transistor contact.
fn is_restored_here(netlist: &Netlist, node: NodeId) -> bool {
    netlist.node_devices(node).channel.iter().any(|&d| {
        let dev = netlist.device(d);
        let other = dev.other_channel_end(node);
        other == netlist.vdd() || other == netlist.gnd()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetlistBuilder, Tech};

    fn builder() -> NetlistBuilder {
        NetlistBuilder::new(Tech::nmos4um())
    }

    #[test]
    fn clean_inverter_has_no_issues() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        assert!(check(&nl).is_empty(), "{:?}", check(&nl));
    }

    #[test]
    fn floating_gate_detected() {
        let mut b = builder();
        let ghost = b.node("ghost"); // never driven
        let out = b.node("out");
        b.inverter("i", ghost, out);
        let nl = b.finish().unwrap();
        let issues = check(&nl);
        assert!(issues
            .iter()
            .any(|i| matches!(i, Issue::FloatingGate { name, .. } if name == "ghost")));
    }

    #[test]
    fn rail_bridge_detected() {
        let mut b = builder();
        let a = b.input("a");
        let (vdd, gnd) = (b.vdd(), b.gnd());
        b.enhancement("short", a, vdd, gnd, 4.0, 2.0);
        let nl = b.finish().unwrap();
        let issues = check(&nl);
        assert!(issues
            .iter()
            .any(|i| matches!(i, Issue::RailBridge { device } if device == "short")));
    }

    #[test]
    fn super_buffer_pullup_is_not_stray() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.output("out");
        b.super_buffer("sb", a, out, 4.0);
        let nl = b.finish().unwrap();
        assert!(!check(&nl)
            .iter()
            .any(|i| matches!(i, Issue::StrayDepletion { .. })));
    }

    #[test]
    fn stray_depletion_detected() {
        let mut b = builder();
        let a = b.input("a");
        let x = b.node("x");
        let y = b.output("y");
        // Depletion channel between two internal nodes, gate elsewhere.
        b.depletion("weird", a, x, y, 4.0, 2.0);
        // Keep x driven so we only trip the depletion check.
        b.inverter("drv", a, x);
        let nl = b.finish().unwrap();
        assert!(check(&nl)
            .iter()
            .any(|i| matches!(i, Issue::StrayDepletion { device } if device == "weird")));
    }

    #[test]
    fn dead_end_detected() {
        let mut b = builder();
        let a = b.input("a");
        let phi = b.clock("phi", 0);
        let mid = b.node("mid");
        let stub = b.node("stub"); // pass leads here, nothing further
        b.inverter("i", a, mid);
        b.pass("p", phi, mid, stub);
        let nl = b.finish().unwrap();
        assert!(check(&nl)
            .iter()
            .any(|i| matches!(i, Issue::DeadEnd { name, .. } if name == "stub")));
    }

    #[test]
    fn driven_input_detected() {
        let mut b = builder();
        let a = b.input("a");
        let x = b.input("x");
        // Someone also drives the "input" x with an inverter.
        b.inverter("i", a, x);
        let nl = b.finish().unwrap();
        assert!(check(&nl)
            .iter()
            .any(|i| matches!(i, Issue::DrivenInput { name, .. } if name == "x")));
    }

    #[test]
    fn every_issue_variant_maps_to_a_distinct_warning_diagnostic() {
        use crate::NodeId;
        let issues = [
            Issue::FloatingGate {
                node: NodeId(7),
                name: "ghost".into(),
            },
            Issue::DeadEnd {
                node: NodeId(8),
                name: "stub".into(),
            },
            Issue::RailBridge {
                device: "short".into(),
            },
            Issue::StrayDepletion {
                device: "weird".into(),
            },
            Issue::DrivenInput {
                node: NodeId(9),
                name: "x".into(),
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for issue in &issues {
            let d = issue.diagnostic();
            assert_eq!(d.severity, crate::diag::Severity::Warning);
            assert!(d.code.starts_with("TV01"), "code {} out of range", d.code);
            assert_eq!(d.message, issue.to_string());
            assert!(seen.insert(d.code), "duplicate code {}", d.code);
        }
    }
}
