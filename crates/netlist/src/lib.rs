//! Transistor-level netlist model for nMOS VLSI timing analysis.
//!
//! This crate is the substrate every other `tv-*` crate builds on. It models
//! an nMOS chip the way a 1983 layout extractor would hand it to a timing
//! analyzer such as Jouppi's *TV* (DAC 1983): a flat list of **nodes**
//! (electrical nets with capacitance) and **transistors** (enhancement or
//! depletion devices with gate/source/drain terminals and W/L geometry),
//! plus the **technology parameters** needed to turn geometry into
//! resistance and capacitance.
//!
//! # Unit system
//!
//! All quantities use a coherent system chosen so that products need no
//! scale factors:
//!
//! | quantity | unit |
//! |---|---|
//! | resistance | kΩ |
//! | capacitance | pF |
//! | time | ns (= kΩ · pF) |
//! | voltage | V |
//! | current | mA (= V / kΩ) |
//! | length | µm |
//!
//! # Example
//!
//! Build a depletion-load inverter and query its extracted capacitance:
//!
//! ```
//! use tv_netlist::{NetlistBuilder, Tech};
//!
//! # fn main() -> Result<(), tv_netlist::NetlistError> {
//! let tech = Tech::nmos4um();
//! let mut b = NetlistBuilder::new(tech);
//! let a = b.input("a");
//! let out = b.output("out");
//! b.depletion_load(out, 2.0, 8.0);          // pull-up: W=2, L=8 (4 squares)
//! b.enhancement("m1", a, b.gnd(), out, 4.0, 2.0); // pull-down: W=4, L=2
//! let netlist = b.finish()?;
//! assert_eq!(netlist.device_count(), 2);
//! assert!(netlist.node_cap(out) > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cap;
mod design;
mod device;
pub mod diag;
mod error;
mod ids;
pub mod intern;
mod netlist;
mod node;
pub mod sim_format;
pub mod spice;
mod tech;
pub mod validate;

pub use builder::NetlistBuilder;
pub use cap::CapModel;
pub use design::{Design, DesignStamp, DirtySince, EditClass, EditReceipt, Revision};
pub use device::{Device, DeviceKind, Terminal};
pub use diag::{codes, Diagnostic, Diagnostics, Severity, DEFAULT_MAX_ERRORS};
pub use error::NetlistError;
pub use ids::{DeviceId, NodeId};
pub use intern::{FxHashMap, FxHashSet, FxHasher, Interner, Symbol};
pub use netlist::{DeviceRef, Netlist, NodeDevices};
pub use node::{Node, NodeRole};
pub use tech::Tech;
