//! String interning and fast integer hashing.
//!
//! Node names are hot in two ways that fight each other: parsing wants
//! cheap get-or-create lookups, and analysis wants the per-node storage
//! to be small and contiguous. The [`Interner`] answers both with one
//! structure — every distinct name becomes a [`Symbol`] (a dense `u32`),
//! the characters live back-to-back in a single byte arena, and lookup
//! goes through an open-addressing table keyed by an FxHash of the
//! string. No per-name heap allocation survives.
//!
//! The same multiply-rotate hash backs [`FxHashMap`] / [`FxHashSet`],
//! drop-in aliases for `std` maps keyed by small integers (ids,
//! fingerprints) where SipHash's DoS resistance buys nothing.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// Identifier of an interned string: a dense index assigned in first-seen
/// order. Two symbols from the same [`Interner`] are equal iff their
/// strings are equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// The dense index of this symbol, suitable for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `Symbol` from a dense index. The caller is
    /// responsible for the index having come from the same interner.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Symbol(index as u32)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The multiplier from Firefox's FxHash: a single multiply-rotate per
/// word, the fastest known hash that still spreads dense integers.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn fx_mix(h: u64, w: u64) -> u64 {
    (h.rotate_left(5) ^ w).wrapping_mul(FX_SEED)
}

/// FxHash of a byte string (length-mixed, so prefixes differ).
#[inline]
fn fx_hash_bytes(s: &[u8]) -> u64 {
    let mut h = 0u64;
    let mut chunks = s.chunks_exact(8);
    for c in &mut chunks {
        h = fx_mix(h, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = fx_mix(h, u64::from_le_bytes(buf));
    }
    fx_mix(h, s.len() as u64)
}

/// Folds a 64-bit hash down to a table index. FxHash pushes its entropy
/// toward the high bits (it ends on a multiply), so mix the halves
/// before masking.
#[inline]
fn fold(hash: u64, mask: usize) -> usize {
    ((hash >> 32) ^ hash) as usize & mask
}

/// A string interner: arena + open-addressing symbol table.
///
/// ```
/// use tv_netlist::intern::Interner;
///
/// let mut i = Interner::new();
/// let a = i.intern("alu.carry3");
/// assert_eq!(i.intern("alu.carry3"), a); // get-or-create
/// assert_eq!(i.resolve(a), "alu.carry3");
/// assert_eq!(i.get("nonesuch"), None);
/// ```
#[derive(Clone, Default)]
pub struct Interner {
    /// Every interned string's bytes, back to back.
    bytes: Vec<u8>,
    /// Per symbol: start offset into `bytes`; entry `len()` is the arena
    /// length, so `starts[s]..starts[s + 1]` spans symbol `s`.
    starts: Vec<u32>,
    /// Open-addressing table of `symbol + 1` (0 = empty slot).
    table: Vec<u32>,
    /// `table.len() - 1`; the table length is a power of two.
    mask: usize,
    /// Growth reallocations since construction (arena, starts, or table
    /// rehash) — the ingest pre-scan asserts this stays zero after its
    /// [`Interner::reserve`].
    growths: u64,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::with_capacity(0)
    }

    /// An empty interner pre-sized for about `n` symbols.
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n * 2).next_power_of_two().max(16);
        Interner {
            bytes: Vec::with_capacity(n * 8),
            starts: vec![0],
            table: vec![0; cap],
            mask: cap - 1,
            growths: 0,
        }
    }

    /// Pre-sizes for `additional_syms` more symbols spanning
    /// `additional_bytes` more arena bytes, so that many subsequent
    /// [`Interner::intern`] calls perform zero growth reallocations.
    /// The table is rebuilt to at least twice the final symbol count,
    /// which keeps the load factor under the 3/4 growth trigger.
    pub fn reserve(&mut self, additional_syms: usize, additional_bytes: usize) {
        self.bytes.reserve(additional_bytes);
        self.starts.reserve(additional_syms + 1);
        let want = ((self.len() + additional_syms + 1) * 2)
            .next_power_of_two()
            .max(16);
        if want > self.table.len() {
            self.rebuild_table(want);
        }
    }

    /// Growth reallocations performed since construction. A reserve-led
    /// rebuild is deliberate sizing, not growth, and is not counted.
    #[inline]
    pub fn growth_events(&self) -> u64 {
        self.growths
    }

    /// Number of distinct strings interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len() - 1
    }

    /// Whether nothing has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn span(&self, sym: usize) -> &[u8] {
        &self.bytes[self.starts[sym] as usize..self.starts[sym + 1] as usize]
    }

    /// The string a symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        std::str::from_utf8(self.span(sym.index())).expect("interned strings are UTF-8")
    }

    /// Looks a string up without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        let mut i = fold(fx_hash_bytes(s.as_bytes()), self.mask);
        loop {
            match self.table[i] {
                0 => return None,
                e => {
                    let sym = (e - 1) as usize;
                    if self.span(sym) == s.as_bytes() {
                        return Some(Symbol(e - 1));
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Interns a string, returning its (new or existing) symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        let hash = fx_hash_bytes(s.as_bytes());
        let mut i = fold(hash, self.mask);
        loop {
            match self.table[i] {
                0 => break,
                e => {
                    let sym = (e - 1) as usize;
                    if self.span(sym) == s.as_bytes() {
                        return Symbol(e - 1);
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
        let sym = self.len() as u32;
        if self.bytes.capacity() - self.bytes.len() < s.len() {
            self.growths += 1;
        }
        if self.starts.len() == self.starts.capacity() {
            self.growths += 1;
        }
        self.bytes.extend_from_slice(s.as_bytes());
        self.starts.push(self.bytes.len() as u32);
        self.table[i] = sym + 1;
        // Keep the load factor under 3/4.
        if (self.len() + 1) * 4 > self.table.len() * 3 {
            self.growths += 1;
            self.rebuild_table(self.table.len() * 2);
        }
        Symbol(sym)
    }

    fn rebuild_table(&mut self, cap: usize) {
        self.mask = cap - 1;
        self.table.clear();
        self.table.resize(cap, 0);
        for sym in 0..self.len() {
            let mut i = fold(fx_hash_bytes(self.span(sym)), self.mask);
            while self.table[i] != 0 {
                i = (i + 1) & self.mask;
            }
            self.table[i] = sym as u32 + 1;
        }
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .field("bytes", &self.bytes.len())
            .finish()
    }
}

/// A [`Hasher`] running FxHash — for maps keyed by dense integers where
/// hashing speed dominates (SipHash's flood resistance is pointless for
/// ids we assigned ourselves).
#[derive(Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Spread entropy back into the low bits the table indexes by.
        (self.hash >> 32) ^ self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.hash = fx_mix(self.hash, fx_hash_bytes(bytes));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.hash = fx_mix(self.hash, n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.hash = fx_mix(self.hash, n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = fx_mix(self.hash, n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.hash = fx_mix(self.hash, n as u64);
    }
}

/// `HashMap` with FxHash — for integer keys (ids, fingerprints).
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with FxHash — for integer keys.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_get_or_create() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
        assert_eq!(i.intern("a"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn symbols_are_dense_in_first_seen_order() {
        let mut i = Interner::new();
        for (n, name) in ["x", "y", "z"].into_iter().enumerate() {
            assert_eq!(i.intern(name).index(), n);
        }
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let names: Vec<String> = (0..100).map(|n| format!("node.{n}.q")).collect();
        let syms: Vec<Symbol> = names.iter().map(|n| i.intern(n)).collect();
        for (name, &sym) in names.iter().zip(&syms) {
            assert_eq!(i.resolve(sym), name);
            assert_eq!(i.get(name), Some(sym));
        }
    }

    #[test]
    fn get_misses_without_interning() {
        let mut i = Interner::new();
        i.intern("present");
        assert_eq!(i.get("absent"), None);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
        assert_eq!(i.intern(""), e);
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        let mut i = Interner::with_capacity(4);
        let syms: Vec<Symbol> = (0..10_000).map(|n| i.intern(&format!("s{n}"))).collect();
        assert_eq!(i.len(), 10_000);
        for (n, &sym) in syms.iter().enumerate() {
            assert_eq!(i.resolve(sym), format!("s{n}"));
        }
    }

    #[test]
    fn reserve_preempts_every_growth_event() {
        let mut i = Interner::new();
        i.reserve(10_000, 10_000 * 8);
        let base = i.growth_events();
        for n in 0..10_000 {
            i.intern(&format!("s{n}"));
        }
        assert_eq!(i.growth_events(), base, "pre-sized intern still grew");
        // And an unsized interner really does report growth, so the
        // counter is not vacuously zero.
        let mut u = Interner::with_capacity(0);
        for n in 0..10_000 {
            u.intern(&format!("s{n}"));
        }
        assert!(u.growth_events() > 0);
    }

    #[test]
    fn prefix_strings_do_not_collide() {
        let mut i = Interner::new();
        let a = i.intern("abc");
        let b = i.intern("abcd");
        let c = i.intern("ab");
        assert!(a != b && b != c && a != c);
        assert_eq!(i.resolve(b), "abcd");
    }

    #[test]
    fn fx_map_works_with_id_keys() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for k in 0..1000u32 {
            m.insert(k, "v");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&"v"));
    }
}
