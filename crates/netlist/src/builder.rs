//! Incremental construction of [`Netlist`]s, with gate-level conveniences.

use crate::intern::Interner;
use crate::{Device, DeviceId, DeviceKind, Netlist, NetlistError, Node, NodeId, NodeRole, Tech};

/// Builds a [`Netlist`] one node and transistor at a time.
///
/// The builder pre-creates the two rails (`VDD` = id 0, `GND` = id 1).
/// Structural mistakes (shorted channels, non-positive geometry) are
/// recorded as they happen and reported by [`NetlistBuilder::finish`], so
/// generator code can stay free of `Result` plumbing; immediate feedback is
/// available where it is cheap ([`NetlistBuilder::add_cap`]).
///
/// Besides raw transistors, the builder offers the standard cells of a 1983
/// nMOS designer — ratioed inverter, NAND, NOR, super buffer, pass gate,
/// dynamic latch, precharge device — each lowered immediately to correctly
/// sized transistors.
///
/// # Example
///
/// ```
/// use tv_netlist::{NetlistBuilder, Tech};
///
/// # fn main() -> Result<(), tv_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(Tech::nmos4um());
/// let a = b.input("a");
/// let nb = b.node("a_bar");
/// let q = b.output("q");
/// b.inverter("i1", a, nb);
/// b.inverter("i2", nb, q);
/// let nl = b.finish()?;
/// assert_eq!(nl.device_count(), 4); // two pull-ups, two pull-downs
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    tech: Tech,
    nodes: Vec<Node>,
    devices: Vec<Device>,
    names: Interner,
    /// Symbol index → node id; parallel to `names` (names and nodes are
    /// 1:1, so this is the whole name-lookup table).
    node_of_symbol: Vec<NodeId>,
    pending_error: Option<NetlistError>,
    /// Growth reallocations of the node/device Vecs since construction
    /// (the interner tracks its own; see [`NetlistBuilder::growth_events`]).
    growths: u64,
}

impl NetlistBuilder {
    /// Creates an empty builder for the given technology. The rails `VDD`
    /// and `GND` exist from the start.
    pub fn new(tech: Tech) -> Self {
        let mut b = NetlistBuilder {
            tech,
            nodes: Vec::new(),
            devices: Vec::new(),
            names: Interner::new(),
            node_of_symbol: Vec::new(),
            pending_error: None,
            growths: 0,
        };
        b.insert_node("VDD", NodeRole::Vdd);
        b.insert_node("GND", NodeRole::Gnd);
        // The rails are constant startup cost, not growth the pre-scan
        // could have avoided.
        b.growths = 0;
        b
    }

    /// Pre-sizes the node and device stores (and the name interner) so
    /// that building up to `additional_nodes` / `additional_devices`
    /// more entries performs zero growth reallocations. `name_bytes` is
    /// the total length of the node names still to be interned.
    pub fn reserve(
        &mut self,
        additional_nodes: usize,
        additional_devices: usize,
        name_bytes: usize,
    ) {
        self.nodes.reserve(additional_nodes);
        self.node_of_symbol.reserve(additional_nodes);
        self.devices.reserve(additional_devices);
        self.names.reserve(additional_nodes, name_bytes);
    }

    /// Growth reallocations since construction, interner included — the
    /// `ingest.reallocs` counter is this, sampled after the pre-scan's
    /// [`NetlistBuilder::reserve`].
    #[inline]
    pub fn growth_events(&self) -> u64 {
        self.growths + self.names.growth_events()
    }

    /// Reconstructs a builder from a finished netlist's parts (used by
    /// [`Netlist::to_builder`]).
    pub(crate) fn from_parts(
        tech: Tech,
        nodes: Vec<Node>,
        devices: Vec<Device>,
        names: Interner,
        node_of_symbol: Vec<NodeId>,
    ) -> Self {
        NetlistBuilder {
            tech,
            nodes,
            devices,
            names,
            node_of_symbol,
            pending_error: None,
            growths: 0,
        }
    }

    /// The VDD rail.
    #[inline]
    pub fn vdd(&self) -> NodeId {
        NodeId(0)
    }

    /// The GND rail.
    #[inline]
    pub fn gnd(&self) -> NodeId {
        NodeId(1)
    }

    /// The technology the netlist is being built in.
    #[inline]
    pub fn tech(&self) -> &Tech {
        &self.tech
    }

    /// Number of nodes created so far (including rails).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of devices created so far.
    #[inline]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn insert_node(&mut self, name: impl AsRef<str>, role: NodeRole) -> NodeId {
        let sym = self.names.intern(name.as_ref());
        if sym.index() < self.node_of_symbol.len() {
            // Get-or-create semantics; upgrading Internal to a stronger role
            // is allowed so `input("a")` after `node("a")` does what it says.
            let id = self.node_of_symbol[sym.index()];
            if role != NodeRole::Internal {
                self.nodes[id.index()].role = role;
            }
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        if self.nodes.len() == self.nodes.capacity() {
            self.growths += 1;
        }
        if self.node_of_symbol.len() == self.node_of_symbol.capacity() {
            self.growths += 1;
        }
        self.nodes.push(Node::new(sym, role));
        self.node_of_symbol.push(id);
        id
    }

    /// Re-applies a role to an existing node, with the same
    /// upgrade-only rule as the named get-or-create methods (`Internal`
    /// never downgrades a stronger role). The chunk-merge path of the
    /// `.sim` parser replays `i`/`o`/`k` records by id through this.
    pub fn set_role(&mut self, id: NodeId, role: NodeRole) {
        if role != NodeRole::Internal {
            self.nodes[id.index()].role = role;
        }
    }

    /// The name of an already-created node.
    fn node_name(&self, id: NodeId) -> &str {
        self.names.resolve(self.nodes[id.index()].name)
    }

    /// Gets or creates an internal node by name.
    pub fn node(&mut self, name: impl AsRef<str>) -> NodeId {
        self.insert_node(name, NodeRole::Internal)
    }

    /// Gets or creates a node and marks it a primary input.
    pub fn input(&mut self, name: impl AsRef<str>) -> NodeId {
        self.insert_node(name, NodeRole::Input)
    }

    /// Gets or creates a node and marks it a primary output.
    pub fn output(&mut self, name: impl AsRef<str>) -> NodeId {
        self.insert_node(name, NodeRole::Output)
    }

    /// Gets or creates a node and marks it a clock of the given phase
    /// (0 = φ1, 1 = φ2).
    pub fn clock(&mut self, name: impl AsRef<str>, phase: u8) -> NodeId {
        self.insert_node(name, NodeRole::Clock(phase))
    }

    /// Attaches explicit wiring capacitance to a node, pF.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadCapacitance`] if `cap_pf` is negative or
    /// not finite.
    pub fn add_cap(&mut self, node: NodeId, cap_pf: f64) -> Result<(), NetlistError> {
        if !cap_pf.is_finite() || cap_pf < 0.0 {
            return Err(NetlistError::BadCapacitance {
                node: self.node_name(node).to_owned(),
                cap_pf,
            });
        }
        self.nodes[node.index()].extra_cap += cap_pf;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)] // gate/source/drain/W/L is the domain's natural arity
    fn insert_device(
        &mut self,
        name: String,
        kind: DeviceKind,
        gate: NodeId,
        source: NodeId,
        drain: NodeId,
        w_um: f64,
        l_um: f64,
    ) -> DeviceId {
        if source == drain && self.pending_error.is_none() {
            self.pending_error = Some(NetlistError::ShortedChannel {
                device: name.clone(),
            });
        }
        if (!w_um.is_finite() || !l_um.is_finite() || w_um <= 0.0 || l_um <= 0.0)
            && self.pending_error.is_none()
        {
            self.pending_error = Some(NetlistError::BadGeometry {
                device: name.clone(),
                w_um,
                l_um,
            });
        }
        let id = DeviceId(self.devices.len() as u32);
        if self.devices.len() == self.devices.capacity() {
            self.growths += 1;
        }
        self.devices.push(Device {
            name,
            kind,
            gate,
            source,
            drain,
            w_um,
            l_um,
        });
        id
    }

    /// Adds an enhancement transistor.
    pub fn enhancement(
        &mut self,
        name: impl Into<String>,
        gate: NodeId,
        source: NodeId,
        drain: NodeId,
        w_um: f64,
        l_um: f64,
    ) -> DeviceId {
        self.insert_device(
            name.into(),
            DeviceKind::Enhancement,
            gate,
            source,
            drain,
            w_um,
            l_um,
        )
    }

    /// Adds a depletion transistor with explicit terminals (for unusual
    /// structures; for ordinary pull-ups use
    /// [`NetlistBuilder::depletion_load`]).
    pub fn depletion(
        &mut self,
        name: impl Into<String>,
        gate: NodeId,
        source: NodeId,
        drain: NodeId,
        w_um: f64,
        l_um: f64,
    ) -> DeviceId {
        self.insert_device(
            name.into(),
            DeviceKind::Depletion,
            gate,
            source,
            drain,
            w_um,
            l_um,
        )
    }

    /// Adds a classic depletion pull-up load on `node`: channel from VDD to
    /// `node`, gate tied to `node`.
    pub fn depletion_load(&mut self, node: NodeId, w_um: f64, l_um: f64) -> DeviceId {
        let name = format!("pu_{}", self.node_name(node));
        self.insert_device(
            name,
            DeviceKind::Depletion,
            node,
            self.vdd(),
            node,
            w_um,
            l_um,
        )
    }

    /// Adds a minimum-size pass transistor: channel `a`–`b`, gated by `ctrl`.
    pub fn pass(
        &mut self,
        name: impl Into<String>,
        ctrl: NodeId,
        a: NodeId,
        b: NodeId,
    ) -> DeviceId {
        let s = self.tech.min_size();
        self.enhancement(name, ctrl, a, b, s, s)
    }

    // ----- standard cells ---------------------------------------------

    /// Standard ratioed inverter: pull-down W=2·min, L=min (Z = ½ square);
    /// pull-up W=min/1, L=2·min (Z = 2 squares); ratio 4.
    ///
    /// Returns the (pull-up, pull-down) device ids.
    pub fn inverter(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        output: NodeId,
    ) -> (DeviceId, DeviceId) {
        let name = name.into();
        let s = self.tech.min_size();
        let pu = self.depletion_load(output, s, 2.0 * s);
        let pd = self.enhancement(format!("{name}_pd"), input, self.gnd(), output, 2.0 * s, s);
        (pu, pd)
    }

    /// k-input NAND: k series pull-downs, each k-times wider than the
    /// inverter pull-down so the worst-case series resistance matches, plus
    /// one shared 4:1 load.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn nand(&mut self, name: impl Into<String>, inputs: &[NodeId], output: NodeId) {
        assert!(!inputs.is_empty(), "nand needs at least one input");
        let name = name.into();
        let s = self.tech.min_size();
        let k = inputs.len() as f64;
        self.depletion_load(output, s, 2.0 * s);
        // Series chain from output down to ground through internal nodes.
        let mut upper = output;
        for (i, &input) in inputs.iter().enumerate() {
            let lower = if i + 1 == inputs.len() {
                self.gnd()
            } else {
                self.node(format!("{name}_s{i}"))
            };
            self.enhancement(format!("{name}_pd{i}"), input, lower, upper, k * 2.0 * s, s);
            upper = lower;
        }
    }

    /// k-input NOR: k parallel inverter-sized pull-downs and one shared
    /// 4:1 load.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn nor(&mut self, name: impl Into<String>, inputs: &[NodeId], output: NodeId) {
        assert!(!inputs.is_empty(), "nor needs at least one input");
        let name = name.into();
        let s = self.tech.min_size();
        self.depletion_load(output, s, 2.0 * s);
        for (i, &input) in inputs.iter().enumerate() {
            self.enhancement(
                format!("{name}_pd{i}"),
                input,
                self.gnd(),
                output,
                2.0 * s,
                s,
            );
        }
    }

    /// Inverting super buffer: an internal inverter plus an output stage
    /// whose depletion pull-up is gated by the internal node (so it pulls
    /// up actively instead of as a weak load). Sized `scale`× the standard
    /// inverter; use for driving large capacitances such as buses.
    ///
    /// Returns the internal node.
    pub fn super_buffer(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        output: NodeId,
        scale: f64,
    ) -> NodeId {
        let name = name.into();
        let s = self.tech.min_size();
        let internal = self.node(format!("{name}_int"));
        self.inverter(format!("{name}_inv"), input, internal);
        // Output stage: active pull-up gated by internal, pull-down by input.
        self.depletion(
            format!("{name}_pu"),
            internal,
            self.vdd(),
            output,
            scale * s,
            s,
        );
        self.enhancement(
            format!("{name}_pd"),
            input,
            self.gnd(),
            output,
            scale * 2.0 * s,
            s,
        );
        internal
    }

    /// Dynamic (pass-transistor) latch: `d` is sampled onto an internal
    /// storage node while `clk` is high, and an inverter restores it to
    /// `q_bar`. This is the 1983 latch: two of these in series on opposite
    /// phases make a master–slave register.
    ///
    /// Returns the storage node.
    pub fn dynamic_latch(
        &mut self,
        name: impl Into<String>,
        clk: NodeId,
        d: NodeId,
        q_bar: NodeId,
    ) -> NodeId {
        let name = name.into();
        let store = self.node(format!("{name}_mem"));
        self.pass(format!("{name}_pass"), clk, d, store);
        self.inverter(format!("{name}_out"), store, q_bar);
        store
    }

    /// Precharge device: pulls `node` toward VDD (to VDD − V_T) while `clk`
    /// is high. The workhorse of precharged buses.
    pub fn precharge(&mut self, name: impl Into<String>, clk: NodeId, node: NodeId) -> DeviceId {
        let s = self.tech.min_size();
        self.enhancement(name, clk, self.vdd(), node, 2.0 * s, s)
    }

    /// Moves one end of a device's channel from `from` to `to` — the
    /// engineering-change primitive buffer insertion needs. If both
    /// channel ends sit on `from`, only the source is moved.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not one of the device's channel terminals.
    pub fn rewire_channel(&mut self, device: DeviceId, from: NodeId, to: NodeId) {
        let d = &mut self.devices[device.index()];
        if d.source == from {
            d.source = to;
        } else if d.drain == from {
            d.drain = to;
        } else {
            panic!("{from} is not a channel terminal of device {}", d.name);
        }
        if d.source == d.drain && self.pending_error.is_none() {
            self.pending_error = Some(NetlistError::ShortedChannel {
                device: d.name.clone(),
            });
        }
    }

    /// Finalizes the netlist: builds connectivity indexes and the
    /// capacitance table.
    ///
    /// # Errors
    ///
    /// Returns the first structural error recorded during construction
    /// (shorted channel or bad geometry).
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        if let Some(e) = self.pending_error {
            return Err(e);
        }
        let mut nl = Netlist {
            tech: self.tech,
            nodes: self.nodes,
            devices: self.devices,
            names: self.names,
            node_of_symbol: self.node_of_symbol,
            gate_starts: Vec::new(),
            gate_devs: Vec::new(),
            channel_starts: Vec::new(),
            channel_devs: Vec::new(),
            total_cap: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            clocks: Vec::new(),
        };
        nl.rebuild_indexes();
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> NetlistBuilder {
        NetlistBuilder::new(Tech::nmos4um())
    }

    #[test]
    fn node_is_get_or_create() {
        let mut b = builder();
        let x1 = b.node("x");
        let x2 = b.node("x");
        assert_eq!(x1, x2);
        assert_eq!(b.node_count(), 3); // rails + x
    }

    #[test]
    fn role_upgrade_sticks() {
        let mut b = builder();
        let x = b.node("x");
        let x2 = b.input("x");
        assert_eq!(x, x2);
        let nl = b.finish().unwrap();
        assert_eq!(nl.node(x).role(), NodeRole::Input);
    }

    #[test]
    fn role_is_not_downgraded_by_plain_node() {
        let mut b = builder();
        let x = b.input("x");
        b.node("x");
        let nl = b.finish().unwrap();
        assert_eq!(nl.node(x).role(), NodeRole::Input);
    }

    #[test]
    fn shorted_channel_is_reported_at_finish() {
        let mut b = builder();
        let a = b.input("a");
        let x = b.node("x");
        b.enhancement("bad", a, x, x, 4.0, 2.0);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::ShortedChannel { device } if device == "bad"));
    }

    #[test]
    fn bad_geometry_is_reported_at_finish() {
        let mut b = builder();
        let a = b.input("a");
        let x = b.node("x");
        let g = b.gnd();
        b.enhancement("bad", a, g, x, -4.0, 2.0);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::BadGeometry { .. }));
    }

    #[test]
    fn negative_cap_is_rejected_immediately() {
        let mut b = builder();
        let x = b.node("x");
        let err = b.add_cap(x, -1.0).unwrap_err();
        assert!(matches!(err, NetlistError::BadCapacitance { .. }));
        assert!(b.add_cap(x, 0.5).is_ok());
    }

    #[test]
    fn inverter_has_correct_ratio() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.node("out");
        let (pu, pd) = b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let t = nl.tech().clone();
        let r_pu = nl.device(pu).resistance(&t);
        let r_pd = nl.device(pd).resistance(&t);
        // Drawn Z ratio is 4; electrically the rise calibration puts it
        // between 4 and 7 (see Tech::nmos4um docs).
        let ratio = r_pu / r_pd;
        assert!((4.0..7.0).contains(&ratio), "ratio was {ratio}");
    }

    #[test]
    fn nand_series_chain_matches_inverter_worst_case() {
        let mut b = builder();
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let out = b.node("out");
        b.nand("g", &[i0, i1, i2], out);
        let nl = b.finish().unwrap();
        let t = nl.tech().clone();
        // 1 load + 3 pull-downs; series pull-down resistance equals one
        // inverter pull-down.
        assert_eq!(nl.device_count(), 4);
        let series: f64 = nl
            .devices()
            .filter(|d| d.device.kind() == DeviceKind::Enhancement)
            .map(|d| d.device.resistance(&t))
            .sum();
        let mut b2 = builder();
        let a = b2.input("a");
        let o = b2.node("o");
        let (_, pd) = b2.inverter("i", a, o);
        let nl2 = b2.finish().unwrap();
        let inv_pd = nl2.device(pd).resistance(&t);
        assert!((series - inv_pd).abs() < 1e-9);
    }

    #[test]
    fn nor_is_parallel() {
        let mut b = builder();
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let out = b.node("out");
        b.nor("g", &[i0, i1], out);
        let nl = b.finish().unwrap();
        assert_eq!(nl.device_count(), 3);
        // Both pull-downs touch output and ground directly.
        let gnd_contacts = nl.node_devices(nl.gnd()).channel.len();
        assert_eq!(gnd_contacts, 2);
    }

    #[test]
    fn dynamic_latch_structure() {
        let mut b = builder();
        let phi = b.clock("phi1", 0);
        let d = b.input("d");
        let qb = b.node("qb");
        let store = b.dynamic_latch("l", phi, d, qb);
        let nl = b.finish().unwrap();
        // Pass + inverter = 3 devices; storage node touches exactly the
        // pass channel and gates the inverter pull-down.
        assert_eq!(nl.device_count(), 3);
        let at_store = nl.node_devices(store);
        assert_eq!(at_store.channel.len(), 1);
        assert_eq!(at_store.gated.len(), 1);
        assert_eq!(nl.clocks().len(), 1);
    }

    #[test]
    fn super_buffer_pullup_is_actively_gated() {
        let mut b = builder();
        let a = b.input("a");
        let out = b.node("out");
        let internal = b.super_buffer("sb", a, out, 4.0);
        let nl = b.finish().unwrap();
        // Output-stage pull-up must be a depletion device whose gate is the
        // internal node, not load-connected to the output.
        let pu = nl
            .devices()
            .find(|d| d.device.kind() == DeviceKind::Depletion && d.device.gate() == internal)
            .expect("super buffer pull-up");
        assert!(!pu.device.is_load_connected() || pu.device.gate() == internal);
        assert_eq!(nl.device_count(), 4);
    }

    #[test]
    fn empty_finish_is_ok() {
        assert!(builder().finish().is_ok());
    }
}
