//! Provable bounds on the true threshold-crossing time of an RC tree.
//!
//! Rubinstein, Penfield and Horowitz ("Signal delay in RC tree networks",
//! 1983 — exactly contemporary with TV) showed that step responses of RC
//! trees admit closed-form time bounds. This module implements two bounds
//! with short self-contained proofs, both of which their tighter bounds
//! imply:
//!
//! * **Upper bound** `T_D / x`: the step response `v_i(t)` is the CDF of a
//!   non-negative random variable whose mean is the Elmore delay `T_D`
//!   (the impulse response of an RC tree is non-negative and integrates to
//!   one). Markov's inequality gives `1 − v_i(t) ≤ T_D / t`, so the time
//!   at which the remaining fraction is `x` satisfies `t ≤ T_D / x`.
//!
//! * **Lower bound** `R_ii · C_i · ln(1/x)`: every ampere charging `C_i`
//!   flows through the whole supply→i path (resistance `R_ii`), and path
//!   currents can only shrink downstream, so
//!   `1 − v_i ≥ R_ii · C_i · dv_i/dt`; integrating gives
//!   `t(x) ≥ R_ii C_i ln(1/x)`.
//!
//! The invariant `lower ≤ single-pole estimate ≤ upper` holds analytically
//! (`R_ii·C_i ≤ T_D` and `ln(1/x) ≤ 1/x`), and the integration tests check
//! both bounds against the transient simulator.

use crate::elmore::elmore_delays;
use crate::tree::{RcNodeId, RcTree};

/// Certified lower and upper bounds on a crossing time, ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayBounds {
    /// No crossing can happen before this time.
    pub lower: f64,
    /// The crossing must have happened by this time.
    pub upper: f64,
}

impl DelayBounds {
    /// Width of the bound interval, ns.
    #[inline]
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether a measured time falls within the bounds (with a small
    /// numerical tolerance).
    pub fn contains(&self, t: f64) -> bool {
        t >= self.lower - 1e-9 && t <= self.upper + 1e-9
    }
}

/// Bounds on the time for `node` to cross the point where a fraction `x`
/// of its final swing remains.
///
/// # Panics
///
/// Panics if `x` is not in (0, 1].
///
/// # Example
///
/// ```
/// use tv_rc::tree::RcTree;
/// use tv_rc::bounds::crossing_bounds;
///
/// let mut t = RcTree::new(10.0);
/// t.add_cap(t.root(), 0.2);
/// let b = crossing_bounds(&t, t.root(), 0.5);
/// // Single RC: exact t50 = RC·ln2 ≈ 1.386 ns sits inside the bounds.
/// assert!(b.contains(10.0 * 0.2 * std::f64::consts::LN_2));
/// ```
pub fn crossing_bounds(tree: &RcTree, node: RcNodeId, x: f64) -> DelayBounds {
    assert!(x > 0.0 && x <= 1.0, "fraction remaining must be in (0,1]");
    let elmore = elmore_delays(tree)[node.index()];
    let r_path = tree.path_r(node);
    let c_here = tree.cap(node);
    DelayBounds {
        lower: r_path * c_here * (1.0 / x).ln(),
        upper: elmore / x,
    }
}

/// Bounds for every node at once (amortizes the Elmore pass), indexed by
/// [`RcNodeId::index`].
///
/// # Panics
///
/// Panics if `x` is not in (0, 1].
pub fn crossing_bounds_all(tree: &RcTree, x: f64) -> Vec<DelayBounds> {
    assert!(x > 0.0 && x <= 1.0, "fraction remaining must be in (0,1]");
    let elmore = elmore_delays(tree);
    let log_term = (1.0 / x).ln();
    tree.ids()
        .map(|id| DelayBounds {
            lower: tree.path_r(id) * tree.cap(id) * log_term,
            upper: elmore[id.index()] / x,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elmore::crossing_estimate;

    fn ladder(rd: f64, r: f64, c: f64, n: usize) -> RcTree {
        let mut t = RcTree::new(rd);
        t.add_cap(t.root(), c);
        let mut last = t.root();
        for _ in 1..n {
            last = t.add_child(last, r, c);
        }
        t
    }

    #[test]
    fn single_rc_bounds_bracket_exact() {
        let mut t = RcTree::new(4.0);
        t.add_cap(t.root(), 0.5);
        let exact = 4.0 * 0.5 * std::f64::consts::LN_2;
        let b = crossing_bounds(&t, t.root(), 0.5);
        assert!(b.lower <= exact && exact <= b.upper);
        // For a single RC the lower bound is tight.
        assert!((b.lower - exact).abs() < 1e-12);
    }

    #[test]
    fn bounds_are_ordered_and_bracket_estimate_everywhere() {
        let t = ladder(3.0, 2.0, 0.4, 10);
        let elmore = crate::elmore::elmore_delays(&t);
        for x in [0.1, 0.3, 0.5, 0.9] {
            for (i, b) in crossing_bounds_all(&t, x).iter().enumerate() {
                let est = crossing_estimate(elmore[i], x);
                assert!(b.lower <= est + 1e-12, "lower > estimate at x={x}");
                assert!(est <= b.upper + 1e-12, "estimate > upper at x={x}");
                assert!(b.width() >= 0.0);
            }
        }
    }

    #[test]
    fn tighter_threshold_means_later_bounds() {
        let t = ladder(3.0, 2.0, 0.4, 5);
        let end = t.ids().last().unwrap();
        let loose = crossing_bounds(&t, end, 0.5);
        let tight = crossing_bounds(&t, end, 0.1);
        assert!(tight.lower >= loose.lower);
        assert!(tight.upper >= loose.upper);
    }

    #[test]
    fn contains_respects_interval() {
        let b = DelayBounds {
            lower: 1.0,
            upper: 2.0,
        };
        assert!(b.contains(1.5));
        assert!(b.contains(1.0));
        assert!(!b.contains(2.5));
        assert!(!b.contains(0.5));
    }

    #[test]
    #[should_panic(expected = "fraction remaining")]
    fn invalid_fraction_panics() {
        let t = ladder(1.0, 1.0, 1.0, 2);
        let _ = crossing_bounds(&t, t.root(), 1.5);
    }
}
