//! Closed forms for pass-transistor chains — the structure that made
//! transistor-level timing analysis necessary in the first place.
//!
//! A chain of n identical pass transistors (on-resistance `R`, node
//! capacitance `C`) behind a driver of resistance `Rd` has Elmore delay at
//! the far end
//!
//! ```text
//! T(n) = Rd·n·C + R·C·n(n+1)/2
//! ```
//!
//! — **quadratic in n**, which is why nMOS designers broke long pass
//! chains with buffers. Inserting a restoring buffer (delay `t_buf`) every
//! `k` stages makes the total delay `(n/k)·(T(k) + t_buf)`, linear in `n`,
//! minimized near `k* ≈ sqrt(2·t_buf / (R·C))`. Figure F1 regenerates
//! exactly this trade-off.

/// Elmore delay at the far end of a uniform pass chain, ns.
///
/// `r_driver` kΩ drives `n` sections of `r_pass` kΩ and `c_node` pF each.
/// With `n = 0` this is just the driver charging nothing (0 ns).
///
/// # Example
///
/// ```
/// use tv_rc::passchain::chain_elmore;
///
/// // Doubling the chain length roughly quadruples the chain term.
/// let t4 = chain_elmore(0.0, 10.0, 0.1, 4);
/// let t8 = chain_elmore(0.0, 10.0, 0.1, 8);
/// assert!(t8 / t4 > 3.0);
/// ```
pub fn chain_elmore(r_driver: f64, r_pass: f64, c_node: f64, n: usize) -> f64 {
    let nf = n as f64;
    r_driver * nf * c_node + r_pass * c_node * nf * (nf + 1.0) / 2.0
}

/// Total delay of an n-stage pass chain broken by a restoring buffer every
/// `k` stages, ns. Each segment costs `chain_elmore(r_driver, …, k)`, and
/// each buffer adds `t_buffer`. The final partial segment is included; the
/// chain ends without a trailing buffer.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn buffered_chain_delay(
    r_driver: f64,
    r_pass: f64,
    c_node: f64,
    t_buffer: f64,
    n: usize,
    k: usize,
) -> f64 {
    assert!(k > 0, "buffer interval must be at least one stage");
    if n == 0 {
        return 0.0;
    }
    let full_segments = n / k;
    let remainder = n % k;
    let mut total = full_segments as f64 * chain_elmore(r_driver, r_pass, c_node, k);
    // A buffer follows every full segment except when it ends the chain.
    let buffers = if remainder == 0 {
        full_segments.saturating_sub(1)
    } else {
        full_segments
    };
    total += buffers as f64 * t_buffer;
    if remainder > 0 {
        total += chain_elmore(r_driver, r_pass, c_node, remainder);
    }
    total
}

/// The buffer interval minimizing per-stage delay of an infinite chain:
/// `k* = sqrt(2·t_buffer / (r_pass·c_node))`, clamped to at least 1.
///
/// # Panics
///
/// Panics if `r_pass` or `c_node` is not strictly positive.
pub fn optimal_buffer_interval(r_pass: f64, c_node: f64, t_buffer: f64) -> usize {
    assert!(
        r_pass > 0.0 && c_node > 0.0,
        "pass resistance and node capacitance must be positive"
    );
    let k = (2.0 * t_buffer / (r_pass * c_node)).sqrt();
    (k.round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elmore::elmore_delay;
    use crate::tree::RcTree;

    #[test]
    fn closed_form_matches_explicit_tree() {
        let (rd, r, c, n) = (7.0, 9.0, 0.25, 6);
        let mut t = RcTree::new(rd);
        let mut last = t.root();
        for _ in 0..n {
            last = t.add_child(last, r, c);
        }
        let tree_delay = elmore_delay(&t, last);
        let formula = chain_elmore(rd, r, c, n);
        assert!((tree_delay - formula).abs() < 1e-9);
    }

    #[test]
    fn growth_is_quadratic() {
        let d: Vec<f64> = (1..=8).map(|n| chain_elmore(0.0, 10.0, 0.1, n)).collect();
        // Second differences of a quadratic are constant.
        let dd: Vec<f64> = d.windows(3).map(|w| w[2] - 2.0 * w[1] + w[0]).collect();
        for pair in dd.windows(2) {
            assert!((pair[0] - pair[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn buffering_beats_raw_chain_for_long_chains() {
        let (rd, r, c) = (5.0, 10.0, 0.1);
        let t_buf = 2.0;
        let n = 32;
        let k = optimal_buffer_interval(r, c, t_buf);
        let raw = chain_elmore(rd, r, c, n);
        let buffered = buffered_chain_delay(rd, r, c, t_buf, n, k);
        assert!(
            buffered < raw,
            "buffered {buffered} should beat raw {raw} at n={n}"
        );
    }

    #[test]
    fn buffered_equals_raw_when_interval_covers_chain() {
        let (rd, r, c) = (5.0, 10.0, 0.1);
        let n = 6;
        let raw = chain_elmore(rd, r, c, n);
        let buffered = buffered_chain_delay(rd, r, c, 99.0, n, 16);
        assert!((buffered - raw).abs() < 1e-12);
    }

    #[test]
    fn exact_multiple_has_one_fewer_buffer_than_segments() {
        let (rd, r, c, tb) = (1.0, 1.0, 1.0, 10.0);
        // n=4, k=2: two segments, ONE buffer between them.
        let d = buffered_chain_delay(rd, r, c, tb, 4, 2);
        let expect = 2.0 * chain_elmore(rd, r, c, 2) + tb;
        assert!((d - expect).abs() < 1e-12);
    }

    #[test]
    fn remainder_segment_counts() {
        let (rd, r, c, tb) = (1.0, 1.0, 1.0, 10.0);
        // n=5, k=2: segments 2+2+1, buffers after the two full segments.
        let d = buffered_chain_delay(rd, r, c, tb, 5, 2);
        let expect = 2.0 * chain_elmore(rd, r, c, 2) + 2.0 * tb + chain_elmore(rd, r, c, 1);
        assert!((d - expect).abs() < 1e-12);
    }

    #[test]
    fn optimal_interval_scales_with_buffer_cost() {
        let k_cheap = optimal_buffer_interval(10.0, 0.1, 0.5);
        let k_dear = optimal_buffer_interval(10.0, 0.1, 8.0);
        assert!(k_dear > k_cheap);
        assert!(k_cheap >= 1);
    }

    #[test]
    fn zero_length_chain_is_free() {
        assert_eq!(chain_elmore(5.0, 10.0, 0.1, 0), 0.0);
        assert_eq!(buffered_chain_delay(5.0, 10.0, 0.1, 1.0, 0, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "buffer interval")]
    fn zero_interval_panics() {
        let _ = buffered_chain_delay(1.0, 1.0, 1.0, 1.0, 4, 0);
    }
}
