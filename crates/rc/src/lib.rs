//! RC delay models for nMOS timing analysis.
//!
//! TV (Jouppi, DAC 1983) turned transistor geometry into delay numbers with
//! simple RC models — the same family of models Penfield, Rubinstein and
//! Horowitz were formalizing at exactly that time. This crate implements
//! that family:
//!
//! * [`tree`] — rooted RC trees: the driving-point abstraction of a stage
//!   and the pass network hanging off it;
//! * [`elmore`] — the Elmore delay (first moment of the impulse response),
//!   the workhorse single-number estimate;
//! * [`bounds`] — *provable* lower/upper bounds on the true crossing time,
//!   in the spirit of Rubinstein–Penfield–Horowitz: the upper bound comes
//!   from Markov's inequality on the impulse response, the lower bound
//!   from the path resistance that all charge for a node must traverse;
//! * [`lumped`] — the cruder "R·C_total" model TV-era tools used first;
//! * [`moments`] — second moments and the moment-matched crossing
//!   estimate that corrects Elmore's single-pole median bias (the road
//!   to AWE);
//! * [`passchain`] — closed forms for uniform pass-transistor chains
//!   (delay quadratic in length) and optimal buffer insertion;
//! * [`slope`] — input-slope adjustment and output transition times.
//!
//! Units follow `tv-netlist`: kΩ, pF, ns.
//!
//! # Example
//!
//! ```
//! use tv_rc::tree::RcTree;
//!
//! // Driver (10 kΩ) into two nodes of 0.1 pF joined by a 5 kΩ pass device.
//! let mut t = RcTree::new(10.0);
//! let a = t.add_child(t.root(), 0.0, 0.1);
//! let b = t.add_child(a, 5.0, 0.1);
//! let d = tv_rc::elmore::elmore_delays(&t);
//! // Elmore at b: 10·(0.1+0.1) + 5·0.1 = 2.5 ns.
//! assert!((d[b.index()] - 2.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod elmore;
pub mod lumped;
pub mod moments;
pub mod passchain;
pub mod slope;
pub mod stage_tree;
pub mod tree;

pub use bounds::DelayBounds;
pub use slope::SlopeModel;
pub use stage_tree::{stage_tree, StageTree};
pub use tree::{RcNodeId, RcTree};
