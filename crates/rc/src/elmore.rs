//! Elmore delay: the first moment of the RC tree's impulse response.
//!
//! For an RC tree the Elmore delay at node *i* is
//! `T_Di = Σ_k R_ki · C_k`, where `R_ki` is the resistance shared between
//! the supply→*i* and supply→*k* paths. Equivalently — and this is how it
//! is computed here in O(n) — it accumulates down the tree:
//! `T_D(child) = T_D(parent) + r_edge · C_subtree(child)`, with
//! `T_D(root) = r_driver · C_total`.
//!
//! Elmore is the *mean* of the impulse response; the true 50% crossing (the
//! median) is never later than the mean for RC trees, which is why
//! 1983-class analyzers could use it directly as a conservative delay.

use crate::tree::{RcNodeId, RcTree};

/// Elmore delay at every node, ns, indexed by [`RcNodeId::index`].
///
/// # Example
///
/// ```
/// use tv_rc::tree::RcTree;
/// use tv_rc::elmore::elmore_delays;
///
/// // Classic 2-section ladder: R=1 C=1 per section.
/// let mut t = RcTree::new(1.0);
/// t.add_cap(t.root(), 1.0);
/// let n2 = t.add_child(t.root(), 1.0, 1.0);
/// let d = elmore_delays(&t);
/// assert!((d[t.root().index()] - 2.0).abs() < 1e-12); // 1·(1+1)
/// assert!((d[n2.index()] - 3.0).abs() < 1e-12);       // 2 + 1·1
/// ```
pub fn elmore_delays(tree: &RcTree) -> Vec<f64> {
    let sub = tree.subtree_caps();
    let mut delay = vec![0.0; tree.len()];
    for id in tree.ids() {
        let i = id.index();
        let base = match tree.parent(id) {
            Some(p) => delay[p.index()],
            None => 0.0,
        };
        delay[i] = base + tree.edge_r(id) * sub[i];
    }
    delay
}

/// Elmore delay at one node, ns. Prefer [`elmore_delays`] when more than
/// one node is needed (it amortizes the subtree-cap pass).
pub fn elmore_delay(tree: &RcTree, node: RcNodeId) -> f64 {
    elmore_delays(tree)[node.index()]
}

/// Single-pole estimate of the time to cross the fraction-`x`-remaining
/// point, ns: `T_D · ln(1/x)`. With `x = 0.5` this is the familiar
/// `0.69·RC` number.
///
/// # Panics
///
/// Panics if `x` is not in (0, 1].
pub fn crossing_estimate(elmore: f64, x: f64) -> f64 {
    assert!(x > 0.0 && x <= 1.0, "fraction remaining must be in (0,1]");
    elmore * (1.0 / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A uniform ladder of n sections (R, C each) after a driver Rd.
    fn ladder(rd: f64, r: f64, c: f64, n: usize) -> (RcTree, RcNodeId) {
        let mut t = RcTree::new(rd);
        t.add_cap(t.root(), c);
        let mut last = t.root();
        for _ in 1..n {
            last = t.add_child(last, r, c);
        }
        (t, last)
    }

    #[test]
    fn single_rc_is_rc() {
        let mut t = RcTree::new(2.0);
        t.add_cap(t.root(), 3.0);
        assert!((elmore_delay(&t, t.root()) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn ladder_matches_closed_form() {
        // T_D(end) = Rd·nC + R·C·(n-1)n/2 for the far end of an n-section
        // ladder (driver charges all n caps; section k charges n-k caps).
        let (t, end) = ladder(10.0, 2.0, 0.5, 5);
        let expect = 10.0 * 5.0 * 0.5 + 2.0 * 0.5 * (4.0 * 5.0 / 2.0);
        assert!((elmore_delay(&t, end) - expect).abs() < 1e-9);
    }

    #[test]
    fn branch_caps_count_only_shared_path() {
        // Root with two branches; delay in branch A must include branch B's
        // cap only through the shared driver resistance.
        let mut t = RcTree::new(10.0);
        let a = t.add_child(t.root(), 5.0, 0.1);
        let b = t.add_child(t.root(), 7.0, 0.2);
        let d = elmore_delays(&t);
        assert!((d[a.index()] - (10.0 * 0.3 + 5.0 * 0.1)).abs() < 1e-9);
        assert!((d[b.index()] - (10.0 * 0.3 + 7.0 * 0.2)).abs() < 1e-9);
    }

    #[test]
    fn elmore_is_monotone_down_any_path() {
        let (t, _) = ladder(1.0, 1.0, 1.0, 8);
        let d = elmore_delays(&t);
        for id in t.ids() {
            if let Some(p) = t.parent(id) {
                assert!(d[id.index()] >= d[p.index()]);
            }
        }
    }

    #[test]
    fn crossing_estimate_at_half_is_ln2() {
        let e = 10.0;
        assert!((crossing_estimate(e, 0.5) - 10.0 * std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(crossing_estimate(e, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction remaining")]
    fn crossing_estimate_rejects_zero() {
        let _ = crossing_estimate(1.0, 0.0);
    }

    #[test]
    fn zero_resistance_tree_has_zero_delay() {
        let mut t = RcTree::new(0.0);
        let a = t.add_child(t.root(), 0.0, 5.0);
        assert_eq!(elmore_delay(&t, a), 0.0);
    }
}
