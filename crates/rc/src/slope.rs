//! Waveform-slope handling: real inputs are not steps.
//!
//! TV adjusted its RC delays for the finite transition time of the driving
//! waveform: a slowly rising gate input turns the pull-down on late, so the
//! stage's measured delay grows with the input's transition time. The
//! standard first-order correction (still used by every slew-aware STA) is
//!
//! ```text
//! delay = intrinsic_rc_delay + k_slope · input_transition
//! output_transition = k_transition · rc_time_constant
//! ```
//!
//! with `k_slope` ≈ the fraction of the input swing between the step
//! reference point and the device threshold, and `k_transition` = ln 9 for
//! the 10%–90% convention.

/// First-order slope model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlopeModel {
    /// Fraction of the input transition added to the intrinsic delay.
    /// The default 0.5 corresponds to measuring from the input's 50% point
    /// with a device that switches near mid-swing.
    pub k_slope: f64,
    /// Output transition per unit RC time constant. Default `ln 9 ≈ 2.197`,
    /// the 10%–90% swing of a single exponential.
    pub k_transition: f64,
}

impl SlopeModel {
    /// The standard model: `k_slope` = 0.5, 10–90% transitions.
    pub fn standard() -> Self {
        SlopeModel {
            k_slope: 0.5,
            k_transition: 9.0_f64.ln(),
        }
    }

    /// The model calibrated against this workspace's level-1 transient
    /// simulator on inverter/NAND/NOR chains: `k_slope` = 0.25 (a
    /// mid-swing device responds after about a quarter of the driving
    /// transition), 10–90% transitions.
    pub fn calibrated() -> Self {
        SlopeModel {
            k_slope: 0.25,
            k_transition: 9.0_f64.ln(),
        }
    }

    /// No slope handling at all: delays are pure step-response numbers
    /// (the pre-TV convention; the ablation baseline).
    pub fn disabled() -> Self {
        SlopeModel {
            k_slope: 0.0,
            k_transition: 9.0_f64.ln(),
        }
    }

    /// Stage delay seen by a waveform with the given transition time, ns.
    ///
    /// `intrinsic` is the step-input RC delay; `input_transition` is the
    /// 10–90% transition time of the driving waveform.
    #[inline]
    pub fn delay(&self, intrinsic: f64, input_transition: f64) -> f64 {
        intrinsic + self.k_slope * input_transition
    }

    /// 10–90% transition time of the stage's own output, ns, given its RC
    /// time constant.
    #[inline]
    pub fn output_transition(&self, tau: f64) -> f64 {
        self.k_transition * tau
    }
}

impl Default for SlopeModel {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_input_adds_nothing() {
        let m = SlopeModel::standard();
        assert_eq!(m.delay(3.0, 0.0), 3.0);
    }

    #[test]
    fn slow_input_slows_stage() {
        let m = SlopeModel::standard();
        assert!(m.delay(3.0, 2.0) > m.delay(3.0, 1.0));
        assert!((m.delay(3.0, 2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn output_transition_is_ln9_tau() {
        let m = SlopeModel::standard();
        assert!((m.output_transition(1.0) - 9.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn default_is_standard() {
        assert_eq!(SlopeModel::default(), SlopeModel::standard());
    }
}
