//! Higher moments of RC-tree impulse responses and the moment-matched
//! crossing estimate built on them — the first step on the road from
//! TV-era single-number models to AWE.
//!
//! The Elmore delay is the *first* moment `m1` (the mean) of the impulse
//! response. The single-pole estimate `m1·ln 2` equals the median only
//! when the response really is one exponential; elsewhere the median
//! differs in a direction the *second* moment reveals:
//!
//! * shallow trees are nearly single-pole — median ≈ `0.69·m1`;
//! * deep uniform chains have bell-shaped responses — the median climbs
//!   toward the mean `m1` itself.
//!
//! This module computes `m1`/`m2` in two linear passes and fits the
//! smallest model consistent with them: a **product-form two-pole**
//! `1/((1+sτ₁)(1+sτ₂))` when the moments admit real poles, otherwise a
//! **gamma-distribution fit** (shape `k = m1²/σ²`, scale `θ = σ²/m1`,
//! with `σ² = 2·m2 − m1²` the response variance), whose quantiles come
//! from the Wilson–Hilferty approximation. Both reduce exactly to the
//! single-pole estimate when `m2 = m1²`.
//!
//! Moment recursion (standard for RC trees): `m2(i) = Σ_k R_ki·C_k·m1(k)`.

use crate::elmore::elmore_delays;
use crate::tree::{RcNodeId, RcTree};

/// First and second moments of the impulse response at every node.
///
/// Conventions: `m1` is the Elmore delay (mean, ns); `m2` is the second
/// Taylor coefficient (ns²) scaled so a single pole satisfies `m2 = m1²`.
/// For any RC tree `m2 ≥ m1²/2` (the variance `σ² = 2·m2 − m1²` is
/// non-negative). `m2` may exceed `m1²` — near the driver of a long line
/// the response is heavy-tailed (small mean, long downstream tail) — or
/// fall below it — at the far end the response is bell-shaped.
#[derive(Debug, Clone)]
pub struct Moments {
    /// First moment (Elmore delay) per node, ns.
    pub m1: Vec<f64>,
    /// Second moment per node, ns² (single pole: `m2 = m1²`).
    pub m2: Vec<f64>,
}

/// Computes `m1` and `m2` for every node in two passes each.
///
/// # Example
///
/// ```
/// use tv_rc::tree::RcTree;
/// use tv_rc::moments::moments;
///
/// let mut t = RcTree::new(1.0);
/// t.add_cap(t.root(), 1.0);
/// let m = moments(&t);
/// // Single RC: m1 = RC, m2 = (RC)².
/// assert!((m.m1[0] - 1.0).abs() < 1e-12);
/// assert!((m.m2[0] - 1.0).abs() < 1e-12);
/// ```
pub fn moments(tree: &RcTree) -> Moments {
    let m1 = elmore_delays(tree);

    // m2(i) = Σ_k R_ki C_k m1(k): the Elmore accumulation with each cap
    // weighted by its own m1.
    let n = tree.len();
    let mut weighted: Vec<f64> = (0..n)
        .map(|i| tree.cap(RcNodeId::from_index(i)) * m1[i])
        .collect();
    for i in (1..n).rev() {
        let p = tree
            .parent(RcNodeId::from_index(i))
            .expect("non-root has parent")
            .index();
        weighted[p] += weighted[i];
    }
    let mut m2 = vec![0.0; n];
    for id in tree.ids() {
        let i = id.index();
        let base = match tree.parent(id) {
            Some(p) => m2[p.index()],
            None => 0.0,
        };
        m2[i] = base + tree.edge_r(id) * weighted[i];
    }
    Moments { m1, m2 }
}

/// Moment-matched estimate of the time at which a fraction `x` of the
/// final swing remains, ns.
///
/// With `q = m1² − m2` (the two-pole product `τ₁τ₂`): when
/// `m1² − 4q ≥ 0` the response is modeled as two real poles and the
/// crossing solved by bisection; otherwise a gamma fit on
/// (`m1`, `σ² = 2m2 − m1²`) supplies the quantile. `m2 = m1²` reduces to
/// `m1·ln(1/x)` exactly.
///
/// # Panics
///
/// Panics if `x` is not in (0, 1).
pub fn moment_matched_crossing(m1: f64, m2: f64, x: f64) -> f64 {
    assert!(x > 0.0 && x < 1.0, "fraction remaining must be in (0,1)");
    if m1 <= 0.0 {
        return 0.0;
    }
    let q = m1 * m1 - m2; // τ1·τ2 of the product-form two-pole (if any)
    let disc = m1 * m1 - 4.0 * q;
    if (m2 - m1 * m1).abs() <= 1e-9 * m1 * m1 {
        // Single-pole (or numerically indistinguishable from it).
        return m1 * (1.0 / x).ln();
    }
    if q > 0.0 && disc >= 0.0 {
        // Mild skew: a genuine product-form two-pole exists.
        let root = disc.sqrt();
        let tau1 = 0.5 * (m1 + root);
        let tau2 = 0.5 * (m1 - root);
        if tau2 > 1e-12 {
            return two_real_pole_crossing(tau1, tau2, x, m1);
        }
        return m1 * (1.0 / x).ln();
    }
    // Heavy tail (q < 0, near-driver nodes of long lines) or bell shape
    // (disc < 0, deep interior): gamma fit on mean and variance.
    let variance = 2.0 * m2 - m1 * m1;
    if variance <= 0.0 {
        return m1 * (1.0 / x).ln();
    }
    // Wilson–Hilferty degrades for very small shapes; clamp — the model
    // is a delay estimate, not a statistics library.
    let k = (m1 * m1 / variance).max(0.2);
    let theta = m1 / k;
    theta * gamma_quantile(k, 1.0 - x)
}

/// Crossing of the two-real-pole step response by bisection. `r(t) =
/// (τ₁e^{−t/τ₁} − τ₂e^{−t/τ₂})/(τ₁−τ₂)` decreases monotonically 1 → 0.
fn two_real_pole_crossing(tau1: f64, tau2: f64, x: f64, m1: f64) -> f64 {
    let remaining = |t: f64| (tau1 * (-t / tau1).exp() - tau2 * (-t / tau2).exp()) / (tau1 - tau2);
    let mut lo = 0.0;
    let mut hi = 4.0 * m1 * (1.0 / x).ln() + 4.0 * tau1;
    while remaining(hi) > x {
        hi *= 2.0;
        if hi > 1e12 {
            return m1 * (1.0 / x).ln();
        }
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if remaining(mid) > x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Quantile of the gamma distribution with shape `k`, scale 1, at
/// probability `p`, via the Wilson–Hilferty cube approximation (exact in
/// the χ² limit, a few percent for small `k` — ample for a delay model).
fn gamma_quantile(k: f64, p: f64) -> f64 {
    let z = normal_quantile(p);
    let c = 1.0 - 1.0 / (9.0 * k) + z / (3.0 * k.sqrt());
    // The cube approximation goes negative for small shapes at low
    // probabilities; a time quantile is never negative.
    (k * c * c * c).max(0.0)
}

/// Standard normal quantile by the Beasley–Springer–Moro rational
/// approximation (|error| < 3e-9 over (0,1)).
fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 4] = [
        2.50662823884,
        -18.61500062529,
        41.39119773534,
        -25.44106049637,
    ];
    const B: [f64; 4] = [
        -8.47351093090,
        23.08336743743,
        -21.06224101826,
        3.13082909833,
    ];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = p - 0.5;
    if y.abs() < 0.42 {
        let r = y * y;
        y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0])
            / ((((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0)
    } else {
        let r = if y > 0.0 { 1.0 - p } else { p };
        let s = (-(r.ln())).ln();
        let mut t = C[0];
        let mut pow = 1.0;
        for &coef in &C[1..] {
            pow *= s;
            t += coef * pow;
        }
        if y < 0.0 {
            -t
        } else {
            t
        }
    }
}

/// Per-node moment-matched crossing estimates for a whole tree, ns.
///
/// # Panics
///
/// Panics if `x` is not in (0, 1).
pub fn moment_matched_crossings(tree: &RcTree, x: f64) -> Vec<f64> {
    let m = moments(tree);
    m.m1.iter()
        .zip(&m.m2)
        .map(|(&m1, &m2)| moment_matched_crossing(m1, m2, x))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elmore::crossing_estimate;

    fn ladder(rd: f64, r: f64, c: f64, n: usize) -> RcTree {
        let mut t = RcTree::new(rd);
        t.add_cap(t.root(), c);
        let mut last = t.root();
        for _ in 1..n {
            last = t.add_child(last, r, c);
        }
        t
    }

    #[test]
    fn single_rc_moments() {
        let mut t = RcTree::new(2.0);
        t.add_cap(t.root(), 3.0);
        let m = moments(&t);
        assert!((m.m1[0] - 6.0).abs() < 1e-12);
        assert!((m.m2[0] - 36.0).abs() < 1e-12);
    }

    #[test]
    fn variance_is_never_negative() {
        for n in [1usize, 2, 4, 8, 16] {
            let t = ladder(3.0, 2.0, 0.3, n);
            let m = moments(&t);
            for i in 0..t.len() {
                let m1s = m.m1[i] * m.m1[i];
                assert!(
                    m.m2[i] >= 0.5 * m1s - 1e-9,
                    "n={n} node {i}: negative variance"
                );
            }
        }
    }

    #[test]
    fn near_driver_nodes_are_heavy_tailed_far_nodes_bell_shaped() {
        let t = ladder(3.0, 2.0, 0.3, 16);
        let m = moments(&t);
        // Root: long downstream tail, m2 > m1².
        assert!(m.m2[0] > m.m1[0] * m.m1[0]);
        // Far end: bell shape, m2 < m1².
        let far = t.len() - 1;
        assert!(m.m2[far] < m.m1[far] * m.m1[far]);
    }

    #[test]
    fn single_pole_case_reduces_to_elmore_ln() {
        let t = crossing_estimate(5.0, 0.5);
        let tp = moment_matched_crossing(5.0, 25.0, 0.5);
        assert!((t - tp).abs() < 1e-9);
    }

    #[test]
    fn two_distinct_poles_solved_exactly() {
        // τ1 = 3, τ2 = 1: m1 = 4, m2 = m1² − τ1τ2 = 13.
        let est = moment_matched_crossing(4.0, 13.0, 0.5);
        // Check against direct evaluation of the two-pole response.
        let remaining = |t: f64| (3.0 * (-t / 3.0_f64).exp() - (-t / 1.0_f64).exp()) / 2.0;
        assert!((remaining(est) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn deep_chain_median_climbs_toward_the_mean() {
        // Bell-shaped deep-chain response: the true median lies above the
        // single-pole 0.69·m1 and below the mean m1; the fit must agree.
        let t = ladder(0.5, 2.0, 0.3, 16);
        let far = t.ids().last().unwrap().index();
        let m = moments(&t);
        let single = crossing_estimate(m.m1[far], 0.5);
        let matched = moment_matched_crossing(m.m1[far], m.m2[far], 0.5);
        assert!(
            matched > single,
            "deep-chain median {matched} should exceed single-pole {single}"
        );
        assert!(matched < m.m1[far], "median stays below the mean");
    }

    #[test]
    fn crossings_vector_matches_scalar() {
        let t = ladder(1.0, 1.0, 0.5, 5);
        let m = moments(&t);
        let v = moment_matched_crossings(&t, 0.5);
        for (i, &vi) in v.iter().enumerate() {
            let s = moment_matched_crossing(m.m1[i], m.m2[i], 0.5);
            assert!((vi - s).abs() < 1e-12);
        }
    }

    #[test]
    fn tighter_threshold_is_later() {
        let t = ladder(1.0, 2.0, 0.4, 8);
        let far = t.ids().last().unwrap().index();
        let m = moments(&t);
        let at_half = moment_matched_crossing(m.m1[far], m.m2[far], 0.5);
        let at_tenth = moment_matched_crossing(m.m1[far], m.m2[far], 0.1);
        assert!(at_tenth > at_half);
    }

    #[test]
    fn normal_quantile_sanity() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.95996).abs() < 1e-3);
        assert!((normal_quantile(0.025) + 1.95996).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "fraction remaining")]
    fn bad_fraction_panics() {
        let _ = moment_matched_crossing(1.0, 0.9, 0.0);
    }
}
