//! Rooted RC trees.

use tv_netlist::NodeId;

/// Index of a node within an [`RcTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RcNodeId(u32);

impl RcNodeId {
    /// Dense index, for indexing the per-node vectors the analyses return.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a dense index; the caller is responsible
    /// for the index having come from the same tree.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        RcNodeId(index as u32)
    }
}

#[derive(Debug, Clone)]
struct RcNode {
    parent: Option<RcNodeId>,
    /// Resistance of the edge to the parent (for the root: the driver's
    /// resistance to the supply), kΩ.
    r: f64,
    /// Capacitance to ground at this node, pF.
    c: f64,
    /// The netlist node this RC node stands for, when the tree was
    /// extracted from a netlist.
    tag: Option<NodeId>,
}

/// A rooted RC tree: the root is the driven stage output, the root's edge
/// resistance is the driver's effective resistance, and children hang off
/// through pass-transistor or interconnect resistances.
///
/// Node 0 is always the root; nodes must be added parent-first (the natural
/// order when walking a netlist downstream), which the analyses exploit to
/// run in one or two passes.
#[derive(Debug, Clone)]
pub struct RcTree {
    nodes: Vec<RcNode>,
}

impl RcTree {
    /// Creates a tree whose root is driven through `driver_r` kΩ. The root
    /// starts with zero capacitance; use [`RcTree::add_cap`] to load it.
    pub fn new(driver_r: f64) -> Self {
        assert!(
            driver_r.is_finite() && driver_r >= 0.0,
            "driver resistance must be non-negative, got {driver_r}"
        );
        RcTree {
            nodes: vec![RcNode {
                parent: None,
                r: driver_r,
                c: 0.0,
                tag: None,
            }],
        }
    }

    /// The root node (the driven stage output).
    #[inline]
    pub fn root(&self) -> RcNodeId {
        RcNodeId(0)
    }

    /// Number of nodes including the root.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is just a root (never true: the root always exists).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Adds a node under `parent`, connected by `r` kΩ, loaded with `c` pF.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is negative or non-finite, or if `parent` is
    /// not in this tree.
    pub fn add_child(&mut self, parent: RcNodeId, r: f64, c: f64) -> RcNodeId {
        assert!(r.is_finite() && r >= 0.0, "edge resistance must be >= 0");
        assert!(c.is_finite() && c >= 0.0, "node capacitance must be >= 0");
        assert!(parent.index() < self.nodes.len(), "parent not in tree");
        let id = RcNodeId(self.nodes.len() as u32);
        self.nodes.push(RcNode {
            parent: Some(parent),
            r,
            c,
            tag: None,
        });
        id
    }

    /// Adds capacitance at an existing node.
    ///
    /// # Panics
    ///
    /// Panics if `c` is negative or non-finite.
    pub fn add_cap(&mut self, node: RcNodeId, c: f64) {
        assert!(c.is_finite() && c >= 0.0, "capacitance must be >= 0");
        self.nodes[node.index()].c += c;
    }

    /// Associates a netlist node with an RC node (used by extraction).
    pub fn set_tag(&mut self, node: RcNodeId, tag: NodeId) {
        self.nodes[node.index()].tag = Some(tag);
    }

    /// The netlist node an RC node stands for, if tagged.
    #[inline]
    pub fn tag(&self, node: RcNodeId) -> Option<NodeId> {
        self.nodes[node.index()].tag
    }

    /// The parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, node: RcNodeId) -> Option<RcNodeId> {
        self.nodes[node.index()].parent
    }

    /// Resistance of the edge from `node` to its parent (for the root, the
    /// driver resistance), kΩ.
    #[inline]
    pub fn edge_r(&self, node: RcNodeId) -> f64 {
        self.nodes[node.index()].r
    }

    /// Capacitance at `node`, pF.
    #[inline]
    pub fn cap(&self, node: RcNodeId) -> f64 {
        self.nodes[node.index()].c
    }

    /// Iterates node ids in insertion (parent-first) order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = RcNodeId> + '_ {
        (0..self.nodes.len()).map(|i| RcNodeId(i as u32))
    }

    /// Total capacitance of the tree, pF.
    pub fn total_cap(&self) -> f64 {
        self.nodes.iter().map(|n| n.c).sum()
    }

    /// Resistance of the path from the supply to `node` (including the
    /// driver resistance), kΩ — the `R_ii` of the bounds literature.
    pub fn path_r(&self, node: RcNodeId) -> f64 {
        let mut r = 0.0;
        let mut cur = Some(node);
        while let Some(n) = cur {
            r += self.nodes[n.index()].r;
            cur = self.nodes[n.index()].parent;
        }
        r
    }

    /// Per-node subtree capacitance (node's own cap plus everything below),
    /// indexed by [`RcNodeId::index`]. One reverse pass over the
    /// parent-first layout.
    pub fn subtree_caps(&self) -> Vec<f64> {
        let mut sub: Vec<f64> = self.nodes.iter().map(|n| n.c).collect();
        for i in (1..self.nodes.len()).rev() {
            let p = self.nodes[i].parent.expect("non-root has parent").index();
            sub[p] += sub[i];
        }
        sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_driver_resistance() {
        let t = RcTree::new(7.5);
        assert_eq!(t.edge_r(t.root()), 7.5);
        assert_eq!(t.len(), 1);
        assert_eq!(t.parent(t.root()), None);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_driver_rejected() {
        let _ = RcTree::new(-1.0);
    }

    #[test]
    fn path_r_accumulates() {
        let mut t = RcTree::new(10.0);
        let a = t.add_child(t.root(), 5.0, 0.1);
        let b = t.add_child(a, 3.0, 0.1);
        assert!((t.path_r(t.root()) - 10.0).abs() < 1e-12);
        assert!((t.path_r(a) - 15.0).abs() < 1e-12);
        assert!((t.path_r(b) - 18.0).abs() < 1e-12);
    }

    #[test]
    fn subtree_caps_sum_bottom_up() {
        let mut t = RcTree::new(1.0);
        t.add_cap(t.root(), 0.5);
        let a = t.add_child(t.root(), 1.0, 0.2);
        let b = t.add_child(a, 1.0, 0.3);
        let c = t.add_child(t.root(), 1.0, 0.4);
        let sub = t.subtree_caps();
        assert!((sub[b.index()] - 0.3).abs() < 1e-12);
        assert!((sub[a.index()] - 0.5).abs() < 1e-12);
        assert!((sub[c.index()] - 0.4).abs() < 1e-12);
        assert!((sub[t.root().index()] - 1.4).abs() < 1e-12);
        assert!((t.total_cap() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn tags_round_trip() {
        let mut t = RcTree::new(1.0);
        let a = t.add_child(t.root(), 1.0, 0.1);
        assert_eq!(t.tag(a), None);
        t.set_tag(a, NodeId::from_index(42));
        assert_eq!(t.tag(a), Some(NodeId::from_index(42)));
    }

    #[test]
    #[should_panic(expected = "parent not in tree")]
    fn bad_parent_panics() {
        let mut t = RcTree::new(1.0);
        let a = t.add_child(t.root(), 1.0, 0.1);
        let mut other = RcTree::new(1.0);
        let _ = a;
        // Construct an id beyond `other`'s length by adding to `t` first.
        let far = t.add_child(t.root(), 1.0, 0.1);
        let _ = t.add_child(far, 1.0, 0.1);
        let bogus = t.ids().last().unwrap();
        other.add_child(bogus, 1.0, 0.1);
    }
}
