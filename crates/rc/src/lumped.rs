//! The lumped single-RC model: everything hangs directly off the driver.
//!
//! This is the model the first generation of MOS timing tools used before
//! distributed-RC analysis: total capacitance times driver resistance.
//! It ignores interconnect/pass resistance entirely, so it *underestimates*
//! far ends of resistive chains but is exact for star-shaped gate loads —
//! the A1 ablation quantifies exactly this.

use crate::tree::{RcNodeId, RcTree};

/// Lumped time constant of a tree: driver resistance × total capacitance,
/// ns.
///
/// # Example
///
/// ```
/// use tv_rc::tree::RcTree;
/// use tv_rc::lumped::lumped_tau;
///
/// let mut t = RcTree::new(10.0);
/// t.add_cap(t.root(), 0.1);
/// t.add_child(t.root(), 5.0, 0.3); // pass R is ignored by this model
/// assert!((lumped_tau(&t) - 4.0).abs() < 1e-12);
/// ```
pub fn lumped_tau(tree: &RcTree) -> f64 {
    tree.edge_r(tree.root()) * tree.total_cap()
}

/// Lumped estimate of the fraction-`x`-remaining crossing time, ns:
/// `τ · ln(1/x)`.
///
/// # Panics
///
/// Panics if `x` is not in (0, 1].
pub fn lumped_crossing(tree: &RcTree, x: f64) -> f64 {
    assert!(x > 0.0 && x <= 1.0, "fraction remaining must be in (0,1]");
    lumped_tau(tree) * (1.0 / x).ln()
}

/// The lumped model per node is node-independent; this helper returns the
/// same value for every node, shaped like the per-node vectors of the
/// other models so harness code can treat models uniformly.
pub fn lumped_crossing_all(tree: &RcTree, x: f64) -> Vec<f64> {
    let v = lumped_crossing(tree, x);
    tree.ids().map(|_| v).collect()
}

/// Convenience for comparing against Elmore: on a star topology (all caps
/// directly at the root) lumped and Elmore agree; on chains Elmore is
/// larger at the far end.
pub fn lumped_vs_elmore_ratio(tree: &RcTree, node: RcNodeId) -> f64 {
    let e = crate::elmore::elmore_delay(tree, node);
    if e == 0.0 {
        1.0
    } else {
        lumped_tau(tree) / e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_topology_matches_elmore() {
        let mut t = RcTree::new(10.0);
        t.add_cap(t.root(), 0.1);
        t.add_child(t.root(), 0.0, 0.2);
        t.add_child(t.root(), 0.0, 0.3);
        let e = crate::elmore::elmore_delay(&t, t.root());
        assert!((lumped_tau(&t) - e).abs() < 1e-12);
        assert!((lumped_vs_elmore_ratio(&t, t.root()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_far_end_underestimated() {
        let mut t = RcTree::new(10.0);
        t.add_cap(t.root(), 0.1);
        let mut last = t.root();
        for _ in 0..5 {
            last = t.add_child(last, 8.0, 0.1);
        }
        let e = crate::elmore::elmore_delay(&t, last);
        assert!(lumped_tau(&t) < e, "lumped must underestimate chain ends");
        assert!(lumped_vs_elmore_ratio(&t, last) < 1.0);
    }

    #[test]
    fn crossing_uses_log() {
        let mut t = RcTree::new(2.0);
        t.add_cap(t.root(), 1.0);
        assert!((lumped_crossing(&t, 0.5) - 2.0 * std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn all_nodes_get_same_lumped_value() {
        let mut t = RcTree::new(2.0);
        t.add_cap(t.root(), 1.0);
        t.add_child(t.root(), 1.0, 1.0);
        let v = lumped_crossing_all(&t, 0.5);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], v[1]);
    }

    #[test]
    #[should_panic(expected = "fraction remaining")]
    fn bad_fraction_panics() {
        let t = RcTree::new(1.0);
        let _ = lumped_crossing(&t, 0.0);
    }
}
