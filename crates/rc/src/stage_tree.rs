//! Extraction of an [`RcTree`] from a netlist: the pass network downstream
//! of a driven node, with device on-resistances as edges and extracted node
//! capacitances as loads.

use std::collections::HashMap;

use tv_flow::{DeviceRole, Direction, FlowAnalysis};
use tv_netlist::{Netlist, NodeId};

use crate::tree::{RcNodeId, RcTree};

/// An RC tree extracted from a netlist, with the mapping back to netlist
/// nodes.
#[derive(Debug, Clone)]
pub struct StageTree {
    /// The extracted tree. The root is the driven netlist node.
    pub tree: RcTree,
    /// Netlist node → RC node, for every node the walk reached.
    pub rc_of: HashMap<NodeId, RcNodeId>,
}

impl StageTree {
    /// The RC node standing for a netlist node, if the walk reached it.
    pub fn rc_node(&self, node: NodeId) -> Option<RcNodeId> {
        self.rc_of.get(&node).copied()
    }
}

/// Builds the RC tree rooted at `root` (a node driven with effective
/// resistance `driver_r` kΩ), following pass devices whose resolved flow
/// leaves `root`'s side.
///
/// Orientation handling:
/// * `Toward(other)` — followed downstream only;
/// * `Bidirectional` and `Unresolved` — followed conservatively (charge
///   could flow either way, so the load counts), but never back into a
///   node already in the tree, which keeps the result a tree even on
///   bus structures.
///
/// Each reached node contributes its full extracted capacitance; each
/// traversed device contributes its on-resistance.
///
/// # Example
///
/// ```
/// use tv_netlist::{NetlistBuilder, Tech};
/// use tv_flow::{analyze, RuleSet};
/// use tv_rc::stage_tree::stage_tree;
///
/// # fn main() -> Result<(), tv_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(Tech::nmos4um());
/// let a = b.input("a");
/// let phi = b.clock("phi", 0);
/// let src = b.node("src");
/// let far = b.node("far");
/// b.inverter("i", a, src);
/// b.pass("p", phi, src, far);
/// let qb = b.node("qb");
/// b.inverter("i2", far, qb);
/// let nl = b.finish()?;
/// let flow = analyze(&nl, &RuleSet::all());
///
/// let st = stage_tree(&nl, &flow, src, 20.0);
/// assert!(st.rc_node(far).is_some());
/// assert_eq!(st.tree.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn stage_tree(
    netlist: &Netlist,
    flow: &FlowAnalysis,
    root: NodeId,
    driver_r: f64,
) -> StageTree {
    let mut tree = RcTree::new(driver_r);
    tree.add_cap(tree.root(), netlist.node_cap(root));
    tree.set_tag(tree.root(), root);

    let mut rc_of: HashMap<NodeId, RcNodeId> = HashMap::new();
    rc_of.insert(root, tree.root());

    let mut frontier = vec![root];
    while let Some(node) = frontier.pop() {
        let here = rc_of[&node];
        for &did in netlist.node_devices(node).channel {
            if flow.device_role(did) != DeviceRole::Pass {
                continue;
            }
            let dev = netlist.device(did);
            let other = dev.other_channel_end(node);
            let downstream = match flow.direction(did) {
                Direction::Toward(dst) => dst == other,
                // Conservative: an unoriented channel loads the driver too.
                Direction::Bidirectional | Direction::Unresolved => true,
            };
            if !downstream || rc_of.contains_key(&other) {
                continue;
            }
            let r = dev.resistance(netlist.tech());
            let child = tree.add_child(here, r, netlist.node_cap(other));
            tree.set_tag(child, other);
            rc_of.insert(other, child);
            frontier.push(other);
        }
    }

    StageTree { tree, rc_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elmore::elmore_delays;
    use tv_flow::{analyze, RuleSet};
    use tv_netlist::{NetlistBuilder, Tech};

    fn setup_chain(n: usize) -> (Netlist, NodeId, Vec<NodeId>) {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let phi = b.clock("phi", 0);
        let src = b.node("src");
        b.inverter("i", a, src);
        let mut nodes = Vec::new();
        let mut prev = src;
        for i in 0..n {
            let nx = b.node(format!("n{i}"));
            b.pass(format!("p{i}"), phi, prev, nx);
            nodes.push(nx);
            prev = nx;
        }
        let qb = b.node("qb");
        b.inverter("fin", prev, qb);
        let nl = b.finish().unwrap();
        let src = nl.node_by_name("src").unwrap();
        (nl, src, nodes)
    }

    #[test]
    fn chain_extracts_fully_with_increasing_delay() {
        let (nl, src, nodes) = setup_chain(4);
        let flow = analyze(&nl, &RuleSet::all());
        let st = stage_tree(&nl, &flow, src, 20.0);
        assert_eq!(st.tree.len(), 5); // src + 4 chain nodes
        let d = elmore_delays(&st.tree);
        let mut prev_delay = d[st.rc_node(src).unwrap().index()];
        for n in nodes {
            let here = d[st.rc_node(n).unwrap().index()];
            assert!(here > prev_delay);
            prev_delay = here;
        }
    }

    #[test]
    fn upstream_is_not_entered() {
        let (nl, _, nodes) = setup_chain(3);
        let flow = analyze(&nl, &RuleSet::all());
        // Root at the middle of the chain: walk must go only downstream.
        let mid = nodes[0];
        let st = stage_tree(&nl, &flow, mid, 5.0);
        let src = nl.node_by_name("src").unwrap();
        assert!(st.rc_node(src).is_none(), "walk leaked upstream");
        assert!(st.rc_node(nodes[2]).is_some());
    }

    #[test]
    fn mux_branches_both_load_driver() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let s0 = b.input("s0");
        let s1 = b.input("s1");
        let src = b.node("src");
        b.inverter("i", a, src);
        let m0 = b.node("m0");
        let m1 = b.node("m1");
        b.pass("p0", s0, src, m0);
        b.pass("p1", s1, src, m1);
        let q0 = b.node("q0");
        let q1 = b.node("q1");
        b.inverter("i0", m0, q0);
        b.inverter("i1", m1, q1);
        let nl = b.finish().unwrap();
        let flow = analyze(&nl, &RuleSet::all());
        let src = nl.node_by_name("src").unwrap();
        let st = stage_tree(&nl, &flow, src, 20.0);
        assert_eq!(st.tree.len(), 3);
        // Total tree cap covers all three nodes.
        let want: f64 = [src, m0, m1].iter().map(|&n| nl.node_cap(n)).sum();
        assert!((st.tree.total_cap() - want).abs() < 1e-12);
    }

    #[test]
    fn node_with_no_pass_fanout_is_a_single_node_tree() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let out = b.node("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let flow = analyze(&nl, &RuleSet::all());
        let out = nl.node_by_name("out").unwrap();
        let st = stage_tree(&nl, &flow, out, 20.0);
        assert_eq!(st.tree.len(), 1);
        assert!((st.tree.cap(st.tree.root()) - nl.node_cap(out)).abs() < 1e-12);
    }

    #[test]
    fn tags_map_back_to_netlist() {
        let (nl, src, nodes) = setup_chain(2);
        let flow = analyze(&nl, &RuleSet::all());
        let st = stage_tree(&nl, &flow, src, 20.0);
        for n in nodes.iter().chain([&src]) {
            let rc = st.rc_node(*n).unwrap();
            assert_eq!(st.tree.tag(rc), Some(*n));
        }
    }
}
