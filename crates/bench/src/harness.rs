//! A minimal std-only benchmark harness.
//!
//! The original seed used Criterion, which cannot be resolved in an
//! offline build; the tables in `EXPERIMENTS.md` only need stable
//! medians, which this harness provides with zero dependencies. Each
//! `[[bench]]` target stays `harness = false` and drives this module from
//! its own `main`.

use std::hint::black_box;
use std::time::Instant;

/// One benchmark's timing summary, in milliseconds.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark label.
    pub name: String,
    /// Fastest iteration, ms.
    pub min_ms: f64,
    /// Median iteration, ms.
    pub median_ms: f64,
    /// Mean iteration, ms.
    pub mean_ms: f64,
    /// Number of timed iterations.
    pub iters: usize,
}

impl Sample {
    /// Renders the row the way the bench binaries print it.
    pub fn row(&self) -> String {
        format!(
            "{:<40} median {:>10.3} ms  (min {:>10.3}, mean {:>10.3}, n={})",
            self.name, self.median_ms, self.min_ms, self.mean_ms, self.iters
        )
    }
}

/// Times `f` for `iters` iterations after one untimed warm-up run, and
/// prints the summary row. The closure's result is passed through
/// [`black_box`] so the measured work cannot be optimized away.
pub fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> Sample {
    let iters = iters.max(1);
    black_box(f());
    let mut times: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let sample = Sample {
        name: name.to_owned(),
        min_ms: times[0],
        median_ms: times[times.len() / 2],
        mean_ms: times.iter().sum::<f64>() / times.len() as f64,
        iters,
    };
    println!("{}", sample.row());
    sample
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_requested_iterations() {
        let s = bench("noop", 5, || 1 + 1);
        assert_eq!(s.iters, 5);
        assert!(s.min_ms <= s.median_ms);
        assert!(s.median_ms >= 0.0);
    }

    #[test]
    fn zero_iters_is_clamped() {
        let s = bench("clamped", 0, || ());
        assert_eq!(s.iters, 1);
    }
}
