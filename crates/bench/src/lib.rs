//! Shared experiment harness: every table and figure of `EXPERIMENTS.md`
//! is computed by a function here, used both by the `report` binary (which
//! prints the tables) and the std-only benches (which time the analysis
//! side with [`harness`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use experiments::*;
