//! The experiment implementations (T1–T5, F1–F3, A1–A2).

use std::time::Instant;

use tv_clocks::TwoPhaseClock;
use tv_core::{AnalysisOptions, Analyzer, DelayModel};
use tv_flow::{Rule, RuleSet};
use tv_gen::chains::{buffered_pass_chain, loaded_inverter, pass_chain};
use tv_gen::datapath::{datapath, Datapath, DatapathConfig};
use tv_gen::random::{random_logic, RandomMix};
use tv_gen::workload::{t1_suite, t2_suite};
use tv_netlist::{NodeId, Tech};
use tv_sim::{measure, SimOptions, Simulator, Stimulus, Waveform};

/// One row of the T1 accuracy table.
#[derive(Debug, Clone)]
pub struct T1Row {
    /// Circuit name.
    pub name: &'static str,
    /// TV's static estimate, ns.
    pub static_ns: f64,
    /// Transient-simulated delay, ns (`None` if the output never switched).
    pub sim_ns: Option<f64>,
}

impl T1Row {
    /// static / simulated; > 1 means conservative.
    pub fn ratio(&self) -> Option<f64> {
        self.sim_ns.map(|s| self.static_ns / s)
    }
}

/// T1: static estimate vs transient simulation over the calibration suite.
pub fn t1_delay_accuracy(tech: &Tech) -> Vec<T1Row> {
    t1_suite(tech)
        .into_iter()
        .map(|item| {
            let nl = &item.circuit.netlist;
            let report = Analyzer::new(nl).run(&AnalysisOptions::default());
            // Compare the edge the measurement exercises: the input steps
            // up, so the output's measured edge is fixed by the circuit's
            // inversion parity.
            let static_ns = if item.output_falls_on_input_rise {
                report.combinational.arrivals.fall(item.circuit.output)
            } else {
                report.combinational.arrivals.rise(item.circuit.output)
            }
            .expect("T1 outputs are reachable");

            let mut stim = Stimulus::new(nl);
            stim.drive(item.circuit.input, Waveform::step_up(1.0, tech.vdd));
            if let Some(en) = nl.node_by_name("en") {
                // NOR chains need `en` low to stay transparent; everything
                // else wants it high.
                let level = if item.name.starts_with("nor") {
                    0.0
                } else {
                    tech.vdd
                };
                stim.drive(en, Waveform::Const(level));
            }
            let result = Simulator::new(nl, stim, SimOptions::for_duration(100.0)).run();
            let sim_ns = measure::delay_50(&result, item.circuit.input, item.circuit.output, tech)
                .filter(|&d| d > 0.0);
            T1Row {
                name: item.name,
                static_ns,
                sim_ns,
            }
        })
        .collect()
}

/// One row of the T2 flow-resolution table.
#[derive(Debug, Clone)]
pub struct T2Row {
    /// Circuit name.
    pub name: &'static str,
    /// Total devices.
    pub devices: usize,
    /// Pass devices.
    pub pass: usize,
    /// Coverage (oriented + bidirectional) / pass.
    pub coverage: f64,
    /// Fixpoint sweeps.
    pub sweeps: usize,
    /// Resolutions per rule: external, restored, chain, sink.
    pub by_rule: [usize; 4],
}

/// T2: direction-resolution statistics over pass-heavy circuits.
pub fn t2_flow_resolution(tech: &Tech) -> Vec<T2Row> {
    t2_suite(tech)
        .into_iter()
        .map(|item| {
            let flow = tv_flow::analyze(&item.circuit.netlist, &RuleSet::all());
            let r = flow.report(&item.circuit.netlist);
            T2Row {
                name: item.name,
                devices: r.devices,
                pass: r.pass_devices,
                coverage: r.coverage(),
                sweeps: r.sweeps,
                by_rule: [r.by_external, r.by_restored, r.by_chain, r.by_sink],
            }
        })
        .collect()
}

/// The T3 result: critical paths of the MIPS-class datapath.
#[derive(Debug)]
pub struct T3Result {
    /// The generated datapath (netlist owned here for rendering).
    pub datapath: Datapath,
    /// Per phase: (phase index, critical arrival ns, top paths as
    /// (endpoint name, arrival, step count)).
    #[allow(clippy::type_complexity)] // a report row, not an abstraction
    pub phases: Vec<(u8, f64, Vec<(String, f64, usize)>)>,
    /// Minimum cycle, ns.
    pub min_cycle: f64,
}

/// T3: critical paths of the 32-bit datapath, top `k` per phase.
pub fn t3_critical_paths(tech: &Tech, config: DatapathConfig, k: usize) -> T3Result {
    let dp = datapath(tech.clone(), config);
    let opts = AnalysisOptions {
        top_k: k,
        ..AnalysisOptions::default()
    };
    let report = Analyzer::new(&dp.netlist).run(&opts);
    let phases = report
        .phases
        .iter()
        .map(|p| {
            let paths = p
                .paths
                .iter()
                .map(|path| {
                    (
                        dp.netlist.node_name(path.endpoint()).to_owned(),
                        path.arrival(),
                        path.len(),
                    )
                })
                .collect();
            (p.phase, p.result.critical_arrival().unwrap_or(0.0), paths)
        })
        .collect();
    T3Result {
        min_cycle: report.min_cycle.unwrap_or(0.0),
        datapath: dp,
        phases,
    }
}

/// One row of the T4 clock table.
#[derive(Debug, Clone)]
pub struct T4Row {
    /// Tested cycle time, ns.
    pub cycle_ns: f64,
    /// Phase-1 slack, ns.
    pub slack1: f64,
    /// Phase-2 slack, ns.
    pub slack2: f64,
    /// Whether the scheme is feasible.
    pub feasible: bool,
}

/// The T4 result: feasibility sweep plus the naive-mode comparison.
#[derive(Debug)]
pub struct T4Result {
    /// Feasibility per swept cycle.
    pub rows: Vec<T4Row>,
    /// Minimum feasible cycle from arrivals, ns.
    pub min_cycle: f64,
    /// φ1/φ2 critical arrivals, ns.
    pub arrivals: (f64, f64),
    /// Latch counts (φ1, φ2).
    pub latches: (usize, usize),
    /// Whether the no-case-analysis mode hit a cycle (it should: the
    /// datapath loop is only broken by phase case analysis).
    pub naive_cyclic: bool,
}

/// T4: two-phase clock case analysis and minimum cycle on the datapath.
pub fn t4_clock_analysis(tech: &Tech, config: DatapathConfig, cycles: &[f64]) -> T4Result {
    let dp = datapath(tech.clone(), config);
    let report = Analyzer::new(&dp.netlist).run(&AnalysisOptions::default());
    let a1 = report.phases[0].result.critical_arrival().unwrap_or(0.0);
    let a2 = report.phases[1].result.critical_arrival().unwrap_or(0.0);
    let min_cycle = report.min_cycle.expect("case analysis ran");
    let latches = tv_clocks::latch::latch_counts(&report.latches);

    let rows = cycles
        .iter()
        .map(|&cycle| {
            let clock = TwoPhaseClock::symmetric(cycle, 1.0);
            let opts = AnalysisOptions {
                clock,
                ..AnalysisOptions::default()
            };
            let r = Analyzer::new(&dp.netlist).run(&opts);
            let s1 = r.phases[0].slack.unwrap_or(f64::INFINITY);
            let s2 = r.phases[1].slack.unwrap_or(f64::INFINITY);
            T4Row {
                cycle_ns: cycle,
                slack1: s1,
                slack2: s2,
                feasible: s1 >= 0.0 && s2 >= 0.0,
            }
        })
        .collect();

    let naive = Analyzer::new(&dp.netlist).run(&AnalysisOptions {
        case_analysis: false,
        ..AnalysisOptions::default()
    });

    T4Result {
        rows,
        min_cycle,
        arrivals: (a1, a2),
        latches,
        naive_cyclic: naive.combinational.cyclic,
    }
}

/// One row of the T5 scaling table.
#[derive(Debug, Clone)]
pub struct T5Row {
    /// Transistor count.
    pub devices: usize,
    /// Node count.
    pub nodes: usize,
    /// Full-analysis wall time, ms.
    pub analyze_ms: f64,
    /// Devices analyzed per millisecond.
    pub devices_per_ms: f64,
}

/// T5: analyzer runtime vs circuit size on seeded random logic.
pub fn t5_scaling(tech: &Tech, sizes: &[usize]) -> Vec<T5Row> {
    sizes
        .iter()
        .map(|&target| {
            let c = random_logic(tech.clone(), target, 0xC0FFEE, RandomMix::default());
            let t0 = Instant::now();
            let report = Analyzer::new(&c.netlist).run(&AnalysisOptions::default());
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            // Touch the report so the work cannot be optimized away.
            assert!(report.flow_report.devices > 0);
            T5Row {
                devices: c.netlist.device_count(),
                nodes: c.netlist.node_count(),
                analyze_ms: dt,
                devices_per_ms: c.netlist.device_count() as f64 / dt,
            }
        })
        .collect()
}

/// One point of the F1 pass-chain figure.
#[derive(Debug, Clone)]
pub struct F1Point {
    /// Chain length.
    pub n: usize,
    /// Static delay of the raw chain, ns.
    pub raw_ns: f64,
    /// Static delay with buffers every `k`, ns.
    pub buffered_ns: f64,
    /// Transient-simulated raw-chain delay, ns.
    pub sim_ns: Option<f64>,
}

/// F1: delay vs pass-chain length, raw and buffered, static and simulated.
pub fn f1_pass_chain(tech: &Tech, lengths: &[usize], k: usize, simulate: bool) -> Vec<F1Point> {
    lengths
        .iter()
        .map(|&n| {
            // The measured transfer is input rise → chain falls → output
            // rises; compare that edge.
            let raw = pass_chain(tech.clone(), n);
            let raw_ns = Analyzer::new(&raw.netlist)
                .run(&AnalysisOptions::default())
                .combinational
                .arrivals
                .rise(raw.output)
                .expect("reachable");
            let buf = buffered_pass_chain(tech.clone(), n, k);
            let buffered_ns = Analyzer::new(&buf.netlist)
                .run(&AnalysisOptions::default())
                .combinational
                .arrivals
                .rise(buf.output)
                .expect("reachable");
            let sim_ns = simulate.then(|| simulate_chain(tech, &raw)).flatten();
            F1Point {
                n,
                raw_ns,
                buffered_ns,
                sim_ns,
            }
        })
        .collect()
}

fn simulate_chain(tech: &Tech, c: &tv_gen::Circuit) -> Option<f64> {
    let mut stim = Stimulus::new(&c.netlist);
    stim.drive(c.input, Waveform::step_up(1.0, tech.vdd));
    if let Some(en) = c.netlist.node_by_name("en") {
        stim.drive(en, Waveform::Const(tech.vdd));
    }
    let result = Simulator::new(&c.netlist, stim, SimOptions::for_duration(400.0)).run();
    measure::delay_50(&result, c.input, c.output, tech).filter(|&d| d > 0.0)
}

/// One point of the F2 rise/fall-vs-load figure.
#[derive(Debug, Clone)]
pub struct F2Point {
    /// Explicit load, pF.
    pub load_pf: f64,
    /// Static rise arrival at the output, ns.
    pub rise_ns: f64,
    /// Static fall arrival at the output, ns.
    pub fall_ns: f64,
    /// Simulated fall delay (input step up), ns.
    pub sim_fall_ns: Option<f64>,
    /// Simulated rise delay (input step down), ns.
    pub sim_rise_ns: Option<f64>,
}

/// F2: inverter rise/fall delay vs capacitive load.
pub fn f2_rise_fall(tech: &Tech, loads: &[f64], simulate: bool) -> Vec<F2Point> {
    loads
        .iter()
        .map(|&load| {
            let c = loaded_inverter(tech.clone(), load);
            let report = Analyzer::new(&c.netlist).run(&AnalysisOptions::default());
            let rise_ns = report
                .combinational
                .arrivals
                .rise(c.output)
                .expect("output rises");
            let fall_ns = report
                .combinational
                .arrivals
                .fall(c.output)
                .expect("output falls");

            let (sim_fall_ns, sim_rise_ns) = if simulate {
                // Depletion loads charge big loads slowly (constant
                // saturation current): give the quiescent point time.
                let mut opts = SimOptions::for_duration(220.0);
                opts.settle = 900.0;
                let fall = {
                    let mut stim = Stimulus::new(&c.netlist);
                    stim.drive(c.input, Waveform::step_up(1.0, tech.vdd));
                    let r = Simulator::new(&c.netlist, stim, opts.clone()).run();
                    measure::delay_50(&r, c.input, c.output, tech)
                };
                let rise = {
                    let mut stim = Stimulus::new(&c.netlist);
                    stim.drive(c.input, Waveform::step_down(1.0, tech.vdd));
                    let r = Simulator::new(&c.netlist, stim, opts).run();
                    measure::delay_50(&r, c.input, c.output, tech)
                };
                (fall, rise)
            } else {
                (None, None)
            };
            F2Point {
                load_pf: load,
                rise_ns,
                fall_ns,
                sim_fall_ns,
                sim_rise_ns,
            }
        })
        .collect()
}

/// The F3 histogram: endpoint slack distribution per phase.
#[derive(Debug, Clone)]
pub struct F3Histogram {
    /// Phase index.
    pub phase: u8,
    /// Histogram bucket edges, ns.
    pub edges: Vec<f64>,
    /// Endpoint count per bucket.
    pub counts: Vec<usize>,
    /// Total endpoints.
    pub total: usize,
}

/// F3: slack histogram of every latch endpoint at a given cycle time.
pub fn f3_slack_histogram(
    tech: &Tech,
    config: DatapathConfig,
    cycle: f64,
    buckets: usize,
) -> Vec<F3Histogram> {
    let dp = datapath(tech.clone(), config);
    let opts = AnalysisOptions {
        clock: TwoPhaseClock::symmetric(cycle, 1.0),
        ..AnalysisOptions::default()
    };
    let report = Analyzer::new(&dp.netlist).run(&opts);
    report
        .phases
        .iter()
        .map(|p| {
            let width = opts.clock.width(p.phase);
            let slacks: Vec<f64> = p.result.endpoints.iter().map(|&(_, t)| width - t).collect();
            let (lo, hi) = slacks
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &s| {
                    (l.min(s), h.max(s))
                });
            let (lo, hi) = if slacks.is_empty() {
                (0.0, 1.0)
            } else {
                (lo, hi)
            };
            let span = (hi - lo).max(1e-9);
            let mut counts = vec![0usize; buckets];
            for &s in &slacks {
                let mut idx = ((s - lo) / span * buckets as f64) as usize;
                if idx >= buckets {
                    idx = buckets - 1;
                }
                counts[idx] += 1;
            }
            let edges = (0..=buckets)
                .map(|i| lo + span * i as f64 / buckets as f64)
                .collect();
            F3Histogram {
                phase: p.phase,
                edges,
                counts,
                total: slacks.len(),
            }
        })
        .collect()
}

/// One row of the A1 model-ablation table.
#[derive(Debug, Clone)]
pub struct A1Row {
    /// Circuit name.
    pub name: &'static str,
    /// Delay under the lumped model, ns.
    pub lumped_ns: f64,
    /// Delay under the Elmore model, ns.
    pub elmore_ns: f64,
    /// Delay under the certified upper bound, ns.
    pub upper_ns: f64,
    /// Simulated reference, ns.
    pub sim_ns: Option<f64>,
}

/// A1: delay-model ablation over the T1 suite.
pub fn a1_model_ablation(tech: &Tech, simulate: bool) -> Vec<A1Row> {
    t1_suite(tech)
        .into_iter()
        .map(|item| {
            let nl = &item.circuit.netlist;
            // Same edge convention as T1: the edge the simulation measures.
            let run = |model: DelayModel| {
                let report = Analyzer::new(nl).run(&AnalysisOptions {
                    model,
                    ..AnalysisOptions::default()
                });
                if item.output_falls_on_input_rise {
                    report.combinational.arrivals.fall(item.circuit.output)
                } else {
                    report.combinational.arrivals.rise(item.circuit.output)
                }
                .expect("reachable")
            };
            let sim_ns = if simulate {
                let mut stim = Stimulus::new(nl);
                stim.drive(item.circuit.input, Waveform::step_up(1.0, tech.vdd));
                if let Some(en) = nl.node_by_name("en") {
                    let level = if item.name.starts_with("nor") {
                        0.0
                    } else {
                        tech.vdd
                    };
                    stim.drive(en, Waveform::Const(level));
                }
                let r = Simulator::new(nl, stim, SimOptions::for_duration(100.0)).run();
                measure::delay_50(&r, item.circuit.input, item.circuit.output, tech)
                    .filter(|&d| d > 0.0)
            } else {
                None
            };
            A1Row {
                name: item.name,
                lumped_ns: run(DelayModel::Lumped),
                elmore_ns: run(DelayModel::Elmore),
                upper_ns: run(DelayModel::UpperBound),
                sim_ns,
            }
        })
        .collect()
}

/// One row of the A2 rule-ablation table.
#[derive(Debug, Clone)]
pub struct A2Row {
    /// Which rule was disabled (`None` = full rule set).
    pub disabled: Option<Rule>,
    /// Mean coverage over the T2 suite.
    pub coverage: f64,
    /// Total unresolved devices over the suite.
    pub unresolved: usize,
}

/// A2: direction-rule ablation — coverage with each rule knocked out.
pub fn a2_rule_ablation(tech: &Tech) -> Vec<A2Row> {
    let configs: Vec<(Option<Rule>, RuleSet)> = vec![
        (None, RuleSet::all()),
        (Some(Rule::External), RuleSet::all().without(Rule::External)),
        (
            Some(Rule::RestoredDrive),
            RuleSet::all().without(Rule::RestoredDrive),
        ),
        (Some(Rule::Chain), RuleSet::all().without(Rule::Chain)),
        (Some(Rule::Sink), RuleSet::all().without(Rule::Sink)),
    ];
    configs
        .into_iter()
        .map(|(disabled, rules)| {
            let suite = t2_suite(tech);
            let mut cov_sum = 0.0;
            let mut unresolved = 0usize;
            let n = suite.len();
            for item in suite {
                let flow = tv_flow::analyze(&item.circuit.netlist, &rules);
                let r = flow.report(&item.circuit.netlist);
                cov_sum += r.coverage();
                unresolved += r.unresolved;
            }
            A2Row {
                disabled,
                coverage: cov_sum / n as f64,
                unresolved,
            }
        })
        .collect()
}

/// One row of the A3 adder-architecture table.
#[derive(Debug, Clone)]
pub struct A3Row {
    /// Adder width, bits.
    pub width: usize,
    /// Ripple-carry (NAND full adders) carry-out arrival, ns.
    pub ripple_ns: f64,
    /// Manchester chain-end arrival, unbuffered, ns.
    pub manchester_ns: f64,
    /// Manchester with a chain buffer every 4 bits, ns.
    pub manchester_buf_ns: f64,
}

/// A3: adder architecture comparison — the design-exploration use case a
/// timing verifier existed for. Ripple carry is static NAND logic; the
/// Manchester chain is a precharged pass chain (quadratic unbuffered,
/// linear when buffered every 4 bits).
pub fn a3_adder_architectures(tech: &Tech, widths: &[usize]) -> Vec<A3Row> {
    widths
        .iter()
        .map(|&width| {
            let opts = AnalysisOptions::default();
            let ripple = tv_gen::adder::ripple_carry_adder(tech.clone(), width);
            let ripple_ns = Analyzer::new(&ripple.netlist)
                .run(&opts)
                .arrival(ripple.output)
                .expect("carry out reachable");
            let mdelay = |buffer_every: usize| {
                let m = tv_gen::manchester::manchester_adder(tech.clone(), width, buffer_every);
                let report = Analyzer::new(&m.netlist).run(&opts);
                report
                    .phase(0)
                    .expect("phase 0 ran")
                    .result
                    .arrival(*m.chain.last().expect("width > 0"))
                    .expect("chain end reachable")
            };
            A3Row {
                width,
                ripple_ns,
                manchester_ns: mdelay(0),
                manchester_buf_ns: mdelay(4),
            }
        })
        .collect()
}

/// One row of the T6 process-scaling table.
#[derive(Debug, Clone)]
pub struct T6Row {
    /// Circuit name.
    pub name: &'static str,
    /// Critical delay in the 4 µm process, ns.
    pub nmos4_ns: f64,
    /// Critical delay in the scaled 2 µm process, ns.
    pub nmos2_ns: f64,
}

impl T6Row {
    /// Speedup factor from scaling.
    pub fn speedup(&self) -> f64 {
        self.nmos4_ns / self.nmos2_ns
    }
}

/// T6: first-order process scaling — the same topologies re-analyzed in
/// the hypothetical λ = 1 µm process. Constant-voltage nMOS scaling
/// halves gate *area* per function while areal oxide capacitance doubles,
/// so self-loaded logic speeds up ~2× while fixed external loads don't
/// scale — exactly the discussion every early-80s paper closed with.
pub fn t6_process_scaling(widths_datapath: DatapathConfig) -> Vec<T6Row> {
    let opts = AnalysisOptions::default();
    let delay_of = |tech: Tech, which: &str| -> f64 {
        match which {
            "inv-chain-8" => {
                let c = tv_gen::chains::inverter_chain(tech, 8, 2);
                Analyzer::new(&c.netlist)
                    .run(&opts)
                    .arrival(c.output)
                    .expect("reachable")
            }
            "adder-8" => {
                let c = tv_gen::adder::ripple_carry_adder(tech, 8);
                Analyzer::new(&c.netlist)
                    .run(&opts)
                    .arrival(c.output)
                    .expect("reachable")
            }
            "datapath" => {
                let dp = datapath(tech, widths_datapath);
                Analyzer::new(&dp.netlist).run(&opts).phases[0]
                    .result
                    .critical_arrival()
                    .expect("phase arrivals")
            }
            other => unreachable!("unknown workload {other}"),
        }
    };
    ["inv-chain-8", "adder-8", "datapath"]
        .into_iter()
        .map(|name| T6Row {
            name,
            nmos4_ns: delay_of(Tech::nmos4um(), name),
            nmos2_ns: delay_of(Tech::nmos2um(), name),
        })
        .collect()
}

/// One row of the parallel-scaling table: the levelized engine (graph
/// construction plus arrival propagation for the combinational case and
/// both clock phases) timed at one worker count.
#[derive(Debug, Clone)]
pub struct ParallelScalingRow {
    /// Worker threads used for graph build and propagation.
    pub jobs: usize,
    /// Graph-construction time summed over the three cases, ms.
    pub build_ms: f64,
    /// Propagation time summed over the three cases, ms.
    pub propagate_ms: f64,
    /// Work-span speedup of the whole engine at this worker count,
    /// projected from the measured serial build/propagate split and the
    /// structural parallelism of each stage. Graph construction chunks
    /// thousands of independent stage roots evenly, so its span is
    /// `work / jobs`; propagation's span charges each level of width
    /// `w ≥ PAR_MIN_WIDTH` only `ceil(w / jobs)` node evaluations while
    /// narrow levels and the cyclic residue stay serial — exactly the
    /// engine's dispatch policy. This is the speedup the engine
    /// *exposes*, reachable wall-clock on a host with that many free
    /// cores (the wall column can't show it on a single-core machine).
    pub modeled_speedup: f64,
}

impl ParallelScalingRow {
    /// Combined engine time, ms.
    pub fn total_ms(&self) -> f64 {
        self.build_ms + self.propagate_ms
    }

    /// Speedup of this row relative to `baseline` (normally jobs = 1).
    pub fn speedup_over(&self, baseline: &ParallelScalingRow) -> f64 {
        baseline.total_ms() / self.total_ms()
    }
}

/// Parallel scaling of the levelized timing engine on a generated
/// datapath. For each requested worker count the three analysis cases
/// (combinational, φ1, φ2) are rebuilt and re-propagated `iters` times
/// with exactly the analyzer's case setup; the fastest run is kept.
/// Every run is also asserted **bit-identical** to the single-worker
/// arrivals — the engine's determinism claim, enforced at the same place
/// the speedup is measured.
pub fn parallel_scaling(
    tech: &Tech,
    config: DatapathConfig,
    jobs_list: &[usize],
    iters: usize,
) -> Vec<ParallelScalingRow> {
    use tv_clocks::latch::find_latches;
    use tv_clocks::qualify::qualify_with_flow;
    use tv_core::{
        external_sources, phase_endpoints, phase_sources, propagate_with, PhaseCase, PhaseResult,
        TimingGraph, SOURCE_RESISTANCE,
    };

    let dp = datapath(tech.clone(), config);
    let nl = &dp.netlist;
    let opts = AnalysisOptions::default();
    let flow = tv_flow::analyze(nl, &opts.rules);
    let qual = qualify_with_flow(nl, &flow);
    let latches = find_latches(nl, &flow, &qual);

    let mut cases = vec![(
        PhaseCase::all_active(),
        external_sources(nl),
        nl.outputs().to_vec(),
    )];
    for p in 0..2u8 {
        cases.push((
            PhaseCase::phase(p),
            phase_sources(nl, &latches, p),
            phase_endpoints(nl, &latches, p),
        ));
    }

    let run = |jobs: usize| -> (f64, f64, Vec<PhaseResult>) {
        let mut results = Vec::with_capacity(cases.len());
        let (mut build_ms, mut prop_ms) = (0.0, 0.0);
        for (case, sources, endpoints) in &cases {
            let t0 = Instant::now();
            let graph = TimingGraph::build_par(
                nl,
                &flow,
                &qual,
                *case,
                opts.model,
                SOURCE_RESISTANCE,
                jobs,
            );
            build_ms += t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            results.push(propagate_with(
                nl,
                &graph,
                sources,
                endpoints,
                &opts.slope,
                jobs,
            ));
            prop_ms += t1.elapsed().as_secs_f64() * 1e3;
        }
        (build_ms, prop_ms, results)
    };

    // Propagation's span fraction under the engine's dispatch policy:
    // a level of width `w ≥ PAR_MIN_WIDTH` costs `ceil(w / j)` node
    // evaluations on the critical worker, narrower levels and the
    // cyclic residue stay serial.
    let schedules: Vec<tv_core::LevelSchedule> = cases
        .iter()
        .map(|(case, _, _)| {
            TimingGraph::build_par(nl, &flow, &qual, *case, opts.model, SOURCE_RESISTANCE, 1)
                .schedule
        })
        .collect();
    let prop_span_fraction = |jobs: usize| -> f64 {
        let j = jobs.max(1);
        let (mut work, mut span) = (0usize, 0usize);
        for s in &schedules {
            for l in 0..s.levels() {
                let w = s.level(l).len();
                work += w;
                span += if w < tv_core::PAR_MIN_WIDTH {
                    w
                } else {
                    w.div_ceil(j)
                };
            }
            work += s.residue.len();
            span += s.residue.len();
        }
        span as f64 / work.max(1) as f64
    };

    let _ = run(1); // warm-up: page in the netlist and allocator
    let (base_build, base_prop, baseline) = run(1);
    // Project the whole-engine speedup from the measured serial split:
    // graph build chunks its (thousands of) independent stage roots
    // evenly, so its span is work / j; propagation follows the level
    // schedule above.
    let modeled = |jobs: usize| -> f64 {
        let j = jobs.max(1) as f64;
        (base_build + base_prop) / (base_build / j + base_prop * prop_span_fraction(jobs))
    };
    let same = |x: Option<f64>, y: Option<f64>| match (x, y) {
        (None, None) => true,
        (Some(a), Some(b)) => a.to_bits() == b.to_bits(),
        _ => false,
    };

    jobs_list
        .iter()
        .map(|&jobs| {
            let mut best: Option<ParallelScalingRow> = None;
            for _ in 0..iters.max(1) {
                let (build_ms, propagate_ms, results) = run(jobs);
                for (b, g) in baseline.iter().zip(&results) {
                    assert_eq!(b.cyclic, g.cyclic, "cyclic flag differs at jobs={jobs}");
                    for id in nl.node_ids() {
                        assert!(
                            same(b.arrivals.rise(id), g.arrivals.rise(id))
                                && same(b.arrivals.fall(id), g.arrivals.fall(id)),
                            "arrivals differ from serial at jobs={jobs}"
                        );
                    }
                }
                let row = ParallelScalingRow {
                    jobs,
                    build_ms,
                    propagate_ms,
                    modeled_speedup: modeled(jobs),
                };
                if best.as_ref().is_none_or(|b| row.total_ms() < b.total_ms()) {
                    best = Some(row);
                }
            }
            best.expect("iters >= 1")
        })
        .collect()
}

/// Helper shared by benches: a datapath ready to analyze.
pub fn bench_datapath(tech: &Tech, config: DatapathConfig) -> Datapath {
    datapath(tech.clone(), config)
}

/// Helper shared by benches: the output node of the first T1 circuit.
pub fn first_t1_output(tech: &Tech) -> (tv_gen::Circuit, NodeId) {
    let mut suite = t1_suite(tech);
    let item = suite.remove(0);
    let out = item.circuit.output;
    (item.circuit, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Tech {
        Tech::nmos4um()
    }

    #[test]
    fn t2_rows_cover_suite() {
        let rows = t2_flow_resolution(&tech());
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.coverage > 0.9, "{} coverage {}", r.name, r.coverage);
        }
    }

    #[test]
    fn t3_finds_carry_chain() {
        let r = t3_critical_paths(&tech(), DatapathConfig::small(), 5);
        assert_eq!(r.phases.len(), 2);
        assert!(r.min_cycle > 0.0);
        // The longest φ1 path should run through the ALU (carry chain) —
        // check the worst path is dozens of steps, not a single stage.
        let (_, _, paths) = &r.phases[0];
        assert!(!paths.is_empty());
    }

    #[test]
    fn t4_sweep_is_monotone() {
        let r = t4_clock_analysis(&tech(), DatapathConfig::small(), &[20.0, 60.0, 200.0]);
        assert!(r.naive_cyclic, "naive mode must hit the datapath loop");
        assert!(r.min_cycle > 0.0);
        // Larger cycles never lose feasibility.
        let mut seen_feasible = false;
        for row in &r.rows {
            if seen_feasible {
                assert!(row.feasible, "feasibility must be monotone in cycle");
            }
            seen_feasible |= row.feasible;
        }
    }

    #[test]
    fn t5_runtime_grows_with_size() {
        let rows = t5_scaling(&tech(), &[200, 800]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].devices > rows[0].devices);
    }

    #[test]
    fn f1_static_is_quadratic_and_buffering_helps() {
        let pts = f1_pass_chain(&tech(), &[2, 4, 8], 3, false);
        let growth_small = pts[1].raw_ns - pts[0].raw_ns;
        let growth_large = pts[2].raw_ns - pts[1].raw_ns;
        assert!(
            growth_large > 1.5 * growth_small,
            "raw chain must accelerate: {growth_small} vs {growth_large}"
        );
        assert!(pts[2].buffered_ns < pts[2].raw_ns);
    }

    #[test]
    fn f2_rise_exceeds_fall_and_grows_with_load() {
        let pts = f2_rise_fall(&tech(), &[0.1, 0.4], false);
        for p in &pts {
            assert!(p.rise_ns > 2.0 * p.fall_ns, "ratioed asymmetry");
        }
        assert!(pts[1].rise_ns > pts[0].rise_ns);
        assert!(pts[1].fall_ns > pts[0].fall_ns);
    }

    #[test]
    fn f3_histogram_counts_all_endpoints() {
        let hists = f3_slack_histogram(&tech(), DatapathConfig::small(), 400.0, 8);
        assert_eq!(hists.len(), 2);
        for h in &hists {
            assert_eq!(h.counts.iter().sum::<usize>(), h.total);
            assert_eq!(h.edges.len(), h.counts.len() + 1);
        }
    }

    #[test]
    fn a1_model_ordering_holds() {
        for row in a1_model_ablation(&tech(), false) {
            assert!(
                row.elmore_ns <= row.upper_ns + 1e-9,
                "{}: elmore {} > upper {}",
                row.name,
                row.elmore_ns,
                row.upper_ns
            );
        }
    }

    #[test]
    fn a2_full_rules_dominate() {
        let rows = a2_rule_ablation(&tech());
        let full = rows[0].coverage;
        for r in &rows[1..] {
            assert!(
                r.coverage <= full + 1e-12,
                "disabling {:?} should not raise coverage",
                r.disabled
            );
        }
    }

    #[test]
    fn parallel_scaling_rows_are_well_formed() {
        // A small datapath keeps the test fast; the bit-identity check
        // inside parallel_scaling is the real assertion.
        let rows = parallel_scaling(&tech(), DatapathConfig::small(), &[1, 2], 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].jobs, 1);
        assert_eq!(rows[1].jobs, 2);
        for r in &rows {
            assert!(r.total_ms() > 0.0);
            assert!(r.speedup_over(&rows[0]).is_finite());
        }
    }
}
