//! Machine-readable perf trajectory: a fixed smoke suite over the
//! acceptance benchmarks (analyzer scaling, flow resolution, parallel
//! propagation, and the P4 session suite), appended as a labeled run to
//! `BENCH_TRAJECTORY.json` so CI and future PRs can compare against a
//! committed baseline instead of eyeballing tables — and so the history
//! of runs accumulates instead of each PR's file silently superseding
//! the last (BENCH_4.json replaced BENCH_3.json; never again).
//!
//! Usage:
//!   perf_trajectory --out BENCH_TRAJECTORY.json --label pr5-obs [--at-scale]
//!                                               # run suite, append a run
//!   perf_trajectory --check BENCH_TRAJECTORY.json
//!                                               # fail on >2x regression
//!                                               # vs the *latest* run
//!   perf_trajectory --check BENCH_TRAJECTORY.json --threshold 3.0
//!
//! Each bench entry carries `name`, `input_size` (devices), `ns_per_op`
//! (median), `min_ns` (fastest iteration), and `counters` — the
//! deterministic `tv_obs` work counters from **one instrumented run**
//! performed after the timed loop, so the timing numbers are always
//! measured with instrumentation disabled. The JSON is hand-rolled (the
//! workspace is dependency-free) with one bench object per line, and
//! read back with `tv_obs::json`, so the file stays both greppable and
//! strictly parseable.

use std::process::ExitCode;

use tv_bench::experiments::parallel_scaling;
use tv_bench::harness::bench;
use tv_core::{AnalysisOptions, Analyzer};
use tv_flow::RuleSet;
use tv_gen::datapath::DatapathConfig;
use tv_gen::random::{random_logic, RandomMix};
use tv_gen::workload::t2_suite;
use tv_netlist::Tech;
use tv_obs::json::Value;
use tv_obs::Counter;

/// One measured benchmark: label, workload size in devices, median and
/// fastest ns/op, plus the deterministic work counters from a single
/// instrumented (untimed) run. The median is the reported figure; the
/// min is what the regression gate compares, because on
/// microsecond-scale benches the median of a noisy run can swing 2x
/// while the min stays put — gating `current min > threshold × baseline
/// median` can only produce false passes, never false failures.
struct Entry {
    name: String,
    input_size: usize,
    ns_per_op: f64,
    min_ns: f64,
    iters: usize,
    /// Process peak resident set (VmHWM, kB) as of the end of this
    /// bench; 0 where procfs is unavailable or in pre-P9 runs.
    peak_rss_kb: u64,
    counters: Vec<(String, u64)>,
}

/// Peak resident set size of this process in kB, from the `VmHWM`
/// line of `/proc/self/status` — no dependency, no syscall wrapper.
/// The kernel figure is a lifetime high-water mark, so per-entry
/// values are a running maximum over the suite: the jump recorded by
/// the at-scale T6 entries is the figure this exists for (DESIGN.md
/// §15's memory story). Returns 0 where procfs is missing (non-Linux).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or(0)
}

/// One labeled suite execution: the unit the trajectory file appends.
struct Run {
    label: String,
    benches: Vec<Entry>,
}

/// The deterministic counters worth recording per bench entry: the work
/// plane (workload-intrinsic and jobs-invariant — warm runs taking the
/// demand-driven cone path legitimately record less than cold ones)
/// plus the flow fixpoint and graph-size telemetry, which are equally
/// deterministic for a fixed input. Timing-plane spans never appear
/// here.
const KEPT_COUNTERS: [Counter; 23] = [
    Counter::PropagateRelaxations,
    Counter::PropagateResiduePops,
    Counter::PropagateNodes,
    Counter::PropagateCases,
    Counter::ConeSeeds,
    Counter::ConeNodes,
    Counter::ConeFallbacks,
    Counter::FlowSweeps,
    Counter::FlowWorklistPops,
    Counter::GraphArcs,
    Counter::IngestChunks,
    Counter::IngestBytes,
    Counter::IngestPrescanSyms,
    Counter::IngestReallocs,
    Counter::MacroClasses,
    Counter::MacroAnalyzed,
    Counter::MacroInstanced,
    Counter::MacroDesplit,
    Counter::ServeAccepted,
    Counter::ServeRejected,
    Counter::ServeActivePeak,
    Counter::ServeRequests,
    Counter::ServeRetries,
];

/// Runs `f` once with the counter plane enabled and returns the nonzero
/// kept counters it incremented. Called *after* the timed loop so
/// instrumentation cost never contaminates `ns_per_op`.
fn counted<R>(mut f: impl FnMut() -> R) -> Vec<(String, u64)> {
    tv_obs::counters::set_enabled(true);
    let before = tv_obs::snapshot();
    std::hint::black_box(f());
    let delta = tv_obs::snapshot().since(&before);
    tv_obs::counters::set_enabled(false);
    KEPT_COUNTERS
        .iter()
        .map(|&c| (c.name().to_string(), delta.get(c)))
        .filter(|&(_, v)| v != 0)
        .collect()
}

/// Runs the fixed smoke suite. Sizes are chosen so the whole suite
/// finishes in a few seconds in release mode — this runs inside
/// `scripts/verify.sh`, so it has to stay cheap. `at_scale` adds the
/// million-device T6 ingest benches (tens of seconds; run manually when
/// appending a trajectory run, never inside the verify gate).
fn run_suite(at_scale: bool) -> Vec<Entry> {
    let tech = Tech::nmos4um();
    let mut out = Vec::new();

    // Analyzer scaling (the T5 bench, smoke sizes).
    for target in [1_600usize, 6_400] {
        let circuit = random_logic(tech.clone(), target, 0xC0FFEE, RandomMix::default());
        let devices = circuit.netlist.device_count();
        let mut work = || {
            Analyzer::new(&circuit.netlist)
                .run(&AnalysisOptions::default())
                .flow_report
                .devices
        };
        let s = bench(&format!("scaling/random-{target}"), 10, &mut work);
        out.push(Entry {
            name: s.name,
            input_size: devices,
            ns_per_op: s.median_ms * 1e6,
            min_ns: s.min_ms * 1e6,
            iters: s.iters,
            peak_rss_kb: peak_rss_kb(),
            counters: counted(&mut work),
        });
    }

    // Flow direction-resolution fixpoint (the T2 bench, full suite —
    // each item is microseconds).
    for item in t2_suite(&tech) {
        let devices = item.circuit.netlist.device_count();
        let mut work = || tv_flow::analyze(&item.circuit.netlist, &RuleSet::all()).sweeps();
        let s = bench(&format!("flow/{}", item.name), 50, &mut work);
        out.push(Entry {
            name: s.name,
            input_size: devices,
            ns_per_op: s.median_ms * 1e6,
            min_ns: s.min_ms * 1e6,
            iters: s.iters,
            peak_rss_kb: peak_rss_kb(),
            counters: counted(&mut work),
        });
    }

    // Serial graph build + propagation on the MIPS-class datapath (the
    // P1 bench at jobs=1: the single-thread cost the parallel speedups
    // are measured against). The timed figure comes from the scaling
    // harness; the counters from one instrumented single-thread analyze
    // of the same netlist.
    let cfg = DatapathConfig::mips32();
    let dp_netlist = tv_gen::datapath::datapath(tech.clone(), cfg).netlist;
    let devices = dp_netlist.device_count();
    let rows = parallel_scaling(&tech, cfg, &[1], 5);
    out.push(Entry {
        name: "propagate/mips32-jobs1".to_string(),
        input_size: devices,
        ns_per_op: rows[0].total_ms() * 1e6,
        min_ns: rows[0].total_ms() * 1e6,
        iters: 5,
        peak_rss_kb: peak_rss_kb(),
        counters: counted(|| {
            Analyzer::new(&dp_netlist)
                .run(&AnalysisOptions::default())
                .combinational
                .relaxations
        }),
    });

    out.extend(session_suite(&tech));
    out.extend(ingest_suite(&tech, at_scale));
    out.extend(serve_suite(&tech));

    out
}

/// The P10 serving suite: an in-process `tv serve` on a loopback port,
/// hammered by the loadgen at 8 concurrent clients over the same
/// demo-small workload the chaos serve sweep uses, plus an
/// admission-rejection exercise against a one-slot server. The
/// percentile entries carry the loadgen's p50/p95/p99 directly
/// (ns_per_op == min_ns — there is no median-of-iterations here), and
/// all `serve/*` entries are exempt from the min-vs-median regression
/// ratio in `check`: wall-clock through a socket under concurrency is
/// too noisy for a 2x gate. The latency promise is pinned instead by
/// `check_serve_latency` — p99 must stay under 20x the warm
/// single-edit median of the *same* run.
fn serve_suite(tech: &Tech) -> Vec<Entry> {
    use tv_serve::client;
    use tv_serve::loadgen::{run_loadgen, LoadgenConfig};
    use tv_serve::server::{serve_tcp, ServeConfig};

    let mut out = Vec::new();
    let devices = tv_gen::datapath::datapath(tech.clone(), DatapathConfig::small())
        .netlist
        .device_count();
    let script: Vec<String> = [
        "demo small",
        "analyze",
        "edit resize pu_wq0 6 2",
        "analyze",
        "flow",
        "revision",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let handle = serve_tcp("127.0.0.1:0", ServeConfig::default()).expect("bind loopback");
    let cfg = LoadgenConfig {
        clients: 8,
        repeat: 3,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(handle.endpoint(), &script, &cfg).expect("loadgen run");
    assert_eq!(report.failed, 0, "loadgen workload must be all-ok");
    // One instrumented (untimed) pass records the serve.* counters.
    let counters = counted(|| {
        let counted_cfg = LoadgenConfig {
            clients: 2,
            repeat: 1,
            tenant_prefix: "counted-".into(),
            ..LoadgenConfig::default()
        };
        run_loadgen(handle.endpoint(), &script, &counted_cfg)
            .expect("counted loadgen run")
            .requests
    });
    handle.stop();
    let iters = report.requests as usize;
    for (name, ns, counters) in [
        ("serve/loadgen-c8", report.p50_ns, counters),
        ("serve/loadgen-c8-p95", report.p95_ns, Vec::new()),
        ("serve/loadgen-c8-p99", report.p99_ns, Vec::new()),
    ] {
        out.push(Entry {
            name: name.to_string(),
            input_size: devices,
            ns_per_op: ns as f64,
            min_ns: ns as f64,
            iters,
            peak_rss_kb: peak_rss_kb(),
            counters,
        });
    }

    // Admission rejection, provably: a one-slot server with the slot
    // held must answer every further hello with the typed busy frame
    // (and count it), never stall or silently drop.
    let tiny = serve_tcp(
        "127.0.0.1:0",
        ServeConfig {
            max_sessions: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind one-slot server");
    let mut hold = tiny.endpoint().connect().expect("connect holder");
    client::handshake(&mut hold, "holder", tv_proto::Limits::default()).expect("holder admitted");
    let mut reject = || {
        let mut s = tiny.endpoint().connect().expect("connect prober");
        match client::handshake(&mut s, "prober", tv_proto::Limits::default()) {
            Err(client::ClientError::Refused { code, .. }) => {
                assert_eq!(code, tv_proto::codes::BUSY, "refusal must be typed busy");
                1usize
            }
            other => panic!("one-slot server admitted a second session: {other:?}"),
        }
    };
    let s = bench("serve/admission-reject", 10, &mut reject);
    out.push(Entry {
        name: s.name,
        input_size: devices,
        ns_per_op: s.median_ms * 1e6,
        min_ns: s.min_ms * 1e6,
        iters: s.iters,
        peak_rss_kb: peak_rss_kb(),
        counters: counted(&mut reject),
    });
    drop(hold);
    tiny.stop();

    out
}

/// The P8 ingest suite: the serial T5-scale parse (always — it is the
/// figure the 1.5x gate in `check` pins), plus, at scale, the
/// million-device T6 multi-core design with the parse/build/propagate
/// split measured separately at jobs=1.
fn ingest_suite(tech: &Tech, at_scale: bool) -> Vec<Entry> {
    use tv_clocks::latch::find_latches;
    use tv_clocks::qualify::qualify_with_flow;
    use tv_core::{external_sources, propagate_with, PhaseCase, TimingGraph, SOURCE_RESISTANCE};
    use tv_gen::mips_mc::{t6_mips_mc, MILLION_DEVICE_CORES};
    use tv_netlist::{sim_format, Diagnostics};

    let mut out = Vec::new();
    let entry =
        |s: tv_bench::harness::Sample, devices: usize, counters: Vec<(String, u64)>| Entry {
            name: s.name,
            input_size: devices,
            ns_per_op: s.median_ms * 1e6,
            min_ns: s.min_ms * 1e6,
            iters: s.iters,
            peak_rss_kb: peak_rss_kb(),
            counters,
        };

    // Serial T5-scale parse: pre-scan + zero-realloc ingest of the same
    // 102k-device random-logic text the T5 scaling experiment uses.
    let t5 = random_logic(tech.clone(), 102_400, 0xC0FFEE, RandomMix::default());
    let text = sim_format::write(&t5.netlist);
    let devices = t5.netlist.device_count();
    let mut work = || {
        let mut diags = Diagnostics::new();
        sim_format::parse_recovering(&text, tech.clone(), &mut diags)
            .expect("T5 round-trip parses")
            .device_count()
    };
    let s = bench("ingest/t5-parse-serial", 5, &mut work);
    out.push(entry(s, devices, counted(&mut work)));

    if !at_scale {
        return out;
    }

    // The million-device workload, end to end: generate T6, serialize,
    // then time each ingest/analysis stage once (a single iteration is
    // tens-of-milliseconds to seconds per stage — far above timer noise).
    let mc = t6_mips_mc(tech.clone(), MILLION_DEVICE_CORES);
    let text = sim_format::write(&mc.netlist);
    let nl = &mc.netlist;
    let devices = nl.device_count();

    let mut parse_work = || {
        let mut diags = Diagnostics::new();
        sim_format::parse_recovering(&text, tech.clone(), &mut diags)
            .expect("T6 round-trip parses")
            .device_count()
    };
    let s = bench("ingest/t6-1m-parse", 1, &mut parse_work);
    out.push(entry(s, devices, counted(&mut parse_work)));

    let opts = AnalysisOptions::default();
    let case = PhaseCase::all_active();
    let mut build_work = || {
        let flow = tv_flow::analyze(nl, &opts.rules);
        let qual = qualify_with_flow(nl, &flow);
        let _latches = find_latches(nl, &flow, &qual);
        TimingGraph::build_par(nl, &flow, &qual, case, opts.model, SOURCE_RESISTANCE, 1)
            .schedule
            .levels()
    };
    let s = bench("ingest/t6-1m-build", 1, &mut build_work);
    out.push(entry(s, devices, counted(&mut build_work)));

    let flow = tv_flow::analyze(nl, &opts.rules);
    let qual = qualify_with_flow(nl, &flow);
    let graph = TimingGraph::build_par(nl, &flow, &qual, case, opts.model, SOURCE_RESISTANCE, 1);
    let sources = external_sources(nl);
    let endpoints = nl.outputs().to_vec();
    let mut prop_work =
        || propagate_with(nl, &graph, &sources, &endpoints, &opts.slope, 1).relaxations;
    let s = bench("ingest/t6-1m-propagate", 1, &mut prop_work);
    out.push(entry(s, devices, counted(&mut prop_work)));

    out
}

/// The P4 session suite: cold one-shot analysis vs warm pass-pipeline
/// re-analysis after each edit kind, plus the 100-edit session loop,
/// all on the MIPS-class datapath. The cold figure does what one `tv
/// analyze` invocation does — parse the `.sim` text, analyze, render
/// the report — and the warm figures include the edit itself and the
/// full re-analysis (splice or rebuild, propagation, paths, checks) —
/// exactly what one `analyze` reply costs a session.
fn session_suite(tech: &Tech) -> Vec<Entry> {
    use tv_core::PassManager;
    use tv_netlist::{sim_format, Design, DeviceKind};

    let mut out = Vec::new();
    let dp = tv_gen::datapath::datapath(tech.clone(), DatapathConfig::mips32());
    let devices = dp.netlist.device_count();
    let opts = AnalysisOptions::default();
    let entry = |s: tv_bench::harness::Sample, counters: Vec<(String, u64)>| Entry {
        name: s.name,
        input_size: devices,
        ns_per_op: s.median_ms * 1e6,
        min_ns: s.min_ms * 1e6,
        iters: s.iters,
        peak_rss_kb: peak_rss_kb(),
        counters,
    };

    let sim_text = sim_format::write(&dp.netlist);
    let mut cold = || {
        let parsed = sim_format::parse(&sim_text, tech.clone()).expect("round-trip");
        let report = Analyzer::new(&parsed).run(&opts);
        report.render(&parsed).len()
    };
    let s = bench("session/mips32-cold", 10, &mut cold);
    out.push(entry(s, counted(&mut cold)));

    let mut cold_analyze = || {
        Analyzer::new(&dp.netlist)
            .run(&opts)
            .combinational
            .relaxations
    };
    let s = bench("session/mips32-cold-analyze-only", 10, &mut cold_analyze);
    out.push(entry(s, counted(&mut cold_analyze)));

    let mut design = Design::new(dp.netlist.clone());
    let mut pm = PassManager::new();
    pm.analyze(&design, &opts);

    let probe = design
        .netlist()
        .devices()
        .nth(devices / 2)
        .expect("mid-array device");
    let dev = probe.id;
    let (gate, src, drain) = (
        probe.device.gate(),
        probe.device.source(),
        probe.device.drain(),
    );
    let cap_node = *design.netlist().outputs().first().expect("an output");

    let mut flip = false;
    let mut resize = |design: &mut Design, pm: &mut PassManager| {
        flip = !flip;
        let w = if flip { 6.0 } else { 4.0 };
        design.resize_device(dev, w, 2.0).expect("resize");
        pm.analyze(design, &opts).combinational.relaxations
    };
    let s = bench("session/mips32-warm-resize", 20, || {
        resize(&mut design, &mut pm)
    });
    out.push(entry(s, counted(|| resize(&mut design, &mut pm))));

    let mut flip = false;
    let mut setcap = |design: &mut Design, pm: &mut PassManager| {
        flip = !flip;
        let pf = if flip { 0.08 } else { 0.05 };
        design.set_node_cap(cap_node, pf).expect("setcap");
        pm.analyze(design, &opts).combinational.relaxations
    };
    let s = bench("session/mips32-warm-setcap", 20, || {
        setcap(&mut design, &mut pm)
    });
    out.push(entry(s, counted(|| setcap(&mut design, &mut pm))));

    let adddev = |design: &mut Design, pm: &mut PassManager| {
        let (id, _) = design
            .add_device(
                "bench_dev",
                DeviceKind::Enhancement,
                gate,
                src,
                drain,
                4.0,
                2.0,
            )
            .expect("adddev");
        design.remove_device(id);
        pm.analyze(design, &opts).combinational.relaxations
    };
    let s = bench("session/mips32-warm-adddev", 5, || {
        adddev(&mut design, &mut pm)
    });
    out.push(entry(s, counted(|| adddev(&mut design, &mut pm))));

    let mut flip = false;
    let mut retech = |design: &mut Design, pm: &mut PassManager| {
        flip = !flip;
        let t = if flip {
            Tech::nmos2um()
        } else {
            Tech::nmos4um()
        };
        design.retech(t);
        pm.analyze(design, &opts).combinational.relaxations
    };
    let s = bench("session/mips32-warm-retech", 5, || {
        retech(&mut design, &mut pm)
    });
    out.push(entry(s, counted(|| retech(&mut design, &mut pm))));

    // Leave the design back on its home technology before the loop.
    design.retech(tech.clone());
    pm.analyze(&design, &opts);

    let all_devs: Vec<_> = design.netlist().devices().map(|d| d.id).collect();
    let cap_nodes: Vec<_> = design.netlist().outputs().to_vec();
    let edit_loop = |design: &mut Design, pm: &mut PassManager| {
        let mut acc = 0usize;
        for i in 0..100usize {
            if i % 20 == 19 {
                // Structural: a parallel transistor appears and goes away.
                let (id, _) = design
                    .add_device(
                        "bench_dev",
                        DeviceKind::Enhancement,
                        gate,
                        src,
                        drain,
                        4.0,
                        2.0,
                    )
                    .expect("adddev");
                design.remove_device(id);
            } else if i % 2 == 0 {
                let d = all_devs[(i * 37) % all_devs.len()];
                design
                    .resize_device(d, 4.0 + (i % 3) as f64, 2.0)
                    .expect("resize");
            } else {
                let n = cap_nodes[(i * 13) % cap_nodes.len()];
                design
                    .set_node_cap(n, 0.05 + (i % 5) as f64 * 0.01)
                    .expect("setcap");
            }
            acc += pm.analyze(design, &opts).combinational.relaxations;
        }
        acc
    };
    let s = bench("session/edit-loop-100", 3, || {
        edit_loop(&mut design, &mut pm)
    });
    out.push(entry(s, counted(|| edit_loop(&mut design, &mut pm))));

    out
}

fn write_json(runs: &[Run]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tv-bench-trajectory/3\",\n");
    s.push_str(
        "  \"unit\": \"ns_per_op is the median of `iters` timed runs; counters are \
         deterministic tv_obs work from one instrumented run\",\n",
    );
    s.push_str("  \"runs\": [\n");
    for (r, run) in runs.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"label\": \"{}\",\n", run.label));
        s.push_str("      \"benches\": [\n");
        for (i, e) in run.benches.iter().enumerate() {
            let counters = if e.counters.is_empty() {
                String::new()
            } else {
                let body: Vec<String> = e
                    .counters
                    .iter()
                    .map(|(k, v)| format!("\"{k}\": {v}"))
                    .collect();
                format!(", \"counters\": {{ {} }}", body.join(", "))
            };
            s.push_str(&format!(
                "        {{ \"name\": \"{}\", \"input_size\": {}, \"ns_per_op\": {:.1}, \"min_ns\": {:.1}, \"iters\": {}, \"peak_rss_kb\": {}{} }}{}\n",
                e.name,
                e.input_size,
                e.ns_per_op,
                e.min_ns,
                e.iters,
                e.peak_rss_kb,
                counters,
                if i + 1 < run.benches.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if r + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Reads a trajectory file back into runs, via the strict `tv_obs`
/// JSON parser. Accepts both the current `runs` schema and the flat v1
/// `benches` shape (a single unlabeled run), so a v1 baseline can be
/// appended to in place.
fn load_runs(text: &str) -> Result<Vec<Run>, String> {
    let root = tv_obs::json::parse(text)?;
    let runs_of = |v: &Value| -> Result<Vec<Entry>, String> {
        let arr = v.as_arr().ok_or("\"benches\" is not an array")?;
        arr.iter().map(load_entry).collect()
    };
    if let Some(runs) = root.get("runs") {
        let arr = runs.as_arr().ok_or("\"runs\" is not an array")?;
        arr.iter()
            .map(|r| {
                let label = r
                    .get("label")
                    .and_then(Value::as_str)
                    .ok_or("run without a string \"label\"")?
                    .to_string();
                let benches = runs_of(r.get("benches").ok_or("run without \"benches\"")?)?;
                Ok(Run { label, benches })
            })
            .collect()
    } else if let Some(benches) = root.get("benches") {
        Ok(vec![Run {
            label: "pre-trajectory".to_string(),
            benches: runs_of(benches)?,
        }])
    } else {
        Err("neither \"runs\" nor \"benches\" at top level".to_string())
    }
}

fn load_entry(v: &Value) -> Result<Entry, String> {
    let s = |k: &str| {
        v.get(k)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or(format!("bench without string \"{k}\""))
    };
    let n = |k: &str| {
        v.get(k)
            .and_then(Value::as_num)
            .ok_or(format!("bench without numeric \"{k}\""))
    };
    // Keep counters in registry order so a re-rendered file diffs
    // cleanly against a freshly written one.
    let mut counters = Vec::new();
    if let Some(Value::Obj(map)) = v.get("counters") {
        for c in tv_obs::counters::ALL {
            if let Some(x) = map.get(c.name()).and_then(Value::as_num) {
                counters.push((c.name().to_string(), x as u64));
            }
        }
    }
    Ok(Entry {
        name: s("name")?,
        input_size: n("input_size")? as usize,
        ns_per_op: n("ns_per_op")?,
        min_ns: n("min_ns")?,
        iters: n("iters")? as usize,
        peak_rss_kb: n("peak_rss_kb").unwrap_or(0.0) as u64,
        counters,
    })
}

fn check(entries: &[Entry], baseline_path: &str, threshold: f64) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_trajectory: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let runs = match load_runs(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_trajectory: bad baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The gate compares against the *latest* appended run; earlier runs
    // are history, kept for the trajectory tables in EXPERIMENTS.md.
    let Some(baseline) = runs.last() else {
        eprintln!("perf_trajectory: no runs found in {baseline_path}");
        return ExitCode::FAILURE;
    };
    println!(
        "\n{:<28} {:>14} {:>14} {:>8}  vs {}x gate (baseline run \"{}\")",
        "bench", "baseline ns", "current min", "ratio", threshold, baseline.label
    );
    let mut failed = false;
    for e in entries {
        // Socket latency under concurrency is too noisy for the ratio
        // gate; serve/* is pinned by `check_serve_latency` instead.
        if e.name.starts_with("serve/") {
            println!(
                "{:<28} {:>14} {:>14.0}   (serve — gated by the p99 bound below)",
                e.name, "-", e.ns_per_op
            );
            continue;
        }
        let Some(base) = baseline.benches.iter().find(|b| b.name == e.name) else {
            println!(
                "{:<28} {:>14} {:>14.0}   (new — no baseline)",
                e.name, "-", e.ns_per_op
            );
            continue;
        };
        // Gate on the current run's *fastest* iteration vs the baseline
        // median (see `Entry`): immune to one-sided scheduler noise.
        let gate = gate_threshold(&e.name, threshold);
        let ratio = e.min_ns / base.ns_per_op;
        let verdict = if ratio > gate {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        let tighter = if gate < threshold {
            format!("  ({gate}x gate)")
        } else {
            String::new()
        };
        println!(
            "{:<28} {:>14.0} {:>14.0} {:>7.2}x  {}{}",
            e.name, base.ns_per_op, e.min_ns, ratio, verdict, tighter
        );
    }
    if let Err(msg) = check_cone_work(entries) {
        eprintln!("perf_trajectory: {msg}");
        failed = true;
    }
    if let Err(msg) = check_macro_sharing(&runs) {
        eprintln!("perf_trajectory: {msg}");
        failed = true;
    }
    if let Err(msg) = check_serve_latency(entries) {
        eprintln!("perf_trajectory: {msg}");
        failed = true;
    }
    if failed {
        eprintln!("perf_trajectory: regression beyond {threshold}x of committed baseline");
        ExitCode::FAILURE
    } else {
        println!("perf_trajectory: within {threshold}x of baseline");
        ExitCode::SUCCESS
    }
}

/// Per-bench gate override: the serial T5 parse is the PR 8 headline
/// figure, pinned tighter (1.5x) than the general suite gate so the
/// pre-scanned ingest path cannot silently drift back toward the old
/// allocate-per-line cost.
fn gate_threshold(name: &str, default: f64) -> f64 {
    if name == "ingest/t5-parse-serial" {
        default.min(1.5)
    } else {
        default
    }
}

/// Counter gate on the current run: the demand-driven cone must keep
/// the warm mips32 resize's relaxation work well clear of the cold
/// analyze count. The counters are deterministic, so this gate has no
/// noise margin — a warm count within 2x of cold means the cone engine
/// stopped engaging (fell back to the full walk) and is a regression.
fn check_cone_work(entries: &[Entry]) -> Result<(), String> {
    let relax_of = |name: &str| -> Option<u64> {
        entries
            .iter()
            .find(|e| e.name == name)?
            .counters
            .iter()
            .find(|(k, _)| k == Counter::PropagateRelaxations.name())
            .map(|&(_, v)| v)
    };
    let (Some(cold), Some(warm)) = (
        relax_of("session/mips32-cold-analyze-only"),
        relax_of("session/mips32-warm-resize"),
    ) else {
        // Counter-less entries (an old-format file) can't be gated.
        return Ok(());
    };
    println!(
        "{:<28} {:>14} {:>14} {:>7.2}x  cone work gate (must stay under 0.50x)",
        "warm-resize relaxations",
        cold,
        warm,
        warm as f64 / cold as f64
    );
    if warm * 2 >= cold {
        return Err(format!(
            "warm mips32 resize does {warm} relaxations, within 2x of the cold count {cold}: \
             the cone engine is not engaging"
        ));
    }
    Ok(())
}

/// Serving-latency gate on the current run: the loadgen's p99 latency
/// at 8 concurrent clients must stay under 20x the warm single-edit
/// analyze median from the same run. Both figures move with the host,
/// so the ratio is host-independent: it fails only when the serving
/// plane itself (framing, admission, queueing across 8 sessions) adds
/// more than an order of magnitude over the engine work it wraps.
fn check_serve_latency(entries: &[Entry]) -> Result<(), String> {
    let ns_of = |name: &str| entries.iter().find(|e| e.name == name).map(|e| e.ns_per_op);
    let (Some(p99), Some(warm)) = (
        ns_of("serve/loadgen-c8-p99"),
        ns_of("session/mips32-warm-resize"),
    ) else {
        return Ok(());
    };
    println!(
        "{:<28} {:>14.0} {:>14.0} {:>7.2}x  serve p99 gate (must stay under 20x warm edit)",
        "serve loadgen p99",
        warm,
        p99,
        p99 / warm
    );
    if p99 >= 20.0 * warm {
        return Err(format!(
            "serve loadgen p99 {p99:.0} ns is >= 20x the warm single-edit median {warm:.0} ns: \
             the serving plane is adding more than an order of magnitude over the engine"
        ));
    }
    Ok(())
}

/// Hierarchical-extraction gate on the committed trajectory: in the
/// latest run carrying the at-scale T6 build bench, the macromodel
/// extractor must have analyzed fewer than 10% of the stages it
/// covered (`macro.analyzed` against `macro.analyzed +
/// macro.instanced`, which together count every root once). The T6
/// multi-core design is replication-heavy by construction, so losing
/// the sharing there means the structural hash or canonical-trace
/// dedup broke — a determinism bug, not a tuning matter. Runs without
/// the at-scale bench (the verify-gate smoke suite, pre-P9 history)
/// are not gated.
fn check_macro_sharing(runs: &[Run]) -> Result<(), String> {
    let Some((label, bench)) = runs.iter().rev().find_map(|r| {
        r.benches
            .iter()
            .find(|b| b.name == "ingest/t6-1m-build")
            .map(|b| (&r.label, b))
    }) else {
        return Ok(());
    };
    let get = |c: Counter| {
        bench
            .counters
            .iter()
            .find(|(k, _)| k == c.name())
            .map(|&(_, v)| v)
    };
    let (Some(analyzed), Some(instanced)) =
        (get(Counter::MacroAnalyzed), get(Counter::MacroInstanced))
    else {
        return Ok(());
    };
    let total = analyzed + instanced;
    println!(
        "{:<28} {:>14} {:>14} {:>7.2}%  macro sharing gate (run \"{}\", must stay under 10%)",
        "t6 stages analyzed",
        total,
        analyzed,
        100.0 * analyzed as f64 / total.max(1) as f64,
        label
    );
    if analyzed * 10 >= total {
        return Err(format!(
            "run \"{label}\": hierarchical extraction analyzed {analyzed} of {total} T6 stages \
             (>= 10%): stage dedup is not engaging"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut label: Option<String> = None;
    let mut threshold = 2.0f64;
    let mut at_scale = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--at-scale" => {
                at_scale = true;
                i += 1;
            }
            "--out" => {
                out_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--check" => {
                check_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--label" => {
                label = args.get(i + 1).cloned();
                i += 2;
            }
            "--threshold" => {
                threshold = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(threshold);
                i += 2;
            }
            other => {
                eprintln!("perf_trajectory: unknown argument {other}");
                eprintln!(
                    "usage: perf_trajectory [--out FILE --label NAME] [--check FILE] [--threshold X] [--at-scale]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if out_path.is_none() && check_path.is_none() {
        eprintln!(
            "usage: perf_trajectory [--out FILE --label NAME] [--check FILE] [--threshold X] [--at-scale]"
        );
        return ExitCode::FAILURE;
    }

    let entries = run_suite(at_scale);

    if let Some(path) = &out_path {
        // Append, never supersede: keep every prior run in the file.
        let mut runs = match std::fs::read_to_string(path) {
            Ok(text) => match load_runs(&text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("perf_trajectory: refusing to overwrite {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => Vec::new(),
        };
        runs.push(Run {
            label: label.unwrap_or_else(|| "dev".to_string()),
            benches: entries,
        });
        let json = write_json(&runs);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("perf_trajectory: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {path} ({} runs, latest \"{}\")",
            runs.len(),
            runs.last().expect("just pushed").label
        );
    } else if let Some(path) = &check_path {
        return check(&entries, path, threshold);
    }
    ExitCode::SUCCESS
}
