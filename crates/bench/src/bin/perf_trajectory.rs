//! Machine-readable perf trajectory: a fixed smoke suite over the three
//! acceptance benchmarks (analyzer scaling, flow resolution, parallel
//! propagation), emitted as `BENCH_3.json` so CI and future PRs can
//! compare against a committed baseline instead of eyeballing tables.
//!
//! Usage:
//!   perf_trajectory --out BENCH_3.json          # run suite, write baseline
//!   perf_trajectory --check BENCH_3.json        # run suite, fail on >2x regression
//!   perf_trajectory --check BENCH_3.json --threshold 3.0
//!
//! The JSON is flat and hand-rolled (the workspace is dependency-free):
//! one object per benchmark with `name`, `input_size` (devices),
//! `ns_per_op` (median) and `min_ns` (fastest iteration). The checker
//! parses only those keys, line by line, so the file stays trivially
//! greppable and diffable.

use std::process::ExitCode;

use tv_bench::experiments::parallel_scaling;
use tv_bench::harness::bench;
use tv_core::{AnalysisOptions, Analyzer};
use tv_flow::RuleSet;
use tv_gen::datapath::DatapathConfig;
use tv_gen::random::{random_logic, RandomMix};
use tv_gen::workload::t2_suite;
use tv_netlist::Tech;

/// One measured benchmark: label, workload size in devices, median and
/// fastest ns/op. The median is the reported figure; the min is what the
/// regression gate compares, because on microsecond-scale benches the
/// median of a noisy run can swing 2x while the min stays put — gating
/// `current min > threshold × baseline median` can only produce false
/// passes, never false failures.
struct Entry {
    name: String,
    input_size: usize,
    ns_per_op: f64,
    min_ns: f64,
    iters: usize,
}

/// Runs the fixed smoke suite. Sizes are chosen so the whole suite
/// finishes in a few seconds in release mode — this runs inside
/// `scripts/verify.sh`, so it has to stay cheap.
fn run_suite() -> Vec<Entry> {
    let tech = Tech::nmos4um();
    let mut out = Vec::new();

    // Analyzer scaling (the T5 bench, smoke sizes).
    for target in [1_600usize, 6_400] {
        let circuit = random_logic(tech.clone(), target, 0xC0FFEE, RandomMix::default());
        let devices = circuit.netlist.device_count();
        let s = bench(&format!("scaling/random-{target}"), 10, || {
            Analyzer::new(&circuit.netlist)
                .run(&AnalysisOptions::default())
                .flow_report
                .devices
        });
        out.push(Entry {
            name: s.name,
            input_size: devices,
            ns_per_op: s.median_ms * 1e6,
            min_ns: s.min_ms * 1e6,
            iters: s.iters,
        });
    }

    // Flow direction-resolution fixpoint (the T2 bench, full suite —
    // each item is microseconds).
    for item in t2_suite(&tech) {
        let devices = item.circuit.netlist.device_count();
        let s = bench(&format!("flow/{}", item.name), 50, || {
            tv_flow::analyze(&item.circuit.netlist, &RuleSet::all()).sweeps()
        });
        out.push(Entry {
            name: s.name,
            input_size: devices,
            ns_per_op: s.median_ms * 1e6,
            min_ns: s.min_ms * 1e6,
            iters: s.iters,
        });
    }

    // Serial graph build + propagation on the MIPS-class datapath (the
    // P1 bench at jobs=1: the single-thread cost the parallel speedups
    // are measured against).
    let cfg = DatapathConfig::mips32();
    let devices = tv_gen::datapath::datapath(tech.clone(), cfg)
        .netlist
        .device_count();
    let rows = parallel_scaling(&tech, cfg, &[1], 5);
    out.push(Entry {
        name: "propagate/mips32-jobs1".to_string(),
        input_size: devices,
        ns_per_op: rows[0].total_ms() * 1e6,
        min_ns: rows[0].total_ms() * 1e6,
        iters: 5,
    });

    out
}

fn write_json(entries: &[Entry]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tv-bench-trajectory/1\",\n");
    s.push_str("  \"unit\": \"ns_per_op is the median of `iters` timed runs\",\n");
    s.push_str("  \"benches\": [\n");
    for (i, e) in entries.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"input_size\": {}, \"ns_per_op\": {:.1}, \"min_ns\": {:.1}, \"iters\": {} }}{}\n",
            e.name,
            e.input_size,
            e.ns_per_op,
            e.min_ns,
            e.iters,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts `(name, ns_per_op)` pairs from a baseline file. The writer
/// puts one bench object per line, so a line scan is exact for our own
/// output and tolerant of hand-edits that keep that shape.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(ns) = field_num(line, "ns_per_op") else {
            continue;
        };
        out.push((name, ns));
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = line[line.find(&pat)? + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check(entries: &[Entry], baseline_path: &str, threshold: f64) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_trajectory: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("perf_trajectory: no bench entries found in {baseline_path}");
        return ExitCode::FAILURE;
    }
    println!(
        "\n{:<28} {:>14} {:>14} {:>8}  vs {}x gate",
        "bench", "baseline ns", "current min", "ratio", threshold
    );
    let mut failed = false;
    for e in entries {
        let Some((_, base_ns)) = baseline.iter().find(|(n, _)| *n == e.name) else {
            println!(
                "{:<28} {:>14} {:>14.0}   (new — no baseline)",
                e.name, "-", e.ns_per_op
            );
            continue;
        };
        // Gate on the current run's *fastest* iteration vs the baseline
        // median (see `Entry`): immune to one-sided scheduler noise.
        let ratio = e.min_ns / base_ns;
        let verdict = if ratio > threshold {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<28} {:>14.0} {:>14.0} {:>7.2}x  {}",
            e.name, base_ns, e.min_ns, ratio, verdict
        );
    }
    if failed {
        eprintln!("perf_trajectory: regression beyond {threshold}x of committed baseline");
        ExitCode::FAILURE
    } else {
        println!("perf_trajectory: within {threshold}x of baseline");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut threshold = 2.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--check" => {
                check_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--threshold" => {
                threshold = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(threshold);
                i += 2;
            }
            other => {
                eprintln!("perf_trajectory: unknown argument {other}");
                eprintln!("usage: perf_trajectory [--out FILE] [--check FILE] [--threshold X]");
                return ExitCode::FAILURE;
            }
        }
    }
    if out_path.is_none() && check_path.is_none() {
        eprintln!("usage: perf_trajectory [--out FILE] [--check FILE] [--threshold X]");
        return ExitCode::FAILURE;
    }

    let entries = run_suite();

    if let Some(path) = &out_path {
        let json = write_json(&entries);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("perf_trajectory: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} benches)", entries.len());
    }
    if let Some(path) = &check_path {
        return check(&entries, path, threshold);
    }
    ExitCode::SUCCESS
}
