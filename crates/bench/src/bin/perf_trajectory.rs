//! Machine-readable perf trajectory: a fixed smoke suite over the
//! acceptance benchmarks (analyzer scaling, flow resolution, parallel
//! propagation, and the P4 session suite), emitted as `BENCH_4.json` so
//! CI and future PRs can compare against a committed baseline instead of
//! eyeballing tables.
//!
//! Usage:
//!   perf_trajectory --out BENCH_4.json          # run suite, write baseline
//!   perf_trajectory --check BENCH_4.json        # run suite, fail on >2x regression
//!   perf_trajectory --check BENCH_4.json --threshold 3.0
//!
//! The JSON is flat and hand-rolled (the workspace is dependency-free):
//! one object per benchmark with `name`, `input_size` (devices),
//! `ns_per_op` (median) and `min_ns` (fastest iteration). The checker
//! parses only those keys, line by line, so the file stays trivially
//! greppable and diffable.

use std::process::ExitCode;

use tv_bench::experiments::parallel_scaling;
use tv_bench::harness::bench;
use tv_core::{AnalysisOptions, Analyzer};
use tv_flow::RuleSet;
use tv_gen::datapath::DatapathConfig;
use tv_gen::random::{random_logic, RandomMix};
use tv_gen::workload::t2_suite;
use tv_netlist::Tech;

/// One measured benchmark: label, workload size in devices, median and
/// fastest ns/op. The median is the reported figure; the min is what the
/// regression gate compares, because on microsecond-scale benches the
/// median of a noisy run can swing 2x while the min stays put — gating
/// `current min > threshold × baseline median` can only produce false
/// passes, never false failures.
struct Entry {
    name: String,
    input_size: usize,
    ns_per_op: f64,
    min_ns: f64,
    iters: usize,
}

/// Runs the fixed smoke suite. Sizes are chosen so the whole suite
/// finishes in a few seconds in release mode — this runs inside
/// `scripts/verify.sh`, so it has to stay cheap.
fn run_suite() -> Vec<Entry> {
    let tech = Tech::nmos4um();
    let mut out = Vec::new();

    // Analyzer scaling (the T5 bench, smoke sizes).
    for target in [1_600usize, 6_400] {
        let circuit = random_logic(tech.clone(), target, 0xC0FFEE, RandomMix::default());
        let devices = circuit.netlist.device_count();
        let s = bench(&format!("scaling/random-{target}"), 10, || {
            Analyzer::new(&circuit.netlist)
                .run(&AnalysisOptions::default())
                .flow_report
                .devices
        });
        out.push(Entry {
            name: s.name,
            input_size: devices,
            ns_per_op: s.median_ms * 1e6,
            min_ns: s.min_ms * 1e6,
            iters: s.iters,
        });
    }

    // Flow direction-resolution fixpoint (the T2 bench, full suite —
    // each item is microseconds).
    for item in t2_suite(&tech) {
        let devices = item.circuit.netlist.device_count();
        let s = bench(&format!("flow/{}", item.name), 50, || {
            tv_flow::analyze(&item.circuit.netlist, &RuleSet::all()).sweeps()
        });
        out.push(Entry {
            name: s.name,
            input_size: devices,
            ns_per_op: s.median_ms * 1e6,
            min_ns: s.min_ms * 1e6,
            iters: s.iters,
        });
    }

    // Serial graph build + propagation on the MIPS-class datapath (the
    // P1 bench at jobs=1: the single-thread cost the parallel speedups
    // are measured against).
    let cfg = DatapathConfig::mips32();
    let devices = tv_gen::datapath::datapath(tech.clone(), cfg)
        .netlist
        .device_count();
    let rows = parallel_scaling(&tech, cfg, &[1], 5);
    out.push(Entry {
        name: "propagate/mips32-jobs1".to_string(),
        input_size: devices,
        ns_per_op: rows[0].total_ms() * 1e6,
        min_ns: rows[0].total_ms() * 1e6,
        iters: 5,
    });

    out.extend(session_suite(&tech));

    out
}

/// The P4 session suite: cold one-shot analysis vs warm pass-pipeline
/// re-analysis after each edit kind, plus the 100-edit session loop,
/// all on the MIPS-class datapath. The cold figure does what one `tv
/// analyze` invocation does — parse the `.sim` text, analyze, render
/// the report — and the warm figures include the edit itself and the
/// full re-analysis (splice or rebuild, propagation, paths, checks) —
/// exactly what one `analyze` reply costs a session.
fn session_suite(tech: &Tech) -> Vec<Entry> {
    use tv_core::PassManager;
    use tv_netlist::{sim_format, Design, DeviceKind};

    let mut out = Vec::new();
    let dp = tv_gen::datapath::datapath(tech.clone(), DatapathConfig::mips32());
    let devices = dp.netlist.device_count();
    let opts = AnalysisOptions::default();
    let entry = |s: tv_bench::harness::Sample| Entry {
        name: s.name,
        input_size: devices,
        ns_per_op: s.median_ms * 1e6,
        min_ns: s.min_ms * 1e6,
        iters: s.iters,
    };

    let sim_text = sim_format::write(&dp.netlist);
    out.push(entry(bench("session/mips32-cold", 10, || {
        let parsed = sim_format::parse(&sim_text, tech.clone()).expect("round-trip");
        let report = Analyzer::new(&parsed).run(&opts);
        report.render(&parsed).len()
    })));

    out.push(entry(bench("session/mips32-cold-analyze-only", 10, || {
        Analyzer::new(&dp.netlist)
            .run(&opts)
            .combinational
            .relaxations
    })));

    let mut design = Design::new(dp.netlist.clone());
    let mut pm = PassManager::new();
    pm.analyze(&design, &opts);

    let probe = design
        .netlist()
        .devices()
        .nth(devices / 2)
        .expect("mid-array device");
    let dev = probe.id;
    let (gate, src, drain) = (
        probe.device.gate(),
        probe.device.source(),
        probe.device.drain(),
    );
    let cap_node = *design.netlist().outputs().first().expect("an output");

    let mut flip = false;
    out.push(entry(bench("session/mips32-warm-resize", 20, || {
        flip = !flip;
        let w = if flip { 6.0 } else { 4.0 };
        design.resize_device(dev, w, 2.0).expect("resize");
        pm.analyze(&design, &opts).combinational.relaxations
    })));

    out.push(entry(bench("session/mips32-warm-setcap", 20, || {
        flip = !flip;
        let pf = if flip { 0.08 } else { 0.05 };
        design.set_node_cap(cap_node, pf).expect("setcap");
        pm.analyze(&design, &opts).combinational.relaxations
    })));

    out.push(entry(bench("session/mips32-warm-adddev", 5, || {
        let (id, _) = design
            .add_device(
                "bench_dev",
                DeviceKind::Enhancement,
                gate,
                src,
                drain,
                4.0,
                2.0,
            )
            .expect("adddev");
        design.remove_device(id);
        pm.analyze(&design, &opts).combinational.relaxations
    })));

    out.push(entry(bench("session/mips32-warm-retech", 5, || {
        flip = !flip;
        let t = if flip {
            Tech::nmos2um()
        } else {
            Tech::nmos4um()
        };
        design.retech(t);
        pm.analyze(&design, &opts).combinational.relaxations
    })));

    // Leave the design back on its home technology before the loop.
    design.retech(tech.clone());
    pm.analyze(&design, &opts);

    let all_devs: Vec<_> = design.netlist().devices().map(|d| d.id).collect();
    let cap_nodes: Vec<_> = design.netlist().outputs().to_vec();
    out.push(entry(bench("session/edit-loop-100", 3, || {
        let mut acc = 0usize;
        for i in 0..100usize {
            if i % 20 == 19 {
                // Structural: a parallel transistor appears and goes away.
                let (id, _) = design
                    .add_device(
                        "bench_dev",
                        DeviceKind::Enhancement,
                        gate,
                        src,
                        drain,
                        4.0,
                        2.0,
                    )
                    .expect("adddev");
                design.remove_device(id);
            } else if i % 2 == 0 {
                let d = all_devs[(i * 37) % all_devs.len()];
                design
                    .resize_device(d, 4.0 + (i % 3) as f64, 2.0)
                    .expect("resize");
            } else {
                let n = cap_nodes[(i * 13) % cap_nodes.len()];
                design
                    .set_node_cap(n, 0.05 + (i % 5) as f64 * 0.01)
                    .expect("setcap");
            }
            acc += pm.analyze(&design, &opts).combinational.relaxations;
        }
        acc
    })));

    out
}

fn write_json(entries: &[Entry]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tv-bench-trajectory/1\",\n");
    s.push_str("  \"unit\": \"ns_per_op is the median of `iters` timed runs\",\n");
    s.push_str("  \"benches\": [\n");
    for (i, e) in entries.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"input_size\": {}, \"ns_per_op\": {:.1}, \"min_ns\": {:.1}, \"iters\": {} }}{}\n",
            e.name,
            e.input_size,
            e.ns_per_op,
            e.min_ns,
            e.iters,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts `(name, ns_per_op)` pairs from a baseline file. The writer
/// puts one bench object per line, so a line scan is exact for our own
/// output and tolerant of hand-edits that keep that shape.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(ns) = field_num(line, "ns_per_op") else {
            continue;
        };
        out.push((name, ns));
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = line[line.find(&pat)? + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn check(entries: &[Entry], baseline_path: &str, threshold: f64) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_trajectory: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("perf_trajectory: no bench entries found in {baseline_path}");
        return ExitCode::FAILURE;
    }
    println!(
        "\n{:<28} {:>14} {:>14} {:>8}  vs {}x gate",
        "bench", "baseline ns", "current min", "ratio", threshold
    );
    let mut failed = false;
    for e in entries {
        let Some((_, base_ns)) = baseline.iter().find(|(n, _)| *n == e.name) else {
            println!(
                "{:<28} {:>14} {:>14.0}   (new — no baseline)",
                e.name, "-", e.ns_per_op
            );
            continue;
        };
        // Gate on the current run's *fastest* iteration vs the baseline
        // median (see `Entry`): immune to one-sided scheduler noise.
        let ratio = e.min_ns / base_ns;
        let verdict = if ratio > threshold {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<28} {:>14.0} {:>14.0} {:>7.2}x  {}",
            e.name, base_ns, e.min_ns, ratio, verdict
        );
    }
    if failed {
        eprintln!("perf_trajectory: regression beyond {threshold}x of committed baseline");
        ExitCode::FAILURE
    } else {
        println!("perf_trajectory: within {threshold}x of baseline");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut threshold = 2.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--check" => {
                check_path = args.get(i + 1).cloned();
                i += 2;
            }
            "--threshold" => {
                threshold = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(threshold);
                i += 2;
            }
            other => {
                eprintln!("perf_trajectory: unknown argument {other}");
                eprintln!("usage: perf_trajectory [--out FILE] [--check FILE] [--threshold X]");
                return ExitCode::FAILURE;
            }
        }
    }
    if out_path.is_none() && check_path.is_none() {
        eprintln!("usage: perf_trajectory [--out FILE] [--check FILE] [--threshold X]");
        return ExitCode::FAILURE;
    }

    let entries = run_suite();

    if let Some(path) = &out_path {
        let json = write_json(&entries);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("perf_trajectory: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} benches)", entries.len());
    }
    if let Some(path) = &check_path {
        return check(&entries, path, threshold);
    }
    ExitCode::SUCCESS
}
