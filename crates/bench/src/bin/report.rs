//! Regenerates every table and figure of `EXPERIMENTS.md`.
//!
//! Usage: `cargo run --release -p tv-bench --bin report [t1|t2|t3|t4|t5|t6|f1|f2|f3|a1|a2|a3|p1|all]`
//!
//! With no argument, prints everything (`all`). Simulation-backed columns
//! (T1, F1, F2, A1) take a few seconds each in release mode.

use tv_bench::*;
use tv_gen::datapath::DatapathConfig;
use tv_netlist::Tech;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let tech = Tech::nmos4um();
    let all = which == "all";
    if all || which == "t1" {
        print_t1(&tech);
    }
    if all || which == "t2" {
        print_t2(&tech);
    }
    if all || which == "t3" {
        print_t3(&tech);
    }
    if all || which == "t4" {
        print_t4(&tech);
    }
    if all || which == "t5" {
        print_t5(&tech);
    }
    if all || which == "f1" {
        print_f1(&tech);
    }
    if all || which == "f2" {
        print_f2(&tech);
    }
    if all || which == "f3" {
        print_f3(&tech);
    }
    if all || which == "a1" {
        print_a1(&tech);
    }
    if all || which == "a2" {
        print_a2(&tech);
    }
    if all || which == "a3" {
        print_a3(&tech);
    }
    if all || which == "t6" {
        print_t6();
    }
    if all || which == "p1" {
        print_p1(&tech);
    }
}

fn print_p1(tech: &Tech) {
    println!("\n== P1: parallel scaling of the levelized engine ==");
    let rows = experiments::parallel_scaling(tech, DatapathConfig::mips32(), &[1, 2, 4, 8], 7);
    let base = rows[0].clone();
    println!(
        "{:>5} {:>12} {:>14} {:>12} {:>9} {:>9}",
        "jobs", "build (ms)", "propagate (ms)", "total (ms)", "wall", "modeled"
    );
    for row in &rows {
        println!(
            "{:>5} {:>12.3} {:>14.3} {:>12.3} {:>8.2}x {:>8.2}x",
            row.jobs,
            row.build_ms,
            row.propagate_ms,
            row.total_ms(),
            row.speedup_over(&base),
            row.modeled_speedup,
        );
    }
}

fn print_t1(tech: &Tech) {
    println!("\n== T1: static delay estimate vs transient simulation ==");
    println!(
        "{:<20} {:>12} {:>12} {:>8}",
        "circuit", "static (ns)", "sim (ns)", "ratio"
    );
    let mut conservative = 0usize;
    let mut measured = 0usize;
    for row in t1_delay_accuracy(tech) {
        match (row.sim_ns, row.ratio()) {
            (Some(sim), Some(ratio)) => {
                measured += 1;
                if ratio >= 1.0 {
                    conservative += 1;
                }
                println!(
                    "{:<20} {:>12.3} {:>12.3} {:>8.2}",
                    row.name, row.static_ns, sim, ratio
                );
            }
            _ => println!(
                "{:<20} {:>12.3} {:>12} {:>8}",
                row.name, row.static_ns, "-", "-"
            ),
        }
    }
    println!("conservative on {conservative}/{measured} measured circuits");
}

fn print_t2(tech: &Tech) {
    println!("\n== T2: signal-flow direction resolution ==");
    println!(
        "{:<14} {:>8} {:>6} {:>9} {:>7}  {:>4} {:>4} {:>5} {:>4}",
        "circuit", "devices", "pass", "coverage", "sweeps", "ext", "rst", "chain", "sink"
    );
    for r in t2_flow_resolution(tech) {
        println!(
            "{:<14} {:>8} {:>6} {:>8.1}% {:>7}  {:>4} {:>4} {:>5} {:>4}",
            r.name,
            r.devices,
            r.pass,
            100.0 * r.coverage,
            r.sweeps,
            r.by_rule[0],
            r.by_rule[1],
            r.by_rule[2],
            r.by_rule[3],
        );
    }
}

fn print_t3(tech: &Tech) {
    println!("\n== T3: critical paths of the MIPS-class 32-bit datapath ==");
    let r = t3_critical_paths(tech, DatapathConfig::mips32(), 10);
    println!(
        "datapath: {} devices, {} nodes; min cycle {:.3} ns",
        r.datapath.netlist.device_count(),
        r.datapath.netlist.node_count(),
        r.min_cycle
    );
    for (phase, critical, paths) in &r.phases {
        println!("phase {} (critical {:.3} ns):", phase + 1, critical);
        for (i, (endpoint, arrival, steps)) in paths.iter().enumerate() {
            println!(
                "  #{:<2} {:>9.3} ns  {:>3} steps  -> {}",
                i + 1,
                arrival,
                steps,
                endpoint
            );
        }
    }
}

fn print_t4(tech: &Tech) {
    println!("\n== T4: two-phase clock case analysis & minimum cycle ==");
    let cycles = [50.0, 100.0, 200.0, 400.0, 800.0];
    let r = t4_clock_analysis(tech, DatapathConfig::mips32(), &cycles);
    println!(
        "critical arrivals: φ1 {:.3} ns, φ2 {:.3} ns; latches (φ1, φ2) = {:?}",
        r.arrivals.0, r.arrivals.1, r.latches
    );
    println!("minimum cycle: {:.3} ns", r.min_cycle);
    println!(
        "naive (no case analysis) mode: {}",
        if r.naive_cyclic {
            "combinational cycle detected — unusable, as expected"
        } else {
            "unexpectedly acyclic"
        }
    );
    println!(
        "{:>10} {:>12} {:>12} {:>9}",
        "cycle", "slack φ1", "slack φ2", "feasible"
    );
    for row in &r.rows {
        println!(
            "{:>10.1} {:>12.3} {:>12.3} {:>9}",
            row.cycle_ns,
            row.slack1,
            row.slack2,
            if row.feasible { "yes" } else { "NO" }
        );
    }
}

fn print_t5(tech: &Tech) {
    println!("\n== T5: analyzer runtime scaling ==");
    println!(
        "{:>9} {:>9} {:>12} {:>14}",
        "devices", "nodes", "analyze (ms)", "devices/ms"
    );
    let sizes = [100, 400, 1_600, 6_400, 25_600, 102_400];
    for r in t5_scaling(tech, &sizes) {
        println!(
            "{:>9} {:>9} {:>12.2} {:>14.0}",
            r.devices, r.nodes, r.analyze_ms, r.devices_per_ms
        );
    }
    println!("(near-constant devices/ms = near-linear runtime)");
}

fn print_f1(tech: &Tech) {
    println!("\n== F1: delay vs pass-chain length ==");
    println!(
        "{:>4} {:>12} {:>14} {:>12}",
        "n", "raw (ns)", "buffered (ns)", "sim (ns)"
    );
    for p in f1_pass_chain(tech, &[1, 2, 3, 4, 6, 8, 10], 3, true) {
        match p.sim_ns {
            Some(s) => println!(
                "{:>4} {:>12.3} {:>14.3} {:>12.3}",
                p.n, p.raw_ns, p.buffered_ns, s
            ),
            None => println!(
                "{:>4} {:>12.3} {:>14.3} {:>12}",
                p.n, p.raw_ns, p.buffered_ns, "-"
            ),
        }
    }
    println!("(raw grows quadratically; buffered linearly)");
}

fn print_f2(tech: &Tech) {
    println!("\n== F2: inverter rise/fall delay vs load ==");
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "load pF", "rise (ns)", "fall (ns)", "sim rise", "sim fall", "r/f"
    );
    for p in f2_rise_fall(tech, &[0.05, 0.1, 0.2, 0.5, 1.0, 2.0], true) {
        println!(
            "{:>9.2} {:>10.3} {:>10.3} {:>10} {:>10} {:>7.2}",
            p.load_pf,
            p.rise_ns,
            p.fall_ns,
            p.sim_rise_ns.map_or("-".into(), |v| format!("{v:.3}")),
            p.sim_fall_ns.map_or("-".into(), |v| format!("{v:.3}")),
            p.rise_ns / p.fall_ns,
        );
    }
    println!("(ratioed logic: rise ≈ 5.5× fall electrically, both linear in load)");
}

fn print_f3(tech: &Tech) {
    println!("\n== F3: endpoint slack distribution (32-bit datapath) ==");
    for h in f3_slack_histogram(tech, DatapathConfig::mips32(), 400.0, 10) {
        println!("phase {} ({} endpoints):", h.phase + 1, h.total);
        let max = h.counts.iter().copied().max().unwrap_or(1).max(1);
        for (i, &c) in h.counts.iter().enumerate() {
            let bar = "#".repeat(c * 40 / max);
            println!(
                "  [{:>8.2}, {:>8.2}) ns {:>5}  {}",
                h.edges[i],
                h.edges[i + 1],
                c,
                bar
            );
        }
    }
}

fn print_a1(tech: &Tech) {
    println!("\n== A1: delay-model ablation ==");
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>10}",
        "circuit", "lumped", "elmore", "upper", "sim"
    );
    for r in a1_model_ablation(tech, true) {
        println!(
            "{:<20} {:>10.3} {:>10.3} {:>10.3} {:>10}",
            r.name,
            r.lumped_ns,
            r.elmore_ns,
            r.upper_ns,
            r.sim_ns.map_or("-".into(), |v| format!("{v:.3}")),
        );
    }
    println!("(elmore ≤ upper always; lumped underestimates chain far ends)");
}

fn print_t6() {
    println!("\n== T6: first-order process scaling (4 µm -> 2 µm) ==");
    println!(
        "{:>14} {:>12} {:>12} {:>9}",
        "circuit", "4um (ns)", "2um (ns)", "speedup"
    );
    for r in t6_process_scaling(DatapathConfig::small()) {
        println!(
            "{:>14} {:>12.3} {:>12.3} {:>8.2}x",
            r.name,
            r.nmos4_ns,
            r.nmos2_ns,
            r.speedup()
        );
    }
    println!("(self-loaded logic gains ~2x; wire-loaded structures gain less)");
}

fn print_a3(tech: &Tech) {
    println!("\n== A3: adder architectures (carry arrival, ns) ==");
    println!(
        "{:>6} {:>10} {:>12} {:>14}",
        "width", "ripple", "manchester", "manchester/4"
    );
    for r in a3_adder_architectures(tech, &[4, 8, 16, 32]) {
        println!(
            "{:>6} {:>10.3} {:>12.3} {:>14.3}",
            r.width, r.ripple_ns, r.manchester_ns, r.manchester_buf_ns
        );
    }
    println!("(manchester wins at small widths; unbuffered it loses to its own");
    println!(" quadratic chain as width grows — buffering every 4 bits restores it)");
}

fn print_a2(tech: &Tech) {
    println!("\n== A2: direction-rule ablation ==");
    println!("{:<14} {:>10} {:>12}", "disabled", "coverage", "unresolved");
    for r in a2_rule_ablation(tech) {
        let name = r
            .disabled
            .map_or("(none)".to_string(), |rule| rule.to_string());
        println!(
            "{:<14} {:>9.1}% {:>12}",
            name,
            100.0 * r.coverage,
            r.unresolved
        );
    }
}
