//! T4: case analysis vs naive single-case analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::datapath::{datapath, DatapathConfig};
use tv_netlist::Tech;

fn bench(c: &mut Criterion) {
    let tech = Tech::nmos4um();
    let dp = datapath(tech, DatapathConfig::small());
    let mut group = c.benchmark_group("t4_clock");
    group.bench_function("case_analysis", |b| {
        b.iter(|| {
            let r = Analyzer::new(&dp.netlist).run(&AnalysisOptions::default());
            black_box(r.min_cycle)
        })
    });
    group.bench_function("naive", |b| {
        let opts = AnalysisOptions {
            case_analysis: false,
            ..AnalysisOptions::default()
        };
        b.iter(|| {
            let r = Analyzer::new(&dp.netlist).run(&opts);
            black_box(r.combinational.cyclic)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
