//! T4: case analysis vs naive single-case analysis.

use tv_bench::harness::bench;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::datapath::{datapath, DatapathConfig};
use tv_netlist::Tech;

fn main() {
    let tech = Tech::nmos4um();
    let dp = datapath(tech, DatapathConfig::small());
    bench("t4_clock/case_analysis", 20, || {
        Analyzer::new(&dp.netlist)
            .run(&AnalysisOptions::default())
            .min_cycle
    });
    let naive = AnalysisOptions {
        case_analysis: false,
        ..AnalysisOptions::default()
    };
    bench("t4_clock/naive", 20, || {
        Analyzer::new(&dp.netlist).run(&naive).combinational.cyclic
    });
}
