//! T5: analyzer runtime vs circuit size (the paper's practicality claim).

use tv_bench::harness::bench;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::random::{random_logic, RandomMix};
use tv_netlist::Tech;

fn main() {
    let tech = Tech::nmos4um();
    for target in [400usize, 1_600, 6_400, 25_600] {
        let circuit = random_logic(tech.clone(), target, 0xC0FFEE, RandomMix::default());
        let devices = circuit.netlist.device_count();
        let s = bench(&format!("t5_scaling/{target}"), 10, || {
            Analyzer::new(&circuit.netlist)
                .run(&AnalysisOptions::default())
                .flow_report
                .devices
        });
        println!(
            "{:<40} throughput {:>10.1} devices/ms",
            format!("t5_scaling/{target}"),
            devices as f64 / s.median_ms
        );
    }
}
