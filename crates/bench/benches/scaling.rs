//! T5: analyzer runtime vs circuit size (the paper's practicality claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::random::{random_logic, RandomMix};
use tv_netlist::Tech;

fn bench(c: &mut Criterion) {
    let tech = Tech::nmos4um();
    let mut group = c.benchmark_group("t5_scaling");
    group.sample_size(10);
    for target in [400usize, 1_600, 6_400, 25_600] {
        let circuit = random_logic(tech.clone(), target, 0xC0FFEE, RandomMix::default());
        group.throughput(Throughput::Elements(circuit.netlist.device_count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(target),
            &circuit.netlist,
            |b, nl| {
                b.iter(|| {
                    let r = Analyzer::new(nl).run(&AnalysisOptions::default());
                    black_box(r.flow_report.devices)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
