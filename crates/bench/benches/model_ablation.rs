//! A1 timing side: cost of each delay model on the datapath.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tv_core::{AnalysisOptions, Analyzer, DelayModel};
use tv_gen::datapath::{datapath, DatapathConfig};
use tv_netlist::Tech;

fn bench(c: &mut Criterion) {
    let tech = Tech::nmos4um();
    let dp = datapath(tech, DatapathConfig::small());
    let mut group = c.benchmark_group("a1_models");
    for (name, model) in [
        ("lumped", DelayModel::Lumped),
        ("elmore", DelayModel::Elmore),
        ("upper", DelayModel::UpperBound),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, &model| {
            let opts = AnalysisOptions {
                model,
                ..AnalysisOptions::default()
            };
            b.iter(|| {
                let r = Analyzer::new(&dp.netlist).run(&opts);
                black_box(r.min_cycle)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
