//! A1 timing side: cost of each delay model on the datapath.

use tv_bench::harness::bench;
use tv_core::{AnalysisOptions, Analyzer, DelayModel};
use tv_gen::datapath::{datapath, DatapathConfig};
use tv_netlist::Tech;

fn main() {
    let tech = Tech::nmos4um();
    let dp = datapath(tech, DatapathConfig::small());
    for (name, model) in [
        ("lumped", DelayModel::Lumped),
        ("elmore", DelayModel::Elmore),
        ("upper", DelayModel::UpperBound),
    ] {
        let opts = AnalysisOptions {
            model,
            ..AnalysisOptions::default()
        };
        bench(&format!("a1_models/{name}"), 20, || {
            Analyzer::new(&dp.netlist).run(&opts).min_cycle
        });
    }
}
