//! T3: full analysis + path extraction on the MIPS-class datapath.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::datapath::{datapath, DatapathConfig};
use tv_netlist::Tech;

fn bench(c: &mut Criterion) {
    let tech = Tech::nmos4um();
    let mut group = c.benchmark_group("t3_critical_paths");
    group.sample_size(10);
    for (name, config) in [
        ("datapath-4", DatapathConfig::small()),
        ("datapath-32", DatapathConfig::mips32()),
    ] {
        let dp = datapath(tech.clone(), config);
        group.bench_with_input(BenchmarkId::from_parameter(name), &dp.netlist, |b, nl| {
            b.iter(|| {
                let r = Analyzer::new(nl).run(&AnalysisOptions::default());
                black_box(r.min_cycle)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
