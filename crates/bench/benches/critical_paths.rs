//! T3: full analysis + path extraction on the MIPS-class datapath.

use tv_bench::harness::bench;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::datapath::{datapath, DatapathConfig};
use tv_netlist::Tech;

fn main() {
    let tech = Tech::nmos4um();
    for (name, config) in [
        ("datapath-4", DatapathConfig::small()),
        ("datapath-32", DatapathConfig::mips32()),
    ] {
        let dp = datapath(tech.clone(), config);
        bench(&format!("t3_critical_paths/{name}"), 10, || {
            Analyzer::new(&dp.netlist)
                .run(&AnalysisOptions::default())
                .min_cycle
        });
    }
}
