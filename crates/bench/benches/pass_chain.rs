//! F1 timing side: analysis cost across pass-chain lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::chains::pass_chain;
use tv_netlist::Tech;

fn bench(c: &mut Criterion) {
    let tech = Tech::nmos4um();
    let mut group = c.benchmark_group("f1_pass_chain");
    for n in [2usize, 4, 8, 16] {
        let circuit = pass_chain(tech.clone(), n);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let r = Analyzer::new(&circuit.netlist).run(&AnalysisOptions::default());
                    black_box(r.arrival(circuit.output))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
