//! F1 timing side: analysis cost across pass-chain lengths.

use tv_bench::harness::bench;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::chains::pass_chain;
use tv_netlist::Tech;

fn main() {
    let tech = Tech::nmos4um();
    for n in [2usize, 4, 8, 16] {
        let circuit = pass_chain(tech.clone(), n);
        bench(&format!("f1_pass_chain/{n}"), 50, || {
            Analyzer::new(&circuit.netlist)
                .run(&AnalysisOptions::default())
                .arrival(circuit.output)
        });
    }
}
