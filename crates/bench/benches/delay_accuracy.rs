//! T1 timing side: how long the static analysis of the calibration suite
//! takes (the simulation reference is exercised by the report binary).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::workload::t1_suite;
use tv_netlist::Tech;

fn bench(c: &mut Criterion) {
    let tech = Tech::nmos4um();
    let suite = t1_suite(&tech);
    c.bench_function("t1_static_suite", |b| {
        b.iter(|| {
            for item in &suite {
                let r = Analyzer::new(&item.circuit.netlist).run(&AnalysisOptions::default());
                black_box(r.arrival(item.circuit.output));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
