//! T1 timing side: how long the static analysis of the calibration suite
//! takes (the simulation reference is exercised by the report binary).

use tv_bench::harness::bench;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::workload::t1_suite;
use tv_netlist::Tech;

fn main() {
    let tech = Tech::nmos4um();
    let suite = t1_suite(&tech);
    bench("t1_static_suite", 20, || {
        suite
            .iter()
            .filter_map(|item| {
                Analyzer::new(&item.circuit.netlist)
                    .run(&AnalysisOptions::default())
                    .arrival(item.circuit.output)
            })
            .count()
    });
}
