//! A3 timing side: analysis cost of the adder architectures.

use tv_bench::harness::bench;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::adder::ripple_carry_adder;
use tv_gen::manchester::manchester_adder;
use tv_netlist::Tech;

fn main() {
    let tech = Tech::nmos4um();
    for width in [8usize, 32] {
        let ripple = ripple_carry_adder(tech.clone(), width);
        bench(&format!("a3_adders/ripple/{width}"), 20, || {
            Analyzer::new(&ripple.netlist)
                .run(&AnalysisOptions::default())
                .checks
                .len()
        });
        let manch = manchester_adder(tech.clone(), width, 4);
        bench(&format!("a3_adders/manchester/{width}"), 20, || {
            Analyzer::new(&manch.netlist)
                .run(&AnalysisOptions::default())
                .min_cycle
        });
    }
}
