//! A3 timing side: analysis cost of the adder architectures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::adder::ripple_carry_adder;
use tv_gen::manchester::manchester_adder;
use tv_netlist::Tech;

fn bench(c: &mut Criterion) {
    let tech = Tech::nmos4um();
    let mut group = c.benchmark_group("a3_adders");
    group.sample_size(20);
    for width in [8usize, 32] {
        let ripple = ripple_carry_adder(tech.clone(), width);
        group.bench_with_input(
            BenchmarkId::new("ripple", width),
            &ripple.netlist,
            |b, nl| {
                b.iter(|| {
                    black_box(Analyzer::new(nl).run(&AnalysisOptions::default()).checks.len())
                })
            },
        );
        let manch = manchester_adder(tech.clone(), width, 4);
        group.bench_with_input(
            BenchmarkId::new("manchester", width),
            &manch.netlist,
            |b, nl| {
                b.iter(|| {
                    black_box(Analyzer::new(nl).run(&AnalysisOptions::default()).min_cycle)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
