//! T2 timing side: direction-resolution fixpoint throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tv_flow::RuleSet;
use tv_gen::workload::t2_suite;
use tv_netlist::Tech;

fn bench(c: &mut Criterion) {
    let tech = Tech::nmos4um();
    let mut group = c.benchmark_group("t2_flow");
    for item in t2_suite(&tech) {
        group.bench_with_input(
            BenchmarkId::from_parameter(item.name),
            &item.circuit.netlist,
            |b, nl| b.iter(|| black_box(tv_flow::analyze(nl, &RuleSet::all()).sweeps())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
