//! T2 timing side: direction-resolution fixpoint throughput.

use tv_bench::harness::bench;
use tv_flow::RuleSet;
use tv_gen::workload::t2_suite;
use tv_netlist::Tech;

fn main() {
    let tech = Tech::nmos4um();
    for item in t2_suite(&tech) {
        bench(&format!("t2_flow/{}", item.name), 50, || {
            tv_flow::analyze(&item.circuit.netlist, &RuleSet::all()).sweeps()
        });
    }
}
