//! Parallel scaling of the levelized timing engine: graph build +
//! propagation for all three analysis cases on the MIPS-class datapath,
//! at 1/2/4/8 workers. Every run is asserted bit-identical to the
//! serial walk. The table this prints is recorded in `EXPERIMENTS.md`.

use tv_bench::experiments::{parallel_scaling, ParallelScalingRow};
use tv_gen::datapath::DatapathConfig;
use tv_netlist::Tech;

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rows = parallel_scaling(&Tech::nmos4um(), DatapathConfig::mips32(), &[1, 2, 4, 8], 7);
    let baseline: ParallelScalingRow = rows[0].clone();
    println!("host threads: {threads}");
    println!(
        "{:>5} {:>12} {:>14} {:>12} {:>9} {:>9}",
        "jobs", "build (ms)", "propagate (ms)", "total (ms)", "wall", "modeled"
    );
    for row in &rows {
        println!(
            "{:>5} {:>12.3} {:>14.3} {:>12.3} {:>8.2}x {:>8.2}x",
            row.jobs,
            row.build_ms,
            row.propagate_ms,
            row.total_ms(),
            row.speedup_over(&baseline),
            row.modeled_speedup,
        );
    }
}
