//! Overhead of the diagnostics plumbing on *clean* inputs.
//!
//! The hardened pipeline threads a diagnostics sink through parsing and
//! resource guards through propagation. Both are designed to cost
//! nothing when nothing goes wrong: the sink allocates no storage until
//! the first diagnostic, and the guarded engine only materializes node
//! lists on error paths. This bench quantifies that claim by timing the
//! strict (pre-hardening) entry points against the recovering/guarded
//! ones on identical clean inputs — the ratios should sit within
//! run-to-run noise of 1.0.

use tv_bench::harness::bench;
use tv_clocks::qualify::qualify_with_flow;
use tv_core::{propagate_guarded, propagate_with, Guards, SOURCE_RESISTANCE};
use tv_core::{DelayModel, PhaseCase, TimingGraph};
use tv_flow::{analyze, RuleSet};
use tv_gen::random::{random_logic, RandomMix};
use tv_netlist::{sim_format, Diagnostics, NodeId, Tech};
use tv_rc::SlopeModel;

fn main() {
    let circuit = random_logic(Tech::nmos4um(), 4000, 0xD1A6, RandomMix::default());
    let nl = circuit.netlist;
    let text = sim_format::write(&nl);
    println!(
        "clean corpus: {} devices, {} nodes, {} bytes of .sim",
        nl.device_count(),
        nl.node_count(),
        text.len()
    );

    let strict = bench("parse strict (single-error path)", 30, || {
        sim_format::parse(&text, Tech::nmos4um()).expect("clean input")
    });
    let recovering = bench("parse recovering (diagnostics sink)", 30, || {
        let mut diags = Diagnostics::new();
        let parsed =
            sim_format::parse_recovering(&text, Tech::nmos4um(), &mut diags).expect("clean input");
        assert!(diags.is_empty(), "clean input must stay diagnostic-free");
        parsed
    });
    println!(
        "parse overhead: {:.3}x (recovering / strict medians)",
        recovering.median_ms / strict.median_ms
    );

    let flow = analyze(&nl, &RuleSet::all());
    let qual = qualify_with_flow(&nl, &flow);
    let graph = TimingGraph::build(
        &nl,
        &flow,
        &qual,
        PhaseCase::all_active(),
        DelayModel::Elmore,
        SOURCE_RESISTANCE,
    );
    let sources: Vec<NodeId> = nl
        .node_ids()
        .filter(|&id| {
            matches!(
                nl.node(id).role(),
                tv_netlist::NodeRole::Input | tv_netlist::NodeRole::Clock(_)
            )
        })
        .collect();
    let endpoints: Vec<NodeId> = nl
        .node_ids()
        .filter(|&id| !nl.node(id).role().is_rail())
        .collect();
    let slope = SlopeModel::calibrated();

    let plain = bench("propagate (historical entry)", 30, || {
        propagate_with(&nl, &graph, &sources, &endpoints, &slope, 1)
    });
    let guarded = bench("propagate_guarded (default guards)", 30, || {
        let r = propagate_guarded(
            &nl,
            &graph,
            &sources,
            &endpoints,
            &slope,
            1,
            Guards::default(),
        );
        assert!(
            r.diagnostics.is_empty(),
            "clean run allocates no diagnostics"
        );
        r
    });
    println!(
        "propagate overhead: {:.3}x (guarded / historical medians)",
        guarded.median_ms / plain.median_ms
    );
}
