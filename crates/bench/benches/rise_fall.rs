//! F2 timing side: analysis cost across inverter loads (flat by design).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::chains::loaded_inverter;
use tv_netlist::Tech;

fn bench(c: &mut Criterion) {
    let tech = Tech::nmos4um();
    let mut group = c.benchmark_group("f2_rise_fall");
    for load in [0.05f64, 0.5, 2.0] {
        let circuit = loaded_inverter(tech.clone(), load);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{load}pF")),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let r = Analyzer::new(&circuit.netlist).run(&AnalysisOptions::default());
                    black_box(r.arrival(circuit.output))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
