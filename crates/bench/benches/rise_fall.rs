//! F2 timing side: analysis cost across inverter loads (flat by design).

use tv_bench::harness::bench;
use tv_core::{AnalysisOptions, Analyzer};
use tv_gen::chains::loaded_inverter;
use tv_netlist::Tech;

fn main() {
    let tech = Tech::nmos4um();
    for load in [0.05f64, 0.5, 2.0] {
        let circuit = loaded_inverter(tech.clone(), load);
        bench(&format!("f2_rise_fall/{load}pF"), 50, || {
            Analyzer::new(&circuit.netlist)
                .run(&AnalysisOptions::default())
                .arrival(circuit.output)
        });
    }
}
