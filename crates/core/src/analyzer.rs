//! The analyzer facade: one call from netlist to full timing report.
//!
//! Since the pass-pipeline refactor this type is a thin shim over
//! [`crate::pipeline`]: each call runs a throwaway
//! [`crate::pipeline::PassManager`] whose every pass computes cold, which
//! is byte-for-byte the pre-pipeline behavior. Hold a `PassManager` over
//! a [`tv_netlist::Design`] instead when you re-analyze after edits.

use tv_clocks::latch::Latch;
use tv_clocks::qualify::qualify_with_flow;
use tv_flow::{Census, FlowReport};
use tv_netlist::{Diagnostic, Netlist, NodeId, NodeRole};

use crate::checks::CheckIssue;
use crate::error::TvError;
use crate::graph::{PhaseCase, TimingGraph};
use crate::hold::RaceHazard;
use crate::incremental::IncrementalCache;
use crate::options::AnalysisOptions;
use crate::paths::TimingPath;
use crate::propagate::{propagate, Completion, PhaseResult};

/// Assumed driver resistance of primary inputs, kΩ (a strong pad driver).
pub const SOURCE_RESISTANCE: f64 = 1.0;

/// The per-phase slice of a report.
#[derive(Debug, Clone)]
pub struct PhaseAnalysis {
    /// Which phase (0 = φ1, 1 = φ2).
    pub phase: u8,
    /// Arrival propagation outcome.
    pub result: PhaseResult,
    /// Top-K critical paths, latest first.
    pub paths: Vec<TimingPath>,
    /// Setup slack of the worst endpoint against the configured clock's
    /// phase width (negative = violation); `None` when nothing arrives.
    pub slack: Option<f64>,
    /// Same-phase race-through hazards (transparent latch to transparent
    /// latch), most dangerous first.
    pub races: Vec<RaceHazard>,
    /// Number of timing arcs in this phase's graph.
    pub arcs: usize,
}

/// Everything one analysis run produces.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Signal-flow resolution statistics.
    pub flow_report: FlowReport,
    /// Chip inventory by inferred node class and device role.
    pub census: Census,
    /// The all-clocks-active analysis from primary inputs to outputs —
    /// the right view for purely combinational circuits and for T1-style
    /// estimate-vs-simulation comparisons.
    pub combinational: PhaseResult,
    /// Critical paths of the combinational view.
    pub combinational_paths: Vec<TimingPath>,
    /// Per-phase case analyses (empty when the netlist has no clocks or
    /// case analysis was disabled).
    pub phases: Vec<PhaseAnalysis>,
    /// Latches found.
    pub latches: Vec<Latch>,
    /// Electrical rule diagnostics.
    pub checks: Vec<CheckIssue>,
    /// Smallest two-phase cycle accommodating both phases' critical
    /// arrivals (using the configured clock's non-overlap gap); `None`
    /// without case analysis.
    pub min_cycle: Option<f64>,
    /// Every diagnostic the run produced, in pipeline order: flow
    /// direction findings, graph-construction degradations, per-case
    /// guard exhaustion and worker panics, then electrical check issues.
    /// Empty on a clean run.
    pub diagnostics: Vec<Diagnostic>,
}

impl TimingReport {
    /// The phase analysis for phase `p`, if it was run.
    pub fn phase(&self, p: u8) -> Option<&PhaseAnalysis> {
        self.phases.iter().find(|x| x.phase == p)
    }

    /// Worst combinational arrival at a node (convenience passthrough).
    pub fn arrival(&self, node: NodeId) -> Option<f64> {
        self.combinational.arrival(node)
    }

    /// Whether every propagation case ran to completion — no resource
    /// guard ([`AnalysisOptions::relax_budget`] /
    /// [`AnalysisOptions::deadline`]) tripped.
    pub fn is_complete(&self) -> bool {
        self.combinational.completion == Completion::Complete
            && self
                .phases
                .iter()
                .all(|p| p.result.completion == Completion::Complete)
    }

    /// Nodes left partial or unresolved by any case, deduplicated and
    /// sorted by id. Empty exactly when [`TimingReport::is_complete`].
    pub fn unresolved_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.combinational.unresolved.clone();
        for p in &self.phases {
            out.extend_from_slice(&p.result.unresolved);
        }
        out.sort_by_key(|id| id.index());
        out.dedup();
        out
    }

    /// Strict view of a possibly partial report: a complete report passes
    /// through, a guard-exhausted one becomes
    /// [`TvError::BudgetExhausted`] — which still carries the partial
    /// report, so nothing computed is thrown away.
    pub fn strict(self, netlist: &Netlist) -> Result<TimingReport, TvError> {
        if self.is_complete() {
            return Ok(self);
        }
        let unresolved = self
            .unresolved_nodes()
            .into_iter()
            .map(|id| netlist.node_name(id).to_string())
            .collect();
        Err(TvError::BudgetExhausted {
            unresolved,
            partial: Box::new(self),
        })
    }
}

/// The analyzer: borrows a netlist, runs the full TV pipeline.
#[derive(Debug)]
pub struct Analyzer<'a> {
    netlist: &'a Netlist,
}

impl<'a> Analyzer<'a> {
    /// Prepares an analyzer for a netlist.
    pub fn new(netlist: &'a Netlist) -> Self {
        Analyzer { netlist }
    }

    /// Runs flow analysis, clock recovery, per-phase timing, path
    /// extraction, and electrical checks.
    ///
    /// With [`AnalysisOptions::jobs`] above one, graph construction and
    /// the levelized propagation fan out across threads (bit-identical
    /// results). With [`AnalysisOptions::incremental`] set, a transient
    /// [`IncrementalCache`] lets later cases of this run reuse the clean
    /// cones of earlier ones; hold a cache across runs with
    /// [`Analyzer::run_incremental`] to also reuse work after a netlist
    /// edit.
    pub fn run(&self, options: &AnalysisOptions) -> TimingReport {
        let r = if options.incremental {
            let mut cache = IncrementalCache::new();
            crate::pipeline::oneshot(self.netlist, options, Some(&mut cache), false)
        } else {
            crate::pipeline::oneshot(self.netlist, options, None, false)
        };
        r.expect("size limits are only enforced by try_run")
    }

    /// [`Analyzer::run`] with the size guards enforced: refuses (with
    /// [`TvError::TooLarge`]) netlists above
    /// [`AnalysisOptions::max_nodes`] before doing any work, and timing
    /// graphs above [`AnalysisOptions::max_arcs`] as soon as the first
    /// graph is built. Guard exhaustion mid-run (budget, deadline) is
    /// *not* an error here — the report comes back partial with
    /// [`TimingReport::diagnostics`] explaining what is missing; chain
    /// [`TimingReport::strict`] to turn that into an error too.
    pub fn try_run(&self, options: &AnalysisOptions) -> Result<TimingReport, TvError> {
        if options.incremental {
            let mut cache = IncrementalCache::new();
            crate::pipeline::oneshot(self.netlist, options, Some(&mut cache), true)
        } else {
            crate::pipeline::oneshot(self.netlist, options, None, true)
        }
    }

    /// [`Analyzer::run`] against a caller-held [`IncrementalCache`]:
    /// only the forward cone of whatever changed since the cache's last
    /// run is recomputed. The report is bit-identical to a cold
    /// [`Analyzer::run`].
    pub fn run_incremental(
        &self,
        options: &AnalysisOptions,
        cache: &mut IncrementalCache,
    ) -> TimingReport {
        crate::pipeline::oneshot(self.netlist, options, Some(cache), false)
            .expect("size limits are only enforced by try_run")
    }
}

/// Sources for phase `p`: primary inputs, this phase's clocks, and the
/// storage nodes written during the *other* phase (stable now).
///
/// Public so harnesses (the bench crate's `parallel_scaling` experiment)
/// can drive the propagation engine with exactly the analyzer's case
/// setup.
pub fn phase_sources(nl: &Netlist, latches: &[Latch], phase: u8) -> Vec<NodeId> {
    let mut sources = Vec::new();
    for id in nl.node_ids() {
        match nl.node(id).role() {
            NodeRole::Input => sources.push(id),
            NodeRole::Clock(p) if p == phase => sources.push(id),
            _ => {}
        }
    }
    for l in latches {
        if l.phase != phase {
            sources.push(l.storage);
        }
    }
    sources
}

/// Endpoints for phase `p`: storage captured this phase, plus primary
/// outputs.
pub fn phase_endpoints(nl: &Netlist, latches: &[Latch], phase: u8) -> Vec<NodeId> {
    let mut endpoints: Vec<NodeId> = latches
        .iter()
        .filter(|l| l.phase == phase)
        .map(|l| l.storage)
        .collect();
    endpoints.extend(nl.outputs());
    endpoints
}

impl<'a> Analyzer<'a> {
    /// Point-to-point query: the worst-case path from `from` to `to` in
    /// the all-active (combinational) view — TV's interactive "why is
    /// this slow" mode. Returns `None` when `to` is unreachable from
    /// `from`.
    pub fn path_query(
        &self,
        from: NodeId,
        to: NodeId,
        options: &AnalysisOptions,
    ) -> Option<crate::paths::TimingPath> {
        let nl = self.netlist;
        let flow = tv_flow::analyze(nl, &options.rules);
        let qual = qualify_with_flow(nl, &flow);
        let graph = TimingGraph::build(
            nl,
            &flow,
            &qual,
            PhaseCase::all_active(),
            options.model,
            SOURCE_RESISTANCE,
        );
        let result = propagate(nl, &graph, &[from], &[to], &options.slope);
        let edge = result.arrivals.worst_edge(to)?;
        crate::paths::backtrack(&graph, &result.arrivals, to, edge)
    }
}

/// Sources of the combinational (everything-active) case: primary inputs
/// and all clock nodes. Public for the same reason as [`phase_sources`].
pub fn external_sources(netlist: &Netlist) -> Vec<NodeId> {
    netlist
        .node_ids()
        .filter(|&id| {
            matches!(
                netlist.node(id).role(),
                NodeRole::Input | NodeRole::Clock(_)
            )
        })
        .collect()
}

pub(crate) fn endpoints_or_all(netlist: &Netlist, preferred: &[NodeId]) -> Vec<NodeId> {
    if !preferred.is_empty() {
        return preferred.to_vec();
    }
    netlist
        .node_ids()
        .filter(|&id| !netlist.node(id).role().is_rail())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::AnalysisOptions;
    use tv_gen::{chains, datapath};
    use tv_netlist::Tech;

    #[test]
    fn inverter_chain_combinational_delay_scales() {
        let opts = AnalysisOptions::default();
        let c4 = chains::inverter_chain(Tech::nmos4um(), 4, 1);
        let c8 = chains::inverter_chain(Tech::nmos4um(), 8, 1);
        let d4 = Analyzer::new(&c4.netlist)
            .run(&opts)
            .arrival(c4.output)
            .unwrap();
        let d8 = Analyzer::new(&c8.netlist)
            .run(&opts)
            .arrival(c8.output)
            .unwrap();
        let ratio = d8 / d4;
        assert!(
            (1.8..2.2).contains(&ratio),
            "8 stages should be ~2x of 4, got {ratio}"
        );
    }

    #[test]
    fn datapath_analysis_produces_phases_and_min_cycle() {
        let dp = datapath::datapath(Tech::nmos4um(), datapath::DatapathConfig::small());
        let report = Analyzer::new(&dp.netlist).run(&AnalysisOptions::default());
        assert_eq!(report.phases.len(), 2);
        assert!(!report.latches.is_empty());
        let mc = report.min_cycle.expect("min cycle computed");
        assert!(mc > 0.0);
        // Case analysis keeps each phase acyclic.
        for p in &report.phases {
            assert!(!p.result.cyclic, "phase {} cyclic", p.phase);
        }
    }

    #[test]
    fn disabling_case_analysis_skips_phases() {
        let dp = datapath::datapath(Tech::nmos4um(), datapath::DatapathConfig::small());
        let opts = AnalysisOptions {
            case_analysis: false,
            ..AnalysisOptions::default()
        };
        let report = Analyzer::new(&dp.netlist).run(&opts);
        assert!(report.phases.is_empty());
        assert_eq!(report.min_cycle, None);
    }

    #[test]
    fn combinational_paths_end_at_output() {
        let c = chains::inverter_chain(Tech::nmos4um(), 4, 1);
        let report = Analyzer::new(&c.netlist).run(&AnalysisOptions::default());
        let p = report.combinational_paths.first().expect("path exists");
        assert_eq!(p.endpoint(), c.output);
    }

    #[test]
    fn pass_chain_slower_than_inverter_pair() {
        let opts = AnalysisOptions::default();
        let pc = chains::pass_chain(Tech::nmos4um(), 6);
        let ic = chains::inverter_chain(Tech::nmos4um(), 2, 1);
        let d_pass = Analyzer::new(&pc.netlist)
            .run(&opts)
            .arrival(pc.output)
            .unwrap();
        let d_inv = Analyzer::new(&ic.netlist)
            .run(&opts)
            .arrival(ic.output)
            .unwrap();
        assert!(d_pass > d_inv, "pass {d_pass} vs inv {d_inv}");
    }

    #[test]
    fn path_query_finds_point_to_point_route() {
        let c = chains::inverter_chain(Tech::nmos4um(), 5, 1);
        let nl = &c.netlist;
        let mid = nl.node_by_name("s1").expect("mid node");
        let analyzer = Analyzer::new(nl);
        let opts = AnalysisOptions::default();
        // From the middle to the output: a 3-stage path.
        let p = analyzer
            .path_query(mid, c.output, &opts)
            .expect("reachable");
        assert_eq!(p.steps.first().map(|s| s.node), Some(mid));
        assert_eq!(p.endpoint(), c.output);
        assert_eq!(p.len(), 4); // mid + 3 remaining stages
                                // Reverse direction: unreachable.
        assert!(analyzer.path_query(c.output, mid, &opts).is_none());
    }

    #[test]
    fn try_run_refuses_oversized_netlists() {
        let c = chains::inverter_chain(Tech::nmos4um(), 8, 1);
        let opts = AnalysisOptions {
            max_nodes: Some(3),
            ..AnalysisOptions::default()
        };
        match Analyzer::new(&c.netlist).try_run(&opts) {
            Err(TvError::TooLarge { what, count, limit }) => {
                assert_eq!(what, "nodes");
                assert!(count > limit);
                assert_eq!(limit, 3);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let opts = AnalysisOptions {
            max_arcs: Some(1),
            ..AnalysisOptions::default()
        };
        match Analyzer::new(&c.netlist).try_run(&opts) {
            Err(TvError::TooLarge { what, .. }) => assert_eq!(what, "arcs"),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Within limits: same report as run().
        let opts = AnalysisOptions {
            max_nodes: Some(1_000_000),
            max_arcs: Some(1_000_000),
            ..AnalysisOptions::default()
        };
        let r = Analyzer::new(&c.netlist).try_run(&opts).expect("fits");
        assert!(r.is_complete());
        assert!(r.unresolved_nodes().is_empty());
    }

    #[test]
    fn clean_report_has_no_diagnostics_and_passes_strict() {
        let c = chains::inverter_chain(Tech::nmos4um(), 4, 1);
        let report = Analyzer::new(&c.netlist).run(&AnalysisOptions::default());
        assert!(report.is_complete());
        assert!(
            report.diagnostics.is_empty(),
            "clean chain should be diagnostic-free: {:?}",
            report.diagnostics
        );
        assert!(report.strict(&c.netlist).is_ok());
    }

    #[test]
    fn exhausted_budget_yields_partial_report_and_strict_error() {
        use tv_netlist::codes;
        // A cross-coupled pair is a genuine combinational cycle: the
        // residue worklist must relax it, so a one-relaxation budget
        // trips the guard.
        let mut b = tv_netlist::NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.node("x");
        let y = b.node("y");
        b.inverter("i1", a, x);
        b.inverter("i2", x, y);
        b.inverter("i3", y, x);
        let nl = b.finish().unwrap();
        let opts = AnalysisOptions {
            relax_budget: Some(1),
            ..AnalysisOptions::default()
        };
        let report = Analyzer::new(&nl).run(&opts);
        assert!(!report.is_complete());
        let unresolved = report.unresolved_nodes();
        assert!(!unresolved.is_empty(), "cycle nodes left unresolved");
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == codes::ANALYSIS_BUDGET_EXHAUSTED),
            "budget exhaustion is reported: {:?}",
            report.diagnostics
        );
        match report.strict(&nl) {
            Err(TvError::BudgetExhausted {
                unresolved,
                partial,
            }) => {
                assert!(!unresolved.is_empty());
                // The partial report still carries everything computed.
                assert!(partial.arrival(a).is_some());
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn phase_slack_reflects_clock_width() {
        use tv_clocks::TwoPhaseClock;
        let dp = datapath::datapath(Tech::nmos4um(), datapath::DatapathConfig::small());
        let roomy = AnalysisOptions {
            clock: TwoPhaseClock::symmetric(1000.0, 2.0),
            ..AnalysisOptions::default()
        };
        let tight = AnalysisOptions {
            clock: TwoPhaseClock::symmetric(1.0, 0.01),
            ..AnalysisOptions::default()
        };
        let r1 = Analyzer::new(&dp.netlist).run(&roomy);
        let r2 = Analyzer::new(&dp.netlist).run(&tight);
        let s1 = r1.phase(0).unwrap().slack.unwrap();
        let s2 = r2.phase(0).unwrap().slack.unwrap();
        assert!(s1 > s2);
        assert!(s2 < 0.0, "1 ns cycle must violate");
    }
}
