//! Analyzer-driven optimization: automatic buffer insertion on long pass
//! runs.
//!
//! The TV paper's closing argument — and the reason timing verifiers were
//! built — is that once a tool can *find* the slow structures, it can
//! drive fixing them. The canonical nMOS fix is mechanical: a run of more
//! than a few series pass transistors grows quadratically slow, so break
//! it with a restoring buffer (two inverters). This module implements
//! that transformation as a netlist-to-netlist pass:
//!
//! 1. run flow analysis and measure, for every node, the longest run of
//!    oriented pass devices separating it from a restoring driver;
//! 2. wherever a run would exceed `max_run`, splice in an inverter pair
//!    and rewire the downstream pass device onto the buffer's output;
//! 3. return the edited netlist plus a description of each site.
//!
//! The pass is deterministic, idempotent for a given `max_run`, and
//! preserves all existing node/device ids (new structure is appended).

use std::collections::HashMap;

use tv_flow::{DeviceRole, Direction, FlowAnalysis, NodeClass, RuleSet};
use tv_netlist::{DeviceId, Netlist, NodeId};

use crate::error::TvError;

/// The outcome of a buffer-insertion pass.
#[derive(Debug)]
pub struct BufferInsertion {
    /// The edited netlist (unchanged if `inserted == 0`).
    pub netlist: Netlist,
    /// Number of buffers (inverter pairs) inserted.
    pub inserted: usize,
    /// Names of the nodes buffers were inserted after.
    pub sites: Vec<String>,
}

/// Splits every oriented pass run longer than `max_run` devices by
/// inserting a restoring inverter pair. Bidirectional and unresolved pass
/// devices are left untouched (buffering a bus coupler would break it).
///
/// # Errors
///
/// [`TvError::InvalidArgument`] if `max_run == 0` (a zero run limit
/// would buffer everything), [`TvError::Netlist`] if the rewired netlist
/// fails structural validation.
pub fn buffer_long_pass_runs(
    netlist: &Netlist,
    max_run: usize,
) -> Result<BufferInsertion, TvError> {
    if max_run == 0 {
        return Err(TvError::InvalidArgument(
            "a run limit of zero would buffer everything".into(),
        ));
    }
    let flow = FlowAnalysis::run(netlist, &RuleSet::all());

    // Depth = number of consecutive oriented pass devices from the nearest
    // restoring (or external) driver. Computed in BFS order from depth-0
    // origins; orientation makes the pass graph acyclic in practice, and a
    // visit cap guards the pathological cases.
    let mut depth: HashMap<NodeId, usize> = HashMap::new();
    let mut order: Vec<(DeviceId, NodeId, NodeId)> = Vec::new(); // (dev, up, down)
    {
        let mut frontier: Vec<NodeId> = netlist
            .node_ids()
            .filter(|&n| {
                matches!(
                    flow.node_class(n),
                    NodeClass::Restored | NodeClass::Precharged | NodeClass::External
                )
            })
            .collect();
        for &n in &frontier {
            depth.insert(n, 0);
        }
        let mut guard = 0usize;
        while let Some(u) = frontier.pop() {
            guard += 1;
            if guard > 4 * netlist.device_count() + netlist.node_count() {
                break;
            }
            let du = depth[&u];
            for &did in netlist.node_devices(u).channel {
                if flow.device_role(did) != DeviceRole::Pass {
                    continue;
                }
                let Direction::Toward(v) = flow.direction(did) else {
                    continue;
                };
                if v == u {
                    continue; // flows into u, not out of it
                }
                let dv = du + 1;
                let better = depth.get(&v).is_none_or(|&old| dv > old);
                if better {
                    depth.insert(v, dv);
                    order.push((did, u, v));
                    frontier.push(v);
                }
            }
        }
    }

    // Re-walk in recorded order, inserting buffers where the (possibly
    // already-shortened) run would exceed the limit.
    let mut b = netlist.to_builder();
    let mut eff_depth: HashMap<NodeId, usize> = HashMap::new();
    let mut buffered_at: HashMap<NodeId, NodeId> = HashMap::new();
    let mut sites = Vec::new();
    for (did, u, v) in order {
        let du = eff_depth.get(&u).copied().unwrap_or(0);
        if du >= max_run {
            // Break the run at `u`: one shared buffer per node.
            let buf_out = *buffered_at.entry(u).or_insert_with(|| {
                let uname = netlist.node_name(u).to_owned();
                let mid = b.node(format!("{uname}_abuf_n"));
                b.inverter(format!("{uname}_abuf_a"), u, mid);
                let out = b.node(format!("{uname}_abuf_o"));
                b.inverter(format!("{uname}_abuf_b"), mid, out);
                sites.push(uname);
                out
            });
            b.rewire_channel(did, u, buf_out);
            eff_depth.insert(v, 1);
        } else {
            eff_depth.insert(v, du + 1);
        }
    }

    let inserted = sites.len();
    let netlist = b.finish().map_err(|e| TvError::Netlist(e.to_string()))?;
    Ok(BufferInsertion {
        netlist,
        inserted,
        sites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisOptions, Analyzer};
    use tv_gen::chains::pass_chain;
    use tv_netlist::Tech;

    #[test]
    fn short_chains_are_left_alone() {
        let c = pass_chain(Tech::nmos4um(), 3);
        let r = buffer_long_pass_runs(&c.netlist, 4).unwrap();
        assert_eq!(r.inserted, 0);
        assert_eq!(r.netlist.device_count(), c.netlist.device_count());
    }

    #[test]
    fn long_chain_gets_buffers_and_speeds_up() {
        let c = pass_chain(Tech::nmos4um(), 9);
        let before = Analyzer::new(&c.netlist)
            .run(&AnalysisOptions::default())
            .combinational
            .arrivals
            .rise(c.output)
            .expect("reachable");

        let r = buffer_long_pass_runs(&c.netlist, 3).unwrap();
        assert!(r.inserted >= 2, "expected ≥2 buffers, got {}", r.inserted);
        // 4 devices per buffer.
        assert_eq!(
            r.netlist.device_count(),
            c.netlist.device_count() + 4 * r.inserted
        );

        let out = r.netlist.node_by_name("out").expect("output survives");
        let after = Analyzer::new(&r.netlist)
            .run(&AnalysisOptions::default())
            .combinational
            .arrivals
            .rise(out)
            .expect("still reachable");
        assert!(
            after < before,
            "buffering must speed the chain: {after} vs {before}"
        );
    }

    #[test]
    fn pass_is_idempotent() {
        let c = pass_chain(Tech::nmos4um(), 9);
        let once = buffer_long_pass_runs(&c.netlist, 3).unwrap();
        let twice = buffer_long_pass_runs(&once.netlist, 3).unwrap();
        assert_eq!(twice.inserted, 0, "sites: {:?}", twice.sites);
    }

    #[test]
    fn sites_name_real_nodes() {
        let c = pass_chain(Tech::nmos4um(), 7);
        let r = buffer_long_pass_runs(&c.netlist, 3).unwrap();
        for site in &r.sites {
            assert!(
                c.netlist.node_by_name(site).is_some(),
                "unknown site {site}"
            );
        }
    }

    #[test]
    fn zero_limit_is_a_typed_error() {
        let c = pass_chain(Tech::nmos4um(), 2);
        let err = buffer_long_pass_runs(&c.netlist, 0).unwrap_err();
        assert!(matches!(err, crate::TvError::InvalidArgument(_)));
        assert!(err.to_string().contains("run limit of zero"));
    }
}
