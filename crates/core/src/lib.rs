//! **TV** — transistor-level static timing analysis for nMOS VLSI.
//!
//! This crate is the reproduction of the system of Jouppi's *"Timing
//! analysis for nMOS VLSI"* (Proc. 20th DAC, 1983): a timing verifier that
//! consumes an extracted transistor netlist — not a gate-level
//! abstraction — and reports worst-case delays, critical paths, minimum
//! two-phase cycle time, and the electrical rule violations designers of
//! that era fought (pull-up ratio errors, charge sharing, unresolvable
//! pass-transistor directions).
//!
//! The pipeline, mirroring the paper's structure:
//!
//! 1. `tv-flow` resolves signal-flow directions and classifies devices;
//! 2. `tv-clocks` recovers the two-phase discipline (qualified clocks,
//!    latches);
//! 3. [`graph`] turns each driving stage plus its downstream pass network
//!    into **timing arcs** with separate rise/fall Elmore delays
//!    (`tv-rc`);
//! 4. [`propagate`] computes worst-case rise/fall arrival times per clock
//!    phase (case analysis), with genuine cyclic structures detected and
//!    reported rather than looped on;
//! 5. [`paths`] backtracks the top-K critical paths and [`hold`] runs
//!    the min-delay race-through check;
//! 6. [`checks`] runs the electrical rule checks;
//! 7. [`analyzer`] ties it together behind one call and [`report`]
//!    renders the result tables.
//!
//! For long-lived use — an editor, the `tv session` REPL — the stages
//! are also exposed as a demand-driven [`pipeline::PassManager`] over a
//! revisioned [`tv_netlist::Design`]: each pass re-runs only when the
//! design counters it declares as inputs moved, parametric edits splice
//! delays into cached graphs in place, and results stay bit-identical
//! to the one-shot [`Analyzer`].
//!
//! # Example
//!
//! ```
//! use tv_core::{Analyzer, AnalysisOptions};
//! use tv_gen::chains;
//! use tv_netlist::Tech;
//!
//! let circuit = chains::inverter_chain(Tech::nmos4um(), 4, 2);
//! let report = Analyzer::new(&circuit.netlist)
//!     .run(&AnalysisOptions::default());
//! // A 4-stage chain has a finite combinational delay at its output.
//! let delay = report.combinational.arrival(circuit.output);
//! assert!(delay.is_some());
//! assert!(delay.unwrap() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod checks;
pub mod error;
pub mod fingerprint;
pub mod graph;
pub mod hold;
pub mod incremental;
pub mod macromodel;
pub mod optimize;
pub mod options;
pub mod paths;
pub mod pipeline;
pub mod propagate;
pub mod report;

pub use analyzer::{
    external_sources, phase_endpoints, phase_sources, Analyzer, TimingReport, SOURCE_RESISTANCE,
};
pub use checks::{check_electrical, CheckIssue};
pub use error::TvError;
pub use fingerprint::{flow_fingerprint, report_fingerprint, Fnv};
pub use graph::{Arc, ArcKind, LevelSchedule, PhaseCase, TimingGraph};
pub use hold::{race_check, RaceHazard};
pub use incremental::{CaseEngine, CaseStats, ConfigEffect, IncrementalCache};
pub use optimize::{buffer_long_pass_runs, BufferInsertion};
pub use options::{AnalysisOptions, DelayModel};
pub use paths::{PathStep, TimingPath};
pub use pipeline::{PassEvent, PassId, PassManager, PassOutcome, PASS_TABLE};
pub use propagate::{
    propagate, propagate_guarded, propagate_with, Arrivals, Completion, Guards, PhaseResult,
    PAR_MIN_WIDTH,
};
pub use tv_netlist::{codes, Diagnostic, Diagnostics, Severity};
