//! Critical-path extraction by predecessor backtracking.

use tv_netlist::{Netlist, NodeId};

use crate::graph::TimingGraph;
use crate::propagate::{Arrivals, Edge, PhaseResult};

/// One step of a timing path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    /// The node transitioning.
    pub node: NodeId,
    /// Which way it transitions.
    pub edge: Edge,
    /// When, ns from the phase's opening edge.
    pub at: f64,
}

/// A worst-case path from a source to an endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// Steps in causal order (source first).
    pub steps: Vec<PathStep>,
}

impl TimingPath {
    /// The endpoint's arrival, ns.
    ///
    /// # Panics
    ///
    /// Never — paths always have at least one step.
    pub fn arrival(&self) -> f64 {
        self.steps.last().expect("paths are non-empty").at
    }

    /// The endpoint node.
    pub fn endpoint(&self) -> NodeId {
        self.steps.last().expect("paths are non-empty").node
    }

    /// Number of steps (stages traversed plus the source).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path is empty (never true for extracted paths).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Renders the path with node names, one step per line.
    pub fn display(&self, netlist: &Netlist) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for step in &self.steps {
            let dir = match step.edge {
                Edge::Rise => "↑",
                Edge::Fall => "↓",
            };
            let _ = writeln!(
                s,
                "  {:>9.3} ns  {} {}",
                step.at,
                dir,
                netlist.node_name(step.node)
            );
        }
        s
    }
}

/// Backtracks the worst path ending at `(node, edge)`.
///
/// Returns `None` if that transition never happens in this case.
pub fn backtrack(
    graph: &TimingGraph,
    arrivals: &Arrivals,
    node: NodeId,
    edge: Edge,
) -> Option<TimingPath> {
    let mut steps = Vec::new();
    let mut cur = node;
    let mut cur_edge = edge;
    let mut guard = 0usize;
    loop {
        let at = match cur_edge {
            Edge::Rise => arrivals.rise(cur)?,
            Edge::Fall => arrivals.fall(cur)?,
        };
        steps.push(PathStep {
            node: cur,
            edge: cur_edge,
            at,
        });
        let pred = match cur_edge {
            Edge::Rise => arrivals.pred_rise[cur.index()],
            Edge::Fall => arrivals.pred_fall[cur.index()],
        };
        match pred {
            None => break, // reached a source
            Some(p) => {
                let arc = &graph.arcs[p.arc as usize];
                cur = arc.from;
                cur_edge = p.from_edge;
            }
        }
        guard += 1;
        if guard > graph.arcs.len() + 8 {
            // Only possible when propagation was cut off mid-cycle; the
            // partial path is still informative.
            break;
        }
    }
    steps.reverse();
    Some(TimingPath { steps })
}

/// The `k` worst endpoint paths of a phase result, latest first.
pub fn critical_paths(graph: &TimingGraph, result: &PhaseResult, k: usize) -> Vec<TimingPath> {
    result
        .endpoints
        .iter()
        .take(k)
        .filter_map(|&(node, _)| {
            let edge = result.arrivals.worst_edge(node)?;
            backtrack(graph, &result.arrivals, node, edge)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PhaseCase;
    use crate::options::DelayModel;
    use crate::propagate::propagate;
    use tv_clocks::qualify::qualify_with_flow;
    use tv_flow::{analyze, RuleSet};
    use tv_netlist::{NetlistBuilder, Tech};

    fn chain(n: usize) -> (tv_netlist::Netlist, NodeId, NodeId) {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let mut prev = a;
        for i in 0..n {
            let next = b.node(format!("n{i}"));
            b.inverter(format!("i{i}"), prev, next);
            prev = next;
        }
        let nl = b.finish().unwrap();
        let a = nl.node_by_name("a").unwrap();
        let out = nl.node_by_name(&format!("n{}", n - 1)).unwrap();
        (nl, a, out)
    }

    fn analyze_chain(
        nl: &tv_netlist::Netlist,
        src: NodeId,
        end: NodeId,
    ) -> (TimingGraph, PhaseResult) {
        let flow = analyze(nl, &RuleSet::all());
        let q = qualify_with_flow(nl, &flow);
        let g = TimingGraph::build(
            nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        let r = propagate(nl, &g, &[src], &[end], &tv_rc::SlopeModel::calibrated());
        (g, r)
    }

    #[test]
    fn path_visits_every_chain_stage_in_order() {
        let (nl, a, out) = chain(4);
        let (g, r) = analyze_chain(&nl, a, out);
        let paths = critical_paths(&g, &r, 1);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.len(), 5); // source + 4 stages
        assert_eq!(p.steps[0].node, a);
        assert_eq!(p.endpoint(), out);
        // Times strictly increase along the path.
        for w in p.steps.windows(2) {
            assert!(w[1].at > w[0].at);
        }
        // Edges alternate through inverters.
        for w in p.steps.windows(2) {
            assert_eq!(w[1].edge, w[0].edge.flipped());
        }
    }

    #[test]
    fn path_arrival_matches_endpoint_arrival() {
        let (nl, a, out) = chain(3);
        let (g, r) = analyze_chain(&nl, a, out);
        let p = &critical_paths(&g, &r, 1)[0];
        assert!((p.arrival() - r.arrival(out).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn top_k_is_bounded_by_endpoints() {
        let (nl, a, out) = chain(2);
        let (g, r) = analyze_chain(&nl, a, out);
        let paths = critical_paths(&g, &r, 10);
        assert_eq!(paths.len(), 1, "only one endpoint exists");
    }

    #[test]
    fn display_renders_names_and_arrows() {
        let (nl, a, out) = chain(2);
        let (g, r) = analyze_chain(&nl, a, out);
        let p = &critical_paths(&g, &r, 1)[0];
        let text = p.display(&nl);
        assert!(text.contains('a'));
        assert!(text.contains('↑') || text.contains('↓'));
    }

    #[test]
    fn backtrack_of_impossible_edge_is_none() {
        let (nl, a, out) = chain(1);
        let flow = analyze(&nl, &RuleSet::all());
        let q = qualify_with_flow(&nl, &flow);
        let g = TimingGraph::build(
            &nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        // No sources at all: nothing arrives anywhere.
        let r = propagate(&nl, &g, &[], &[out], &tv_rc::SlopeModel::calibrated());
        assert!(backtrack(&g, &r.arrivals, out, Edge::Rise).is_none());
        let _ = a;
    }
}
