//! Typed errors for user-reachable operations.
//!
//! Everything a user can trigger from outside — bad CLI input, an
//! unreadable or malformed `.sim` file, a query against a node that does
//! not exist, a transformation request the netlist cannot satisfy —
//! surfaces as a [`TvError`] so `tv` exits with a diagnostic instead of
//! panicking. Most internal invariants (worker joins, schedule
//! bookkeeping) remain `expect`s: violating them is a bug, not an input
//! problem. The exception is the pass pipeline's slot ordering, which a
//! long-lived `tv session` must survive: a violated pipeline invariant
//! surfaces as [`TvError::Internal`] so the offending command degrades
//! to an error reply instead of killing the whole process.

use std::fmt;

/// An error from a user-reachable TV operation.
#[derive(Debug)]
pub enum TvError {
    /// A file could not be read.
    Io {
        /// The path given by the user.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A `.sim` netlist failed to parse.
    Parse {
        /// The path given by the user.
        path: String,
        /// The parser's diagnostic.
        message: String,
    },
    /// A node name that does not exist in the netlist.
    UnknownNode(String),
    /// A command-line usage problem (unknown flag, missing or malformed
    /// value).
    Usage(String),
    /// A netlist transformation could not produce a valid netlist.
    Netlist(String),
    /// An argument outside the operation's domain.
    InvalidArgument(String),
    /// A resource guard (relaxation budget or deadline) ran out before
    /// every node resolved. The *partial* report is attached — callers
    /// choosing the strict path still get everything that was computed.
    BudgetExhausted {
        /// Names of the nodes whose timing is partial or missing.
        unresolved: Vec<String>,
        /// Everything the run did manage to compute.
        partial: Box<crate::analyzer::TimingReport>,
    },
    /// An internal invariant was violated — a bug in the pipeline, not
    /// an input problem. Reported instead of panicking so a long-lived
    /// session degrades one command rather than the whole process.
    Internal {
        /// Which invariant failed.
        what: &'static str,
    },
    /// The input exceeds a configured size guard
    /// ([`crate::AnalysisOptions::max_nodes`] /
    /// [`crate::AnalysisOptions::max_arcs`]).
    TooLarge {
        /// What was counted ("nodes" or "arcs").
        what: &'static str,
        /// The measured count.
        count: usize,
        /// The configured limit it exceeds.
        limit: usize,
    },
}

impl fmt::Display for TvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TvError::Io { path, source } => write!(f, "cannot read {path}: {source}"),
            TvError::Parse { path, message } => write!(f, "parse {path}: {message}"),
            TvError::UnknownNode(name) => write!(f, "no node named {name:?}"),
            TvError::Usage(msg) => write!(f, "{msg}"),
            TvError::Netlist(msg) => write!(f, "netlist edit failed: {msg}"),
            TvError::InvalidArgument(msg) => write!(f, "{msg}"),
            TvError::BudgetExhausted { unresolved, .. } => write!(
                f,
                "analysis exhausted its resource budget with {} node(s) unresolved",
                unresolved.len()
            ),
            TvError::Internal { what } => write!(
                f,
                "internal invariant violated: {what} (this is a bug, please report it)"
            ),
            TvError::TooLarge { what, count, limit } => write!(
                f,
                "input too large: {count} {what} exceeds the configured limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for TvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TvError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_diagnostic() {
        let e = TvError::UnknownNode("alu_out".into());
        assert_eq!(e.to_string(), "no node named \"alu_out\"");
        let e = TvError::Usage("--jobs needs a value".into());
        assert_eq!(e.to_string(), "--jobs needs a value");
    }

    #[test]
    fn internal_error_names_the_invariant() {
        let e = TvError::Internal {
            what: "flow pass left no result",
        };
        let msg = e.to_string();
        assert!(msg.contains("internal invariant violated"));
        assert!(msg.contains("flow pass left no result"));
    }

    #[test]
    fn io_error_keeps_source() {
        use std::error::Error;
        let e = TvError::Io {
            path: "x.sim".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("x.sim"));
    }
}
