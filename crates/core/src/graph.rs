//! Timing-graph construction: from transistors to delay arcs.
//!
//! TV's central move was to analyze **stages**, not gates: each driven
//! node (a restored or precharged stage output) plus the pass network
//! hanging downstream of it forms one RC problem, and every gate input of
//! the stage gets an arc to every node of that RC tree with separate
//! rise and fall delays:
//!
//! * **fall** — through the worst-case series pull-down path resistance;
//! * **rise** — through the (parallel) pull-up resistance, with pass
//!   devices derated by the technology's `pass_rise_factor` (a pass
//!   transistor starves near V_DD − V_T);
//! * pass-device **controls** get arcs too (a latch opens when its clock
//!   rises), as do precharge clocks.
//!
//! Arc delays are single-pole crossing estimates (`T_Elmore · ln 2` at the
//! 50% convention), which the technology calibrates to the transient
//! simulator on single stages; [`crate::options::DelayModel`] switches in
//! the lumped and certified-upper-bound models for the A1 ablation.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tv_clocks::qualify::Qualification;
use tv_flow::{DeviceRole, Direction, FlowAnalysis};
use tv_netlist::{codes, DeviceId, Diagnostic, Netlist, NodeId, NodeRole};
use tv_rc::elmore::{crossing_estimate, elmore_delays};
use tv_rc::tree::RcTree;

use crate::options::DelayModel;

/// What kind of structure an arc models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArcKind {
    /// Stage input (a transistor gate) to the stage's output tree.
    Gate,
    /// A non-inverting pull-up input (super-buffer internal node).
    BufferPull,
    /// Data transfer through pass devices from an external source node.
    PassData,
    /// A pass device's control opening: the downstream sees the source's
    /// value when the control rises.
    PassControl,
    /// A precharge clock raising a dynamic node.
    Precharge,
}

/// One timing arc. `rise_delay`/`fall_delay` are the delays for the **to**
/// node rising/falling; `f64::INFINITY` disables that transition. The
/// `*_tau` fields carry the underlying RC time constants, from which the
/// propagation derives the output transition times for slope handling.
#[derive(Debug, Clone)]
pub struct Arc {
    /// Upstream node (a gate input, pass control, or data source).
    pub from: NodeId,
    /// Downstream node (a stage output or pass-network node).
    pub to: NodeId,
    /// Delay for `to` rising, ns.
    pub rise_delay: f64,
    /// Delay for `to` falling, ns.
    pub fall_delay: f64,
    /// Elmore time constant of the rising transition, ns.
    pub rise_tau: f64,
    /// Elmore time constant of the falling transition, ns.
    pub fall_tau: f64,
    /// Whether `from` rising causes `to` to fall (gate inversion).
    pub inverting: bool,
    /// Structural kind (controls propagation semantics).
    pub kind: ArcKind,
}

/// The clock case a graph is built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseCase {
    /// `Some(p)`: phase `p` is high, the other low (TV's case analysis).
    /// `None`: every clock treated as active — the naive mode.
    pub active: Option<u8>,
}

impl PhaseCase {
    /// Case analysis for phase `p`.
    pub fn phase(p: u8) -> Self {
        PhaseCase { active: Some(p) }
    }

    /// All clocks active (no case analysis).
    pub fn all_active() -> Self {
        PhaseCase { active: None }
    }
}

/// Topological level schedule of a timing graph, computed once at build
/// time and consumed by the levelized propagation engine.
///
/// Nodes whose every ancestor is acyclic are assigned a **level** (their
/// longest-path depth from the in-degree-0 frontier); `order` lists them
/// level-major, ascending node index within a level, so the schedule is a
/// pure function of the arc set. Nodes on or downstream of a
/// combinational cycle never drain in Kahn's algorithm and land in
/// `residue`; the engine finishes those with the budgeted serial
/// worklist that also provides cycle detection.
#[derive(Debug, Clone)]
pub struct LevelSchedule {
    /// Leveled node indices, level-major; within a level, ascending.
    pub order: Vec<u32>,
    /// Level boundaries: level `l` is `order[level_starts[l] as usize ..
    /// level_starts[l + 1] as usize]`. Always has `levels() + 1` entries.
    pub level_starts: Vec<u32>,
    /// Node indices that could not be leveled (on or downstream of a
    /// cycle), ascending.
    pub residue: Vec<u32>,
}

impl LevelSchedule {
    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.level_starts.len().saturating_sub(1)
    }

    /// The node indices of level `l`.
    pub fn level(&self, l: usize) -> &[u32] {
        &self.order[self.level_starts[l] as usize..self.level_starts[l + 1] as usize]
    }

    fn build(node_count: usize, arcs: &[Arc], out_starts: &[u32], out_arc_ids: &[u32]) -> Self {
        let mut indeg = vec![0u32; node_count];
        for a in arcs {
            indeg[a.to.index()] += 1;
        }
        let mut order: Vec<u32> = Vec::with_capacity(node_count);
        let mut level_starts = vec![0u32];
        let mut frontier: Vec<u32> = (0..node_count as u32)
            .filter(|&i| indeg[i as usize] == 0)
            .collect();
        while !frontier.is_empty() {
            order.extend_from_slice(&frontier);
            level_starts.push(order.len() as u32);
            let mut next = Vec::new();
            for &nidx in &frontier {
                let n = nidx as usize;
                for &ai in &out_arc_ids[out_starts[n] as usize..out_starts[n + 1] as usize] {
                    let t = arcs[ai as usize].to.index();
                    indeg[t] -= 1;
                    if indeg[t] == 0 {
                        next.push(t as u32);
                    }
                }
            }
            next.sort_unstable();
            frontier = next;
        }
        let mut leveled = vec![false; node_count];
        for &i in &order {
            leveled[i as usize] = true;
        }
        let residue = (0..node_count as u32)
            .filter(|&i| !leveled[i as usize])
            .collect();
        LevelSchedule {
            order,
            level_starts,
            residue,
        }
    }
}

/// The timing graph for one netlist under one phase case.
///
/// Both adjacency directions are CSR (compressed sparse row): one
/// offsets array plus one flat arc-id array each, so walking a node's
/// fan-in or fan-out touches two cache lines instead of chasing a
/// per-node `Vec`.
#[derive(Debug, Clone)]
pub struct TimingGraph {
    /// All arcs.
    pub arcs: Vec<Arc>,
    /// CSR offsets into [`TimingGraph::out_arc_ids`]: arcs leaving node
    /// `i` are `out_arc_ids[out_starts[i] as usize..out_starts[i+1] as
    /// usize]`, ascending by arc id.
    pub out_starts: Vec<u32>,
    /// Arc indices grouped by source node (see
    /// [`TimingGraph::out_starts`]).
    pub out_arc_ids: Vec<u32>,
    /// The phase case the graph was built for.
    pub case: PhaseCase,
    /// CSR offsets into [`TimingGraph::in_arc_ids`]: arcs entering node
    /// `i` are `in_arc_ids[in_starts[i] as usize..in_starts[i+1] as
    /// usize]`, ascending by arc id.
    pub in_starts: Vec<u32>,
    /// Arc indices grouped by target node (see
    /// [`TimingGraph::in_starts`]).
    pub in_arc_ids: Vec<u32>,
    /// Level schedule for the parallel propagation engine.
    pub schedule: LevelSchedule,
    /// Diagnostics recorded during construction: stages whose build
    /// panicked are omitted from the arc set and reported here. Empty —
    /// and unallocated — on a clean build.
    pub diagnostics: Vec<Diagnostic>,
}

/// Minimum number of stage roots before graph construction fans out
/// across threads; below this, thread startup dominates.
pub(crate) const PAR_MIN_ROOTS: usize = 64;

impl TimingGraph {
    /// Builds the graph serially. `qualification` comes from
    /// [`tv_clocks::qualify::qualify_with_flow`]; `source_resistance` is
    /// the assumed driver resistance of primary inputs (kΩ).
    pub fn build(
        netlist: &Netlist,
        flow: &FlowAnalysis,
        qualification: &[Qualification],
        case: PhaseCase,
        model: DelayModel,
        source_resistance: f64,
    ) -> Self {
        Self::build_par(
            netlist,
            flow,
            qualification,
            case,
            model,
            source_resistance,
            1,
        )
    }

    /// Builds the graph with up to `jobs` worker threads. Each driving
    /// stage is an independent RC problem, so workers build disjoint root
    /// chunks and the per-chunk arc vectors are concatenated in root
    /// order — the resulting arc list is **identical** to the serial
    /// build at any thread count.
    ///
    /// Since the hierarchical extraction pass this routes through
    /// [`crate::macromodel::build_spanned`]: structurally identical
    /// stages are analyzed once and instanced by pin remap, with the
    /// flat per-root build as the verified fallback. The arc list is
    /// bit-identical either way (DESIGN.md §16).
    #[allow(clippy::too_many_arguments)]
    pub fn build_par(
        netlist: &Netlist,
        flow: &FlowAnalysis,
        qualification: &[Qualification],
        case: PhaseCase,
        model: DelayModel,
        source_resistance: f64,
        jobs: usize,
    ) -> Self {
        crate::macromodel::build_spanned(
            netlist,
            flow,
            qualification,
            case,
            model,
            source_resistance,
            jobs,
        )
        .0
        .graph
    }

    /// [`TimingGraph::build_par`] with a fault-injection hook called on
    /// each root before its stage is built (tests exercise worker
    /// isolation with a panicking hook; production callers pass `None`).
    ///
    /// A panic while building one stage is contained: that chunk is
    /// rebuilt root-by-root, the panicking stage contributes no arcs, and
    /// the omission lands in [`TimingGraph::diagnostics`]. Because a
    /// panic on given inputs is deterministic, the surviving arc list is
    /// still identical at any thread count.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_isolated(
        netlist: &Netlist,
        flow: &FlowAnalysis,
        qualification: &[Qualification],
        case: PhaseCase,
        model: DelayModel,
        source_resistance: f64,
        jobs: usize,
        fault: Option<&(dyn Fn(NodeId) + Sync)>,
    ) -> Self {
        let builder = GraphBuilder {
            netlist,
            flow,
            qualification,
            case,
            model,
        };
        let roots = builder.roots();
        let threads = jobs.max(1).min(roots.len().max(1));
        let mut diagnostics: Vec<Diagnostic> = Vec::new();

        // Fast path for one chunk of roots: any panic voids the whole
        // chunk (Err), which the caller then recovers root-by-root.
        let build_chunk = |root_chunk: &[(NodeId, RootKind)]| -> Result<Vec<Arc>, ()> {
            catch_unwind(AssertUnwindSafe(|| {
                let mut arcs = Vec::new();
                let mut scratch = BuildScratch::new(netlist.node_count());
                for r in root_chunk {
                    if let Some(hook) = fault {
                        hook(r.0);
                    }
                    graph_build_fault_point();
                    builder.build_root(r, source_resistance, &mut arcs, &mut scratch);
                }
                arcs
            }))
            .map_err(|_| ())
        };
        // Degraded path: per-root isolation. Each root builds into its
        // own vector so a mid-stage panic discards only that stage. The
        // scratch is fresh per root too — a panic can leave stale flags
        // behind, and this path is rare enough not to optimize.
        let recover_chunk = |root_chunk: &[(NodeId, RootKind)],
                             diagnostics: &mut Vec<Diagnostic>|
         -> Vec<Arc> {
            let mut arcs = Vec::new();
            for r in root_chunk {
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    let mut part = Vec::new();
                    let mut scratch = BuildScratch::new(netlist.node_count());
                    if let Some(hook) = fault {
                        hook(r.0);
                    }
                    builder.build_root(r, source_resistance, &mut part, &mut scratch);
                    part
                }));
                match attempt {
                        Ok(part) => arcs.extend(part),
                        Err(_) => diagnostics.push(Diagnostic::error(
                            codes::ANALYSIS_WORKER_PANIC,
                            format!(
                                "graph construction panicked for the stage rooted at node {:?}; stage omitted from analysis",
                                netlist.node_name(r.0)
                            ),
                        )),
                    }
            }
            arcs
        };

        let arcs: Vec<Arc> = if threads <= 1 || roots.len() < PAR_MIN_ROOTS {
            match build_chunk(&roots) {
                Ok(arcs) => arcs,
                Err(()) => {
                    diagnostics.push(degraded_build_note());
                    recover_chunk(&roots, &mut diagnostics)
                }
            }
        } else {
            let chunk = roots.len().div_ceil(threads);
            let parts: Vec<Result<Vec<Arc>, ()>> = std::thread::scope(|s| {
                let handles: Vec<_> = roots
                    .chunks(chunk)
                    .map(|root_chunk| {
                        let f = &build_chunk;
                        s.spawn(move || f(root_chunk))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panic is caught inside the closure"))
                    .collect()
            });
            if parts.iter().any(Result::is_err) {
                diagnostics.push(degraded_build_note());
            }
            let mut arcs = Vec::new();
            for (root_chunk, part) in roots.chunks(chunk).zip(parts) {
                match part {
                    Ok(p) => arcs.extend(p),
                    Err(()) => arcs.extend(recover_chunk(root_chunk, &mut diagnostics)),
                }
            }
            arcs
        };

        finish_graph(netlist.node_count(), arcs, case, diagnostics)
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Number of nodes the graph was built over.
    pub fn node_count(&self) -> usize {
        self.out_starts.len() - 1
    }

    /// Arc indices entering node index `i`, ascending by arc id.
    pub fn in_arcs_of_index(&self, i: usize) -> &[u32] {
        &self.in_arc_ids[self.in_starts[i] as usize..self.in_starts[i + 1] as usize]
    }

    /// Arc indices entering `node`, ascending by arc id.
    pub fn in_arcs_of(&self, node: NodeId) -> &[u32] {
        self.in_arcs_of_index(node.index())
    }

    /// Arc indices leaving node index `i`, ascending by arc id.
    pub fn out_arcs_of_index(&self, i: usize) -> &[u32] {
        &self.out_arc_ids[self.out_starts[i] as usize..self.out_starts[i + 1] as usize]
    }

    /// Arc indices leaving `node`, ascending by arc id.
    pub fn out_arcs_of(&self, node: NodeId) -> &[u32] {
        self.out_arcs_of_index(node.index())
    }

    /// Extends `marked` to the forward closure of `seeds` over out-arcs:
    /// the fanout cone a change to the seed nodes can influence. Nodes
    /// already marked act as seeds too (their fanout is included); the
    /// incremental cache uses exactly this to turn a dirty node list
    /// into the affected set the cone engine re-relaxes.
    pub fn fanout_closure(&self, marked: &mut [bool], mut seeds: Vec<usize>) {
        while let Some(i) = seeds.pop() {
            for &ai in self.out_arcs_of_index(i) {
                let to = self.arcs[ai as usize].to.index();
                if !marked[to] {
                    marked[to] = true;
                    seeds.push(to);
                }
            }
        }
    }

    /// Reverse reachability: every node from which some node in
    /// `targets` can be reached over arcs (the targets themselves
    /// included). The dual of [`TimingGraph::fanout_closure`], walking
    /// in-arcs instead of out-arcs — the fan-in cone that determines a
    /// target's arrival.
    pub fn fanin_cone(&self, targets: &[usize]) -> Vec<bool> {
        let mut marked = vec![false; self.node_count()];
        let mut stack: Vec<usize> = Vec::new();
        for &t in targets {
            if !marked[t] {
                marked[t] = true;
                stack.push(t);
            }
        }
        while let Some(i) = stack.pop() {
            for &ai in self.in_arcs_of_index(i) {
                let from = self.arcs[ai as usize].from.index();
                if !marked[from] {
                    marked[from] = true;
                    stack.push(from);
                }
            }
        }
        marked
    }
}

/// Finishes a graph from its flat arc list: both CSR adjacency
/// directions in two counting passes each (degree counts, prefix sums
/// into offsets, then a cursor pass — iterating arcs in id order keeps
/// each node's list ascending by arc id, the same order the old
/// nested-Vec push loop produced), then the level schedule. Every build
/// path — serial, parallel, isolated, spanned — funnels through here so
/// the CSR layout is defined in exactly one place.
pub(crate) fn finish_graph(
    node_count: usize,
    arcs: Vec<Arc>,
    case: PhaseCase,
    diagnostics: Vec<Diagnostic>,
) -> TimingGraph {
    tv_obs::incr(tv_obs::Counter::GraphBuilds);
    tv_obs::add(tv_obs::Counter::GraphArcs, arcs.len() as u64);
    let n = node_count;
    let mut out_starts = vec![0u32; n + 1];
    let mut in_starts = vec![0u32; n + 1];
    for a in &arcs {
        out_starts[a.from.index() + 1] += 1;
        in_starts[a.to.index() + 1] += 1;
    }
    for i in 0..n {
        out_starts[i + 1] += out_starts[i];
        in_starts[i + 1] += in_starts[i];
    }
    let mut out_cursor = out_starts.clone();
    let mut in_cursor = in_starts.clone();
    let mut out_arc_ids = vec![0u32; arcs.len()];
    let mut in_arc_ids = vec![0u32; arcs.len()];
    for (i, a) in arcs.iter().enumerate() {
        let c = &mut out_cursor[a.from.index()];
        out_arc_ids[*c as usize] = i as u32;
        *c += 1;
        let c = &mut in_cursor[a.to.index()];
        in_arc_ids[*c as usize] = i as u32;
        *c += 1;
    }
    let schedule = LevelSchedule::build(n, &arcs, &out_starts, &out_arc_ids);
    TimingGraph {
        arcs,
        out_starts,
        out_arc_ids,
        case,
        in_starts,
        in_arc_ids,
        schedule,
        diagnostics,
    }
}

/// A graph built with its root list and per-root arc spans recorded —
/// the substrate for the pass pipeline's stage-granular splicing.
pub(crate) struct SpannedBuild {
    /// The finished graph, arc-identical to [`TimingGraph::build_par`].
    pub(crate) graph: TimingGraph,
    /// Build roots in deterministic (node id) order.
    pub(crate) roots: Vec<(NodeId, RootKind)>,
    /// Prefix offsets, `roots.len() + 1` entries: root `k` owns arcs
    /// `spans[k] as usize .. spans[k + 1] as usize`. `None` when a build
    /// worker panicked — the degraded per-stage recovery path omits
    /// stages, so spans would lie; callers then fall back to full
    /// rebuilds, which is exactly the conservative behavior wanted for a
    /// netlist that crashes the builder.
    pub(crate) spans: Option<Vec<u32>>,
}

/// Splices freshly rebuilt arcs for `affected` root ordinals into an
/// existing graph in place, leaving delays/taus updated and everything
/// else untouched. Valid only after **parametric** edits (geometry or
/// capacitance): those cannot change which arcs a stage produces, only
/// their delay values, so each root's new arcs must match its recorded
/// span in count, endpoints, kind, and inversion — all of which this
/// function verifies arc by arc before overwriting anything within the
/// span. On any mismatch (or a panic inside a stage build) it returns
/// `Err` and the caller must discard the graph and rebuild from scratch:
/// earlier affected roots may already have been overwritten, so an `Err`
/// graph is *not* restored to its prior state.
pub(crate) fn splice_roots(
    graph: &mut TimingGraph,
    builder: &GraphBuilder<'_>,
    source_resistance: f64,
    roots: &[(NodeId, RootKind)],
    spans: &[u32],
    affected: &[u32],
    scratch: &mut BuildScratch,
) -> Result<(), ()> {
    let mut fresh: Vec<Arc> = Vec::new();
    for &k in affected {
        let k = k as usize;
        let span = spans[k] as usize..spans[k + 1] as usize;
        fresh.clear();
        catch_unwind(AssertUnwindSafe(|| {
            graph_build_fault_point();
            builder.build_root(&roots[k], source_resistance, &mut fresh, scratch)
        }))
        .map_err(|_| ())?;
        if fresh.len() != span.len() {
            return Err(());
        }
        let old = &mut graph.arcs[span];
        for (o, f) in old.iter_mut().zip(fresh.drain(..)) {
            if o.from != f.from || o.to != f.to || o.kind != f.kind || o.inverting != f.inverting {
                return Err(());
            }
            *o = f;
        }
    }
    Ok(())
}

impl<'a> GraphBuilder<'a> {
    /// The **extent** of each root: every node whose capacitance — or
    /// whose adjacent device geometry — the root's arc delays read. That
    /// is the stage's downstream walk (RC tree caps and pass-device
    /// resistances live on walk nodes and their connecting devices) plus,
    /// for stages, the pull-down network interior (series path
    /// resistances) — the same frontier [`stage_inputs_into`] traverses.
    /// Soundness relies on edits dirtying *all* terminals of a resized
    /// device: a device read by a root always has a channel terminal in
    /// this set.
    ///
    /// Returned as an inverted CSR index `(starts, root_ordinals)` over
    /// node indices: the roots reading node `i` are
    /// `root_ordinals[starts[i] as usize..starts[i + 1] as usize]`.
    pub(crate) fn extents(
        &self,
        roots: &[(NodeId, RootKind)],
        scratch: &mut BuildScratch,
    ) -> (Vec<u32>, Vec<u32>) {
        let nl = self.netlist;
        let mut pairs: Vec<(u32, u32)> = Vec::new(); // (node index, root ordinal)
        let mut ext: Vec<NodeId> = Vec::new();
        let mut pd_frontier: Vec<NodeId> = Vec::new();
        for (ordinal, root) in roots.iter().enumerate() {
            ext.clear();
            self.walk_downstream(root.0, scratch);
            ext.extend(scratch.walk.iter().map(|w| w.node));
            if root.1 == RootKind::Stage {
                // Pull-down interior, same traversal as stage_inputs_into.
                let epoch = scratch.next_epoch();
                pd_frontier.clear();
                pd_frontier.push(root.0);
                scratch.mark[root.0.index()] = epoch;
                while let Some(node) = pd_frontier.pop() {
                    for &did in nl.node_devices(node).channel {
                        if self.flow.device_role(did) != DeviceRole::PullDown {
                            continue;
                        }
                        let other = nl.device(did).other_channel_end(node);
                        if other != nl.gnd()
                            && other != nl.vdd()
                            && scratch.mark[other.index()] != epoch
                        {
                            scratch.mark[other.index()] = epoch;
                            ext.push(other);
                            pd_frontier.push(other);
                        }
                    }
                }
            }
            ext.sort_unstable();
            ext.dedup();
            pairs.extend(ext.iter().map(|n| (n.index() as u32, ordinal as u32)));
        }
        let n = nl.node_count();
        let mut starts = vec![0u32; n + 1];
        for &(node, _) in &pairs {
            starts[node as usize + 1] += 1;
        }
        for i in 0..n {
            starts[i + 1] += starts[i];
        }
        let mut cursor = starts.clone();
        let mut ordinals = vec![0u32; pairs.len()];
        for &(node, ordinal) in &pairs {
            let c = &mut cursor[node as usize];
            ordinals[*c as usize] = ordinal;
            *c += 1;
        }
        (starts, ordinals)
    }
}

/// Fault plane: a forced build-worker panic, caught by the same
/// per-chunk/per-stage isolation that contains a genuine one (every
/// per-root build loop sits under `catch_unwind`).
pub(crate) fn graph_build_fault_point() {
    if tv_fault::fault_point!(tv_fault::Site::GraphBuild) {
        tv_obs::incr(tv_obs::Counter::FaultInjected);
        panic!("{}", tv_fault::panic_message(tv_fault::Site::GraphBuild));
    }
}

/// The shared "a build worker panicked" note (also the telemetry point
/// recording that a build degraded to per-stage isolation).
fn degraded_build_note() -> Diagnostic {
    tv_obs::incr(tv_obs::Counter::FaultDegraded);
    Diagnostic::warning(
        codes::ANALYSIS_WORKER_PANIC,
        "a graph-build worker panicked; affected roots rebuilt with per-stage isolation"
            .to_string(),
    )
}

/// What a graph-build root is: a driving stage output or a primary input
/// feeding pass devices directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RootKind {
    /// A restored/precharged stage output with its downstream RC tree.
    Stage,
    /// A primary input feeding pass devices with no on-chip driver.
    Source,
}

/// Per-root arc builder. `pub(crate)` so the pass pipeline can reuse the
/// exact per-stage construction for root-granular splicing; external
/// callers go through [`TimingGraph::build_par`].
pub(crate) struct GraphBuilder<'a> {
    pub(crate) netlist: &'a Netlist,
    pub(crate) flow: &'a FlowAnalysis,
    pub(crate) qualification: &'a [Qualification],
    pub(crate) case: PhaseCase,
    pub(crate) model: DelayModel,
}

/// One node of the case-aware downstream walk.
#[derive(Clone, Copy)]
pub(crate) struct WalkNode {
    pub(crate) node: NodeId,
    pub(crate) parent: Option<usize>,
    /// Pass device from the parent (None for the root).
    pub(crate) via: Option<DeviceId>,
}

/// Reusable per-worker buffers for stage construction. One instance
/// serves every root a worker builds, so the steady-state build does no
/// per-root allocation: visited sets are epoch-stamped stamps rather
/// than hash sets, and the old per-root `vec![false; node_count]` in
/// the pull-down scan (quadratic over the whole netlist) becomes one
/// shared array whose flags the DFS resets on unwind.
pub(crate) struct BuildScratch {
    /// Epoch-stamped visited marks, one per node; `mark[i] == epoch`
    /// means node `i` was seen in the current traversal.
    mark: Vec<u32>,
    epoch: u32,
    /// DFS path membership for the pull-down resistance scan. Always
    /// all-false between calls (the DFS clears flags as it backtracks).
    pub(crate) on_path: Vec<bool>,
    /// Walk nodes of the stage currently being built.
    pub(crate) walk: Vec<WalkNode>,
    /// Gate controls of one walk node, reconstructed root → leaf.
    controls: Vec<NodeId>,
    /// Gate inputs of the stage currently being built.
    pub(crate) inputs: Vec<StageInput>,
    /// Work stack for the pull-down input scan.
    frontier: Vec<NodeId>,
}

impl BuildScratch {
    pub(crate) fn new(node_count: usize) -> Self {
        BuildScratch {
            mark: vec![0; node_count],
            epoch: 0,
            on_path: vec![false; node_count],
            walk: Vec::new(),
            controls: Vec::new(),
            inputs: Vec::new(),
            frontier: Vec::new(),
        }
    }

    /// Starts a fresh visited set in O(1). On the (practically
    /// unreachable) epoch wrap the marks are hard-cleared instead.
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

/// Rebuilds the gate controls of every pass device on the path
/// root → `walk[i]` into `out`, in root-to-leaf order — exactly the
/// order the old per-node `controls` vector accumulated them in.
fn path_controls(netlist: &Netlist, walk: &[WalkNode], mut i: usize, out: &mut Vec<NodeId>) {
    out.clear();
    while let Some(via) = walk[i].via {
        out.push(netlist.device(via).gate());
        i = walk[i].parent.expect("non-root has parent");
    }
    out.reverse();
}

impl<'a> GraphBuilder<'a> {
    /// The build roots in deterministic (node id) order.
    pub(crate) fn roots(&self) -> Vec<(NodeId, RootKind)> {
        let nl = self.netlist;
        let mut roots = Vec::new();
        for id in nl.node_ids() {
            if self.is_driver_node(id) {
                roots.push((id, RootKind::Stage));
            } else if matches!(nl.node(id).role(), NodeRole::Input)
                && has_pass_fanout(nl, self.flow, id)
            {
                roots.push((id, RootKind::Source));
            }
        }
        roots
    }

    pub(crate) fn build_root(
        &self,
        root: &(NodeId, RootKind),
        source_resistance: f64,
        arcs: &mut Vec<Arc>,
        scratch: &mut BuildScratch,
    ) {
        match root.1 {
            RootKind::Stage => self.build_stage(root.0, arcs, scratch),
            RootKind::Source => self.build_source_tree(root.0, source_resistance, arcs, scratch),
        }
    }

    /// A driver node has at least one pull-up-ish or precharge device on
    /// its channel.
    fn is_driver_node(&self, id: NodeId) -> bool {
        self.netlist.node_devices(id).channel.iter().any(|&d| {
            matches!(
                self.flow.device_role(d),
                DeviceRole::PullUp
                    | DeviceRole::ActivePullUp
                    | DeviceRole::EnhPullUp
                    | DeviceRole::Precharge
            ) && self.netlist.device(d).other_channel_end(id) == self.netlist.vdd()
        })
    }

    /// Whether a pass device conducts in the current case.
    fn pass_is_on(&self, dev: DeviceId) -> bool {
        let Some(active) = self.case.active else {
            return true;
        };
        let gate = self.netlist.device(dev).gate();
        match self.qualification[gate.index()] {
            Qualification::Phase(p) => p == active,
            // Unclocked or conflicting controls could be on: conservative.
            _ => true,
        }
    }

    /// Case-aware walk of the pass network downstream of `root`.
    ///
    /// The walk never enters externally driven nodes (inputs, clocks —
    /// they are sources, not loads) and never expands *through* a node
    /// that is itself **restored**: such a node re-drives its own
    /// downstream and owns its own stage walk, which keeps trees small
    /// and prevents bidirectional bus couplers from dragging neighboring
    /// stages into one RC problem. *Precharged* nodes are passive during
    /// evaluation, so the walk does continue through them — this is what
    /// lets a Manchester carry chain appear as the long series RC path it
    /// electrically is.
    pub(crate) fn walk_downstream(&self, root: NodeId, scratch: &mut BuildScratch) {
        let nl = self.netlist;
        let epoch = scratch.next_epoch();
        scratch.walk.clear();
        scratch.walk.push(WalkNode {
            node: root,
            parent: None,
            via: None,
        });
        scratch.mark[root.index()] = epoch;
        let mut i = 0;
        while i < scratch.walk.len() {
            let here = scratch.walk[i].node;
            // Only the root expands past a driven node; reached driven
            // nodes terminate their branch.
            if i > 0 && self.flow.node_class(here) == tv_flow::NodeClass::Restored {
                i += 1;
                continue;
            }
            for &did in nl.node_devices(here).channel {
                if self.flow.device_role(did) != DeviceRole::Pass || !self.pass_is_on(did) {
                    continue;
                }
                let dev = nl.device(did);
                let other = dev.other_channel_end(here);
                if nl.node(other).role().is_external_source() {
                    continue; // never walk into a source
                }
                let downstream = match self.flow.direction(did) {
                    Direction::Toward(dst) => dst == other,
                    Direction::Bidirectional | Direction::Unresolved => true,
                };
                if !downstream || scratch.mark[other.index()] == epoch {
                    continue;
                }
                scratch.mark[other.index()] = epoch;
                scratch.walk.push(WalkNode {
                    node: other,
                    parent: Some(i),
                    via: Some(did),
                });
            }
            i += 1;
        }
    }

    /// Per-walk-node delay estimates and Elmore time constants for rising
    /// and falling transitions, according to the configured model. Returns
    /// `(rise_delay, fall_delay, rise_tau, fall_tau)` vectors.
    #[allow(clippy::type_complexity)]
    fn tree_delays(
        &self,
        walk: &[WalkNode],
        r_rise: f64,
        r_fall: f64,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let nl = self.netlist;
        let tech = nl.tech();
        let x = 1.0 - tech.switch_fraction; // fraction remaining at crossing
        let build = |driver_r: f64, rise: bool| -> (Vec<f64>, Vec<f64>) {
            let mut tree = RcTree::new(driver_r);
            tree.add_cap(tree.root(), nl.node_cap(walk[0].node));
            let mut rc_ids = vec![tree.root()];
            for w in walk.iter().skip(1) {
                let parent_rc = rc_ids[w.parent.expect("non-root has parent")];
                let dev = nl.device(w.via.expect("non-root has device"));
                let mut r = dev.resistance(tech);
                if rise {
                    r *= tech.pass_rise_factor;
                }
                let id = tree.add_child(parent_rc, r, nl.node_cap(w.node));
                rc_ids.push(id);
            }
            let elmore = elmore_delays(&tree);
            let delays = match self.model {
                DelayModel::Elmore => elmore.iter().map(|&e| crossing_estimate(e, x)).collect(),
                DelayModel::Lumped => {
                    let v = crossing_estimate(driver_r * tree.total_cap(), x);
                    vec![v; tree.len()]
                }
                DelayModel::UpperBound => elmore.iter().map(|&e| e / x).collect(),
            };
            (delays, elmore)
        };
        let (rise_d, rise_tau) = if r_rise.is_finite() {
            build(r_rise, true)
        } else {
            (vec![f64::INFINITY; walk.len()], vec![0.0; walk.len()])
        };
        let (fall_d, fall_tau) = if r_fall.is_finite() {
            build(r_fall, false)
        } else {
            (vec![f64::INFINITY; walk.len()], vec![0.0; walk.len()])
        };
        (rise_d, fall_d, rise_tau, fall_tau)
    }

    /// Builds arcs for one driving stage rooted at `out`.
    fn build_stage(&self, out: NodeId, arcs: &mut Vec<Arc>, scratch: &mut BuildScratch) {
        let nl = self.netlist;
        let r_pu = pull_up_resistance(nl, self.flow, out);
        let r_pd = pull_down_resistance_with(nl, self.flow, out, &mut scratch.on_path);
        self.walk_downstream(out, scratch);
        stage_inputs_into(nl, self.flow, out, scratch);
        let BuildScratch {
            walk,
            controls,
            inputs,
            ..
        } = scratch;
        let (rise_d, fall_d, rise_tau, fall_tau) = self.tree_delays(
            walk,
            r_pu.unwrap_or(f64::INFINITY),
            r_pd.unwrap_or(f64::INFINITY),
        );

        for (i, w) in walk.iter().enumerate() {
            // Domino discipline: a precharged node starts its evaluation
            // phase high and can only FALL until the next precharge; a
            // "rise" through logic is not a transition it can make. Only
            // the precharge arc itself may raise it.
            let rise_dly = if self.flow.node_class(w.node) == tv_flow::NodeClass::Precharged {
                f64::INFINITY
            } else {
                rise_d[i]
            };
            for inp in inputs.iter() {
                match inp.kind {
                    StageInputKind::PullDownGate => arcs.push(Arc {
                        from: inp.node,
                        to: w.node,
                        rise_delay: rise_dly,
                        fall_delay: fall_d[i],
                        rise_tau: rise_tau[i],
                        fall_tau: fall_tau[i],
                        inverting: true,
                        kind: ArcKind::Gate,
                    }),
                    StageInputKind::PullUpGate => arcs.push(Arc {
                        from: inp.node,
                        to: w.node,
                        rise_delay: rise_dly,
                        fall_delay: f64::INFINITY,
                        rise_tau: rise_tau[i],
                        fall_tau: fall_tau[i],
                        inverting: false,
                        kind: ArcKind::BufferPull,
                    }),
                }
            }
            // Pass controls along the path: when the latest-arriving
            // control rises, the whole path conducts.
            path_controls(nl, walk, i, controls);
            for &ctrl in controls.iter() {
                arcs.push(Arc {
                    from: ctrl,
                    to: w.node,
                    rise_delay: rise_dly,
                    fall_delay: fall_d[i],
                    rise_tau: rise_tau[i],
                    fall_tau: fall_tau[i],
                    inverting: false,
                    kind: ArcKind::PassControl,
                });
            }
        }

        // Precharge arcs: the precharge clock raises the root (and its
        // subtree) when its phase is active.
        for &did in nl.node_devices(out).channel {
            if self.flow.device_role(did) != DeviceRole::Precharge {
                continue;
            }
            let gate = nl.device(did).gate();
            let on = match (self.case.active, self.qualification[gate.index()]) {
                (None, _) => true,
                (Some(p), Qualification::Phase(q)) => p == q,
                (Some(_), _) => true,
            };
            if !on {
                continue;
            }
            let r_pre = nl.device(did).resistance(nl.tech());
            let (pre_rise, _, pre_tau, _) = self.tree_delays(walk, r_pre, f64::INFINITY);
            for (i, w) in walk.iter().enumerate() {
                arcs.push(Arc {
                    from: gate,
                    to: w.node,
                    rise_delay: pre_rise[i],
                    fall_delay: f64::INFINITY,
                    rise_tau: pre_tau[i],
                    fall_tau: pre_tau[i],
                    inverting: false,
                    kind: ArcKind::Precharge,
                });
            }
        }
    }

    /// Builds pass-data arcs from a primary input that feeds pass devices
    /// directly (no on-chip driver stage).
    fn build_source_tree(
        &self,
        source: NodeId,
        source_resistance: f64,
        arcs: &mut Vec<Arc>,
        scratch: &mut BuildScratch,
    ) {
        self.walk_downstream(source, scratch);
        let BuildScratch { walk, controls, .. } = scratch;
        if walk.len() <= 1 {
            return;
        }
        let (rise_d, fall_d, rise_tau, fall_tau) =
            self.tree_delays(walk, source_resistance, source_resistance);
        let nl = self.netlist;
        for (i, w) in walk.iter().enumerate().skip(1) {
            let rise_dly = if self.flow.node_class(w.node) == tv_flow::NodeClass::Precharged {
                f64::INFINITY
            } else {
                rise_d[i]
            };
            arcs.push(Arc {
                from: source,
                to: w.node,
                rise_delay: rise_dly,
                fall_delay: fall_d[i],
                rise_tau: rise_tau[i],
                fall_tau: fall_tau[i],
                inverting: false,
                kind: ArcKind::PassData,
            });
            path_controls(nl, walk, i, controls);
            for &ctrl in controls.iter() {
                arcs.push(Arc {
                    from: ctrl,
                    to: w.node,
                    rise_delay: rise_dly,
                    fall_delay: fall_d[i],
                    rise_tau: rise_tau[i],
                    fall_tau: fall_tau[i],
                    inverting: false,
                    kind: ArcKind::PassControl,
                });
            }
        }
    }
}

fn has_pass_fanout(netlist: &Netlist, flow: &FlowAnalysis, node: NodeId) -> bool {
    netlist
        .node_devices(node)
        .channel
        .iter()
        .any(|&d| flow.device_role(d) == DeviceRole::Pass)
}

/// Effective pull-up resistance at a node: the parallel combination of
/// every static pull-up device (loads, super-buffer pull-ups, enhancement
/// followers) on its channel. `None` if the node has no static pull-up.
pub fn pull_up_resistance(netlist: &Netlist, flow: &FlowAnalysis, node: NodeId) -> Option<f64> {
    let mut conductance = 0.0;
    for &did in netlist.node_devices(node).channel {
        if matches!(
            flow.device_role(did),
            DeviceRole::PullUp | DeviceRole::ActivePullUp | DeviceRole::EnhPullUp
        ) {
            conductance += 1.0 / netlist.device(did).resistance(netlist.tech());
        }
    }
    (conductance > 0.0).then(|| 1.0 / conductance)
}

/// Worst-case (maximum) series resistance of any pull-down path from
/// `node` to GND. `None` if no pull-down path exists.
pub fn pull_down_resistance(netlist: &Netlist, flow: &FlowAnalysis, node: NodeId) -> Option<f64> {
    let mut on_path = vec![false; netlist.node_count()];
    pull_down_resistance_with(netlist, flow, node, &mut on_path)
}

/// [`pull_down_resistance`] over a caller-owned path-flag array (must be
/// all-false on entry; the DFS leaves it all-false again), so the build
/// loop reuses one allocation across every root.
pub(crate) fn pull_down_resistance_with(
    netlist: &Netlist,
    flow: &FlowAnalysis,
    node: NodeId,
    on_path: &mut [bool],
) -> Option<f64> {
    let mut best: Option<f64> = None;
    dfs_pd(netlist, flow, node, 0.0, on_path, &mut best);
    best
}

fn dfs_pd(
    netlist: &Netlist,
    flow: &FlowAnalysis,
    node: NodeId,
    acc: f64,
    on_path: &mut [bool],
    best: &mut Option<f64>,
) {
    on_path[node.index()] = true;
    for &did in netlist.node_devices(node).channel {
        if flow.device_role(did) != DeviceRole::PullDown {
            continue;
        }
        let dev = netlist.device(did);
        let other = dev.other_channel_end(node);
        let r = acc + dev.resistance(netlist.tech());
        if other == netlist.gnd() {
            *best = Some(best.map_or(r, |b: f64| b.max(r)));
        } else if other != netlist.vdd() && !on_path[other.index()] {
            dfs_pd(netlist, flow, other, r, on_path, best);
        }
    }
    on_path[node.index()] = false;
}

/// How a stage input connects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StageInputKind {
    /// Gates a pull-down device: input rise → output fall.
    PullDownGate,
    /// Gates an active pull-up: input rise → output rise.
    PullUpGate,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct StageInput {
    pub(crate) node: NodeId,
    pub(crate) kind: StageInputKind,
}

/// The gate inputs of the stage driving `out`: gates of the pull-down
/// network reachable below it, plus gates of actively pulled-up devices.
/// Fills `scratch.inputs`; the visited set rides the scratch epoch marks.
pub(crate) fn stage_inputs_into(
    netlist: &Netlist,
    flow: &FlowAnalysis,
    out: NodeId,
    scratch: &mut BuildScratch,
) {
    let epoch = scratch.next_epoch();
    let BuildScratch {
        mark,
        inputs,
        frontier,
        ..
    } = scratch;
    inputs.clear();
    let push = |node: NodeId, kind: StageInputKind, inputs: &mut Vec<StageInput>| {
        if !netlist.node(node).role().is_rail()
            && !inputs.iter().any(|i| i.node == node && i.kind == kind)
        {
            inputs.push(StageInput { node, kind });
        }
    };

    // Active pull-ups on the output.
    for &did in netlist.node_devices(out).channel {
        match flow.device_role(did) {
            DeviceRole::ActivePullUp | DeviceRole::EnhPullUp => {
                let g = netlist.device(did).gate();
                if g != out {
                    push(g, StageInputKind::PullUpGate, inputs);
                }
            }
            _ => {}
        }
    }

    // Pull-down network below the output.
    frontier.clear();
    frontier.push(out);
    mark[out.index()] = epoch;
    while let Some(node) = frontier.pop() {
        for &did in netlist.node_devices(node).channel {
            if flow.device_role(did) != DeviceRole::PullDown {
                continue;
            }
            let dev = netlist.device(did);
            push(dev.gate(), StageInputKind::PullDownGate, inputs);
            let other = dev.other_channel_end(node);
            if other != netlist.gnd() && other != netlist.vdd() && mark[other.index()] != epoch {
                mark[other.index()] = epoch;
                frontier.push(other);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DelayModel;
    use tv_clocks::qualify::qualify_with_flow;
    use tv_flow::{analyze, RuleSet};
    use tv_netlist::{NetlistBuilder, Tech};

    fn graph_for(nl: &Netlist, case: PhaseCase) -> (TimingGraph, FlowAnalysis) {
        let flow = analyze(nl, &RuleSet::all());
        let q = qualify_with_flow(nl, &flow);
        let g = TimingGraph::build(nl, &flow, &q, case, DelayModel::Elmore, 1.0);
        (g, flow)
    }

    #[test]
    fn inverter_yields_one_arc_with_asymmetric_delays() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        let (g, _) = graph_for(&nl, PhaseCase::all_active());
        assert_eq!(g.arc_count(), 1);
        let arc = &g.arcs[0];
        assert_eq!(arc.from, a);
        assert_eq!(arc.to, out);
        assert!(arc.inverting);
        assert!(
            arc.rise_delay > 3.0 * arc.fall_delay,
            "ratioed rise {} vs fall {}",
            arc.rise_delay,
            arc.fall_delay
        );
    }

    #[test]
    fn nand_has_arc_per_input() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let out = b.node("out");
        b.nand("g", &[i0, i1, i2], out);
        let nl = b.finish().unwrap();
        let (g, _) = graph_for(&nl, PhaseCase::all_active());
        // Arcs to the output from each input; the walk root is just `out`
        // (interior chain nodes are not driver roots).
        let to_out: Vec<_> = g.arcs.iter().filter(|a| a.to == out).collect();
        assert_eq!(to_out.len(), 3);
        for a in to_out {
            assert!(a.inverting);
            assert!(a.fall_delay.is_finite());
        }
    }

    #[test]
    fn fanout_closure_marks_exactly_the_downstream_cone() {
        // a -> s0 -> s1 -> s2, plus an independent c -> t0.
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let c = b.input("c");
        let s0 = b.node("s0");
        let s1 = b.node("s1");
        let s2 = b.node("s2");
        let t0 = b.node("t0");
        b.inverter("i0", a, s0);
        b.inverter("i1", s0, s1);
        b.inverter("i2", s1, s2);
        b.inverter("j0", c, t0);
        let nl = b.finish().unwrap();
        let (g, _) = graph_for(&nl, PhaseCase::all_active());

        let mut marked = vec![false; g.node_count()];
        marked[s0.index()] = true;
        g.fanout_closure(&mut marked, vec![s0.index()]);
        for i in nl.node_ids() {
            let expect = i == s0 || i == s1 || i == s2;
            assert_eq!(
                marked[i.index()],
                expect,
                "fanout of s0 mismarked {:?}",
                nl.node_name(i)
            );
        }
    }

    #[test]
    fn fanin_cone_is_the_dual_of_fanout_closure() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let c = b.input("c");
        let s0 = b.node("s0");
        let s1 = b.node("s1");
        let t0 = b.node("t0");
        b.inverter("i0", a, s0);
        b.inverter("i1", s0, s1);
        b.inverter("j0", c, t0);
        let nl = b.finish().unwrap();
        let (g, _) = graph_for(&nl, PhaseCase::all_active());

        let cone = g.fanin_cone(&[s1.index()]);
        for i in nl.node_ids() {
            let expect = i == a || i == s0 || i == s1;
            assert_eq!(
                cone[i.index()],
                expect,
                "fanin of s1 mismarked {:?}",
                nl.node_name(i)
            );
        }
        // Duality: j is in fanin_cone(t) iff t is in fanout_closure(j).
        for j in nl.node_ids() {
            let mut fwd = vec![false; g.node_count()];
            fwd[j.index()] = true;
            g.fanout_closure(&mut fwd, vec![j.index()]);
            for t in nl.node_ids() {
                assert_eq!(
                    g.fanin_cone(&[t.index()])[j.index()],
                    fwd[t.index()],
                    "duality broke for j={:?} t={:?}",
                    nl.node_name(j),
                    nl.node_name(t)
                );
            }
        }
    }

    #[test]
    fn pass_chain_arcs_grow_with_depth() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let en = b.input("en");
        let s0 = b.node("s0");
        b.inverter("drv", a, s0);
        let s1 = b.node("s1");
        let s2 = b.node("s2");
        b.pass("p0", en, s0, s1);
        b.pass("p1", en, s1, s2);
        let out = b.node("out");
        b.inverter("rcv", s2, out);
        let nl = b.finish().unwrap();
        let (g, _) = graph_for(&nl, PhaseCase::all_active());
        let d = |to: NodeId| {
            g.arcs
                .iter()
                .find(|x| x.from == a && x.to == to)
                .map(|x| x.fall_delay)
                .expect("arc exists")
        };
        assert!(d(s1) > d(s0));
        assert!(d(s2) > d(s1));
        // Control arcs from `en` exist for downstream nodes.
        assert!(g
            .arcs
            .iter()
            .any(|x| x.from == en && x.to == s2 && x.kind == ArcKind::PassControl));
    }

    #[test]
    fn super_buffer_internal_gets_noninverting_pullup_arc() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let out = b.output("out");
        let internal = b.super_buffer("sb", a, out, 4.0);
        let nl = b.finish().unwrap();
        let (g, _) = graph_for(&nl, PhaseCase::all_active());
        let pull = g
            .arcs
            .iter()
            .find(|x| x.from == internal && x.to == out && x.kind == ArcKind::BufferPull)
            .expect("buffer pull arc");
        assert!(!pull.inverting);
        assert!(pull.rise_delay.is_finite());
        assert!(pull.fall_delay.is_infinite());
    }

    #[test]
    fn case_analysis_disables_inactive_phase_pass() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi1 = b.clock("phi1", 0);
        let d = b.input("d");
        let qb = b.node("qb");
        let store = b.dynamic_latch("l", phi1, d, qb);
        let nl = b.finish().unwrap();

        // Phase 0 active: data flows into the latch.
        let (g0, _) = graph_for(&nl, PhaseCase::phase(0));
        assert!(g0.arcs.iter().any(|a| a.to == store));

        // Phase 1 active: the φ1 pass is off, no arc reaches the storage.
        let (g1, _) = graph_for(&nl, PhaseCase::phase(1));
        assert!(!g1.arcs.iter().any(|a| a.to == store));
    }

    #[test]
    fn precharge_arc_present_only_in_its_phase() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi2 = b.clock("phi2", 1);
        let en = b.input("en");
        let bus = b.node("bus");
        b.precharge("pre", phi2, bus);
        let gnd = b.gnd();
        b.enhancement("dis", en, gnd, bus, 8.0, 4.0);
        let nl = b.finish().unwrap();
        let (g1, _) = graph_for(&nl, PhaseCase::phase(1));
        assert!(g1
            .arcs
            .iter()
            .any(|a| a.kind == ArcKind::Precharge && a.to == bus));
        let (g0, _) = graph_for(&nl, PhaseCase::phase(0));
        assert!(!g0.arcs.iter().any(|a| a.kind == ArcKind::Precharge));
        // The discharge arc from `en` exists in both cases.
        assert!(g0.arcs.iter().any(|a| a.from == en && a.to == bus));
    }

    #[test]
    fn pull_down_resistance_takes_worst_path() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let out = b.node("out");
        // NOR: two parallel pull-downs — worst single path is one device.
        b.nor("g", &[i0, i1], out);
        let nl = b.finish().unwrap();
        let flow = analyze(&nl, &RuleSet::all());
        let r_nor = pull_down_resistance(&nl, &flow, out).unwrap();

        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let out = b.node("out");
        b.nand("g", &[i0, i1], out);
        let nl2 = b.finish().unwrap();
        let flow2 = analyze(&nl2, &RuleSet::all());
        let r_nand = pull_down_resistance(&nl2, &flow2, out).unwrap();
        // NAND series devices are sized wider to match the inverter, so
        // its total equals the NOR's single leg.
        assert!((r_nand - r_nor).abs() < 1e-9);
    }

    #[test]
    fn input_fed_latch_gets_pass_data_arc() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi1 = b.clock("phi1", 0);
        let d = b.input("d");
        let qb = b.node("qb");
        let store = b.dynamic_latch("l", phi1, d, qb);
        let nl = b.finish().unwrap();
        let (g, _) = graph_for(&nl, PhaseCase::phase(0));
        let data = g
            .arcs
            .iter()
            .find(|a| a.from == d && a.to == store && a.kind == ArcKind::PassData)
            .expect("data arc");
        assert!(!data.inverting);
        // Clock control arc too.
        assert!(g
            .arcs
            .iter()
            .any(|a| a.to == store && a.kind == ArcKind::PassControl));
    }

    #[test]
    fn lumped_model_gives_same_delay_everywhere_in_tree() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let en = b.input("en");
        let s0 = b.node("s0");
        b.inverter("drv", a, s0);
        let s1 = b.node("s1");
        b.pass("p0", en, s0, s1);
        let out = b.node("out");
        b.inverter("rcv", s1, out);
        let nl = b.finish().unwrap();
        let flow = analyze(&nl, &RuleSet::all());
        let q = qualify_with_flow(&nl, &flow);
        let g = TimingGraph::build(
            &nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Lumped,
            1.0,
        );
        let d0 = g
            .arcs
            .iter()
            .find(|x| x.from == a && x.to == s0)
            .unwrap()
            .fall_delay;
        let d1 = g
            .arcs
            .iter()
            .find(|x| x.from == a && x.to == s1)
            .unwrap()
            .fall_delay;
        assert!((d0 - d1).abs() < 1e-12, "lumped ignores tree position");
    }

    #[test]
    fn schedule_levels_follow_chain_topology() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.node("x");
        let y = b.node("y");
        let z = b.output("z");
        b.inverter("i1", a, x);
        b.inverter("i2", x, y);
        b.inverter("i3", y, z);
        let nl = b.finish().unwrap();
        let (g, _) = graph_for(&nl, PhaseCase::all_active());
        let s = &g.schedule;
        assert!(s.residue.is_empty(), "chain is acyclic");
        assert_eq!(
            s.order.len(),
            nl.node_count(),
            "every node gets a level in an acyclic graph"
        );
        let level_of = |n: NodeId| {
            (0..s.levels())
                .find(|&l| s.level(l).contains(&(n.index() as u32)))
                .expect("leveled")
        };
        assert!(level_of(a) < level_of(x));
        assert!(level_of(x) < level_of(y));
        assert!(level_of(y) < level_of(z));
    }

    #[test]
    fn ring_lands_in_schedule_residue() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let kick = b.input("kick");
        let n0 = b.node("n0");
        let n1 = b.node("n1");
        let n2 = b.node("n2");
        b.nand("g0", &[kick, n2], n0);
        b.inverter("g1", n0, n1);
        b.inverter("g2", n1, n2);
        let nl = b.finish().unwrap();
        let (g, _) = graph_for(&nl, PhaseCase::all_active());
        for n in [n0, n1, n2] {
            assert!(
                g.schedule.residue.contains(&(n.index() as u32)),
                "ring node {n:?} must be residue"
            );
        }
        assert!(!g.schedule.residue.contains(&(kick.index() as u32)));
    }

    #[test]
    fn in_arc_csr_matches_arcs() {
        let dp =
            tv_gen::datapath::datapath(Tech::nmos4um(), tv_gen::datapath::DatapathConfig::small());
        let nl = &dp.netlist;
        let (g, _) = graph_for(nl, PhaseCase::phase(0));
        let mut count = 0usize;
        for i in 0..g.node_count() {
            let mut prev = None;
            for &ai in g.in_arcs_of_index(i) {
                assert_eq!(g.arcs[ai as usize].to.index(), i);
                assert!(prev.is_none_or(|p| p < ai), "ascending arc ids");
                prev = Some(ai);
                count += 1;
            }
        }
        assert_eq!(count, g.arc_count());
    }

    #[test]
    fn parallel_build_bit_identical_to_serial() {
        let circuit = tv_gen::random::random_logic(
            Tech::nmos4um(),
            600,
            0xDECAF,
            tv_gen::random::RandomMix::default(),
        );
        let nl = &circuit.netlist;
        let flow = analyze(nl, &RuleSet::all());
        let q = qualify_with_flow(nl, &flow);
        for case in [PhaseCase::all_active(), PhaseCase::phase(0)] {
            let serial = TimingGraph::build(nl, &flow, &q, case, DelayModel::Elmore, 1.0);
            for jobs in [2usize, 3, 8] {
                let par =
                    TimingGraph::build_par(nl, &flow, &q, case, DelayModel::Elmore, 1.0, jobs);
                assert_eq!(serial.arc_count(), par.arc_count());
                for (a, b) in serial.arcs.iter().zip(&par.arcs) {
                    assert_eq!(a.from, b.from);
                    assert_eq!(a.to, b.to);
                    assert_eq!(a.rise_delay.to_bits(), b.rise_delay.to_bits());
                    assert_eq!(a.fall_delay.to_bits(), b.fall_delay.to_bits());
                    assert_eq!(a.rise_tau.to_bits(), b.rise_tau.to_bits());
                    assert_eq!(a.fall_tau.to_bits(), b.fall_tau.to_bits());
                    assert_eq!(a.inverting, b.inverting);
                    assert_eq!(a.kind, b.kind);
                }
                assert_eq!(serial.schedule.order, par.schedule.order);
                assert_eq!(serial.schedule.level_starts, par.schedule.level_starts);
                assert_eq!(serial.schedule.residue, par.schedule.residue);
            }
        }
    }

    #[test]
    fn panicked_stage_is_omitted_with_diagnostic_at_any_thread_count() {
        let circuit = tv_gen::random::random_logic(
            Tech::nmos4um(),
            600,
            0xDECAF,
            tv_gen::random::RandomMix::default(),
        );
        let nl = &circuit.netlist;
        let flow = analyze(nl, &RuleSet::all());
        let q = qualify_with_flow(nl, &flow);
        let clean = TimingGraph::build(
            nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        assert!(clean.diagnostics.is_empty());
        // Poison one mid-list stage root and require the rest to survive.
        let builder = GraphBuilder {
            netlist: nl,
            flow: &flow,
            qualification: &q,
            case: PhaseCase::all_active(),
            model: DelayModel::Elmore,
        };
        let roots = builder.roots();
        let bad = roots[roots.len() / 2].0;
        let hook = move |root: NodeId| {
            if root == bad {
                panic!("injected fault");
            }
        };
        let build_at = |jobs: usize| {
            TimingGraph::build_isolated(
                nl,
                &flow,
                &q,
                PhaseCase::all_active(),
                DelayModel::Elmore,
                1.0,
                jobs,
                Some(&hook),
            )
        };
        let serial = build_at(1);
        assert!(serial.arc_count() < clean.arc_count(), "stage was omitted");
        assert!(serial
            .diagnostics
            .iter()
            .any(|d| d.code == tv_netlist::codes::ANALYSIS_WORKER_PANIC));
        let par = build_at(4);
        assert_eq!(serial.arc_count(), par.arc_count());
        for (a, b) in serial.arcs.iter().zip(&par.arcs) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert_eq!(a.rise_delay.to_bits(), b.rise_delay.to_bits());
        }
    }

    #[test]
    fn upper_bound_model_dominates_elmore() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("i", a, out);
        b.add_cap(out, 0.2).unwrap();
        let nl = b.finish().unwrap();
        let flow = analyze(&nl, &RuleSet::all());
        let q = qualify_with_flow(&nl, &flow);
        let ge = TimingGraph::build(
            &nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        let gu = TimingGraph::build(
            &nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::UpperBound,
            1.0,
        );
        assert!(gu.arcs[0].fall_delay > ge.arcs[0].fall_delay);
        assert!(gu.arcs[0].rise_delay > ge.arcs[0].rise_delay);
    }
}
