//! Worst-case arrival-time propagation over the timing graph.

use std::collections::VecDeque;

use tv_netlist::{Netlist, NodeId};
use tv_rc::SlopeModel;

use crate::graph::{ArcKind, PhaseCase, TimingGraph};

/// A signal transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Low → high.
    Rise,
    /// High → low.
    Fall,
}

impl Edge {
    /// The opposite direction.
    #[inline]
    pub fn flipped(self) -> Edge {
        match self {
            Edge::Rise => Edge::Fall,
            Edge::Fall => Edge::Rise,
        }
    }
}

/// The predecessor record for path backtracking: which arc set this
/// arrival and which edge of the `from` node triggered it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pred {
    pub arc: u32,
    pub from_edge: Edge,
}

/// Worst-case rise/fall arrival times at every node, measured from the
/// analyzed phase's opening edge. `f64::NEG_INFINITY` means the
/// transition never happens in this case.
#[derive(Debug, Clone)]
pub struct Arrivals {
    pub(crate) rise: Vec<f64>,
    pub(crate) fall: Vec<f64>,
    /// 10–90% transition time of the waveform achieving the worst rise.
    pub(crate) trans_rise: Vec<f64>,
    /// 10–90% transition time of the waveform achieving the worst fall.
    pub(crate) trans_fall: Vec<f64>,
    pub(crate) pred_rise: Vec<Option<Pred>>,
    pub(crate) pred_fall: Vec<Option<Pred>>,
}

impl Arrivals {
    /// Rise arrival at `node`, ns, if it can rise in this case.
    pub fn rise(&self, node: NodeId) -> Option<f64> {
        finite(self.rise[node.index()])
    }

    /// Fall arrival at `node`, ns, if it can fall in this case.
    pub fn fall(&self, node: NodeId) -> Option<f64> {
        finite(self.fall[node.index()])
    }

    /// Worst (latest) arrival at `node` over both edges, ns.
    pub fn arrival(&self, node: NodeId) -> Option<f64> {
        match (self.rise(node), self.fall(node)) {
            (Some(r), Some(f)) => Some(r.max(f)),
            (Some(r), None) => Some(r),
            (None, Some(f)) => Some(f),
            (None, None) => None,
        }
    }

    /// 10–90% transition time of the waveform achieving the worst arrival
    /// of the given edge at `node`, ns.
    pub fn transition(&self, node: NodeId, edge: Edge) -> Option<f64> {
        match edge {
            Edge::Rise => self.rise(node).map(|_| self.trans_rise[node.index()]),
            Edge::Fall => self.fall(node).map(|_| self.trans_fall[node.index()]),
        }
    }

    /// The edge achieving [`Arrivals::arrival`], when one exists.
    pub fn worst_edge(&self, node: NodeId) -> Option<Edge> {
        match (self.rise(node), self.fall(node)) {
            (Some(r), Some(f)) => Some(if r >= f { Edge::Rise } else { Edge::Fall }),
            (Some(_), None) => Some(Edge::Rise),
            (None, Some(_)) => Some(Edge::Fall),
            (None, None) => None,
        }
    }
}

fn finite(v: f64) -> Option<f64> {
    v.is_finite().then_some(v)
}

/// The outcome of propagating one phase case.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// The case analyzed.
    pub case: PhaseCase,
    /// Per-node arrivals.
    pub arrivals: Arrivals,
    /// Endpoint nodes (latches captured this phase, primary outputs) with
    /// their worst arrivals, sorted latest-first.
    pub endpoints: Vec<(NodeId, f64)>,
    /// Whether relaxation hit the iteration cap — a genuine (or
    /// unresolvable) combinational cycle.
    pub cyclic: bool,
    /// Number of arc relaxations performed (a work measure for T5).
    pub relaxations: usize,
}

impl PhaseResult {
    /// Latest endpoint arrival, ns; `None` when nothing arrives (e.g. an
    /// empty case).
    pub fn critical_arrival(&self) -> Option<f64> {
        self.endpoints.first().map(|&(_, t)| t)
    }

    /// Convenience passthrough to [`Arrivals::arrival`].
    pub fn arrival(&self, node: NodeId) -> Option<f64> {
        self.arrivals.arrival(node)
    }
}

/// Propagates worst-case arrivals from `sources` (arrival 0 on both
/// edges, step transitions) through the graph. `endpoints` selects which
/// nodes are reported as capture points.
///
/// Slope handling follows TV: each arc's delay is padded with
/// `k_slope × input_transition`, and the output transition is
/// `k_transition × τ` of the arc's RC constant. Pass
/// [`SlopeModel::disabled`] for pure step-response analysis.
///
/// Relaxation is worklist-based and monotone (arrivals only grow), so on
/// an acyclic graph it terminates exactly; a relaxation budget of
/// `64 × (arcs + nodes)` catches combinational cycles, which are
/// reported via [`PhaseResult::cyclic`] instead of looping forever.
pub fn propagate(
    netlist: &Netlist,
    graph: &TimingGraph,
    sources: &[NodeId],
    endpoints: &[NodeId],
    slope: &SlopeModel,
) -> PhaseResult {
    let n = netlist.node_count();
    let mut arr = Arrivals {
        rise: vec![f64::NEG_INFINITY; n],
        fall: vec![f64::NEG_INFINITY; n],
        trans_rise: vec![0.0; n],
        trans_fall: vec![0.0; n],
        pred_rise: vec![None; n],
        pred_fall: vec![None; n],
    };

    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut queued = vec![false; n];
    for &s in sources {
        arr.rise[s.index()] = 0.0;
        arr.fall[s.index()] = 0.0;
        if !queued[s.index()] {
            queued[s.index()] = true;
            queue.push_back(s);
        }
    }

    let budget = 64 * (graph.arcs.len() + n).max(1);
    let mut relaxations = 0usize;
    let mut cyclic = false;

    while let Some(node) = queue.pop_front() {
        queued[node.index()] = false;
        if relaxations > budget {
            cyclic = true;
            break;
        }
        let (from_rise, from_fall) = (arr.rise[node.index()], arr.fall[node.index()]);
        let (from_trise, from_tfall) = (
            arr.trans_rise[node.index()],
            arr.trans_fall[node.index()],
        );
        for &ai in &graph.out_arcs[node.index()] {
            let arc = &graph.arcs[ai as usize];
            let to = arc.to.index();
            // Candidate (arrival, trigger edge) for the target's rise and
            // fall, depending on arc semantics, padded with the slope
            // penalty of the triggering waveform.
            let (cand_rise, rise_src, cand_fall, fall_src) = match arc.kind {
                ArcKind::PassControl | ArcKind::Precharge => (
                    from_rise + arc.rise_delay + slope.k_slope * from_trise,
                    Edge::Rise,
                    from_rise + arc.fall_delay + slope.k_slope * from_trise,
                    Edge::Rise,
                ),
                _ if arc.inverting => (
                    from_fall + arc.rise_delay + slope.k_slope * from_tfall,
                    Edge::Fall,
                    from_rise + arc.fall_delay + slope.k_slope * from_trise,
                    Edge::Rise,
                ),
                _ => (
                    from_rise + arc.rise_delay + slope.k_slope * from_trise,
                    Edge::Rise,
                    from_fall + arc.fall_delay + slope.k_slope * from_tfall,
                    Edge::Fall,
                ),
            };
            let mut improved = false;
            if cand_rise.is_finite() && cand_rise > arr.rise[to] {
                arr.rise[to] = cand_rise;
                arr.trans_rise[to] = slope.output_transition(arc.rise_tau);
                arr.pred_rise[to] = Some(Pred {
                    arc: ai,
                    from_edge: rise_src,
                });
                improved = true;
            }
            if cand_fall.is_finite() && cand_fall > arr.fall[to] {
                arr.fall[to] = cand_fall;
                arr.trans_fall[to] = slope.output_transition(arc.fall_tau);
                arr.pred_fall[to] = Some(Pred {
                    arc: ai,
                    from_edge: fall_src,
                });
                improved = true;
            }
            relaxations += 1;
            if improved && !queued[to] {
                queued[to] = true;
                queue.push_back(arc.to);
            }
        }
    }

    let mut eps: Vec<(NodeId, f64)> = endpoints
        .iter()
        .filter_map(|&e| arr.arrival(e).map(|t| (e, t)))
        .collect();
    eps.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite arrivals"));

    PhaseResult {
        case: graph.case,
        arrivals: arr,
        endpoints: eps,
        cyclic,
        relaxations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PhaseCase;
    use crate::options::DelayModel;
    use tv_clocks::qualify::qualify_with_flow;
    use tv_flow::{analyze, RuleSet};
    use tv_netlist::{NetlistBuilder, Tech};

    fn run(nl: &Netlist, case: PhaseCase, sources: &[NodeId], endpoints: &[NodeId]) -> PhaseResult {
        let flow = analyze(nl, &RuleSet::all());
        let q = qualify_with_flow(nl, &flow);
        let g = TimingGraph::build(nl, &flow, &q, case, DelayModel::Elmore, 1.0);
        propagate(nl, &g, sources, endpoints, &SlopeModel::calibrated())
    }

    #[test]
    fn chain_arrivals_accumulate() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.node("x");
        let y = b.node("y");
        let z = b.output("z");
        b.inverter("i1", a, x);
        b.inverter("i2", x, y);
        b.inverter("i3", y, z);
        let nl = b.finish().unwrap();
        let r = run(&nl, PhaseCase::all_active(), &[a], &[z]);
        let ax = r.arrival(x).unwrap();
        let ay = r.arrival(y).unwrap();
        let az = r.arrival(z).unwrap();
        assert!(0.0 < ax && ax < ay && ay < az);
        assert!(!r.cyclic);
        assert_eq!(r.critical_arrival(), Some(az));
    }

    #[test]
    fn rise_fall_alternate_down_an_inverter_chain() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.node("x");
        let y = b.node("y");
        b.inverter("i1", a, x);
        b.inverter("i2", x, y);
        let nl = b.finish().unwrap();
        let r = run(&nl, PhaseCase::all_active(), &[a], &[y]);
        // x's slow edge is its rise (depletion load); y's rise is driven
        // by x's fall, so y's rise is comparatively early, and y's fall
        // waits for x's slow rise.
        let x_rise = r.arrivals.rise(x).unwrap();
        let x_fall = r.arrivals.fall(x).unwrap();
        assert!(x_rise > x_fall);
        let y_fall = r.arrivals.fall(y).unwrap();
        assert!(y_fall > x_rise, "y falls only after x rises");
    }

    #[test]
    fn unreachable_node_has_no_arrival() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let other = b.input("other");
        let x = b.node("x");
        let y = b.node("y");
        b.inverter("i1", a, x);
        b.inverter("i2", other, y);
        let nl = b.finish().unwrap();
        let r = run(&nl, PhaseCase::all_active(), &[a], &[x, y]);
        assert!(r.arrival(x).is_some());
        assert_eq!(r.arrival(y), None);
        assert_eq!(r.endpoints.len(), 1);
    }

    #[test]
    fn ring_oscillator_detected_as_cyclic() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let kick = b.input("kick");
        let n0 = b.node("n0");
        let n1 = b.node("n1");
        let n2 = b.node("n2");
        b.nand("g0", &[kick, n2], n0);
        b.inverter("g1", n0, n1);
        b.inverter("g2", n1, n2);
        let nl = b.finish().unwrap();
        let r = run(&nl, PhaseCase::all_active(), &[kick], &[n2]);
        assert!(r.cyclic, "three-ring must be flagged cyclic");
    }

    #[test]
    fn latch_breaks_the_loop_under_case_analysis() {
        // A two-phase loop: logic -> φ1 latch -> logic -> φ2 latch -> back.
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi1 = b.clock("phi1", 0);
        let phi2 = b.clock("phi2", 1);
        let l1_out = b.node("l1_out");
        let inv1 = b.node("inv1");
        b.inverter("i1", l1_out, inv1);
        let l2_out = b.node("l2_out");
        b.dynamic_latch("l2", phi2, inv1, l2_out);
        let inv2 = b.node("inv2");
        b.inverter("i2", l2_out, inv2);
        b.dynamic_latch("l1", phi1, inv2, l1_out);
        let nl = b.finish().unwrap();
        let l1_store = nl.node_by_name("l1_mem").unwrap();
        let l2_store = nl.node_by_name("l2_mem").unwrap();

        // Phase 1 (φ2 active): source is the φ1 latch, endpoint φ2 latch.
        let r = run(&nl, PhaseCase::phase(1), &[l1_store, phi2], &[l2_store]);
        assert!(!r.cyclic);
        assert!(r.arrival(l2_store).is_some());

        // Without case analysis the loop is unbroken and flagged.
        let r_naive = run(
            &nl,
            PhaseCase::all_active(),
            &[l1_store, phi1, phi2],
            &[l2_store],
        );
        assert!(r_naive.cyclic);
    }

    #[test]
    fn worst_edge_matches_arrival() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.output("x");
        b.inverter("i", a, x);
        let nl = b.finish().unwrap();
        let r = run(&nl, PhaseCase::all_active(), &[a], &[x]);
        // The slow edge of an inverter output is the rise.
        assert_eq!(r.arrivals.worst_edge(x), Some(Edge::Rise));
        assert_eq!(r.arrival(x), r.arrivals.rise(x));
    }

    #[test]
    fn edge_flip_is_involutive() {
        assert_eq!(Edge::Rise.flipped(), Edge::Fall);
        assert_eq!(Edge::Fall.flipped().flipped(), Edge::Fall);
    }
}
