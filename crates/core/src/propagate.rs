//! Worst-case arrival-time propagation over the timing graph.
//!
//! # The levelized engine
//!
//! Propagation runs in two phases over the
//! [`crate::graph::LevelSchedule`] the graph carries:
//!
//! 1. **Levels.** Every node whose ancestry is acyclic has a topological
//!    level; all its in-arcs come from strictly earlier levels. Each
//!    level is computed *pull*-style: a node's worst rise/fall arrival is
//!    the maximum over its in-arcs, evaluated in ascending arc-id order.
//!    Because the computation of one node reads only finished earlier
//!    levels and writes only its own entry, a level can be fanned out
//!    across [`std::thread::scope`] workers in disjoint chunks — and
//!    because per-node evaluation order is fixed by arc id, the result is
//!    **bit-identical** to the serial walk at any thread count.
//! 2. **Residue.** Nodes on or downstream of a combinational cycle never
//!    level; they are finished by the original budgeted worklist
//!    relaxation (seeded from the already-final leveled frontier), which
//!    reports genuine cycles via [`PhaseResult::cyclic`] exactly as the
//!    fully serial engine did.
//!
//! Warm re-analyses of residue-free graphs additionally have the
//! **demand-driven cone engine** ([`propagate_cone`]): given a cached
//! snapshot and the forward-closed affected set of a certified edit, it
//! re-relaxes only the affected nodes in level order and copies the
//! rest from the snapshot — bit-identical to the full walk, at a cost
//! proportional to the edit's fanout cone instead of the chip.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use tv_netlist::{codes, Diagnostic, Netlist, NodeId};
use tv_rc::SlopeModel;

use crate::graph::{Arc, ArcKind, PhaseCase, TimingGraph};

/// A signal transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Low → high.
    Rise,
    /// High → low.
    Fall,
}

impl Edge {
    /// The opposite direction.
    #[inline]
    pub fn flipped(self) -> Edge {
        match self {
            Edge::Rise => Edge::Fall,
            Edge::Fall => Edge::Rise,
        }
    }
}

/// The predecessor record for path backtracking: which arc set this
/// arrival and which edge of the `from` node triggered it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pred {
    pub arc: u32,
    pub from_edge: Edge,
}

/// Worst-case rise/fall arrival times at every node, measured from the
/// analyzed phase's opening edge. `f64::NEG_INFINITY` means the
/// transition never happens in this case.
#[derive(Debug, Clone)]
pub struct Arrivals {
    pub(crate) rise: Vec<f64>,
    pub(crate) fall: Vec<f64>,
    /// 10–90% transition time of the waveform achieving the worst rise.
    pub(crate) trans_rise: Vec<f64>,
    /// 10–90% transition time of the waveform achieving the worst fall.
    pub(crate) trans_fall: Vec<f64>,
    pub(crate) pred_rise: Vec<Option<Pred>>,
    pub(crate) pred_fall: Vec<Option<Pred>>,
}

impl Arrivals {
    /// Rise arrival at `node`, ns, if it can rise in this case.
    pub fn rise(&self, node: NodeId) -> Option<f64> {
        finite(self.rise[node.index()])
    }

    /// Fall arrival at `node`, ns, if it can fall in this case.
    pub fn fall(&self, node: NodeId) -> Option<f64> {
        finite(self.fall[node.index()])
    }

    /// Worst (latest) arrival at `node` over both edges, ns.
    pub fn arrival(&self, node: NodeId) -> Option<f64> {
        match (self.rise(node), self.fall(node)) {
            (Some(r), Some(f)) => Some(r.max(f)),
            (Some(r), None) => Some(r),
            (None, Some(f)) => Some(f),
            (None, None) => None,
        }
    }

    /// 10–90% transition time of the waveform achieving the worst arrival
    /// of the given edge at `node`, ns.
    pub fn transition(&self, node: NodeId, edge: Edge) -> Option<f64> {
        match edge {
            Edge::Rise => self.rise(node).map(|_| self.trans_rise[node.index()]),
            Edge::Fall => self.fall(node).map(|_| self.trans_fall[node.index()]),
        }
    }

    /// The edge achieving [`Arrivals::arrival`], when one exists.
    pub fn worst_edge(&self, node: NodeId) -> Option<Edge> {
        match (self.rise(node), self.fall(node)) {
            (Some(r), Some(f)) => Some(if r >= f { Edge::Rise } else { Edge::Fall }),
            (Some(_), None) => Some(Edge::Rise),
            (None, Some(_)) => Some(Edge::Fall),
            (None, None) => None,
        }
    }
}

fn finite(v: f64) -> Option<f64> {
    v.is_finite().then_some(v)
}

/// Resource guards bounding one propagation run. The default guards
/// reproduce the historical engine: a residue budget of
/// `64 × (arcs + nodes)` and no deadline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Guards {
    /// Overrides the residue worklist's relaxation budget. Exhaustion is
    /// reported via [`PhaseResult::completion`], carrying partial results.
    pub relax_budget: Option<usize>,
    /// Wall-clock deadline for the whole walk. Checked at level
    /// boundaries and periodically inside the residue worklist; nodes
    /// not yet computed when it passes are left without arrivals and
    /// listed in [`PhaseResult::unresolved`]. Note a deadline makes the
    /// set of resolved nodes machine-dependent — leave it `None` where
    /// reproducibility matters.
    pub deadline: Option<Instant>,
}

/// How far a propagation run got before returning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Every node was resolved.
    Complete,
    /// The residue relaxation budget ran out: arrivals on the listed
    /// unresolved nodes are lower bounds, not converged values.
    BudgetExhausted,
    /// The wall-clock deadline passed: the listed unresolved nodes were
    /// never computed and report no arrival at all.
    DeadlineExceeded,
}

/// The outcome of propagating one phase case.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// The case analyzed.
    pub case: PhaseCase,
    /// Per-node arrivals.
    pub arrivals: Arrivals,
    /// Endpoint nodes (latches captured this phase, primary outputs) with
    /// their worst arrivals, sorted latest-first.
    pub endpoints: Vec<(NodeId, f64)>,
    /// Whether relaxation hit the iteration cap — a genuine (or
    /// unresolvable) combinational cycle.
    pub cyclic: bool,
    /// Number of arc relaxations performed (a work measure for T5).
    pub relaxations: usize,
    /// Whether the run finished, ran out of budget, or timed out.
    pub completion: Completion,
    /// Nodes whose values are partial or missing: the residue set when
    /// the budget ran out, uncomputed nodes when the deadline passed,
    /// and any node whose evaluation panicked. Sorted by node id.
    pub unresolved: Vec<NodeId>,
    /// Engine diagnostics: guard exhaustion and degraded (panicked)
    /// workers. Empty — and unallocated — on a clean run.
    pub diagnostics: Vec<Diagnostic>,
}

impl PhaseResult {
    /// Latest endpoint arrival, ns; `None` when nothing arrives (e.g. an
    /// empty case).
    pub fn critical_arrival(&self) -> Option<f64> {
        self.endpoints.first().map(|&(_, t)| t)
    }

    /// Convenience passthrough to [`Arrivals::arrival`].
    pub fn arrival(&self, node: NodeId) -> Option<f64> {
        self.arrivals.arrival(node)
    }
}

/// Arrivals of one finished case, node-indexed, as kept by the
/// incremental cache. Predecessors are stored as **ordinals** into the
/// node's in-arc list (not global arc ids): arc ids shift when an edit
/// changes how many arcs an upstream stage emits, but a node whose stage
/// fingerprint is unchanged keeps the same in-arc list, so its ordinal
/// stays valid across rebuilds.
#[derive(Debug, Clone)]
pub(crate) struct CachedCase {
    pub(crate) rise: Vec<f64>,
    pub(crate) fall: Vec<f64>,
    pub(crate) trans_rise: Vec<f64>,
    pub(crate) trans_fall: Vec<f64>,
    pub(crate) pred_rise: Vec<Option<(u32, Edge)>>,
    pub(crate) pred_fall: Vec<Option<(u32, Edge)>>,
}

impl CachedCase {
    /// Snapshots a finished propagation for reuse, translating global
    /// pred arc ids into in-arc ordinals.
    pub(crate) fn from_arrivals(graph: &TimingGraph, arr: &Arrivals) -> CachedCase {
        let ordinal = |node: usize, p: Option<Pred>| {
            p.map(|p| {
                let pos = graph
                    .in_arcs_of_index(node)
                    .binary_search(&p.arc)
                    .expect("pred arc is an in-arc of its target");
                (pos as u32, p.from_edge)
            })
        };
        let n = arr.rise.len();
        CachedCase {
            rise: arr.rise.clone(),
            fall: arr.fall.clone(),
            trans_rise: arr.trans_rise.clone(),
            trans_fall: arr.trans_fall.clone(),
            pred_rise: (0..n).map(|i| ordinal(i, arr.pred_rise[i])).collect(),
            pred_fall: (0..n).map(|i| ordinal(i, arr.pred_fall[i])).collect(),
        }
    }

    /// Overwrites the affected rows of an existing snapshot with a fresh
    /// result, leaving clean rows untouched — by the reuse invariant
    /// they are bit-identical to what the snapshot already holds. Saves
    /// the full O(nodes) re-snapshot on warm runs.
    pub(crate) fn update_from_arrivals(
        &mut self,
        graph: &TimingGraph,
        arr: &Arrivals,
        affected: &[bool],
    ) {
        let ordinal = |node: usize, p: Option<Pred>| {
            p.map(|p| {
                let pos = graph
                    .in_arcs_of_index(node)
                    .binary_search(&p.arc)
                    .expect("pred arc is an in-arc of its target");
                (pos as u32, p.from_edge)
            })
        };
        for i in (0..arr.rise.len()).filter(|&i| affected[i]) {
            self.rise[i] = arr.rise[i];
            self.fall[i] = arr.fall[i];
            self.trans_rise[i] = arr.trans_rise[i];
            self.trans_fall[i] = arr.trans_fall[i];
            self.pred_rise[i] = ordinal(i, arr.pred_rise[i]);
            self.pred_fall[i] = ordinal(i, arr.pred_fall[i]);
        }
    }

    /// Rehydrates one node's cached result against the current graph.
    fn slot_for(&self, graph: &TimingGraph, node: usize) -> Slot {
        let pred = |p: Option<(u32, Edge)>| {
            p.map(|(ord, from_edge)| Pred {
                arc: graph.in_arcs_of_index(node)[ord as usize],
                from_edge,
            })
        };
        Slot {
            rise: self.rise[node],
            fall: self.fall[node],
            trans_rise: self.trans_rise[node],
            trans_fall: self.trans_fall[node],
            pred_rise: pred(self.pred_rise[node]),
            pred_fall: pred(self.pred_fall[node]),
        }
    }
}

/// A reuse plan for one case: nodes with `affected[i] == false` are
/// copied from the cache instead of recomputed. Only valid when the
/// graph's schedule has no residue (cyclic cases always recompute).
#[derive(Clone, Copy)]
pub(crate) struct Reuse<'a> {
    pub(crate) affected: &'a [bool],
    pub(crate) cached: &'a CachedCase,
}

/// Per-node propagation state, kept in level (slot) order during the
/// walk so each level is one contiguous, chunkable slice.
#[derive(Debug, Clone, Copy)]
struct Slot {
    rise: f64,
    fall: f64,
    trans_rise: f64,
    trans_fall: f64,
    pred_rise: Option<Pred>,
    pred_fall: Option<Pred>,
}

impl Slot {
    fn init(source: bool) -> Slot {
        let t0 = if source { 0.0 } else { f64::NEG_INFINITY };
        Slot {
            rise: t0,
            fall: t0,
            trans_rise: 0.0,
            trans_fall: 0.0,
            pred_rise: None,
            pred_fall: None,
        }
    }
}

/// Reusable scratch buffers for repeated propagation runs: the slot
/// permutation, the per-node slot array, and the residue worklist. One
/// instance serves every case of a report, so after the first case at a
/// given netlist size a propagation run allocates only the [`Arrivals`]
/// it returns (which the caller keeps) — everything transient is reused.
#[derive(Debug, Default)]
pub struct Workspace {
    is_source: Vec<bool>,
    slot_of: Vec<u32>,
    slots: Vec<Slot>,
    in_residue: Vec<bool>,
    queued: Vec<bool>,
    queue: VecDeque<u32>,
}

impl Workspace {
    /// An empty workspace; buffers grow to the netlist size on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Shared read-only context for node evaluation.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    graph: &'a TimingGraph,
    slope: &'a SlopeModel,
    /// Node index → slot index (level order, then residue).
    slot_of: &'a [u32],
    is_source: &'a [bool],
    reuse: Option<Reuse<'a>>,
    /// Fault-injection hook (tests only); called before each evaluation.
    fault: Option<&'a (dyn Fn(u32) + Sync)>,
}

/// Candidate `(rise arrival, rise trigger, fall arrival, fall trigger)`
/// the arc offers its target, padded with the slope penalty of the
/// triggering waveform.
#[inline]
fn candidates(arc: &Arc, from: &Slot, slope: &SlopeModel) -> (f64, Edge, f64, Edge) {
    match arc.kind {
        ArcKind::PassControl | ArcKind::Precharge => (
            from.rise + arc.rise_delay + slope.k_slope * from.trans_rise,
            Edge::Rise,
            from.rise + arc.fall_delay + slope.k_slope * from.trans_rise,
            Edge::Rise,
        ),
        _ if arc.inverting => (
            from.fall + arc.rise_delay + slope.k_slope * from.trans_fall,
            Edge::Fall,
            from.rise + arc.fall_delay + slope.k_slope * from.trans_rise,
            Edge::Rise,
        ),
        _ => (
            from.rise + arc.rise_delay + slope.k_slope * from.trans_rise,
            Edge::Rise,
            from.fall + arc.fall_delay + slope.k_slope * from.trans_fall,
            Edge::Fall,
        ),
    }
}

/// Evaluates one leveled node: the max over its in-arcs in ascending
/// arc-id order. Pure in the finished prefix, so the result does not
/// depend on how the level was chunked across workers.
fn compute_node(ctx: Ctx<'_>, done: &[Slot], node: u32) -> (Slot, u32) {
    if let Some(hook) = ctx.fault {
        hook(node);
    }
    // Fault plane: a forced worker panic, caught by the same isolation
    // that contains a genuine one (every caller is under catch_unwind).
    if tv_fault::fault_point!(tv_fault::Site::PropagateWorker) {
        tv_obs::incr(tv_obs::Counter::FaultInjected);
        panic!(
            "{}",
            tv_fault::panic_message(tv_fault::Site::PropagateWorker)
        );
    }
    let ni = node as usize;
    if let Some(r) = ctx.reuse {
        if !r.affected[ni] {
            // Report the relax count a recomputation would have charged
            // (one per in-arc, unconditionally) so `PhaseResult::relaxations`
            // stays bit-identical between warm and cold runs.
            let would_relax = ctx.graph.in_arcs_of_index(ni).len() as u32;
            return (r.cached.slot_for(ctx.graph, ni), would_relax);
        }
    }
    let mut s = Slot::init(ctx.is_source[ni]);
    let mut relaxed = 0u32;
    for &ai in ctx.graph.in_arcs_of_index(ni) {
        let arc = &ctx.graph.arcs[ai as usize];
        let from = &done[ctx.slot_of[arc.from.index()] as usize];
        let (cand_rise, rise_src, cand_fall, fall_src) = candidates(arc, from, ctx.slope);
        if cand_rise.is_finite() && cand_rise > s.rise {
            s.rise = cand_rise;
            s.trans_rise = ctx.slope.output_transition(arc.rise_tau);
            s.pred_rise = Some(Pred {
                arc: ai,
                from_edge: rise_src,
            });
        }
        if cand_fall.is_finite() && cand_fall > s.fall {
            s.fall = cand_fall;
            s.trans_fall = ctx.slope.output_transition(arc.fall_tau);
            s.pred_fall = Some(Pred {
                arc: ai,
                from_edge: fall_src,
            });
        }
        relaxed += 1;
    }
    (s, relaxed)
}

/// The waveform-state transitions an arc can carry, mirroring
/// [`candidates`]: `(from_edge, to_edge)` index pairs (0 = rise,
/// 1 = fall) such that a finite arrival on `from_edge` of `arc.from`
/// yields a finite candidate on `to_edge` of `arc.to`. An infinite
/// delay carries nothing on its edge.
#[inline]
fn arc_transitions(arc: &Arc) -> [Option<(usize, usize)>; 2] {
    const RISE: usize = 0;
    const FALL: usize = 1;
    let (rise_from, fall_from) = match arc.kind {
        ArcKind::PassControl | ArcKind::Precharge => (RISE, RISE),
        _ if arc.inverting => (FALL, RISE),
        _ => (RISE, FALL),
    };
    [
        arc.rise_delay.is_finite().then_some((rise_from, RISE)),
        arc.fall_delay.is_finite().then_some((fall_from, FALL)),
    ]
}

/// Decides whether the budgeted residue relaxation can terminate at all.
///
/// The residue is relaxed by monotone max-propagation, so it diverges
/// exactly when a finite arrival reaches a cycle of the *waveform state
/// graph* (states are `(node, edge)` pairs, transitions follow
/// [`arc_transitions`]): every lap around such a cycle adds its strictly
/// positive delay sum, so no fixpoint exists and the old behaviour was
/// to grind through the entire relaxation budget producing unbounded,
/// physically meaningless arrivals. Conversely, if the finite-reachable
/// state subgraph is acyclic the relaxation below converges and runs
/// exactly as it always has, value for value.
///
/// Three linear passes: mark states finite-reachable from the residue
/// seeds (initial slot values plus arcs entering from the finished
/// prefix), then Kahn-peel the subgraph they induce; a leftover state
/// proves a reachable cycle.
fn residue_diverges(
    graph: &TimingGraph,
    slots: &[Slot],
    slot_of: &[u32],
    in_residue: &[bool],
    residue: &[u32],
) -> bool {
    let n = in_residue.len();
    let mut finite = vec![false; 2 * n];
    let mut stack: Vec<u32> = Vec::new();
    // Seed: residue nodes' initial slot values (sources arrive at 0).
    for &r in residue {
        let ri = r as usize;
        let s = &slots[slot_of[ri] as usize];
        for (bit, v) in [(0, s.rise), (1, s.fall)] {
            if v.is_finite() {
                finite[2 * ri + bit] = true;
                stack.push((2 * ri + bit) as u32);
            }
        }
    }
    // Seed: arcs entering the residue from the finished prefix, whose
    // slot values are final.
    for a in &graph.arcs {
        if in_residue[a.to.index()] && !in_residue[a.from.index()] {
            let s = &slots[slot_of[a.from.index()] as usize];
            for (fe, te) in arc_transitions(a).into_iter().flatten() {
                let v = if fe == 0 { s.rise } else { s.fall };
                let st = 2 * a.to.index() + te;
                if v.is_finite() && !finite[st] {
                    finite[st] = true;
                    stack.push(st as u32);
                }
            }
        }
    }
    // Fixpoint: a residue node's out-arcs always target residue nodes
    // (anything a non-leveled node feeds is itself non-leveled).
    while let Some(st) = stack.pop() {
        let (node, bit) = (st as usize / 2, st as usize % 2);
        for &ai in graph.out_arcs_of_index(node) {
            let a = &graph.arcs[ai as usize];
            for (fe, te) in arc_transitions(a).into_iter().flatten() {
                let to_st = 2 * a.to.index() + te;
                if fe == bit && !finite[to_st] {
                    finite[to_st] = true;
                    stack.push(to_st as u32);
                }
            }
        }
    }
    // Kahn cycle check on the finite residue states.
    let mut indeg = vec![0u32; 2 * n];
    let mut total = 0usize;
    for &r in residue {
        let ri = r as usize;
        total += finite[2 * ri] as usize + finite[2 * ri + 1] as usize;
        for &ai in graph.out_arcs_of_index(ri) {
            let a = &graph.arcs[ai as usize];
            for (fe, te) in arc_transitions(a).into_iter().flatten() {
                if finite[2 * ri + fe] && finite[2 * a.to.index() + te] {
                    indeg[2 * a.to.index() + te] += 1;
                }
            }
        }
    }
    let mut peel: Vec<u32> = Vec::new();
    for &r in residue {
        for bit in 0..2 {
            let st = 2 * r as usize + bit;
            if finite[st] && indeg[st] == 0 {
                peel.push(st as u32);
            }
        }
    }
    let mut peeled = 0usize;
    while let Some(st) = peel.pop() {
        peeled += 1;
        let (node, bit) = (st as usize / 2, st as usize % 2);
        for &ai in graph.out_arcs_of_index(node) {
            let a = &graph.arcs[ai as usize];
            for (fe, te) in arc_transitions(a).into_iter().flatten() {
                let to_st = 2 * a.to.index() + te;
                if fe == bit && finite[to_st] {
                    indeg[to_st] -= 1;
                    if indeg[to_st] == 0 {
                        peel.push(to_st as u32);
                    }
                }
            }
        }
    }
    peeled < total
}

/// Minimum level width before fanning a level out across threads;
/// narrower levels are cheaper to finish inline than to dispatch.
/// Public so the bench crate's work-span model mirrors the engine.
pub const PAR_MIN_WIDTH: usize = 128;

/// Propagates worst-case arrivals from `sources` (arrival 0 on both
/// edges, step transitions) through the graph, serially. `endpoints`
/// selects which nodes are reported as capture points.
///
/// Slope handling follows TV: each arc's delay is padded with
/// `k_slope × input_transition`, and the output transition is
/// `k_transition × τ` of the arc's RC constant. Pass
/// [`SlopeModel::disabled`] for pure step-response analysis.
pub fn propagate(
    netlist: &Netlist,
    graph: &TimingGraph,
    sources: &[NodeId],
    endpoints: &[NodeId],
    slope: &SlopeModel,
) -> PhaseResult {
    propagate_with(netlist, graph, sources, endpoints, slope, 1)
}

/// [`propagate`] with up to `jobs` worker threads per level. The module
/// docs explain why arrivals, transitions, and predecessors are
/// bit-identical at every thread count; `jobs == 1` (or narrow levels)
/// runs inline with no thread startup at all.
///
/// Cyclic structures (the schedule's residue) are first screened for
/// divergence: if a finite arrival reaches a positive-delay cycle of
/// the waveform state graph the relaxation has no fixpoint, so the
/// residue is flagged via [`PhaseResult::cyclic`] up front and left at
/// its seed values. A converging residue is finished by a worklist
/// relaxation with a budget of `64 × (arcs + nodes)` as a backstop;
/// budget exhaustion also reports [`PhaseResult::cyclic`].
pub fn propagate_with(
    netlist: &Netlist,
    graph: &TimingGraph,
    sources: &[NodeId],
    endpoints: &[NodeId],
    slope: &SlopeModel,
    jobs: usize,
) -> PhaseResult {
    propagate_reuse(
        netlist,
        graph,
        sources,
        endpoints,
        slope,
        jobs,
        None,
        Guards::default(),
        &mut Workspace::new(),
    )
}

/// [`propagate_with`] under explicit resource [`Guards`]. Guard
/// exhaustion is not an error: the result carries whatever was computed,
/// with [`PhaseResult::completion`] and [`PhaseResult::unresolved`]
/// describing what is missing.
#[allow(clippy::too_many_arguments)]
pub fn propagate_guarded(
    netlist: &Netlist,
    graph: &TimingGraph,
    sources: &[NodeId],
    endpoints: &[NodeId],
    slope: &SlopeModel,
    jobs: usize,
    guards: Guards,
) -> PhaseResult {
    propagate_reuse(
        netlist,
        graph,
        sources,
        endpoints,
        slope,
        jobs,
        None,
        guards,
        &mut Workspace::new(),
    )
}

/// The full engine: levelized parallel walk, optional cache reuse,
/// residue worklist.
#[allow(clippy::too_many_arguments)]
pub(crate) fn propagate_reuse(
    netlist: &Netlist,
    graph: &TimingGraph,
    sources: &[NodeId],
    endpoints: &[NodeId],
    slope: &SlopeModel,
    jobs: usize,
    reuse: Option<Reuse<'_>>,
    guards: Guards,
    ws: &mut Workspace,
) -> PhaseResult {
    propagate_full(
        netlist, graph, sources, endpoints, slope, jobs, reuse, guards, ws, None,
    )
}

/// Demand-driven cone engine: materializes a cached snapshot and
/// re-relaxes only the nodes marked `affected`, in level order.
///
/// Preconditions (the caller — [`crate::incremental::IncrementalCache`]
/// — enforces all three): the graph's schedule has no residue, the
/// `affected` set is forward-closed over out-arcs, and no wall-clock
/// deadline is armed. Under them the result is **bit-identical** to the
/// full walk: a node's predecessors sit at strictly lower levels, so by
/// induction every value an affected node reads is final — freshly
/// recomputed if the predecessor is itself affected, the snapshot value
/// otherwise — and the per-node evaluation reproduces
/// [`compute_node`]'s arithmetic arc for arc.
pub(crate) fn propagate_cone(
    graph: &TimingGraph,
    sources: &[NodeId],
    endpoints: &[NodeId],
    slope: &SlopeModel,
    affected: &[bool],
    cached: &CachedCase,
    ws: &mut Workspace,
) -> PhaseResult {
    let _span = tv_obs::span("propagate");
    let n = graph.node_count();
    let sched = &graph.schedule;
    debug_assert!(
        sched.residue.is_empty(),
        "cone propagation requires a fully leveled graph"
    );
    debug_assert_eq!(cached.rise.len(), n);

    let is_source = &mut ws.is_source;
    is_source.clear();
    is_source.resize(n, false);
    for &s in sources {
        is_source[s.index()] = true;
    }

    // Materialize the snapshot: values verbatim, predecessors rehydrated
    // from in-arc ordinals to the current graph's arc ids. Affected rows
    // are about to be overwritten — and their in-arc lists may have
    // changed shape, invalidating the stored ordinals — so they are left
    // unhydrated rather than read.
    let pred = |node: usize, p: Option<(u32, Edge)>| {
        p.map(|(ord, from_edge)| Pred {
            arc: graph.in_arcs_of_index(node)[ord as usize],
            from_edge,
        })
    };
    let hydrate = |stored: &[Option<(u32, Edge)>]| -> Vec<Option<Pred>> {
        (0..n)
            .map(|i| {
                if affected[i] {
                    None
                } else {
                    pred(i, stored[i])
                }
            })
            .collect()
    };
    let mut arr = Arrivals {
        rise: cached.rise.clone(),
        fall: cached.fall.clone(),
        trans_rise: cached.trans_rise.clone(),
        trans_fall: cached.trans_fall.clone(),
        pred_rise: hydrate(&cached.pred_rise),
        pred_fall: hydrate(&cached.pred_fall),
    };

    let mut cone_nodes = 0u64;
    let mut cone_relax = 0u64;
    for &nd in &sched.order {
        let ni = nd as usize;
        if !affected[ni] {
            continue;
        }
        cone_nodes += 1;
        let mut s = Slot::init(is_source[ni]);
        for &ai in graph.in_arcs_of_index(ni) {
            let arc = &graph.arcs[ai as usize];
            let fi = arc.from.index();
            let from = Slot {
                rise: arr.rise[fi],
                fall: arr.fall[fi],
                trans_rise: arr.trans_rise[fi],
                trans_fall: arr.trans_fall[fi],
                pred_rise: None,
                pred_fall: None,
            };
            let (cand_rise, rise_src, cand_fall, fall_src) = candidates(arc, &from, slope);
            if cand_rise.is_finite() && cand_rise > s.rise {
                s.rise = cand_rise;
                s.trans_rise = slope.output_transition(arc.rise_tau);
                s.pred_rise = Some(Pred {
                    arc: ai,
                    from_edge: rise_src,
                });
            }
            if cand_fall.is_finite() && cand_fall > s.fall {
                s.fall = cand_fall;
                s.trans_fall = slope.output_transition(arc.fall_tau);
                s.pred_fall = Some(Pred {
                    arc: ai,
                    from_edge: fall_src,
                });
            }
            cone_relax += 1;
        }
        arr.rise[ni] = s.rise;
        arr.fall[ni] = s.fall;
        arr.trans_rise[ni] = s.trans_rise;
        arr.trans_fall[ni] = s.trans_fall;
        arr.pred_rise[ni] = s.pred_rise;
        arr.pred_fall[ni] = s.pred_fall;
    }

    // The work counters record the cone's *actual* work — that shrinkage
    // is the warm path's whole point.
    tv_obs::add(tv_obs::Counter::PropagateRelaxations, cone_relax);
    tv_obs::add(tv_obs::Counter::PropagateNodes, cone_nodes);
    tv_obs::incr(tv_obs::Counter::PropagateCases);
    tv_obs::add(tv_obs::Counter::ConeNodes, cone_nodes);

    let mut eps: Vec<(NodeId, f64)> = endpoints
        .iter()
        .filter_map(|&e| arr.arrival(e).map(|t| (e, t)))
        .collect();
    eps.sort_by(|a, b| b.1.total_cmp(&a.1));

    PhaseResult {
        case: graph.case,
        arrivals: arr,
        endpoints: eps,
        cyclic: false,
        // Charge-equivalent, not actual: `PhaseResult::relaxations`
        // feeds the frozen report fingerprint, and the full engine
        // charges one relaxation per in-arc whether a node recomputes
        // or is served from the snapshot — one per arc in total. The
        // obs counters above record what the cone really did.
        relaxations: graph.arcs.len(),
        completion: Completion::Complete,
        unresolved: Vec::new(),
        diagnostics: Vec::new(),
    }
}

/// Innermost entry point, additionally taking a fault-injection hook
/// called with each node index before evaluation. Tests use a panicking
/// hook to exercise worker isolation; production callers pass `None`.
#[allow(clippy::too_many_arguments)]
fn propagate_full(
    netlist: &Netlist,
    graph: &TimingGraph,
    sources: &[NodeId],
    endpoints: &[NodeId],
    slope: &SlopeModel,
    jobs: usize,
    reuse: Option<Reuse<'_>>,
    guards: Guards,
    ws: &mut Workspace,
    fault: Option<&(dyn Fn(u32) + Sync)>,
) -> PhaseResult {
    let _span = tv_obs::span("propagate");
    let n = netlist.node_count();
    let sched = &graph.schedule;
    debug_assert_eq!(sched.order.len() + sched.residue.len(), n);

    let Workspace {
        is_source,
        slot_of,
        slots,
        in_residue,
        queued,
        queue,
    } = ws;
    is_source.clear();
    is_source.resize(n, false);
    for &s in sources {
        is_source[s.index()] = true;
    }

    // Reuse plans are only meaningful on fully leveled graphs: the
    // residue worklist has no per-node locality to exploit.
    let reuse = if sched.residue.is_empty() {
        reuse
    } else {
        None
    };

    // Slot permutation: leveled nodes in level order, then residue.
    slot_of.clear();
    slot_of.resize(n, 0);
    slots.clear();
    slots.reserve(n);
    for (slot, &nd) in sched.order.iter().chain(sched.residue.iter()).enumerate() {
        slot_of[nd as usize] = slot as u32;
        slots.push(Slot::init(is_source[nd as usize]));
    }

    let ctx = Ctx {
        graph,
        slope,
        slot_of: slot_of.as_slice(),
        is_source: is_source.as_slice(),
        reuse,
        fault,
    };

    let mut relaxations = 0usize;
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut panicked: Vec<u32> = Vec::new();
    let mut deadline_hit_at: Option<usize> = None;
    // Fault plane: forced early exhaustion of the deadline clock,
    // expressed deterministically (slot 0, never a wall-clock read) so
    // the PARTIAL RESULTS path it exercises is golden-able.
    if tv_fault::fault_point!(tv_fault::Site::ExhaustClock) {
        tv_obs::incr(tv_obs::Counter::FaultInjected);
        deadline_hit_at = Some(0);
    }
    for l in 0..sched.levels() {
        if deadline_hit_at.is_some() {
            break;
        }
        let lo = sched.level_starts[l] as usize;
        let hi = sched.level_starts[l + 1] as usize;
        if let Some(dl) = guards.deadline {
            if Instant::now() >= dl {
                deadline_hit_at = Some(lo);
                break;
            }
        }
        let width = hi - lo;
        let targets = &sched.order[lo..hi];
        let (done, rest) = slots.split_at_mut(lo);
        let level_out = &mut rest[..width];
        let threads = if jobs <= 1 || width < PAR_MIN_WIDTH {
            1
        } else {
            jobs.min(width)
        };
        // First attempt: the fast path, whole level serially or chunked
        // across scoped workers. Any panic is contained to its chunk and
        // reported as `Err`, leaving the level to the degraded pass below.
        let attempt: Result<usize, ()> = if threads <= 1 {
            catch_unwind(AssertUnwindSafe(|| {
                let mut relaxed = 0usize;
                for (out, &t) in level_out.iter_mut().zip(targets) {
                    let (s, r) = compute_node(ctx, done, t);
                    *out = s;
                    relaxed += r as usize;
                }
                relaxed
            }))
            .map_err(|_| ())
        } else {
            let chunk = width.div_ceil(threads);
            let done = &*done;
            std::thread::scope(|scope| {
                let handles: Vec<_> = level_out
                    .chunks_mut(chunk)
                    .zip(targets.chunks(chunk))
                    .map(|(out_chunk, t_chunk)| {
                        scope.spawn(move || {
                            catch_unwind(AssertUnwindSafe(move || {
                                let mut relaxed = 0usize;
                                for (out, &t) in out_chunk.iter_mut().zip(t_chunk) {
                                    let (s, r) = compute_node(ctx, done, t);
                                    *out = s;
                                    relaxed += r as usize;
                                }
                                relaxed
                            }))
                        })
                    })
                    .collect();
                let mut total = 0usize;
                let mut clean = true;
                for h in handles {
                    match h.join().expect("worker panic is caught inside the closure") {
                        Ok(r) => total += r,
                        Err(_) => clean = false,
                    }
                }
                if clean {
                    Ok(total)
                } else {
                    Err(())
                }
            })
        };
        match attempt {
            Ok(relaxed) => relaxations += relaxed,
            Err(()) => {
                // Degraded pass: recompute the whole level serially with
                // per-node isolation. `compute_node` is pure in the
                // finished prefix, so nodes that evaluate cleanly get
                // bit-identical values to an untroubled run; nodes that
                // panic again deterministically resolve to "no arrival".
                tv_obs::incr(tv_obs::Counter::FaultDegraded);
                diagnostics.push(Diagnostic::warning(
                    codes::ANALYSIS_WORKER_PANIC,
                    format!(
                        "a propagation worker panicked on level {l}; level recomputed serially"
                    ),
                ));
                let (done, rest) = slots.split_at_mut(lo);
                let level_out = &mut rest[..width];
                for (out, &t) in level_out.iter_mut().zip(targets) {
                    match catch_unwind(AssertUnwindSafe(|| compute_node(ctx, done, t))) {
                        Ok((s, r)) => {
                            *out = s;
                            relaxations += r as usize;
                        }
                        Err(_) => {
                            *out = Slot::init(ctx.is_source[t as usize]);
                            panicked.push(t);
                        }
                    }
                }
            }
        }
    }

    // Residue: the budgeted serial worklist, seeded with residue sources
    // and every node feeding a residue node (their slots are final).
    let mut cyclic = false;
    let mut residue_deadline_hit = false;
    if !sched.residue.is_empty() && deadline_hit_at.is_none() {
        in_residue.clear();
        in_residue.resize(n, false);
        for &r in &sched.residue {
            in_residue[r as usize] = true;
        }
        if residue_diverges(graph, slots, slot_of, in_residue, &sched.residue) {
            // A finite arrival reaches a positive-delay cycle: max-
            // relaxation has no fixpoint, every lap raises the cycle's
            // arrivals further. Flag the cycle immediately instead of
            // grinding through the relaxation budget accumulating
            // unbounded arrivals; residue nodes keep their seed values
            // (sources at 0, everything else "no arrival").
            cyclic = true;
        } else {
            queue.clear();
            queued.clear();
            queued.resize(n, false);
            let enqueue = |node: usize, queue: &mut VecDeque<u32>, queued: &mut [bool]| {
                if !queued[node] {
                    queued[node] = true;
                    queue.push_back(node as u32);
                }
            };
            for &r in &sched.residue {
                if is_source[r as usize] {
                    enqueue(r as usize, queue, queued);
                }
            }
            for a in &graph.arcs {
                if in_residue[a.to.index()] {
                    enqueue(a.from.index(), queue, queued);
                }
            }

            let budget = guards
                .relax_budget
                .unwrap_or_else(|| 64 * (graph.arcs.len() + n).max(1));
            let mut residue_relax = 0usize;
            let mut pops = 0u64;
            while let Some(nidx) = queue.pop_front() {
                let ni = nidx as usize;
                queued[ni] = false;
                if residue_relax > budget {
                    cyclic = true;
                    break;
                }
                pops += 1;
                if pops.is_multiple_of(1024) {
                    if let Some(dl) = guards.deadline {
                        if Instant::now() >= dl {
                            residue_deadline_hit = true;
                            break;
                        }
                    }
                }
                let from = slots[slot_of[ni] as usize];
                for &ai in graph.out_arcs_of_index(ni) {
                    let arc = &graph.arcs[ai as usize];
                    let to = arc.to.index();
                    let (cand_rise, rise_src, cand_fall, fall_src) = candidates(arc, &from, slope);
                    let target = &mut slots[slot_of[to] as usize];
                    let mut improved = false;
                    if cand_rise.is_finite() && cand_rise > target.rise {
                        target.rise = cand_rise;
                        target.trans_rise = slope.output_transition(arc.rise_tau);
                        target.pred_rise = Some(Pred {
                            arc: ai,
                            from_edge: rise_src,
                        });
                        improved = true;
                    }
                    if cand_fall.is_finite() && cand_fall > target.fall {
                        target.fall = cand_fall;
                        target.trans_fall = slope.output_transition(arc.fall_tau);
                        target.pred_fall = Some(Pred {
                            arc: ai,
                            from_edge: fall_src,
                        });
                        improved = true;
                    }
                    residue_relax += 1;
                    if improved {
                        enqueue(to, queue, queued);
                    }
                }
            }
            relaxations += residue_relax;
            tv_obs::add(tv_obs::Counter::PropagateResiduePops, pops);
        }
    }
    tv_obs::add(tv_obs::Counter::PropagateRelaxations, relaxations as u64);
    tv_obs::add(tv_obs::Counter::PropagateNodes, n as u64);
    tv_obs::incr(tv_obs::Counter::PropagateCases);

    // Back from slot order to node order.
    let mut arr = Arrivals {
        rise: vec![f64::NEG_INFINITY; n],
        fall: vec![f64::NEG_INFINITY; n],
        trans_rise: vec![0.0; n],
        trans_fall: vec![0.0; n],
        pred_rise: vec![None; n],
        pred_fall: vec![None; n],
    };
    for node in 0..n {
        let s = &slots[slot_of[node] as usize];
        arr.rise[node] = s.rise;
        arr.fall[node] = s.fall;
        arr.trans_rise[node] = s.trans_rise;
        arr.trans_fall[node] = s.trans_fall;
        arr.pred_rise[node] = s.pred_rise;
        arr.pred_fall[node] = s.pred_fall;
    }

    let mut eps: Vec<(NodeId, f64)> = endpoints
        .iter()
        .filter_map(|&e| arr.arrival(e).map(|t| (e, t)))
        .collect();
    eps.sort_by(|a, b| b.1.total_cmp(&a.1));

    // Guard accounting: name what is missing and why. All of this is on
    // exhaustion/degradation paths only — a clean run allocates nothing.
    let ids: Vec<NodeId> =
        if deadline_hit_at.is_some() || residue_deadline_hit || cyclic || !panicked.is_empty() {
            netlist.node_ids().collect()
        } else {
            Vec::new()
        };
    let mut unresolved: Vec<NodeId> = Vec::new();
    let mut completion = Completion::Complete;
    if let Some(from_slot) = deadline_hit_at {
        completion = Completion::DeadlineExceeded;
        unresolved.extend(sched.order[from_slot..].iter().map(|&nd| ids[nd as usize]));
        unresolved.extend(sched.residue.iter().map(|&nd| ids[nd as usize]));
        diagnostics.push(Diagnostic::warning(
            codes::ANALYSIS_DEADLINE,
            format!(
                "deadline passed before propagation finished; {} node(s) left uncomputed",
                unresolved.len()
            ),
        ));
    } else if residue_deadline_hit || cyclic {
        completion = if cyclic {
            Completion::BudgetExhausted
        } else {
            Completion::DeadlineExceeded
        };
        unresolved.extend(sched.residue.iter().map(|&nd| ids[nd as usize]));
        let (code, what) = if cyclic {
            (
                codes::ANALYSIS_BUDGET_EXHAUSTED,
                "relaxation budget exhausted (combinational cycle?)",
            )
        } else {
            (
                codes::ANALYSIS_DEADLINE,
                "deadline passed during cycle relaxation",
            )
        };
        diagnostics.push(Diagnostic::warning(
            code,
            format!(
                "{what}; arrivals on {} residue node(s) are lower bounds",
                sched.residue.len()
            ),
        ));
    }
    for &t in &panicked {
        let id = ids[t as usize];
        diagnostics.push(Diagnostic::error(
            codes::ANALYSIS_WORKER_PANIC,
            format!(
                "evaluation of node {:?} panicked; node left unresolved",
                netlist.node_name(id)
            ),
        ));
        unresolved.push(id);
    }
    unresolved.sort_unstable();
    unresolved.dedup();

    PhaseResult {
        case: graph.case,
        arrivals: arr,
        endpoints: eps,
        cyclic,
        relaxations,
        completion,
        unresolved,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PhaseCase;
    use crate::options::DelayModel;
    use tv_clocks::qualify::qualify_with_flow;
    use tv_flow::{analyze, RuleSet};
    use tv_netlist::{NetlistBuilder, Tech};

    fn run(nl: &Netlist, case: PhaseCase, sources: &[NodeId], endpoints: &[NodeId]) -> PhaseResult {
        let flow = analyze(nl, &RuleSet::all());
        let q = qualify_with_flow(nl, &flow);
        let g = TimingGraph::build(nl, &flow, &q, case, DelayModel::Elmore, 1.0);
        propagate(nl, &g, sources, endpoints, &SlopeModel::calibrated())
    }

    #[test]
    fn chain_arrivals_accumulate() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.node("x");
        let y = b.node("y");
        let z = b.output("z");
        b.inverter("i1", a, x);
        b.inverter("i2", x, y);
        b.inverter("i3", y, z);
        let nl = b.finish().unwrap();
        let r = run(&nl, PhaseCase::all_active(), &[a], &[z]);
        let ax = r.arrival(x).unwrap();
        let ay = r.arrival(y).unwrap();
        let az = r.arrival(z).unwrap();
        assert!(0.0 < ax && ax < ay && ay < az);
        assert!(!r.cyclic);
        assert_eq!(r.critical_arrival(), Some(az));
    }

    #[test]
    fn rise_fall_alternate_down_an_inverter_chain() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.node("x");
        let y = b.node("y");
        b.inverter("i1", a, x);
        b.inverter("i2", x, y);
        let nl = b.finish().unwrap();
        let r = run(&nl, PhaseCase::all_active(), &[a], &[y]);
        // x's slow edge is its rise (depletion load); y's rise is driven
        // by x's fall, so y's rise is comparatively early, and y's fall
        // waits for x's slow rise.
        let x_rise = r.arrivals.rise(x).unwrap();
        let x_fall = r.arrivals.fall(x).unwrap();
        assert!(x_rise > x_fall);
        let y_fall = r.arrivals.fall(y).unwrap();
        assert!(y_fall > x_rise, "y falls only after x rises");
    }

    #[test]
    fn unreachable_node_has_no_arrival() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let other = b.input("other");
        let x = b.node("x");
        let y = b.node("y");
        b.inverter("i1", a, x);
        b.inverter("i2", other, y);
        let nl = b.finish().unwrap();
        let r = run(&nl, PhaseCase::all_active(), &[a], &[x, y]);
        assert!(r.arrival(x).is_some());
        assert_eq!(r.arrival(y), None);
        assert_eq!(r.endpoints.len(), 1);
    }

    #[test]
    fn ring_oscillator_detected_as_cyclic() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let kick = b.input("kick");
        let n0 = b.node("n0");
        let n1 = b.node("n1");
        let n2 = b.node("n2");
        b.nand("g0", &[kick, n2], n0);
        b.inverter("g1", n0, n1);
        b.inverter("g2", n1, n2);
        let nl = b.finish().unwrap();
        let r = run(&nl, PhaseCase::all_active(), &[kick], &[n2]);
        assert!(r.cyclic, "three-ring must be flagged cyclic");
    }

    #[test]
    fn latch_breaks_the_loop_under_case_analysis() {
        // A two-phase loop: logic -> φ1 latch -> logic -> φ2 latch -> back.
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi1 = b.clock("phi1", 0);
        let phi2 = b.clock("phi2", 1);
        let l1_out = b.node("l1_out");
        let inv1 = b.node("inv1");
        b.inverter("i1", l1_out, inv1);
        let l2_out = b.node("l2_out");
        b.dynamic_latch("l2", phi2, inv1, l2_out);
        let inv2 = b.node("inv2");
        b.inverter("i2", l2_out, inv2);
        b.dynamic_latch("l1", phi1, inv2, l1_out);
        let nl = b.finish().unwrap();
        let l1_store = nl.node_by_name("l1_mem").unwrap();
        let l2_store = nl.node_by_name("l2_mem").unwrap();

        // Phase 1 (φ2 active): source is the φ1 latch, endpoint φ2 latch.
        let r = run(&nl, PhaseCase::phase(1), &[l1_store, phi2], &[l2_store]);
        assert!(!r.cyclic);
        assert!(r.arrival(l2_store).is_some());

        // Without case analysis the loop is unbroken and flagged.
        let r_naive = run(
            &nl,
            PhaseCase::all_active(),
            &[l1_store, phi1, phi2],
            &[l2_store],
        );
        assert!(r_naive.cyclic);
    }

    #[test]
    fn worst_edge_matches_arrival() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.output("x");
        b.inverter("i", a, x);
        let nl = b.finish().unwrap();
        let r = run(&nl, PhaseCase::all_active(), &[a], &[x]);
        // The slow edge of an inverter output is the rise.
        assert_eq!(r.arrivals.worst_edge(x), Some(Edge::Rise));
        assert_eq!(r.arrival(x), r.arrivals.rise(x));
    }

    #[test]
    fn edge_flip_is_involutive() {
        assert_eq!(Edge::Rise.flipped(), Edge::Fall);
        assert_eq!(Edge::Fall.flipped().flipped(), Edge::Fall);
    }

    fn ring() -> (Netlist, NodeId, NodeId) {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let kick = b.input("kick");
        let n0 = b.node("n0");
        let n1 = b.node("n1");
        let n2 = b.node("n2");
        b.nand("g0", &[kick, n2], n0);
        b.inverter("g1", n0, n1);
        b.inverter("g2", n1, n2);
        (b.finish().unwrap(), kick, n2)
    }

    #[test]
    fn clean_run_is_complete_with_no_diagnostics() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.output("x");
        b.inverter("i", a, x);
        let nl = b.finish().unwrap();
        let r = run(&nl, PhaseCase::all_active(), &[a], &[x]);
        assert_eq!(r.completion, Completion::Complete);
        assert!(r.unresolved.is_empty());
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn tiny_relax_budget_returns_partial_results_with_unresolved_nodes() {
        let (nl, kick, n2) = ring();
        let flow = analyze(&nl, &RuleSet::all());
        let q = qualify_with_flow(&nl, &flow);
        let g = TimingGraph::build(
            &nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        let guards = Guards {
            relax_budget: Some(1),
            deadline: None,
        };
        let r = propagate_guarded(
            &nl,
            &g,
            &[kick],
            &[n2],
            &SlopeModel::calibrated(),
            1,
            guards,
        );
        assert_eq!(r.completion, Completion::BudgetExhausted);
        assert!(r.cyclic);
        assert!(!r.unresolved.is_empty(), "residue nodes must be listed");
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == tv_netlist::codes::ANALYSIS_BUDGET_EXHAUSTED));
        // The partial result still carries every finished arrival.
        assert!(r.arrival(kick).is_some());
    }

    #[test]
    fn panicked_evaluation_degrades_to_no_arrival_with_diagnostic() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.node("x");
        let y = b.output("y");
        let (u, v) = (b.input("u"), b.output("v"));
        b.inverter("i1", a, x);
        b.inverter("i2", x, y);
        b.inverter("iu", u, v);
        let nl = b.finish().unwrap();
        let flow = analyze(&nl, &RuleSet::all());
        let q = qualify_with_flow(&nl, &flow);
        let g = TimingGraph::build(
            &nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        let bad = x.index() as u32;
        let hook = move |n: u32| {
            if n == bad {
                panic!("injected fault");
            }
        };
        let r = propagate_full(
            &nl,
            &g,
            &[a, u],
            &[y, v],
            &SlopeModel::calibrated(),
            1,
            None,
            Guards::default(),
            &mut Workspace::new(),
            Some(&hook),
        );
        // The poisoned node and its downstream have no arrival, the
        // independent path is untouched, and the event is on record.
        assert_eq!(r.arrival(x), None);
        assert_eq!(r.arrival(y), None);
        assert!(r.arrival(v).is_some());
        assert!(r.unresolved.contains(&x));
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == tv_netlist::codes::ANALYSIS_WORKER_PANIC));
    }

    #[test]
    fn degraded_run_is_bit_identical_across_thread_counts() {
        let (nl, kick, n2) = ring();
        let flow = analyze(&nl, &RuleSet::all());
        let q = qualify_with_flow(&nl, &flow);
        let g = TimingGraph::build(
            &nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        let bad = kick.index() as u32;
        let hook = move |n: u32| {
            if n == bad {
                panic!("injected fault");
            }
        };
        let run_at = |jobs: usize| {
            propagate_full(
                &nl,
                &g,
                &[kick],
                &[n2],
                &SlopeModel::calibrated(),
                jobs,
                None,
                Guards::default(),
                &mut Workspace::new(),
                Some(&hook),
            )
        };
        let serial = run_at(1);
        let parallel = run_at(4);
        assert_eq!(serial.arrivals.rise, parallel.arrivals.rise);
        assert_eq!(serial.arrivals.fall, parallel.arrivals.fall);
        assert_eq!(serial.unresolved, parallel.unresolved);
    }
}
