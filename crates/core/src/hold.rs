//! Race (min-delay) analysis: the *other* failure mode of level-sensitive
//! two-phase design.
//!
//! Setup analysis asks whether the slowest path settles before a phase
//! closes. Race analysis asks the opposite: while a phase is open, every
//! latch of that phase is **transparent**, so if logic connects one
//! φp latch's output back to another φp latch's input, data can shoot
//! through two latches in a single phase — the classic race-through bug
//! the two-phase discipline exists to prevent (correct designs alternate
//! phases). TV-class verifiers reported exactly this structural hazard.
//!
//! The check runs on the per-phase timing graph: from every storage node
//! of the active phase, can another storage node of the same phase be
//! reached? The earliest possible arrival (minimum-delay propagation) is
//! reported as the race margin.

use std::collections::VecDeque;

use tv_clocks::latch::Latch;
use tv_netlist::{Netlist, NodeId};

use crate::graph::TimingGraph;

/// A same-phase race-through hazard.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceHazard {
    /// The latch storage node data races *into*.
    pub capture: NodeId,
    /// Earliest arrival at the capture node from some same-phase latch,
    /// ns after the phase opens. Small values are the dangerous ones.
    pub min_arrival: f64,
}

/// Minimum (earliest) arrival at every node from the given sources,
/// `f64::INFINITY` where unreachable. Uses each arc's smaller finite
/// delay — the best case the race needs.
pub fn min_arrivals(netlist: &Netlist, graph: &TimingGraph, sources: &[NodeId]) -> Vec<f64> {
    let n = netlist.node_count();
    let mut arr = vec![f64::INFINITY; n];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut queued = vec![false; n];
    for &s in sources {
        arr[s.index()] = 0.0;
        if !queued[s.index()] {
            queued[s.index()] = true;
            queue.push_back(s);
        }
    }
    // Monotone decreasing relaxation; terminates on any graph because
    // values only decrease and are bounded below by 0.
    let budget = 64 * (graph.arcs.len() + n).max(1);
    let mut relaxations = 0usize;
    while let Some(node) = queue.pop_front() {
        queued[node.index()] = false;
        if relaxations > budget {
            break;
        }
        let here = arr[node.index()];
        for &ai in graph.out_arcs_of(node) {
            let arc = &graph.arcs[ai as usize];
            let d = arc.rise_delay.min(arc.fall_delay);
            if !d.is_finite() {
                continue;
            }
            let cand = here + d;
            let to = arc.to.index();
            relaxations += 1;
            if cand < arr[to] - 1e-15 {
                arr[to] = cand;
                if !queued[to] {
                    queued[to] = true;
                    queue.push_back(arc.to);
                }
            }
        }
    }
    arr
}

/// Finds same-phase race-through hazards in one phase's graph: storage
/// nodes of `phase` reachable *through at least one arc* from storage
/// nodes of the same phase. Results are sorted by margin (most dangerous
/// first).
pub fn race_check(
    netlist: &Netlist,
    graph: &TimingGraph,
    latches: &[Latch],
    phase: u8,
) -> Vec<RaceHazard> {
    let storages: Vec<NodeId> = latches
        .iter()
        .filter(|l| l.phase == phase)
        .map(|l| l.storage)
        .collect();
    if storages.is_empty() {
        return Vec::new();
    }
    let arr = min_arrivals(netlist, graph, &storages);

    // A storage node is both source (arrival 0) and potential victim; the
    // racing arrival is the minimum over its *incoming* arcs.
    let mut is_storage = vec![false; netlist.node_count()];
    for &s in &storages {
        is_storage[s.index()] = true;
    }
    let mut incoming_min = vec![f64::INFINITY; netlist.node_count()];
    for arc in &graph.arcs {
        let d = arc.rise_delay.min(arc.fall_delay);
        if !d.is_finite() {
            continue;
        }
        let from_arr = arr[arc.from.index()];
        if !from_arr.is_finite() {
            continue;
        }
        let to = arc.to.index();
        if is_storage[to] {
            incoming_min[to] = incoming_min[to].min(from_arr + d);
        }
    }

    let mut hazards: Vec<RaceHazard> = storages
        .iter()
        .filter_map(|&s| {
            let m = incoming_min[s.index()];
            m.is_finite().then_some(RaceHazard {
                capture: s,
                min_arrival: m,
            })
        })
        .collect();
    hazards.sort_by(|a, b| a.min_arrival.total_cmp(&b.min_arrival));
    hazards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{PhaseCase, TimingGraph};
    use crate::options::DelayModel;
    use tv_clocks::latch::find_latches;
    use tv_clocks::qualify::qualify_with_flow;
    use tv_flow::{analyze, RuleSet};
    use tv_netlist::{NetlistBuilder, Tech};

    fn setup(nl: &Netlist, phase: u8) -> (TimingGraph, Vec<Latch>) {
        let flow = analyze(nl, &RuleSet::all());
        let q = qualify_with_flow(nl, &flow);
        let latches = find_latches(nl, &flow, &q);
        let g = TimingGraph::build(
            nl,
            &flow,
            &q,
            PhaseCase::phase(phase),
            DelayModel::Elmore,
            1.0,
        );
        (g, latches)
    }

    #[test]
    fn proper_master_slave_has_no_race() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi1 = b.clock("phi1", 0);
        let phi2 = b.clock("phi2", 1);
        let d = b.input("d");
        let m = b.node("m");
        b.dynamic_latch("master", phi1, d, m);
        let q = b.node("q");
        b.dynamic_latch("slave", phi2, m, q);
        let nl = b.finish().unwrap();
        for phase in 0..2u8 {
            let (g, latches) = setup(&nl, phase);
            assert!(
                race_check(&nl, &g, &latches, phase).is_empty(),
                "phase {phase} raced"
            );
        }
    }

    #[test]
    fn two_same_phase_latches_in_series_race() {
        // The classic bug: both latches on φ1 — transparent together.
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi1 = b.clock("phi1", 0);
        let d = b.input("d");
        let m = b.node("m");
        b.dynamic_latch("first", phi1, d, m);
        let q = b.node("q");
        b.dynamic_latch("second", phi1, m, q);
        let nl = b.finish().unwrap();
        let (g, latches) = setup(&nl, 0);
        let hazards = race_check(&nl, &g, &latches, 0);
        assert_eq!(hazards.len(), 1, "{hazards:?}");
        let second_mem = nl.node_by_name("second_mem").unwrap();
        assert_eq!(hazards[0].capture, second_mem);
        assert!(hazards[0].min_arrival > 0.0);
    }

    #[test]
    fn min_arrivals_are_lower_than_max() {
        use crate::propagate::propagate;
        use tv_rc::SlopeModel;
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.node("x");
        let y = b.node("y");
        let z = b.output("z");
        b.inverter("i1", a, x);
        b.inverter("i2", x, y);
        b.inverter("i3", y, z);
        let nl = b.finish().unwrap();
        let flow = analyze(&nl, &RuleSet::all());
        let q = qualify_with_flow(&nl, &flow);
        let g = TimingGraph::build(
            &nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        let min = min_arrivals(&nl, &g, &[a]);
        let max = propagate(&nl, &g, &[a], &[z], &SlopeModel::calibrated());
        for node in [x, y, z] {
            let lo = min[node.index()];
            let hi = max.arrival(node).unwrap();
            assert!(lo.is_finite());
            assert!(lo <= hi + 1e-12, "min {lo} > max {hi}");
            assert!(lo > 0.0);
        }
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let other = b.input("other");
        let x = b.node("x");
        let y = b.node("y");
        b.inverter("i1", a, x);
        b.inverter("i2", other, y);
        let nl = b.finish().unwrap();
        let flow = analyze(&nl, &RuleSet::all());
        let q = qualify_with_flow(&nl, &flow);
        let g = TimingGraph::build(
            &nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        let min = min_arrivals(&nl, &g, &[a]);
        assert!(min[x.index()].is_finite());
        assert!(min[y.index()].is_infinite());
    }
}
