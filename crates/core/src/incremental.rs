//! Incremental invalidation: arrival memoization keyed by stage
//! fingerprints.
//!
//! Each node's **fingerprint** hashes everything that determines its
//! local evaluation: whether it is a source in the analyzed case, and
//! for every in-arc (in arc-id order) the upstream node id, the four
//! delay/τ words, the inversion flag, and the arc kind. By induction
//! over topological levels, if no node in a node's ancestry changed its
//! fingerprint between two runs, its arrival is **bit-identical** — so a
//! re-run only needs to recompute the forward cone of fingerprint
//! changes (the *dirty cone*) and can copy everything else from the
//! cache. This holds against *any* cached baseline, which is what lets
//! phase φ2 seed from phase φ1's result inside a single run: shared
//! input cones come over for free, and only clock/latch-dependent logic
//! is re-propagated.
//!
//! Invalidation rules:
//!
//! * a node is **dirty** when its fingerprint differs from the baseline
//!   (or the baseline has no entry for it);
//! * the **affected set** is the forward closure of the dirty set over
//!   out-arcs; everything outside it is copied from the cache;
//! * a configuration change that bypasses the graph (the slope model)
//!   or rebuilds it wholesale (the delay model) clears the cached
//!   arrivals — but the two are tracked as **separate keys**, because
//!   they invalidate different amounts of the surrounding pipeline: a
//!   slope change leaves every graph-shaped stage (flow, latches, the
//!   timing graphs themselves) valid, while a delay-model change
//!   invalidates the graphs too. [`IncrementalCache::begin_run`] reports
//!   which happened as a [`ConfigEffect`] so callers holding
//!   graph-granular state (the pass pipeline) keep what they may;
//! * graphs with a cyclic residue always recompute — the worklist
//!   relaxation has no per-node reuse story.

use tv_netlist::{FxHashMap, Netlist, NodeId};
use tv_rc::SlopeModel;

use crate::graph::{ArcKind, TimingGraph};
use crate::options::AnalysisOptions;
use crate::propagate::{
    propagate_cone, propagate_reuse, CachedCase, Guards, PhaseResult, Reuse, Workspace,
};

/// Which propagation engine served one analysis case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseEngine {
    /// The demand-driven cone engine: only the affected fanout cone was
    /// re-relaxed over a cached snapshot.
    Cone,
    /// The full levelized walk — cold, residue present, an oversized
    /// cone, or a deadline guard armed.
    Full,
}

/// Reuse statistics for one analysis case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseStats {
    /// The case: `Some(p)` for phase `p`, `None` for all-active.
    pub case: Option<u8>,
    /// Nodes in the graph.
    pub nodes: usize,
    /// Nodes actually re-evaluated (the affected cone).
    pub recomputed: usize,
    /// Which engine produced the arrivals.
    pub engine: CaseEngine,
}

impl CaseStats {
    /// Nodes whose arrivals were copied from the cache.
    pub fn reused(&self) -> usize {
        self.nodes - self.recomputed
    }
}

struct CaseEntry {
    /// Graph-pass input fingerprint the snapshot was taken under. A
    /// later run whose graph fingerprint still equals this one has, by
    /// the stamp counters' monotonicity, an arc-for-arc identical graph
    /// and source set — so the whole fingerprint/snapshot cycle can be
    /// skipped, not just the propagation.
    graph_fp: u64,
    fingerprints: Vec<u64>,
    cached: CachedCase,
}

/// What the graph pass certifies about a case's arcs, handed to
/// [`IncrementalCache::propagate_case`] so the warm path can skip
/// re-hashing arcs it is told did not change.
pub(crate) struct CaseDelta {
    /// Graph-pass input fingerprint the arcs currently reflect.
    pub(crate) graph_fp: u64,
    /// When known: the fingerprint the arcs previously reflected, and
    /// exactly which node indices may hold different in-arc words now
    /// (the splice's touched span targets; empty after a reuse or
    /// revalidation). The certifying pass also guarantees the case's
    /// source and endpoint sets are unchanged across that step. `None`
    /// means a full rebuild — nothing is certified.
    pub(crate) since: Option<(u64, Vec<u32>)>,
}

/// What a configuration change at the start of a run invalidated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigEffect {
    /// Same slope and delay model as the previous run: every cached case
    /// is a usable baseline.
    Unchanged,
    /// The slope model changed. Cached **arrivals** are stale — slope
    /// handling acts at propagation time, so arc fingerprints cannot see
    /// it — but nothing graph-shaped is: arc delays, and therefore the
    /// flow/latch/graph stages a pipeline keys off them, remain valid.
    SlopeChanged,
    /// The delay model changed: arc delays themselves are stale, so both
    /// the cached arrivals *and* any graph built under the old model are
    /// invalid.
    ModelChanged,
}

/// The incremental-invalidation cache. Hold one across
/// [`crate::Analyzer::run_incremental`] calls to make re-analysis after
/// a netlist edit proportional to the edit's cone instead of the chip.
#[derive(Default)]
pub struct IncrementalCache {
    slope_key: Option<u64>,
    model_key: Option<u64>,
    cases: FxHashMap<Option<u8>, CaseEntry>,
    stats: Vec<CaseStats>,
    /// Propagation scratch, reused across cases and runs.
    workspace: Workspace,
}

impl IncrementalCache {
    /// An empty cache: the first run is a cold run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reuse statistics of the most recent run, one entry per case in
    /// execution order.
    pub fn last_stats(&self) -> &[CaseStats] {
        &self.stats
    }

    /// Starts a run: clears per-run stats, and drops the cached arrivals
    /// if either the slope or the delay model changed since the previous
    /// run. The two keys are tracked separately and the distinction is
    /// returned: a slope-only change clears just the arrivals, while a
    /// model change additionally tells the caller that graphs built
    /// under the old model are stale.
    pub(crate) fn begin_run(&mut self, options: &AnalysisOptions) -> ConfigEffect {
        self.stats.clear();
        let slope = slope_key(options);
        let model = options.model as u64;
        let effect = if self.model_key != Some(model) && self.model_key.is_some() {
            ConfigEffect::ModelChanged
        } else if self.slope_key != Some(slope) && self.slope_key.is_some() {
            ConfigEffect::SlopeChanged
        } else {
            ConfigEffect::Unchanged
        };
        if self.slope_key != Some(slope) || self.model_key != Some(model) {
            self.cases.clear();
            self.slope_key = Some(slope);
            self.model_key = Some(model);
        }
        effect
    }

    /// Drops every cached case (and both configuration keys), forcing
    /// the next run cold. The propagation workspace survives — it holds
    /// no results, only capacity.
    pub fn clear(&mut self) {
        self.cases.clear();
        self.slope_key = None;
        self.model_key = None;
        self.stats.clear();
    }

    /// Propagates one case, reusing every clean cone the cache can
    /// justify, and refreshes the cache with the result.
    ///
    /// `delta` is the graph pass's certificate about what changed since
    /// the previous run; it gates two warm fast paths (both bit-identical
    /// to the full path by construction):
    ///
    /// * the cached entry carries the *current* graph fingerprint — no
    ///   edit touched this case at all, so the stored fingerprints and
    ///   snapshot are already exact: materialize the snapshot through
    ///   the zero-seed cone engine without hashing an arc or
    ///   re-snapshotting a node;
    /// * the entry carries the fingerprint the delta says the arcs
    ///   *previously* reflected — only the delta's listed nodes can have
    ///   changed, so only they are re-hashed, their fanout closure is
    ///   re-relaxed by [`crate::propagate`]'s demand-driven cone engine
    ///   (falling back to the full walk when the cone passes half the
    ///   graph or a deadline is armed), and the entry is patched in
    ///   place instead of rebuilt.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn propagate_case(
        &mut self,
        netlist: &Netlist,
        graph: &TimingGraph,
        sources: &[NodeId],
        endpoints: &[NodeId],
        slope: &SlopeModel,
        jobs: usize,
        guards: Guards,
        delta: &CaseDelta,
    ) -> PhaseResult {
        let n = netlist.node_count();
        let key = graph.case.active;
        let clean = graph.schedule.residue.is_empty();

        // Fault plane: a forced certificate corruption. Dropping the
        // cached entry forces every path below onto the cold recompute,
        // whose result is bit-identical by the cache's own contract —
        // corruption degrades cost, never answers.
        if tv_fault::fault_point!(tv_fault::Site::CertLookup) {
            tv_obs::incr(tv_obs::Counter::FaultInjected);
            tv_obs::incr(tv_obs::Counter::FaultDegraded);
            self.cases.remove(&key);
        }

        if clean {
            if let Some(entry) = self.cases.get(&key) {
                if entry.graph_fp == delta.graph_fp && entry.fingerprints.len() == n {
                    let affected = vec![false; n];
                    // Zero-seed cone: the snapshot is served as-is.
                    // Only an armed deadline forces the full walk (the
                    // set of resolved nodes must stay the walk's).
                    let (result, engine) = if guards.deadline.is_none() {
                        let r = propagate_cone(
                            graph,
                            sources,
                            endpoints,
                            slope,
                            &affected,
                            &entry.cached,
                            &mut self.workspace,
                        );
                        (r, CaseEngine::Cone)
                    } else {
                        tv_obs::incr(tv_obs::Counter::ConeFallbacks);
                        let reuse = Reuse {
                            affected: &affected,
                            cached: &entry.cached,
                        };
                        let r = propagate_reuse(
                            netlist,
                            graph,
                            sources,
                            endpoints,
                            slope,
                            jobs,
                            Some(reuse),
                            guards,
                            &mut self.workspace,
                        );
                        (r, CaseEngine::Full)
                    };
                    tv_obs::incr(tv_obs::Counter::CacheCaseHits);
                    tv_obs::add(tv_obs::Counter::CacheNodesReused, n as u64);
                    self.stats.push(CaseStats {
                        case: key,
                        nodes: n,
                        recomputed: 0,
                        engine,
                    });
                    return result;
                }
            }
        }

        let mut is_source = vec![false; n];
        for &s in sources {
            is_source[s.index()] = true;
        }

        if clean {
            if let Some((prev_fp, dirty)) = delta.since.as_ref() {
                let hit = self
                    .cases
                    .get(&key)
                    .is_some_and(|e| e.graph_fp == *prev_fp && e.fingerprints.len() == n);
                if hit {
                    let entry = self.cases.get(&key).unwrap();
                    let fresh: Vec<(usize, u64)> = dirty
                        .iter()
                        .map(|&i| i as usize)
                        .map(|i| (i, node_fingerprint(graph, &is_source, i)))
                        .collect();
                    let seeds: Vec<usize> = fresh
                        .iter()
                        .filter(|&&(i, fp)| entry.fingerprints[i] != fp)
                        .map(|&(i, _)| i)
                        .collect();
                    let seed_count = seeds.len();
                    let mut affected = vec![false; n];
                    for &i in &seeds {
                        affected[i] = true;
                    }
                    graph.fanout_closure(&mut affected, seeds);
                    let recomputed = affected.iter().filter(|&&d| d).count();
                    // The cone engine wins while the affected cone is a
                    // minority of the graph; past half the nodes the
                    // chunkable full walk is at least as good, and an
                    // armed deadline always needs the walk's level-
                    // boundary checks. Both cut-offs depend only on the
                    // certified edit, never on `jobs` — the work
                    // counters stay schedule-independent.
                    let use_cone = guards.deadline.is_none() && recomputed * 2 <= n;
                    let (result, engine) = if use_cone {
                        tv_obs::add(tv_obs::Counter::ConeSeeds, seed_count as u64);
                        let r = propagate_cone(
                            graph,
                            sources,
                            endpoints,
                            slope,
                            &affected,
                            &entry.cached,
                            &mut self.workspace,
                        );
                        (r, CaseEngine::Cone)
                    } else {
                        tv_obs::incr(tv_obs::Counter::ConeFallbacks);
                        let reuse = Reuse {
                            affected: &affected,
                            cached: &entry.cached,
                        };
                        let r = propagate_reuse(
                            netlist,
                            graph,
                            sources,
                            endpoints,
                            slope,
                            jobs,
                            Some(reuse),
                            guards,
                            &mut self.workspace,
                        );
                        (r, CaseEngine::Full)
                    };
                    let entry = self.cases.get_mut(&key).unwrap();
                    entry.graph_fp = delta.graph_fp;
                    for &(i, fp) in &fresh {
                        entry.fingerprints[i] = fp;
                    }
                    entry
                        .cached
                        .update_from_arrivals(graph, &result.arrivals, &affected);
                    tv_obs::incr(tv_obs::Counter::CacheCaseMisses);
                    tv_obs::add(tv_obs::Counter::CacheNodesReused, (n - recomputed) as u64);
                    tv_obs::add(tv_obs::Counter::CacheNodesRecomputed, recomputed as u64);
                    self.stats.push(CaseStats {
                        case: key,
                        nodes: n,
                        recomputed,
                        engine,
                    });
                    return result;
                }
            }
        }

        let fps = node_fingerprints(graph, &is_source);

        // Baseline: this case's own entry if present, else any finished
        // case in a fixed preference order (correct for any baseline).
        let baseline = if clean {
            [key, Some(0), Some(1), None]
                .into_iter()
                .find_map(|k| self.cases.get(&k))
        } else {
            None
        };

        let (result, recomputed) = match baseline {
            Some(entry) => {
                let affected = affected_cone(graph, &fps, &entry.fingerprints);
                let recomputed = affected.iter().filter(|&&d| d).count();
                let reuse = Reuse {
                    affected: &affected,
                    cached: &entry.cached,
                };
                let r = propagate_reuse(
                    netlist,
                    graph,
                    sources,
                    endpoints,
                    slope,
                    jobs,
                    Some(reuse),
                    guards,
                    &mut self.workspace,
                );
                (r, recomputed)
            }
            None => {
                let r = propagate_reuse(
                    netlist,
                    graph,
                    sources,
                    endpoints,
                    slope,
                    jobs,
                    None,
                    guards,
                    &mut self.workspace,
                );
                (r, n)
            }
        };

        self.cases.insert(
            key,
            CaseEntry {
                graph_fp: delta.graph_fp,
                fingerprints: fps,
                cached: CachedCase::from_arrivals(graph, &result.arrivals),
            },
        );
        tv_obs::incr(tv_obs::Counter::CacheCaseMisses);
        tv_obs::add(tv_obs::Counter::CacheNodesReused, (n - recomputed) as u64);
        tv_obs::add(tv_obs::Counter::CacheNodesRecomputed, recomputed as u64);
        self.stats.push(CaseStats {
            case: key,
            nodes: n,
            recomputed,
            engine: CaseEngine::Full,
        });
        result
    }
}

/// Dirty nodes (fingerprint mismatch vs the baseline) plus their forward
/// closure over out-arcs.
fn affected_cone(graph: &TimingGraph, fps: &[u64], baseline: &[u64]) -> Vec<bool> {
    let n = fps.len();
    let mut affected: Vec<bool> = (0..n).map(|i| baseline.get(i) != Some(&fps[i])).collect();
    let stack: Vec<usize> = (0..n).filter(|&i| affected[i]).collect();
    graph.fanout_closure(&mut affected, stack);
    affected
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// Word-wise mixer shared with the pass pipeline. These fingerprints
/// are compared only within one process, never persisted, so the cheap
/// splitmix64 round replaces the old byte-wise FNV loop — node
/// fingerprinting is on the warm-path of every incremental run.
use crate::fingerprint::mix64 as mix;

fn arc_kind_tag(kind: ArcKind) -> u64 {
    match kind {
        ArcKind::Gate => 0,
        ArcKind::BufferPull => 1,
        ArcKind::PassData => 2,
        ArcKind::PassControl => 3,
        ArcKind::Precharge => 4,
    }
}

/// Per-node stage fingerprints: everything that determines the node's
/// local evaluation given its predecessors' arrivals.
pub(crate) fn node_fingerprints(graph: &TimingGraph, is_source: &[bool]) -> Vec<u64> {
    (0..graph.node_count())
        .map(|i| node_fingerprint(graph, is_source, i))
        .collect()
}

fn node_fingerprint(graph: &TimingGraph, is_source: &[bool], i: usize) -> u64 {
    let mut h = mix(FNV_OFFSET, is_source[i] as u64);
    for &ai in graph.in_arcs_of_index(i) {
        let a = &graph.arcs[ai as usize];
        h = mix(h, a.from.index() as u64);
        h = mix(h, a.rise_delay.to_bits());
        h = mix(h, a.fall_delay.to_bits());
        h = mix(h, a.rise_tau.to_bits());
        h = mix(h, a.fall_tau.to_bits());
        h = mix(h, a.inverting as u64);
        h = mix(h, arc_kind_tag(a.kind));
    }
    h
}

/// Slope-model digest: the part of the configuration that acts at
/// propagation time, where arc fingerprints cannot see it. Kept separate
/// from the delay-model key so a slope change does not masquerade as a
/// graph change.
fn slope_key(options: &AnalysisOptions) -> u64 {
    let mut h = FNV_OFFSET;
    h = mix(h, options.slope.k_slope.to_bits());
    h = mix(h, options.slope.k_transition.to_bits());
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PhaseCase;
    use crate::options::DelayModel;
    use tv_clocks::qualify::qualify_with_flow;
    use tv_flow::{analyze, RuleSet};
    use tv_netlist::{NetlistBuilder, Tech};

    fn chain(n: usize) -> tv_netlist::Netlist {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let mut prev = a;
        for i in 0..n {
            let nx = b.node(format!("s{i}"));
            b.inverter(format!("i{i}"), prev, nx);
            prev = nx;
        }
        b.finish().unwrap()
    }

    /// An uncertified delta: forces the full fingerprint path when `fp`
    /// differs from the cached entry's.
    fn full(fp: u64) -> CaseDelta {
        CaseDelta {
            graph_fp: fp,
            since: None,
        }
    }

    fn graph_and_sources(nl: &tv_netlist::Netlist) -> (TimingGraph, Vec<NodeId>, Vec<NodeId>) {
        let flow = analyze(nl, &RuleSet::all());
        let q = qualify_with_flow(nl, &flow);
        let g = TimingGraph::build(
            nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        let src = vec![nl.node_by_name("a").unwrap()];
        let eps: Vec<NodeId> = nl
            .node_ids()
            .filter(|&i| !nl.node(i).role().is_rail())
            .collect();
        (g, src, eps)
    }

    #[test]
    fn identical_rerun_recomputes_nothing() {
        let nl = chain(6);
        let (g, src, eps) = graph_and_sources(&nl);
        let slope = SlopeModel::calibrated();
        let mut cache = IncrementalCache::new();
        cache.begin_run(&AnalysisOptions::default());
        let cold =
            cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default(), &full(1));
        cache.begin_run(&AnalysisOptions::default());
        let warm =
            cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default(), &full(2));
        let stats = cache.last_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].recomputed, 0, "nothing changed");
        assert_eq!(stats[0].reused(), nl.node_count());
        for i in nl.node_ids() {
            assert_eq!(
                cold.arrivals.rise(i).map(f64::to_bits),
                warm.arrivals.rise(i).map(f64::to_bits)
            );
            assert_eq!(
                cold.arrivals.fall(i).map(f64::to_bits),
                warm.arrivals.fall(i).map(f64::to_bits)
            );
        }
    }

    #[test]
    fn matching_graph_fp_takes_snapshot_fast_path() {
        // Same certified graph fingerprint on the warm run: no arc is
        // re-hashed, nothing recomputes, and the result is bit-identical.
        let nl = chain(6);
        let (g, src, eps) = graph_and_sources(&nl);
        let slope = SlopeModel::calibrated();
        let mut cache = IncrementalCache::new();
        cache.begin_run(&AnalysisOptions::default());
        let cold =
            cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default(), &full(7));
        cache.begin_run(&AnalysisOptions::default());
        let warm =
            cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default(), &full(7));
        assert_eq!(cache.last_stats()[0].recomputed, 0);
        assert_eq!(cold.relaxations, warm.relaxations);
        assert_eq!(cold.endpoints, warm.endpoints);
        for i in nl.node_ids() {
            assert_eq!(
                cold.arrivals.rise(i).map(f64::to_bits),
                warm.arrivals.rise(i).map(f64::to_bits)
            );
            assert_eq!(
                cold.arrivals.fall(i).map(f64::to_bits),
                warm.arrivals.fall(i).map(f64::to_bits)
            );
        }
    }

    #[test]
    fn certified_empty_delta_skips_rehash() {
        // A `since` certificate naming the cached fingerprint with an
        // empty dirty list: the incremental path runs (new graph_fp is
        // adopted) without recomputing anything.
        let nl = chain(5);
        let (g, src, eps) = graph_and_sources(&nl);
        let slope = SlopeModel::calibrated();
        let mut cache = IncrementalCache::new();
        cache.begin_run(&AnalysisOptions::default());
        let cold =
            cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default(), &full(7));
        cache.begin_run(&AnalysisOptions::default());
        let step = CaseDelta {
            graph_fp: 8,
            since: Some((7, Vec::new())),
        };
        let warm = cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default(), &step);
        assert_eq!(cache.last_stats()[0].recomputed, 0);
        for i in nl.node_ids() {
            assert_eq!(
                cold.arrivals.rise(i).map(f64::to_bits),
                warm.arrivals.rise(i).map(f64::to_bits)
            );
        }
        // The adopted fingerprint chains: a third run certified against
        // fp 8 still reuses everything.
        cache.begin_run(&AnalysisOptions::default());
        cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default(), &full(8));
        assert_eq!(cache.last_stats()[0].recomputed, 0);
    }

    #[test]
    fn stale_certificate_falls_back_to_full_hash() {
        // A `since` certificate naming a fingerprint the cache never
        // stored must be ignored — the full fingerprint path still
        // produces a correct (here: fully reused, identical) result.
        let nl = chain(5);
        let (g, src, eps) = graph_and_sources(&nl);
        let slope = SlopeModel::calibrated();
        let mut cache = IncrementalCache::new();
        cache.begin_run(&AnalysisOptions::default());
        let cold =
            cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default(), &full(7));
        cache.begin_run(&AnalysisOptions::default());
        let step = CaseDelta {
            graph_fp: 9,
            since: Some((8, Vec::new())),
        };
        let warm = cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default(), &step);
        for i in nl.node_ids() {
            assert_eq!(
                cold.arrivals.rise(i).map(f64::to_bits),
                warm.arrivals.rise(i).map(f64::to_bits)
            );
        }
    }

    #[test]
    fn config_change_clears_cache() {
        let nl = chain(4);
        let (g, src, eps) = graph_and_sources(&nl);
        let slope = SlopeModel::calibrated();
        let mut cache = IncrementalCache::new();
        cache.begin_run(&AnalysisOptions::default());
        cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default(), &full(1));
        // Different slope handling: every cached arrival is invalid.
        let opts = AnalysisOptions {
            slope: SlopeModel::disabled(),
            ..AnalysisOptions::default()
        };
        cache.begin_run(&opts);
        cache.propagate_case(
            &nl,
            &g,
            &src,
            &eps,
            &SlopeModel::disabled(),
            1,
            Guards::default(),
            &full(2),
        );
        assert_eq!(cache.last_stats()[0].recomputed, nl.node_count());
    }

    #[test]
    fn slope_and_model_changes_are_distinguished() {
        let mut cache = IncrementalCache::new();
        let base = AnalysisOptions::default();
        assert_eq!(cache.begin_run(&base), ConfigEffect::Unchanged);
        assert_eq!(cache.begin_run(&base), ConfigEffect::Unchanged);
        let slope_only = AnalysisOptions {
            slope: SlopeModel::disabled(),
            ..AnalysisOptions::default()
        };
        assert_eq!(cache.begin_run(&slope_only), ConfigEffect::SlopeChanged);
        let model_too = AnalysisOptions {
            model: DelayModel::Lumped,
            slope: SlopeModel::disabled(),
            ..AnalysisOptions::default()
        };
        assert_eq!(cache.begin_run(&model_too), ConfigEffect::ModelChanged);
        assert_eq!(cache.begin_run(&model_too), ConfigEffect::Unchanged);
        cache.clear();
        // After a clear there is no previous configuration to differ from.
        assert_eq!(cache.begin_run(&model_too), ConfigEffect::Unchanged);
    }

    #[test]
    fn edit_dirties_only_downstream_cone() {
        // Two parallel chains off separate inputs; editing one leaves the
        // other's fingerprints (hence arrivals) untouched.
        let build = |wide: bool| {
            let mut b = NetlistBuilder::new(Tech::nmos4um());
            let a = b.input("a");
            let c = b.input("c");
            let mut prev = a;
            for i in 0..4 {
                let nx = b.node(format!("sa{i}"));
                b.inverter(format!("ia{i}"), prev, nx);
                prev = nx;
            }
            let mut prev = c;
            let mut sc1 = None;
            for i in 0..4 {
                let nx = b.node(format!("sc{i}"));
                b.inverter(format!("ic{i}"), prev, nx);
                if i == 1 {
                    sc1 = Some(nx);
                }
                prev = nx;
            }
            if wide {
                b.add_cap(sc1.unwrap(), 0.3).unwrap();
            }
            b.finish().unwrap()
        };
        let nl1 = build(false);
        let nl2 = build(true);
        let slope = SlopeModel::calibrated();
        let mut cache = IncrementalCache::new();
        cache.begin_run(&AnalysisOptions::default());
        {
            let flow = analyze(&nl1, &RuleSet::all());
            let q = qualify_with_flow(&nl1, &flow);
            let g = TimingGraph::build(
                &nl1,
                &flow,
                &q,
                PhaseCase::all_active(),
                DelayModel::Elmore,
                1.0,
            );
            let src = vec![
                nl1.node_by_name("a").unwrap(),
                nl1.node_by_name("c").unwrap(),
            ];
            let eps: Vec<NodeId> = nl1
                .node_ids()
                .filter(|&i| !nl1.node(i).role().is_rail())
                .collect();
            cache.propagate_case(&nl1, &g, &src, &eps, &slope, 1, Guards::default(), &full(1));
        }
        cache.begin_run(&AnalysisOptions::default());
        let flow = analyze(&nl2, &RuleSet::all());
        let q = qualify_with_flow(&nl2, &flow);
        let g = TimingGraph::build(
            &nl2,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        let src = vec![
            nl2.node_by_name("a").unwrap(),
            nl2.node_by_name("c").unwrap(),
        ];
        let eps: Vec<NodeId> = nl2
            .node_ids()
            .filter(|&i| !nl2.node(i).role().is_rail())
            .collect();
        let warm =
            cache.propagate_case(&nl2, &g, &src, &eps, &slope, 1, Guards::default(), &full(2));
        let stats = cache.last_stats()[0];
        assert!(stats.recomputed > 0, "the edited cone re-runs");
        assert!(
            stats.recomputed < nl2.node_count(),
            "the untouched chain is reused ({} of {})",
            stats.recomputed,
            stats.nodes
        );
        // And the warm result equals a cold run, bit for bit.
        let cold = crate::propagate::propagate(&nl2, &g, &src, &eps, &slope);
        for i in nl2.node_ids() {
            assert_eq!(
                cold.arrivals.rise(i).map(f64::to_bits),
                warm.arrivals.rise(i).map(f64::to_bits)
            );
            assert_eq!(
                cold.arrivals.fall(i).map(f64::to_bits),
                warm.arrivals.fall(i).map(f64::to_bits)
            );
        }
    }

    /// An inverter chain with an optional extra wiring cap on `s0`, so
    /// two builds differ by one physical edit near the chain's head.
    fn chain_with_cap(n: usize, cap_on_s0: bool) -> tv_netlist::Netlist {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let mut prev = a;
        for i in 0..n {
            let nx = b.node(format!("s{i}"));
            b.inverter(format!("i{i}"), prev, nx);
            if i == 0 && cap_on_s0 {
                b.add_cap(nx, 0.3).unwrap();
            }
            prev = nx;
        }
        b.finish().unwrap()
    }

    /// Asserts two phase results agree bit-for-bit: arrivals, transition
    /// times, predecessor records, endpoints, and the charged relaxation
    /// count (the figure the golden fingerprint hashes).
    fn assert_bit_identical(nl: &tv_netlist::Netlist, a: &PhaseResult, b: &PhaseResult) {
        for i in nl.node_ids() {
            let i = i.index();
            assert_eq!(a.arrivals.rise[i].to_bits(), b.arrivals.rise[i].to_bits());
            assert_eq!(a.arrivals.fall[i].to_bits(), b.arrivals.fall[i].to_bits());
            assert_eq!(
                a.arrivals.trans_rise[i].to_bits(),
                b.arrivals.trans_rise[i].to_bits()
            );
            assert_eq!(
                a.arrivals.trans_fall[i].to_bits(),
                b.arrivals.trans_fall[i].to_bits()
            );
            let pred = |p: &Option<crate::propagate::Pred>| p.map(|p| (p.arc, p.from_edge));
            assert_eq!(
                pred(&a.arrivals.pred_rise[i]),
                pred(&b.arrivals.pred_rise[i]),
                "rise pred diverged at node {i}"
            );
            assert_eq!(
                pred(&a.arrivals.pred_fall[i]),
                pred(&b.arrivals.pred_fall[i]),
                "fall pred diverged at node {i}"
            );
        }
        assert_eq!(a.relaxations, b.relaxations, "charged relaxations differ");
        assert_eq!(a.endpoints.len(), b.endpoints.len());
        for (x, y) in a.endpoints.iter().zip(&b.endpoints) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }

    /// A certificate naming the cached fingerprint with *every* node
    /// dirty — a valid (if lazy) superset: seeds are re-derived from
    /// actual fingerprint mismatches.
    fn certify_all(prev_fp: u64, new_fp: u64, n: usize) -> CaseDelta {
        CaseDelta {
            graph_fp: new_fp,
            since: Some((prev_fp, (0..n as u32).collect())),
        }
    }

    #[test]
    fn certified_cone_is_bit_identical_to_full_walk() {
        // A cap edit near the tail of a deep chain: the affected cone is
        // a strict minority, so the demand-driven cone engine runs — and
        // must reproduce the full walk bit for bit, preds included.
        let build = |cap: bool| {
            let mut b = NetlistBuilder::new(Tech::nmos4um());
            let a = b.input("a");
            let mut prev = a;
            for i in 0..8 {
                let nx = b.node(format!("s{i}"));
                b.inverter(format!("i{i}"), prev, nx);
                if i == 6 && cap {
                    b.add_cap(nx, 0.3).unwrap();
                }
                prev = nx;
            }
            b.finish().unwrap()
        };
        let nl1 = build(false);
        let nl2 = build(true);
        let slope = SlopeModel::calibrated();
        let mut cache = IncrementalCache::new();
        cache.begin_run(&AnalysisOptions::default());
        {
            let (g, src, eps) = graph_and_sources(&nl1);
            cache.propagate_case(&nl1, &g, &src, &eps, &slope, 1, Guards::default(), &full(1));
        }
        cache.begin_run(&AnalysisOptions::default());
        let (g, src, eps) = graph_and_sources(&nl2);
        let delta = certify_all(1, 2, nl2.node_count());
        let warm = cache.propagate_case(&nl2, &g, &src, &eps, &slope, 1, Guards::default(), &delta);
        let stats = cache.last_stats()[0];
        assert_eq!(stats.engine, CaseEngine::Cone, "cone engine should run");
        assert!(stats.recomputed > 0 && stats.recomputed * 2 <= stats.nodes);
        let cold = crate::propagate::propagate(&nl2, &g, &src, &eps, &slope);
        assert_bit_identical(&nl2, &cold, &warm);
        assert_eq!(warm.relaxations, g.arcs.len(), "charge-equivalence");
    }

    #[test]
    fn oversized_cone_falls_back_to_full_walk() {
        // The same edit at the chain's head: the cone covers a majority
        // of the graph, so the engine falls back to the full walk — and
        // the result is still bit-identical.
        let nl1 = chain_with_cap(6, false);
        let nl2 = chain_with_cap(6, true);
        let slope = SlopeModel::calibrated();
        let mut cache = IncrementalCache::new();
        cache.begin_run(&AnalysisOptions::default());
        {
            let (g, src, eps) = graph_and_sources(&nl1);
            cache.propagate_case(&nl1, &g, &src, &eps, &slope, 1, Guards::default(), &full(1));
        }
        cache.begin_run(&AnalysisOptions::default());
        let (g, src, eps) = graph_and_sources(&nl2);
        let delta = certify_all(1, 2, nl2.node_count());
        let warm = cache.propagate_case(&nl2, &g, &src, &eps, &slope, 1, Guards::default(), &delta);
        let stats = cache.last_stats()[0];
        assert_eq!(
            stats.engine,
            CaseEngine::Full,
            "majority cone must fall back"
        );
        let cold = crate::propagate::propagate(&nl2, &g, &src, &eps, &slope);
        assert_bit_identical(&nl2, &cold, &warm);
    }

    #[test]
    fn armed_deadline_forces_full_walk() {
        // A deadline needs the full walk's level-boundary checks, so the
        // cone engine must not run even on a snapshot-served fast path.
        let nl = chain_with_cap(5, false);
        let slope = SlopeModel::calibrated();
        let mut cache = IncrementalCache::new();
        cache.begin_run(&AnalysisOptions::default());
        let (g, src, eps) = graph_and_sources(&nl);
        cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default(), &full(1));
        cache.begin_run(&AnalysisOptions::default());
        let far_off = Guards {
            deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(3600)),
            ..Guards::default()
        };
        let warm = cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, far_off, &full(1));
        let stats = cache.last_stats()[0];
        assert_eq!(stats.engine, CaseEngine::Full);
        assert_eq!(stats.recomputed, 0, "the snapshot still serves the values");
        let cold = crate::propagate::propagate(&nl, &g, &src, &eps, &slope);
        assert_bit_identical(&nl, &cold, &warm);
    }
}
