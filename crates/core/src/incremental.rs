//! Incremental invalidation: arrival memoization keyed by stage
//! fingerprints.
//!
//! Each node's **fingerprint** hashes everything that determines its
//! local evaluation: whether it is a source in the analyzed case, and
//! for every in-arc (in arc-id order) the upstream node id, the four
//! delay/τ words, the inversion flag, and the arc kind. By induction
//! over topological levels, if no node in a node's ancestry changed its
//! fingerprint between two runs, its arrival is **bit-identical** — so a
//! re-run only needs to recompute the forward cone of fingerprint
//! changes (the *dirty cone*) and can copy everything else from the
//! cache. This holds against *any* cached baseline, which is what lets
//! phase φ2 seed from phase φ1's result inside a single run: shared
//! input cones come over for free, and only clock/latch-dependent logic
//! is re-propagated.
//!
//! Invalidation rules:
//!
//! * a node is **dirty** when its fingerprint differs from the baseline
//!   (or the baseline has no entry for it);
//! * the **affected set** is the forward closure of the dirty set over
//!   out-arcs; everything outside it is copied from the cache;
//! * a configuration change that bypasses the graph (the slope model)
//!   or rebuilds it wholesale (the delay model) clears the cache;
//! * graphs with a cyclic residue always recompute — the worklist
//!   relaxation has no per-node reuse story.

use tv_netlist::{FxHashMap, Netlist, NodeId};
use tv_rc::SlopeModel;

use crate::graph::{ArcKind, TimingGraph};
use crate::options::AnalysisOptions;
use crate::propagate::{propagate_reuse, CachedCase, Guards, PhaseResult, Reuse, Workspace};

/// Reuse statistics for one analysis case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseStats {
    /// The case: `Some(p)` for phase `p`, `None` for all-active.
    pub case: Option<u8>,
    /// Nodes in the graph.
    pub nodes: usize,
    /// Nodes actually re-evaluated (the affected cone).
    pub recomputed: usize,
}

impl CaseStats {
    /// Nodes whose arrivals were copied from the cache.
    pub fn reused(&self) -> usize {
        self.nodes - self.recomputed
    }
}

struct CaseEntry {
    fingerprints: Vec<u64>,
    cached: CachedCase,
}

/// The incremental-invalidation cache. Hold one across
/// [`crate::Analyzer::run_incremental`] calls to make re-analysis after
/// a netlist edit proportional to the edit's cone instead of the chip.
#[derive(Default)]
pub struct IncrementalCache {
    config: Option<u64>,
    cases: FxHashMap<Option<u8>, CaseEntry>,
    stats: Vec<CaseStats>,
    /// Propagation scratch, reused across cases and runs.
    workspace: Workspace,
}

impl IncrementalCache {
    /// An empty cache: the first run is a cold run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reuse statistics of the most recent run, one entry per case in
    /// execution order.
    pub fn last_stats(&self) -> &[CaseStats] {
        &self.stats
    }

    /// Starts a run: clears per-run stats and drops every cached case if
    /// the analysis configuration changed in a way fingerprints cannot
    /// see.
    pub(crate) fn begin_run(&mut self, options: &AnalysisOptions) {
        self.stats.clear();
        let key = config_key(options);
        if self.config != Some(key) {
            self.cases.clear();
            self.config = Some(key);
        }
    }

    /// Propagates one case, reusing every clean cone the cache can
    /// justify, and refreshes the cache with the result.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn propagate_case(
        &mut self,
        netlist: &Netlist,
        graph: &TimingGraph,
        sources: &[NodeId],
        endpoints: &[NodeId],
        slope: &SlopeModel,
        jobs: usize,
        guards: Guards,
    ) -> PhaseResult {
        let n = netlist.node_count();
        let key = graph.case.active;
        let mut is_source = vec![false; n];
        for &s in sources {
            is_source[s.index()] = true;
        }
        let fps = node_fingerprints(graph, &is_source);

        // Baseline: this case's own entry if present, else any finished
        // case in a fixed preference order (correct for any baseline).
        let baseline = if graph.schedule.residue.is_empty() {
            [key, Some(0), Some(1), None]
                .into_iter()
                .find_map(|k| self.cases.get(&k))
        } else {
            None
        };

        let (result, recomputed) = match baseline {
            Some(entry) => {
                let affected = affected_cone(graph, &fps, &entry.fingerprints);
                let recomputed = affected.iter().filter(|&&d| d).count();
                let reuse = Reuse {
                    affected: &affected,
                    cached: &entry.cached,
                };
                let r = propagate_reuse(
                    netlist,
                    graph,
                    sources,
                    endpoints,
                    slope,
                    jobs,
                    Some(reuse),
                    guards,
                    &mut self.workspace,
                );
                (r, recomputed)
            }
            None => {
                let r = propagate_reuse(
                    netlist,
                    graph,
                    sources,
                    endpoints,
                    slope,
                    jobs,
                    None,
                    guards,
                    &mut self.workspace,
                );
                (r, n)
            }
        };

        self.cases.insert(
            key,
            CaseEntry {
                fingerprints: fps,
                cached: CachedCase::from_arrivals(graph, &result.arrivals),
            },
        );
        self.stats.push(CaseStats {
            case: key,
            nodes: n,
            recomputed,
        });
        result
    }
}

/// Dirty nodes (fingerprint mismatch vs the baseline) plus their forward
/// closure over out-arcs.
fn affected_cone(graph: &TimingGraph, fps: &[u64], baseline: &[u64]) -> Vec<bool> {
    let n = fps.len();
    let mut affected: Vec<bool> = (0..n).map(|i| baseline.get(i) != Some(&fps[i])).collect();
    let mut stack: Vec<usize> = (0..n).filter(|&i| affected[i]).collect();
    while let Some(i) = stack.pop() {
        for &ai in graph.out_arcs_of_index(i) {
            let to = graph.arcs[ai as usize].to.index();
            if !affected[to] {
                affected[to] = true;
                stack.push(to);
            }
        }
    }
    affected
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn arc_kind_tag(kind: ArcKind) -> u64 {
    match kind {
        ArcKind::Gate => 0,
        ArcKind::BufferPull => 1,
        ArcKind::PassData => 2,
        ArcKind::PassControl => 3,
        ArcKind::Precharge => 4,
    }
}

/// Per-node stage fingerprints: everything that determines the node's
/// local evaluation given its predecessors' arrivals.
pub(crate) fn node_fingerprints(graph: &TimingGraph, is_source: &[bool]) -> Vec<u64> {
    (0..graph.node_count())
        .map(|i| {
            let mut h = mix(FNV_OFFSET, is_source[i] as u64);
            for &ai in graph.in_arcs_of_index(i) {
                let a = &graph.arcs[ai as usize];
                h = mix(h, a.from.index() as u64);
                h = mix(h, a.rise_delay.to_bits());
                h = mix(h, a.fall_delay.to_bits());
                h = mix(h, a.rise_tau.to_bits());
                h = mix(h, a.fall_tau.to_bits());
                h = mix(h, a.inverting as u64);
                h = mix(h, arc_kind_tag(a.kind));
            }
            h
        })
        .collect()
}

/// Configuration digest for wholesale invalidation: the slope model acts
/// at propagation time (fingerprints cannot see it), and the delay model
/// is folded in for cheap insurance even though arc delays carry it.
fn config_key(options: &AnalysisOptions) -> u64 {
    let mut h = FNV_OFFSET;
    h = mix(h, options.model as u64);
    h = mix(h, options.slope.k_slope.to_bits());
    h = mix(h, options.slope.k_transition.to_bits());
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PhaseCase;
    use crate::options::DelayModel;
    use tv_clocks::qualify::qualify_with_flow;
    use tv_flow::{analyze, RuleSet};
    use tv_netlist::{NetlistBuilder, Tech};

    fn chain(n: usize) -> tv_netlist::Netlist {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let mut prev = a;
        for i in 0..n {
            let nx = b.node(format!("s{i}"));
            b.inverter(format!("i{i}"), prev, nx);
            prev = nx;
        }
        b.finish().unwrap()
    }

    fn graph_and_sources(nl: &tv_netlist::Netlist) -> (TimingGraph, Vec<NodeId>, Vec<NodeId>) {
        let flow = analyze(nl, &RuleSet::all());
        let q = qualify_with_flow(nl, &flow);
        let g = TimingGraph::build(
            nl,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        let src = vec![nl.node_by_name("a").unwrap()];
        let eps: Vec<NodeId> = nl
            .node_ids()
            .filter(|&i| !nl.node(i).role().is_rail())
            .collect();
        (g, src, eps)
    }

    #[test]
    fn identical_rerun_recomputes_nothing() {
        let nl = chain(6);
        let (g, src, eps) = graph_and_sources(&nl);
        let slope = SlopeModel::calibrated();
        let mut cache = IncrementalCache::new();
        cache.begin_run(&AnalysisOptions::default());
        let cold = cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default());
        cache.begin_run(&AnalysisOptions::default());
        let warm = cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default());
        let stats = cache.last_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].recomputed, 0, "nothing changed");
        assert_eq!(stats[0].reused(), nl.node_count());
        for i in nl.node_ids() {
            assert_eq!(
                cold.arrivals.rise(i).map(f64::to_bits),
                warm.arrivals.rise(i).map(f64::to_bits)
            );
            assert_eq!(
                cold.arrivals.fall(i).map(f64::to_bits),
                warm.arrivals.fall(i).map(f64::to_bits)
            );
        }
    }

    #[test]
    fn config_change_clears_cache() {
        let nl = chain(4);
        let (g, src, eps) = graph_and_sources(&nl);
        let slope = SlopeModel::calibrated();
        let mut cache = IncrementalCache::new();
        cache.begin_run(&AnalysisOptions::default());
        cache.propagate_case(&nl, &g, &src, &eps, &slope, 1, Guards::default());
        // Different slope handling: every cached arrival is invalid.
        let opts = AnalysisOptions {
            slope: SlopeModel::disabled(),
            ..AnalysisOptions::default()
        };
        cache.begin_run(&opts);
        cache.propagate_case(
            &nl,
            &g,
            &src,
            &eps,
            &SlopeModel::disabled(),
            1,
            Guards::default(),
        );
        assert_eq!(cache.last_stats()[0].recomputed, nl.node_count());
    }

    #[test]
    fn edit_dirties_only_downstream_cone() {
        // Two parallel chains off separate inputs; editing one leaves the
        // other's fingerprints (hence arrivals) untouched.
        let build = |wide: bool| {
            let mut b = NetlistBuilder::new(Tech::nmos4um());
            let a = b.input("a");
            let c = b.input("c");
            let mut prev = a;
            for i in 0..4 {
                let nx = b.node(format!("sa{i}"));
                b.inverter(format!("ia{i}"), prev, nx);
                prev = nx;
            }
            let mut prev = c;
            let mut sc1 = None;
            for i in 0..4 {
                let nx = b.node(format!("sc{i}"));
                b.inverter(format!("ic{i}"), prev, nx);
                if i == 1 {
                    sc1 = Some(nx);
                }
                prev = nx;
            }
            if wide {
                b.add_cap(sc1.unwrap(), 0.3).unwrap();
            }
            b.finish().unwrap()
        };
        let nl1 = build(false);
        let nl2 = build(true);
        let slope = SlopeModel::calibrated();
        let mut cache = IncrementalCache::new();
        cache.begin_run(&AnalysisOptions::default());
        {
            let flow = analyze(&nl1, &RuleSet::all());
            let q = qualify_with_flow(&nl1, &flow);
            let g = TimingGraph::build(
                &nl1,
                &flow,
                &q,
                PhaseCase::all_active(),
                DelayModel::Elmore,
                1.0,
            );
            let src = vec![
                nl1.node_by_name("a").unwrap(),
                nl1.node_by_name("c").unwrap(),
            ];
            let eps: Vec<NodeId> = nl1
                .node_ids()
                .filter(|&i| !nl1.node(i).role().is_rail())
                .collect();
            cache.propagate_case(&nl1, &g, &src, &eps, &slope, 1, Guards::default());
        }
        cache.begin_run(&AnalysisOptions::default());
        let flow = analyze(&nl2, &RuleSet::all());
        let q = qualify_with_flow(&nl2, &flow);
        let g = TimingGraph::build(
            &nl2,
            &flow,
            &q,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
        );
        let src = vec![
            nl2.node_by_name("a").unwrap(),
            nl2.node_by_name("c").unwrap(),
        ];
        let eps: Vec<NodeId> = nl2
            .node_ids()
            .filter(|&i| !nl2.node(i).role().is_rail())
            .collect();
        let warm = cache.propagate_case(&nl2, &g, &src, &eps, &slope, 1, Guards::default());
        let stats = cache.last_stats()[0];
        assert!(stats.recomputed > 0, "the edited cone re-runs");
        assert!(
            stats.recomputed < nl2.node_count(),
            "the untouched chain is reused ({} of {})",
            stats.recomputed,
            stats.nodes
        );
        // And the warm result equals a cold run, bit for bit.
        let cold = crate::propagate::propagate(&nl2, &g, &src, &eps, &slope);
        for i in nl2.node_ids() {
            assert_eq!(
                cold.arrivals.rise(i).map(f64::to_bits),
                warm.arrivals.rise(i).map(f64::to_bits)
            );
            assert_eq!(
                cold.arrivals.fall(i).map(f64::to_bits),
                warm.arrivals.fall(i).map(f64::to_bits)
            );
        }
    }
}
