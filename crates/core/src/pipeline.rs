//! The pass pipeline: demand-driven analysis over a revisioned design.
//!
//! Each analysis stage — flow resolution, clock qualification, latch
//! finding, per-case timing-graph construction, arrival propagation,
//! electrical checks — is a named **pass** with a declared input
//! fingerprint and a content-based output fingerprint. A
//! [`PassManager`] holds the last result of every pass; an `analyze`
//! call recomputes a pass only when its input fingerprint changed, and
//! because downstream passes key off the upstream pass's *output*
//! fingerprint, an upstream rerun that reproduces the same content
//! revalidates the whole chain below it without recompute (the
//! salsa-style early-exit).
//!
//! Input fingerprints are built from the [`Design`]'s revision stamp,
//! which splits edits into independent counters — topology, geometry,
//! capacitance, technology — matching what each pass actually reads:
//!
//! | pass | reads |
//! |---|---|
//! | `flow` | topology, rules |
//! | `qualify` | flow, topology |
//! | `latches` | flow, qualify, topology |
//! | `graph(case)` | topology, geometry, caps, tech, delay model, flow, qualify |
//! | `arrivals(case)` | graph(case), slope model |
//! | `checks` | topology, geometry, caps, tech, flow, qualify |
//!
//! So a capacitance edit cannot re-run flow (flow's inputs don't
//! include the cap counter), and a W/L resize cannot re-find latches.
//!
//! The graph passes go one step further than all-or-nothing: a
//! session-grade manager records per-root arc **spans** and a per-node
//! **extent index** (which roots read which node's caps/geometry) at
//! build time. A parametric edit then resynthesizes only the affected
//! roots and splices their delays into the existing graph in place —
//! CSR adjacency and level schedule are untouched because parametric
//! edits cannot change arc structure. The incremental arrival cache
//! sees the spliced delay words as dirty fingerprints and re-propagates
//! exactly the affected cone. Every reuse path is bit-identical to a
//! cold run; the golden fingerprints in `tests/integration_layout.rs`
//! and the session-vs-oneshot tests in `tests/integration_session.rs`
//! enforce it.

use std::time::Instant;

use tv_clocks::latch::{find_latches, Latch};
use tv_clocks::qualify::{qualify_with_flow, Qualification};
use tv_clocks::ClockConstraints;
use tv_flow::FlowAnalysis;
use tv_netlist::{Design, DesignStamp, DirtySince, Netlist, Revision};

use crate::analyzer::{
    endpoints_or_all, external_sources, phase_endpoints, phase_sources, PhaseAnalysis,
    TimingReport, SOURCE_RESISTANCE,
};
use crate::checks::{check_electrical, CheckIssue};
use crate::error::TvError;
use crate::fingerprint::{flow_fingerprint, hash_words, mix64};
use crate::graph::{splice_roots, BuildScratch, GraphBuilder, PhaseCase, RootKind, TimingGraph};
use crate::incremental::{CaseDelta, CaseEngine, IncrementalCache};
use crate::macromodel::{build_spanned, Extraction};
use crate::options::AnalysisOptions;
use crate::paths::critical_paths;
use crate::propagate::{propagate_reuse, Guards, Workspace};

/// Names a pass instance. Graph and arrival passes are per case:
/// `None` is the all-active (combinational) view, `Some(p)` phase `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassId {
    /// Signal-flow direction resolution.
    Flow,
    /// Clock qualification of every node.
    Qualify,
    /// Latch finding.
    Latches,
    /// Hierarchical macromodel extraction for one case: grouping the
    /// build roots into structural equivalence classes ahead of graph
    /// construction (see `crate::macromodel`).
    Extract(Option<u8>),
    /// Timing-graph construction for one case.
    Graph(Option<u8>),
    /// Arrival propagation for one case.
    Arrivals(Option<u8>),
    /// Electrical rule checks.
    Checks,
}

impl PassId {
    /// Stable dotted name, e.g. `graph.phi1` (used by the session
    /// protocol's pass trace).
    pub fn name(&self) -> &'static str {
        match self {
            PassId::Flow => "flow",
            PassId::Qualify => "qualify",
            PassId::Latches => "latches",
            PassId::Extract(None) => "extract.comb",
            PassId::Extract(Some(0)) => "extract.phi1",
            PassId::Extract(Some(_)) => "extract.phi2",
            PassId::Graph(None) => "graph.comb",
            PassId::Graph(Some(0)) => "graph.phi1",
            PassId::Graph(Some(_)) => "graph.phi2",
            PassId::Arrivals(None) => "arrivals.comb",
            PassId::Arrivals(Some(0)) => "arrivals.phi1",
            PassId::Arrivals(Some(_)) => "arrivals.phi2",
            PassId::Checks => "checks",
        }
    }
}

/// Static description of one pass kind for docs and tooling.
pub struct PassInfo {
    /// Pass family name (case-instantiated passes drop the suffix).
    pub name: &'static str,
    /// The declared inputs, as stamp-counter / upstream-pass names.
    pub inputs: &'static [&'static str],
}

/// The declared pass graph: which inputs each pass reads. This table is
/// documentation-grade truth — the fingerprint construction in this
/// module is the executable version.
pub const PASS_TABLE: &[PassInfo] = &[
    PassInfo {
        name: "flow",
        inputs: &["topology", "rules"],
    },
    PassInfo {
        name: "qualify",
        inputs: &["flow", "topology"],
    },
    PassInfo {
        name: "latches",
        inputs: &["flow", "qualify", "topology"],
    },
    PassInfo {
        name: "extract",
        inputs: &[
            "flow", "qualify", "topology", "geometry", "caps", "tech", "model",
        ],
    },
    PassInfo {
        name: "graph",
        inputs: &[
            "extract", "flow", "qualify", "topology", "geometry", "caps", "tech", "model",
        ],
    },
    PassInfo {
        name: "arrivals",
        inputs: &["graph", "slope"],
    },
    PassInfo {
        name: "checks",
        inputs: &["flow", "qualify", "topology", "geometry", "caps", "tech"],
    },
];

/// How one pass was satisfied during an `analyze` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassOutcome {
    /// Input fingerprint matched: the cached result was used untouched.
    Reused,
    /// The pass ran from scratch.
    Computed,
    /// Graph pass only: the affected roots were rebuilt and their delays
    /// spliced into the existing graph in place.
    Spliced {
        /// Number of roots resynthesized.
        roots: usize,
    },
    /// Graph pass only: the edit dirtied nodes outside every root's
    /// extent, so the cached graph was revalidated without touching an
    /// arc.
    Revalidated,
    /// Arrival pass only: the demand-driven cone engine re-relaxed just
    /// the affected fanout cone over a cached snapshot (bit-identical to
    /// the full walk).
    Cone {
        /// Number of nodes the cone re-relaxed.
        recomputed: usize,
    },
}

/// One entry of [`PassManager::last_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassEvent {
    /// Which pass.
    pub pass: PassId,
    /// How it was satisfied.
    pub outcome: PassOutcome,
}

impl PassEvent {
    /// Whether the pass did any real work (everything except `Reused`).
    pub fn reran(&self) -> bool {
        self.outcome != PassOutcome::Reused
    }
}

/// A cached pass result with its input and output fingerprints.
struct Slot<T> {
    input_fp: u64,
    output_fp: u64,
    value: T,
}

/// Per-root splice support recorded at graph build time.
struct SpliceIndex {
    /// Prefix offsets: root `k` owns arcs `spans[k]..spans[k + 1]`.
    spans: Vec<u32>,
    /// CSR offsets into `extent_roots` by node index.
    extent_starts: Vec<u32>,
    /// Root ordinals whose arc delays read the node's caps or adjacent
    /// geometry, grouped by node.
    extent_roots: Vec<u32>,
}

/// A cached timing graph for one case.
struct GraphSlot {
    input_fp: u64,
    /// Like `input_fp` but excluding the geometry and capacitance
    /// counters: matching shape under a mismatching input means only
    /// delay *values* moved — the precondition for splicing.
    shape_fp: u64,
    /// Design revision the arcs currently reflect; `dirty_since` from
    /// here yields exactly the edits the graph has not absorbed.
    built_revision: Revision,
    graph: TimingGraph,
    roots: Vec<(tv_netlist::NodeId, RootKind)>,
    /// `None` when spans were not recorded (one-shot mode, or a build
    /// worker panicked) — such a slot always rebuilds in full.
    splice: Option<SpliceIndex>,
    /// The macromodel class partition from the build, used to de-share
    /// instanced stages a parametric edit touches. `None` when the
    /// build degraded to flat isolation or spans were not recorded.
    extraction: Option<Extraction>,
}

/// Demand-driven pass manager over a [`Design`].
///
/// Hold one per long-lived design (the `tv session` REPL holds one per
/// loaded design) and call [`PassManager::analyze`] after each batch of
/// edits; only the passes whose declared inputs changed re-run, and the
/// graph passes splice rather than rebuild when the edit was
/// parametric. Reports are bit-identical to a fresh
/// [`crate::Analyzer::run`] on the same netlist.
#[derive(Default)]
pub struct PassManager {
    /// Whether graph builds record spans/extents for splicing. Costs a
    /// little build time and memory; the throwaway one-shot path skips
    /// it.
    record_spans: bool,
    flow: Option<Slot<FlowAnalysis>>,
    qual: Option<Slot<Vec<Qualification>>>,
    latches: Option<Slot<Vec<Latch>>>,
    /// Graph slots: `[comb, phase 0, phase 1]`.
    graphs: [Option<GraphSlot>; 3],
    checks: Option<Slot<Vec<CheckIssue>>>,
    /// Arrival memoization (stage-fingerprint granular), shared across
    /// all cases.
    cache: IncrementalCache,
    /// Propagation scratch for the uncached path.
    workspace: Workspace,
    trace: Vec<PassEvent>,
}

impl PassManager {
    /// A session-grade manager: graph builds record per-root spans and
    /// extents so parametric edits splice instead of rebuilding.
    pub fn new() -> Self {
        PassManager {
            record_spans: true,
            ..Default::default()
        }
    }

    /// A throwaway manager for the one-shot `Analyzer` path: no span
    /// recording, byte-for-byte the pre-pipeline build behavior.
    pub(crate) fn one_shot() -> Self {
        PassManager::default()
    }

    /// Runs (or revalidates) the full pipeline against the design's
    /// current state. Panics on size-limit errors like
    /// [`crate::Analyzer::run`]; use [`PassManager::try_analyze`] to
    /// enforce limits (and to receive a violated pipeline invariant as
    /// [`TvError::Internal`] instead of a panic).
    pub fn analyze(&mut self, design: &Design, options: &AnalysisOptions) -> TimingReport {
        self.analyze_design(design, options, false)
            .expect("unguarded analyze: limits are off and pipeline invariants hold")
    }

    /// [`PassManager::analyze`] with [`AnalysisOptions::max_nodes`] and
    /// [`AnalysisOptions::max_arcs`] enforced (refusing with
    /// [`TvError::TooLarge`]).
    pub fn try_analyze(
        &mut self,
        design: &Design,
        options: &AnalysisOptions,
    ) -> Result<TimingReport, TvError> {
        self.analyze_design(design, options, true)
    }

    /// The pass trace of the most recent `analyze`, in execution order.
    pub fn last_trace(&self) -> &[PassEvent] {
        &self.trace
    }

    /// The current fingerprint of a pass: output (content) fingerprints
    /// for the interned analyses (flow, qualify, latches), input
    /// fingerprints for the graph and check passes, `None` for a pass
    /// that has not run or for arrivals (memoized per node, not per
    /// pass).
    pub fn pass_fingerprint(&self, pass: PassId) -> Option<u64> {
        match pass {
            PassId::Flow => self.flow.as_ref().map(|s| s.output_fp),
            PassId::Qualify => self.qual.as_ref().map(|s| s.output_fp),
            PassId::Latches => self.latches.as_ref().map(|s| s.output_fp),
            PassId::Extract(c) => self.graphs[case_slot(c)]
                .as_ref()
                .and_then(|s| s.extraction.as_ref())
                .map(|e| e.fingerprint()),
            PassId::Graph(c) => self.graphs[case_slot(c)].as_ref().map(|s| s.input_fp),
            PassId::Arrivals(_) => None,
            PassId::Checks => self.checks.as_ref().map(|s| s.input_fp),
        }
    }

    /// The macromodel extraction for a case's cached graph, if the most
    /// recent build extracted one (`None` in one-shot mode or after a
    /// degraded build).
    pub fn extraction(&self, case: Option<u8>) -> Option<&Extraction> {
        self.graphs[case_slot(case)]
            .as_ref()
            .and_then(|s| s.extraction.as_ref())
    }

    /// Arrival-reuse statistics of the most recent `analyze`, one entry
    /// per propagated case.
    pub fn cache_stats(&self) -> &[crate::incremental::CaseStats] {
        self.cache.last_stats()
    }

    fn analyze_design(
        &mut self,
        design: &Design,
        options: &AnalysisOptions,
        enforce_limits: bool,
    ) -> Result<TimingReport, TvError> {
        // The arrival cache is a field, but `analyze_inner` needs it as
        // an independent borrow alongside the slot fields: lift it out
        // for the duration of the run.
        let mut cache = std::mem::take(&mut self.cache);
        let r = self.analyze_inner(
            design.netlist(),
            design.stamp(),
            Some(design),
            options,
            Some(&mut cache),
            enforce_limits,
        );
        self.cache = cache;
        r
    }

    /// The pipeline body shared by the session path and the one-shot
    /// `Analyzer` facade. `stamp` is the design's counter snapshot (a
    /// [`DesignStamp::unique`] snapshot on the one-shot path, so nothing
    /// ever falsely matches); `design` enables dirty-set queries for
    /// splicing; `cache` is the arrival memo (`None` = plain
    /// propagation).
    pub(crate) fn analyze_inner(
        &mut self,
        nl: &Netlist,
        stamp: DesignStamp,
        design: Option<&Design>,
        options: &AnalysisOptions,
        mut cache: Option<&mut IncrementalCache>,
        enforce_limits: bool,
    ) -> Result<TimingReport, TvError> {
        let _span = tv_obs::span("analyze");
        self.trace.clear();
        // Fault plane: pipeline entry is a trust boundary — a forced
        // internal error here must surface as a typed `TvError`, which
        // the session supervisor retries once against a reset pipeline.
        if tv_fault::fault_point!(tv_fault::Site::PassEntry) {
            tv_obs::incr(tv_obs::Counter::FaultInjected);
            return Err(internal("injected fault at pass_entry (tv_fault)"));
        }
        if enforce_limits {
            if let Some(limit) = options.max_nodes {
                let count = nl.node_count();
                if count > limit {
                    return Err(TvError::TooLarge {
                        what: "nodes",
                        count,
                        limit,
                    });
                }
            }
        }
        let jobs = options.effective_jobs();
        let guards = Guards {
            relax_budget: options.relax_budget,
            deadline: options.deadline.map(|d| Instant::now() + d),
        };
        if let Some(c) = cache.as_deref_mut() {
            c.begin_run(options);
        }

        // --- flow ---
        let flow_in = hash_words(&[stamp.design, stamp.topo, rules_fp(options)]);
        let flow_reran = match &self.flow {
            Some(s) if s.input_fp == flow_in => false,
            _ => {
                let _s = tv_obs::span("pass.flow");
                let value = tv_flow::analyze(nl, &options.rules);
                let output_fp = flow_fingerprint(nl, &value);
                self.flow = Some(Slot {
                    input_fp: flow_in,
                    output_fp,
                    value,
                });
                true
            }
        };
        push(&mut self.trace, PassId::Flow, flow_reran);
        let flow_slot = self
            .flow
            .as_ref()
            .ok_or(internal("flow pass left no result"))?;
        let flow_fp = flow_slot.output_fp;
        let flow = &flow_slot.value;

        // --- qualify ---
        let qual_in = hash_words(&[stamp.design, stamp.topo, flow_fp]);
        let qual_reran = match &self.qual {
            Some(s) if s.input_fp == qual_in => false,
            _ => {
                let _s = tv_obs::span("pass.qualify");
                let value = qualify_with_flow(nl, flow);
                let output_fp = qual_content_fp(&value);
                self.qual = Some(Slot {
                    input_fp: qual_in,
                    output_fp,
                    value,
                });
                true
            }
        };
        push(&mut self.trace, PassId::Qualify, qual_reran);
        let qual_slot = self
            .qual
            .as_ref()
            .ok_or(internal("qualify pass left no result"))?;
        let qual_fp = qual_slot.output_fp;
        let qual = qual_slot.value.as_slice();

        // --- latches ---
        let latch_in = hash_words(&[stamp.design, stamp.topo, flow_fp, qual_fp]);
        let latch_reran = match &self.latches {
            Some(s) if s.input_fp == latch_in => false,
            _ => {
                let _s = tv_obs::span("pass.latches");
                let value = find_latches(nl, flow, qual);
                let output_fp = latch_content_fp(&value);
                self.latches = Some(Slot {
                    input_fp: latch_in,
                    output_fp,
                    value,
                });
                true
            }
        };
        push(&mut self.trace, PassId::Latches, latch_reran);
        let latches = self
            .latches
            .as_ref()
            .ok_or(internal("latch pass left no result"))?
            .value
            .as_slice();

        // Derived views are recomputed every run — they are cheap
        // projections of the cached analyses, and keeping them out of
        // the slots keeps the invalidation story small.
        let flow_report = flow.report(nl);
        let census = flow.census();
        let mut diagnostics = flow.diagnostics(nl);

        // --- combinational case ---
        let comb_delta = graph_pass(
            &mut self.graphs[0],
            &mut self.trace,
            self.record_spans,
            nl,
            flow,
            qual,
            PhaseCase::all_active(),
            stamp,
            design,
            options,
            flow_fp,
            qual_fp,
            jobs,
        );
        let comb_slot = self.graphs[0]
            .as_ref()
            .ok_or(internal("graph pass left no combinational slot"))?;
        if enforce_limits {
            if let Some(limit) = options.max_arcs {
                let count = comb_slot.graph.arc_count();
                if count > limit {
                    return Err(TvError::TooLarge {
                        what: "arcs",
                        count,
                        limit,
                    });
                }
            }
        }
        diagnostics.extend(comb_slot.graph.diagnostics.iter().cloned());
        let comb_sources = external_sources(nl);
        let comb_endpoints = endpoints_or_all(nl, nl.outputs());
        let combinational = match cache.as_deref_mut() {
            Some(c) => c.propagate_case(
                nl,
                &comb_slot.graph,
                &comb_sources,
                &comb_endpoints,
                &options.slope,
                jobs,
                guards,
                &comb_delta,
            ),
            None => propagate_reuse(
                nl,
                &comb_slot.graph,
                &comb_sources,
                &comb_endpoints,
                &options.slope,
                jobs,
                None,
                guards,
                &mut self.workspace,
            ),
        };
        self.trace.push(PassEvent {
            pass: PassId::Arrivals(None),
            outcome: arrivals_outcome(&cache),
        });
        diagnostics.extend(combinational.diagnostics.iter().cloned());
        let combinational_paths = critical_paths(&comb_slot.graph, &combinational, options.top_k);

        // --- per-phase cases ---
        let mut phases = Vec::new();
        if options.case_analysis && !nl.clocks().is_empty() {
            for p in 0..2u8 {
                let delta = graph_pass(
                    &mut self.graphs[1 + p as usize],
                    &mut self.trace,
                    self.record_spans,
                    nl,
                    flow,
                    qual,
                    PhaseCase::phase(p),
                    stamp,
                    design,
                    options,
                    flow_fp,
                    qual_fp,
                    jobs,
                );
                let slot = self.graphs[1 + p as usize]
                    .as_ref()
                    .ok_or(internal("graph pass left no phase slot"))?;
                diagnostics.extend(slot.graph.diagnostics.iter().cloned());
                let sources = phase_sources(nl, latches, p);
                let endpoints = phase_endpoints(nl, latches, p);
                let result = match cache.as_deref_mut() {
                    Some(c) => c.propagate_case(
                        nl,
                        &slot.graph,
                        &sources,
                        &endpoints,
                        &options.slope,
                        jobs,
                        guards,
                        &delta,
                    ),
                    None => propagate_reuse(
                        nl,
                        &slot.graph,
                        &sources,
                        &endpoints,
                        &options.slope,
                        jobs,
                        None,
                        guards,
                        &mut self.workspace,
                    ),
                };
                self.trace.push(PassEvent {
                    pass: PassId::Arrivals(Some(p)),
                    outcome: arrivals_outcome(&cache),
                });
                diagnostics.extend(result.diagnostics.iter().cloned());
                let paths = critical_paths(&slot.graph, &result, options.top_k);
                let slack = result
                    .critical_arrival()
                    .map(|a| options.clock.width(p) - a);
                let races = crate::hold::race_check(nl, &slot.graph, latches, p);
                phases.push(PhaseAnalysis {
                    phase: p,
                    arcs: slot.graph.arc_count(),
                    result,
                    paths,
                    slack,
                    races,
                });
            }
        }

        let min_cycle = if phases.len() == 2 {
            let a0 = phases[0].result.critical_arrival().unwrap_or(0.0);
            let a1 = phases[1].result.critical_arrival().unwrap_or(0.0);
            Some(ClockConstraints::new(options.clock).min_cycle(a0, a1))
        } else {
            None
        };

        // --- checks ---
        let checks_in = hash_words(&[
            stamp.design,
            stamp.topo,
            stamp.geom,
            stamp.cap,
            stamp.tech,
            flow_fp,
            qual_fp,
        ]);
        let checks_reran = match &self.checks {
            Some(s) if s.input_fp == checks_in => false,
            _ => {
                let _s = tv_obs::span("pass.checks");
                let value = check_electrical(nl, flow, qual);
                tv_obs::add(tv_obs::Counter::CheckIssues, value.len() as u64);
                self.checks = Some(Slot {
                    input_fp: checks_in,
                    output_fp: 0,
                    value,
                });
                true
            }
        };
        push(&mut self.trace, PassId::Checks, checks_reran);
        let checks = self
            .checks
            .as_ref()
            .ok_or(internal("checks pass left no result"))?
            .value
            .clone();
        diagnostics.extend(checks.iter().map(|c| c.diagnostic(nl)));

        // Pass outcomes into the observability counters (the trace is
        // the single source; `add` is a no-op when the plane is off).
        let (mut computed, mut reused, mut spliced, mut revalidated, mut roots) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for e in &self.trace {
            match e.outcome {
                // A cone pass did real (if little) work: it counts as
                // computed in the pass-level telemetry; the cone.*
                // counters carry the finer story.
                PassOutcome::Computed | PassOutcome::Cone { .. } => computed += 1,
                PassOutcome::Reused => reused += 1,
                PassOutcome::Spliced { roots: r } => {
                    spliced += 1;
                    // The extract pass reports de-shared instances in
                    // its `roots` field; only graph splices count here.
                    if !matches!(e.pass, PassId::Extract(_)) {
                        roots += r as u64;
                    }
                }
                PassOutcome::Revalidated => revalidated += 1,
            }
        }
        tv_obs::add(tv_obs::Counter::PassComputed, computed);
        tv_obs::add(tv_obs::Counter::PassReused, reused);
        tv_obs::add(tv_obs::Counter::PassSpliced, spliced);
        tv_obs::add(tv_obs::Counter::PassRevalidated, revalidated);
        tv_obs::add(tv_obs::Counter::GraphRootsSpliced, roots);

        Ok(TimingReport {
            flow_report,
            census,
            combinational,
            combinational_paths,
            phases,
            latches: latches.to_vec(),
            checks,
            min_cycle,
            diagnostics,
        })
    }
}

/// One-shot entry for the `Analyzer` facade: a throwaway manager with a
/// unique stamp, so every pass computes exactly as the pre-pipeline
/// code did (including `build_par` graphs without span recording).
pub(crate) fn oneshot(
    nl: &Netlist,
    options: &AnalysisOptions,
    cache: Option<&mut IncrementalCache>,
    enforce_limits: bool,
) -> Result<TimingReport, TvError> {
    PassManager::one_shot().analyze_inner(
        nl,
        DesignStamp::unique(),
        None,
        options,
        cache,
        enforce_limits,
    )
}

/// The graph pass for one case: reuse on a clean input fingerprint,
/// splice on a parametric-only delta (matching shape, recorded spans,
/// clean diagnostics, node-granular dirty set), full rebuild otherwise.
///
/// Returns the [`CaseDelta`] certificate for the arrival cache: the
/// graph fingerprint the arcs now reflect, and — when the pass reused,
/// revalidated, or spliced — exactly which node indices may hold
/// different in-arc words than under the previous fingerprint. The
/// certificate's "sources and endpoints unchanged" clause holds because
/// every non-rebuild outcome pins topology, flow, and qualification
/// (via `shape_fp`), which determine the latch set and hence every
/// case's source/endpoint lists.
#[allow(clippy::too_many_arguments)]
fn graph_pass(
    slot_opt: &mut Option<GraphSlot>,
    trace: &mut Vec<PassEvent>,
    record_spans: bool,
    nl: &Netlist,
    flow: &FlowAnalysis,
    qual: &[Qualification],
    case: PhaseCase,
    stamp: DesignStamp,
    design: Option<&Design>,
    options: &AnalysisOptions,
    flow_fp: u64,
    qual_fp: u64,
    jobs: usize,
) -> CaseDelta {
    let _span = tv_obs::span("pass.graph");
    let pass = PassId::Graph(case.active);
    let extract_pass = PassId::Extract(case.active);
    let case_tag = case.active.map_or(0, |p| 1 + p as u64);
    let model_tag = options.model as u64;
    let input_fp = hash_words(&[
        stamp.design,
        stamp.topo,
        stamp.geom,
        stamp.cap,
        stamp.tech,
        model_tag,
        case_tag,
        flow_fp,
        qual_fp,
    ]);
    if let Some(s) = slot_opt.as_ref() {
        if s.input_fp == input_fp {
            trace.push(PassEvent {
                pass: extract_pass,
                outcome: PassOutcome::Reused,
            });
            trace.push(PassEvent {
                pass,
                outcome: PassOutcome::Reused,
            });
            return CaseDelta {
                graph_fp: input_fp,
                since: Some((input_fp, Vec::new())),
            };
        }
    }
    let shape_fp = hash_words(&[
        stamp.design,
        stamp.topo,
        stamp.tech,
        model_tag,
        case_tag,
        flow_fp,
        qual_fp,
    ]);

    // Splice attempt. Sound because (a) parametric edits cannot change
    // walk topology, stage membership, or the root set — those depend
    // only on topology, flow, and qualification, all pinned by
    // `shape_fp`; and (b) every edit dirties all terminals of the
    // touched device (or the node whose cap changed), and every device
    // or cap a root's delays read has a node in that root's extent — so
    // `dirty ∩ extent` covers every stale root. `splice_roots` still
    // verifies arc shape per root and falls back on any surprise.
    'splice: {
        let Some(d) = design else { break 'splice };
        let Some(s) = slot_opt.as_mut() else {
            break 'splice;
        };
        if s.shape_fp != shape_fp || !s.graph.diagnostics.is_empty() {
            break 'splice;
        }
        let GraphSlot {
            input_fp: slot_in,
            built_revision,
            graph,
            roots,
            splice,
            extraction,
            ..
        } = s;
        let Some(idx) = splice.as_ref() else {
            break 'splice;
        };
        let DirtySince::Nodes(dirty) = d.dirty_since(*built_revision) else {
            break 'splice;
        };
        let mut affected: Vec<u32> = Vec::new();
        for n in &dirty {
            let i = n.index();
            affected.extend_from_slice(
                &idx.extent_roots[idx.extent_starts[i] as usize..idx.extent_starts[i + 1] as usize],
            );
        }
        affected.sort_unstable();
        affected.dedup();
        if affected.is_empty() {
            // The edit landed entirely outside this graph's read set
            // (e.g. a cap tweak on a node no stage's tree reaches):
            // revalidate without touching an arc.
            let prev_fp = *slot_in;
            *slot_in = input_fp;
            *built_revision = d.revision();
            trace.push(PassEvent {
                pass: extract_pass,
                outcome: PassOutcome::Revalidated,
            });
            trace.push(PassEvent {
                pass,
                outcome: PassOutcome::Revalidated,
            });
            return CaseDelta {
                graph_fp: input_fp,
                since: Some((prev_fp, Vec::new())),
            };
        }
        let builder = GraphBuilder {
            netlist: nl,
            flow,
            qualification: qual,
            case,
            model: options.model,
        };
        let mut scratch = BuildScratch::new(nl.node_count());
        if splice_roots(
            graph,
            &builder,
            SOURCE_RESISTANCE,
            roots,
            &idx.spans,
            &affected,
            &mut scratch,
        )
        .is_ok()
        {
            // The splice overwrote exactly the affected roots' arc
            // spans, so only the targets of those arcs can carry
            // different in-arc words: that list is the certificate.
            let mut dirty: Vec<u32> = Vec::new();
            for &k in &affected {
                let lo = idx.spans[k as usize] as usize;
                let hi = idx.spans[k as usize + 1] as usize;
                dirty.extend(graph.arcs[lo..hi].iter().map(|a| a.to.index() as u32));
            }
            dirty.sort_unstable();
            dirty.dedup();
            let prev_fp = *slot_in;
            *slot_in = input_fp;
            *built_revision = d.revision();
            // De-share: every affected root that was instanced from a
            // shared macromodel is split into a singleton class before
            // its re-analysis, so the splice never rewrites siblings.
            let desplit = extraction.as_mut().map_or(0, |e| e.desplit(&affected));
            trace.push(PassEvent {
                pass: extract_pass,
                outcome: PassOutcome::Spliced {
                    roots: desplit as usize,
                },
            });
            trace.push(PassEvent {
                pass,
                outcome: PassOutcome::Spliced {
                    roots: affected.len(),
                },
            });
            return CaseDelta {
                graph_fp: input_fp,
                since: Some((prev_fp, dirty)),
            };
        }
        // Shape mismatch mid-splice: the graph is partially overwritten
        // and must be discarded. Fall through to the full rebuild,
        // which replaces the slot wholesale.
    }

    let slot = if record_spans {
        let (sb, extraction) =
            build_spanned(nl, flow, qual, case, options.model, SOURCE_RESISTANCE, jobs);
        let splice = sb.spans.map(|spans| {
            let builder = GraphBuilder {
                netlist: nl,
                flow,
                qualification: qual,
                case,
                model: options.model,
            };
            let mut scratch = BuildScratch::new(nl.node_count());
            let (extent_starts, extent_roots) = builder.extents(&sb.roots, &mut scratch);
            SpliceIndex {
                spans,
                extent_starts,
                extent_roots,
            }
        });
        GraphSlot {
            input_fp,
            shape_fp,
            built_revision: design.map_or(Revision(0), |d| d.revision()),
            graph: sb.graph,
            roots: sb.roots,
            splice,
            extraction,
        }
    } else {
        let graph =
            TimingGraph::build_par(nl, flow, qual, case, options.model, SOURCE_RESISTANCE, jobs);
        GraphSlot {
            input_fp,
            shape_fp,
            built_revision: Revision(0),
            graph,
            roots: Vec::new(),
            splice: None,
            extraction: None,
        }
    };
    *slot_opt = Some(slot);
    trace.push(PassEvent {
        pass: extract_pass,
        outcome: PassOutcome::Computed,
    });
    trace.push(PassEvent {
        pass,
        outcome: PassOutcome::Computed,
    });
    CaseDelta {
        graph_fp: input_fp,
        since: None,
    }
}

fn case_slot(case: Option<u8>) -> usize {
    match case {
        None => 0,
        Some(p) => 1 + (p as usize).min(1),
    }
}

fn push(trace: &mut Vec<PassEvent>, pass: PassId, reran: bool) {
    trace.push(PassEvent {
        pass,
        outcome: if reran {
            PassOutcome::Computed
        } else {
            PassOutcome::Reused
        },
    });
}

/// A violated pipeline invariant, as a typed error: one session command
/// degrades to an error reply instead of the whole `tv session` process
/// dying on an `unwrap`.
fn internal(what: &'static str) -> TvError {
    TvError::Internal { what }
}

/// Arrival passes are memoized per node inside the cache, not per pass:
/// "reused" here means the whole case copied over (zero recomputed),
/// and "cone" means the demand-driven engine re-relaxed only the
/// affected cone.
fn arrivals_outcome(cache: &Option<&mut IncrementalCache>) -> PassOutcome {
    match cache {
        Some(c) => match c.last_stats().last() {
            Some(s) if s.recomputed == 0 => PassOutcome::Reused,
            Some(s) if s.engine == CaseEngine::Cone => PassOutcome::Cone {
                recomputed: s.recomputed,
            },
            _ => PassOutcome::Computed,
        },
        None => PassOutcome::Computed,
    }
}

const SEED: u64 = 0xcbf29ce484222325;

fn rules_fp(options: &AnalysisOptions) -> u64 {
    format!("{:?}", options.rules)
        .bytes()
        .fold(SEED, |h, b| mix64(h, b as u64))
}

fn qual_content_fp(qual: &[Qualification]) -> u64 {
    qual.iter().fold(SEED, |h, q| {
        mix64(
            h,
            match q {
                Qualification::Unclocked => 0,
                Qualification::Phase(p) => 1 + *p as u64,
                Qualification::Conflict => u64::MAX,
            },
        )
    })
}

fn latch_content_fp(latches: &[Latch]) -> u64 {
    latches.iter().fold(SEED, |h, l| {
        let h = mix64(h, l.storage.index() as u64);
        let h = mix64(h, l.pass.index() as u64);
        let h = mix64(h, l.phase as u64);
        mix64(h, l.data_from.index() as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_gen::{chains, datapath};
    use tv_netlist::Tech;

    fn trace_outcome(pm: &PassManager, pass: PassId) -> Option<PassOutcome> {
        pm.last_trace()
            .iter()
            .find(|e| e.pass == pass)
            .map(|e| e.outcome)
    }

    #[test]
    fn unchanged_reanalysis_reuses_every_pass() {
        let c = chains::inverter_chain(Tech::nmos4um(), 6, 1);
        let design = Design::new(c.netlist);
        let mut pm = PassManager::new();
        let opts = AnalysisOptions::default();
        let r1 = pm.analyze(&design, &opts);
        assert!(pm.last_trace().iter().all(|e| e.reran()), "cold run");
        let r2 = pm.analyze(&design, &opts);
        for e in pm.last_trace() {
            assert_eq!(e.outcome, PassOutcome::Reused, "{:?}", e.pass);
        }
        let nl = design.netlist();
        assert_eq!(
            crate::fingerprint::report_fingerprint(nl, &r1),
            crate::fingerprint::report_fingerprint(nl, &r2)
        );
    }

    #[test]
    fn cap_edit_skips_flow_and_splices_graph() {
        let c = chains::inverter_chain(Tech::nmos4um(), 8, 1);
        let mut design = Design::new(c.netlist);
        let mut pm = PassManager::new();
        let opts = AnalysisOptions::default();
        pm.analyze(&design, &opts);
        let flow_fp = pm.pass_fingerprint(PassId::Flow).unwrap();
        let latch_fp = pm.pass_fingerprint(PassId::Latches).unwrap();
        let mid = design.netlist().node_by_name("s3").unwrap();
        design.set_node_cap(mid, 0.4).unwrap();
        let r = pm.analyze(&design, &opts);
        assert_eq!(trace_outcome(&pm, PassId::Flow), Some(PassOutcome::Reused));
        assert_eq!(
            trace_outcome(&pm, PassId::Qualify),
            Some(PassOutcome::Reused)
        );
        assert_eq!(
            trace_outcome(&pm, PassId::Latches),
            Some(PassOutcome::Reused)
        );
        assert!(
            matches!(
                trace_outcome(&pm, PassId::Graph(None)),
                Some(PassOutcome::Spliced { .. })
            ),
            "cap edit should splice, got {:?}",
            trace_outcome(&pm, PassId::Graph(None))
        );
        assert_eq!(pm.pass_fingerprint(PassId::Flow), Some(flow_fp));
        assert_eq!(pm.pass_fingerprint(PassId::Latches), Some(latch_fp));
        // And the spliced result matches a cold analysis bit for bit.
        let cold = crate::Analyzer::new(design.netlist()).run(&opts);
        assert_eq!(
            crate::fingerprint::report_fingerprint(design.netlist(), &r),
            crate::fingerprint::report_fingerprint(design.netlist(), &cold)
        );
    }

    #[test]
    fn resize_edit_splices_without_relatching() {
        let dp = datapath::datapath(Tech::nmos4um(), datapath::DatapathConfig::small());
        let mut design = Design::new(dp.netlist);
        let mut pm = PassManager::new();
        let opts = AnalysisOptions::default();
        pm.analyze(&design, &opts);
        let latch_fp = pm.pass_fingerprint(PassId::Latches).unwrap();
        let dev = design.netlist().devices().next().unwrap().id;
        let (w, l) = {
            let d = design.netlist().device(dev);
            (d.width(), d.length())
        };
        design.resize_device(dev, w * 2.0, l).unwrap();
        let r = pm.analyze(&design, &opts);
        assert_eq!(
            trace_outcome(&pm, PassId::Latches),
            Some(PassOutcome::Reused)
        );
        assert_eq!(pm.pass_fingerprint(PassId::Latches), Some(latch_fp));
        for case in [None, Some(0), Some(1)] {
            assert!(
                matches!(
                    trace_outcome(&pm, PassId::Graph(case)),
                    Some(PassOutcome::Spliced { .. } | PassOutcome::Revalidated)
                ),
                "graph {case:?}: {:?}",
                trace_outcome(&pm, PassId::Graph(case))
            );
        }
        let cold = crate::Analyzer::new(design.netlist()).run(&opts);
        assert_eq!(
            crate::fingerprint::report_fingerprint(design.netlist(), &r),
            crate::fingerprint::report_fingerprint(design.netlist(), &cold)
        );
    }

    #[test]
    fn structural_edit_reruns_flow_and_rebuilds() {
        let c = chains::inverter_chain(Tech::nmos4um(), 5, 1);
        let mut design = Design::new(c.netlist);
        let mut pm = PassManager::new();
        let opts = AnalysisOptions::default();
        pm.analyze(&design, &opts);
        let (tap, _) = design.add_node("tap", tv_netlist::NodeRole::Internal);
        let s2 = design.netlist().node_by_name("s2").unwrap();
        design
            .add_device(
                "mtap",
                tv_netlist::DeviceKind::Enhancement,
                s2,
                design.netlist().gnd(),
                tap,
                4.0,
                2.0,
            )
            .unwrap();
        let r = pm.analyze(&design, &opts);
        assert_eq!(
            trace_outcome(&pm, PassId::Flow),
            Some(PassOutcome::Computed)
        );
        assert_eq!(
            trace_outcome(&pm, PassId::Graph(None)),
            Some(PassOutcome::Computed)
        );
        let cold = crate::Analyzer::new(design.netlist()).run(&opts);
        assert_eq!(
            crate::fingerprint::report_fingerprint(design.netlist(), &r),
            crate::fingerprint::report_fingerprint(design.netlist(), &cold)
        );
    }

    #[test]
    fn pass_table_covers_every_pass_name() {
        let names: Vec<&str> = PASS_TABLE.iter().map(|p| p.name).collect();
        for pass in [
            PassId::Flow,
            PassId::Qualify,
            PassId::Latches,
            PassId::Extract(None),
            PassId::Extract(Some(0)),
            PassId::Graph(None),
            PassId::Arrivals(Some(1)),
            PassId::Checks,
        ] {
            let family = pass.name().split('.').next().unwrap();
            assert!(names.contains(&family), "{family} missing from PASS_TABLE");
        }
    }
}
