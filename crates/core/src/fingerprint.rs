//! Report and flow fingerprints: the bit-identity contract, as code.
//!
//! Two hash families live here and must not be confused:
//!
//! * The **golden FNV** ([`Fnv`], [`report_fingerprint`],
//!   [`flow_fingerprint`]) — a byte-wise FNV-1a over every observable
//!   field of a [`TimingReport`] / flow analysis. The committed golden
//!   values in `tests/integration_layout.rs` were captured with exactly
//!   this function, so its traversal order and byte-level mixing are
//!   frozen: any change here *is* a semantic change to the equivalence
//!   contract. The session protocol also reports these fingerprints, so
//!   a session transcript pins the full report bit-for-bit.
//! * The **internal mixer** ([`mix64`], [`hash_words`]) — a fast
//!   word-wise splitmix64-style finalizer used for pass input/output
//!   fingerprints and the incremental cache's node fingerprints. These
//!   are compared only within one process and never committed, so they
//!   can favor speed (one multiply chain per word instead of per byte).

use tv_flow::FlowAnalysis;
use tv_netlist::Netlist;

use crate::analyzer::TimingReport;
use crate::propagate::{Completion, Edge};

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Byte-wise FNV-1a accumulator (the golden-fingerprint hash).
#[derive(Debug, Clone)]
pub struct Fnv(pub u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    /// Mixes one `u64`, little-endian byte by byte.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes an `f64` by its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Mixes an `Option<f64>` with a presence tag.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u64(1);
                self.f64(x);
            }
            None => self.u64(0),
        }
    }

    /// Mixes a length-prefixed byte string.
    pub fn bytes(&mut self, s: &[u8]) {
        self.u64(s.len() as u64);
        for &b in s {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

fn hash_phase_result(h: &mut Fnv, nl: &Netlist, r: &crate::propagate::PhaseResult) {
    for id in nl.node_ids() {
        h.opt_f64(r.arrivals.rise(id));
        h.opt_f64(r.arrivals.fall(id));
        h.opt_f64(r.arrivals.transition(id, Edge::Rise));
        h.opt_f64(r.arrivals.transition(id, Edge::Fall));
    }
    h.u64(r.endpoints.len() as u64);
    for &(id, at) in &r.endpoints {
        h.u64(id.index() as u64);
        h.f64(at);
    }
    h.u64(r.cyclic as u64);
    h.u64(r.relaxations as u64);
    h.u64(matches!(r.completion, Completion::Complete) as u64);
    h.u64(r.unresolved.len() as u64);
}

fn hash_paths(h: &mut Fnv, paths: &[crate::paths::TimingPath]) {
    h.u64(paths.len() as u64);
    for p in paths {
        h.u64(p.len() as u64);
        for s in &p.steps {
            h.u64(s.node.index() as u64);
            h.bytes(format!("{:?}", s.edge).as_bytes());
            h.f64(s.at);
        }
    }
}

/// Hashes everything a [`TimingReport`] observably contains, bit-exact on
/// every floating-point value. Node *names* are hashed too, so identity
/// covers naming, not just values. This is the function behind the golden
/// fingerprints in `tests/integration_layout.rs` and the `fingerprint`
/// field of session `analyze` replies.
pub fn report_fingerprint(nl: &Netlist, report: &TimingReport) -> u64 {
    let mut h = Fnv::new();
    h.u64(nl.node_count() as u64);
    h.u64(nl.device_count() as u64);
    for id in nl.node_ids() {
        h.bytes(nl.node_name(id).as_bytes());
        h.f64(nl.node_cap(id));
    }
    hash_phase_result(&mut h, nl, &report.combinational);
    hash_paths(&mut h, &report.combinational_paths);
    h.u64(report.phases.len() as u64);
    for p in &report.phases {
        h.u64(p.phase as u64);
        h.u64(p.arcs as u64);
        h.opt_f64(p.slack);
        hash_phase_result(&mut h, nl, &p.result);
        hash_paths(&mut h, &p.paths);
        h.u64(p.races.len() as u64);
        for race in &p.races {
            h.u64(race.capture.index() as u64);
            h.f64(race.min_arrival);
        }
    }
    h.u64(report.latches.len() as u64);
    h.u64(report.checks.len() as u64);
    h.u64(report.diagnostics.len() as u64);
    h.opt_f64(report.min_cycle);
    h.0
}

/// Hashes a full flow analysis: per-device direction, resolving rule,
/// per-node class, and the sweep count. Pins the direction fixpoint to
/// its exact classifications.
pub fn flow_fingerprint(nl: &Netlist, flow: &FlowAnalysis) -> u64 {
    let mut h = Fnv::new();
    h.u64(flow.sweeps() as u64);
    for d in nl.devices() {
        h.bytes(format!("{:?}", flow.direction(d.id)).as_bytes());
        h.bytes(format!("{:?}", flow.resolved_by(d.id)).as_bytes());
    }
    for id in nl.node_ids() {
        h.bytes(format!("{:?}", flow.node_class(id)).as_bytes());
    }
    h.0
}

// ----- internal word mixer --------------------------------------------

/// One round of a splitmix64-style finalizer: strong per-word avalanche
/// at a handful of ALU ops, an order of magnitude cheaper than byte-wise
/// FNV on `u64` streams. Internal fingerprints only — never golden.
#[inline]
pub(crate) fn mix64(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a word sequence with [`mix64`], seeded off the FNV basis.
#[inline]
pub(crate) fn hash_words(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &w in words {
        h = mix64(h, w);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_bytes() {
        // FNV-1a of the empty input is the offset basis; of one zero byte
        // it is basis * prime (xor with 0 is identity).
        let h = Fnv::new();
        assert_eq!(h.0, FNV_OFFSET);
        let mut h = Fnv::new();
        h.0 ^= 0;
        h.0 = h.0.wrapping_mul(FNV_PRIME);
        assert_eq!(h.0, FNV_OFFSET.wrapping_mul(FNV_PRIME));
    }

    #[test]
    fn mix64_is_order_sensitive_and_spreads() {
        assert_ne!(hash_words(&[1, 2]), hash_words(&[2, 1]));
        assert_ne!(hash_words(&[0]), hash_words(&[]));
        // Single-bit input changes flip roughly half the output bits.
        let a = hash_words(&[0x1]);
        let b = hash_words(&[0x3]);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "weak avalanche: {flipped}");
    }
}
