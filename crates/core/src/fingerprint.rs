//! Report and flow fingerprints: the bit-identity contract, as code.
//!
//! Two hash families live here and must not be confused:
//!
//! * The **golden FNV** ([`Fnv`], [`report_fingerprint`],
//!   [`flow_fingerprint`]) — a byte-wise FNV-1a over every observable
//!   field of a [`TimingReport`] / flow analysis. The committed golden
//!   values in `tests/integration_layout.rs` were captured with exactly
//!   this function, so its traversal order and byte-level mixing are
//!   frozen: any change here *is* a semantic change to the equivalence
//!   contract. The session protocol also reports these fingerprints, so
//!   a session transcript pins the full report bit-for-bit.
//! * The **internal mixer** ([`mix64`], [`hash_words`]) — a fast
//!   word-wise splitmix64-style finalizer used for pass input/output
//!   fingerprints and the incremental cache's node fingerprints. These
//!   are compared only within one process and never committed, so they
//!   can favor speed (one multiply chain per word instead of per byte).

use std::fmt::Write as _;

use tv_flow::{Direction, FlowAnalysis, NodeClass, Rule};
use tv_netlist::Netlist;

use crate::analyzer::TimingReport;
use crate::propagate::{Completion, Edge};

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Byte-wise FNV-1a accumulator (the golden-fingerprint hash).
#[derive(Debug, Clone)]
pub struct Fnv(pub u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    /// Mixes one `u64`, little-endian byte by byte.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes an `f64` by its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Mixes an `Option<f64>` with a presence tag.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u64(1);
                self.f64(x);
            }
            None => self.u64(0),
        }
    }

    /// Mixes a length-prefixed byte string.
    pub fn bytes(&mut self, s: &[u8]) {
        self.u64(s.len() as u64);
        for &b in s {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

fn hash_phase_result(h: &mut Fnv, nl: &Netlist, r: &crate::propagate::PhaseResult) {
    for id in nl.node_ids() {
        h.opt_f64(r.arrivals.rise(id));
        h.opt_f64(r.arrivals.fall(id));
        h.opt_f64(r.arrivals.transition(id, Edge::Rise));
        h.opt_f64(r.arrivals.transition(id, Edge::Fall));
    }
    h.u64(r.endpoints.len() as u64);
    for &(id, at) in &r.endpoints {
        h.u64(id.index() as u64);
        h.f64(at);
    }
    h.u64(r.cyclic as u64);
    h.u64(r.relaxations as u64);
    h.u64(matches!(r.completion, Completion::Complete) as u64);
    h.u64(r.unresolved.len() as u64);
}

fn hash_paths(h: &mut Fnv, paths: &[crate::paths::TimingPath]) {
    h.u64(paths.len() as u64);
    for p in paths {
        h.u64(p.len() as u64);
        for s in &p.steps {
            h.u64(s.node.index() as u64);
            h.bytes(edge_debug_bytes(s.edge));
            h.f64(s.at);
        }
    }
}

/// Hashes everything a [`TimingReport`] observably contains, bit-exact on
/// every floating-point value. Node *names* are hashed too, so identity
/// covers naming, not just values. This is the function behind the golden
/// fingerprints in `tests/integration_layout.rs` and the `fingerprint`
/// field of session `analyze` replies.
pub fn report_fingerprint(nl: &Netlist, report: &TimingReport) -> u64 {
    let mut h = Fnv::new();
    h.u64(nl.node_count() as u64);
    h.u64(nl.device_count() as u64);
    for id in nl.node_ids() {
        h.bytes(nl.node_name(id).as_bytes());
        h.f64(nl.node_cap(id));
    }
    hash_phase_result(&mut h, nl, &report.combinational);
    hash_paths(&mut h, &report.combinational_paths);
    h.u64(report.phases.len() as u64);
    for p in &report.phases {
        h.u64(p.phase as u64);
        h.u64(p.arcs as u64);
        h.opt_f64(p.slack);
        hash_phase_result(&mut h, nl, &p.result);
        hash_paths(&mut h, &p.paths);
        h.u64(p.races.len() as u64);
        for race in &p.races {
            h.u64(race.capture.index() as u64);
            h.f64(race.min_arrival);
        }
    }
    h.u64(report.latches.len() as u64);
    h.u64(report.checks.len() as u64);
    h.u64(report.diagnostics.len() as u64);
    h.opt_f64(report.min_cycle);
    h.0
}

/// Hashes a full flow analysis: per-device direction, resolving rule,
/// per-node class, and the sweep count. Pins the direction fixpoint to
/// its exact classifications.
pub fn flow_fingerprint(nl: &Netlist, flow: &FlowAnalysis) -> u64 {
    let mut h = Fnv::new();
    h.u64(flow.sweeps() as u64);
    // The golden values were captured by hashing `format!("{:?}", ..)` of
    // each classification. The per-item allocation dominated cold-path flow
    // hashing at scale, so the Debug renderings are reproduced here as
    // static byte strings; `debug_bytes_match_derived_debug` pins each one
    // against the derived impl.
    let mut buf = String::with_capacity(24);
    for d in nl.devices() {
        match flow.direction(d.id) {
            Direction::Unresolved => h.bytes(b"Unresolved"),
            Direction::Bidirectional => h.bytes(b"Bidirectional"),
            Direction::Toward(n) => {
                buf.clear();
                let _ = write!(buf, "Toward(n{})", n.index());
                h.bytes(buf.as_bytes());
            }
        }
        h.bytes(rule_debug_bytes(flow.resolved_by(d.id)));
    }
    for id in nl.node_ids() {
        h.bytes(class_debug_bytes(flow.node_class(id)));
    }
    h.0
}

/// `format!("{:?}", edge)` without the allocation.
#[inline]
fn edge_debug_bytes(e: Edge) -> &'static [u8] {
    match e {
        Edge::Rise => b"Rise",
        Edge::Fall => b"Fall",
    }
}

/// `format!("{:?}", resolved_by)` without the allocation.
#[inline]
fn rule_debug_bytes(r: Option<Rule>) -> &'static [u8] {
    match r {
        None => b"None",
        Some(Rule::Driver) => b"Some(Driver)",
        Some(Rule::External) => b"Some(External)",
        Some(Rule::RestoredDrive) => b"Some(RestoredDrive)",
        Some(Rule::Chain) => b"Some(Chain)",
        Some(Rule::Sink) => b"Some(Sink)",
        Some(Rule::Seed) => b"Some(Seed)",
    }
}

/// `format!("{:?}", class)` without the allocation.
#[inline]
fn class_debug_bytes(c: NodeClass) -> &'static [u8] {
    match c {
        NodeClass::Rail => b"Rail",
        NodeClass::External => b"External",
        NodeClass::Restored => b"Restored",
        NodeClass::Precharged => b"Precharged",
        NodeClass::Storage => b"Storage",
        NodeClass::PassInterior => b"PassInterior",
        NodeClass::Bus => b"Bus",
        NodeClass::GateOnly => b"GateOnly",
    }
}

// ----- internal word mixer --------------------------------------------

/// One round of a splitmix64-style finalizer: strong per-word avalanche
/// at a handful of ALU ops, an order of magnitude cheaper than byte-wise
/// FNV on `u64` streams. Internal fingerprints only — never golden.
#[inline]
pub(crate) fn mix64(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a word sequence with [`mix64`], seeded off the FNV basis.
#[inline]
pub(crate) fn hash_words(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &w in words {
        h = mix64(h, w);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_bytes() {
        // FNV-1a of the empty input is the offset basis; of one zero byte
        // it is basis * prime (xor with 0 is identity).
        let h = Fnv::new();
        assert_eq!(h.0, FNV_OFFSET);
        let mut h = Fnv::new();
        h.0 ^= 0;
        h.0 = h.0.wrapping_mul(FNV_PRIME);
        assert_eq!(h.0, FNV_OFFSET.wrapping_mul(FNV_PRIME));
    }

    #[test]
    fn debug_bytes_match_derived_debug() {
        // The golden flow fingerprints were captured via format!("{:?}");
        // every static rendering must stay byte-identical to the derived
        // Debug impl or the equivalence contract silently breaks.
        for e in [Edge::Rise, Edge::Fall] {
            assert_eq!(edge_debug_bytes(e), format!("{e:?}").as_bytes());
        }
        let rules = [
            None,
            Some(Rule::Driver),
            Some(Rule::External),
            Some(Rule::RestoredDrive),
            Some(Rule::Chain),
            Some(Rule::Sink),
            Some(Rule::Seed),
        ];
        for r in rules {
            assert_eq!(rule_debug_bytes(r), format!("{r:?}").as_bytes());
        }
        let classes = [
            NodeClass::Rail,
            NodeClass::External,
            NodeClass::Restored,
            NodeClass::Precharged,
            NodeClass::Storage,
            NodeClass::PassInterior,
            NodeClass::Bus,
            NodeClass::GateOnly,
        ];
        for c in classes {
            assert_eq!(class_debug_bytes(c), format!("{c:?}").as_bytes());
        }
        for d in [
            Direction::Unresolved,
            Direction::Bidirectional,
            Direction::Toward(tv_netlist::NodeId::from_index(7)),
        ] {
            let mut buf = String::new();
            match d {
                Direction::Unresolved => buf.push_str("Unresolved"),
                Direction::Bidirectional => buf.push_str("Bidirectional"),
                Direction::Toward(n) => {
                    let _ = write!(buf, "Toward(n{})", n.index());
                }
            }
            assert_eq!(buf, format!("{d:?}"));
        }
    }

    #[test]
    fn mix64_is_order_sensitive_and_spreads() {
        assert_ne!(hash_words(&[1, 2]), hash_words(&[2, 1]));
        assert_ne!(hash_words(&[0]), hash_words(&[]));
        // Single-bit input changes flip roughly half the output bits.
        let a = hash_words(&[0x1]);
        let b = hash_words(&[0x3]);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "weak avalanche: {flipped}");
    }
}
