//! Hierarchical macromodel extraction: analyze each unique stage once,
//! instance it N times.
//!
//! The paper's analyzer treats every channel-connected stage as an
//! independent RC problem — which is exactly what makes hierarchy
//! exploitable. A 67-core datapath contains 67 structurally identical
//! copies of every bit-slice stage; the flat build re-derives the same
//! Elmore trees 67 times. This module groups build roots into
//! **equivalence classes**, analyzes one *master* per class into a
//! pin-indexed arc table (the macromodel), and emits every other member
//! by remapping the table's pin ordinals onto that instance's own nodes.
//!
//! The bit-identity contract (DESIGN.md §16) rests on a two-tier key:
//!
//! * the **grouping key** — [`tv_flow::stage::Stages::structural_hashes`],
//!   an order-independent multiset hash of the stage's device geometry
//!   and boundary-pin roles. Cheap, permutation-invariant, but only a
//!   *candidate* grouping.
//! * the **canonical trace** ([`root_canon`]) — the exact scalar inputs
//!   the arc-emission half of the flat builder consumes, serialized in
//!   emission order with every [`NodeId`] replaced by its
//!   first-encounter ordinal. Two roots share a class only if their
//!   traces match word for word; the trace *is* the collision check.
//!
//! Equal traces imply the flat builder would emit arc lists that are
//! bit-identical up to the pin permutation, because every quantity the
//! emission reads — pull-up/pull-down resistances, per-walk-node caps,
//! pass-device resistances, tree topology, input order and kinds,
//! precharge resistances, domino flags — is either a recorded word or a
//! global (`Tech`, `DelayModel`, source resistance). The ordinal
//! assignment scans the trace in one fixed order, so pin `k` of an
//! instance corresponds to pin `k` of its master by construction.
//!
//! Any panic anywhere in extraction degrades to the flat
//! per-stage-isolated build ([`TimingGraph::build_isolated`]) — the
//! same conservative fallback the spanned flat build used.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use tv_clocks::qualify::Qualification;
use tv_flow::{DeviceRole, FlowAnalysis, NodeClass};
use tv_netlist::{Netlist, NodeId};

use crate::fingerprint::mix64;
use crate::graph::{
    finish_graph, graph_build_fault_point, pull_down_resistance_with, pull_up_resistance,
    stage_inputs_into, Arc, ArcKind, BuildScratch, GraphBuilder, PhaseCase, RootKind, SpannedBuild,
    StageInputKind, TimingGraph, PAR_MIN_ROOTS,
};
use crate::options::DelayModel;

/// What the extractor learned about one build: the class partition of
/// the root set. Lives in the graph slot so a later parametric edit can
/// **de-share** the touched instances (see [`Extraction::desplit`]).
pub struct Extraction {
    /// Class id per root ordinal.
    class_of: Vec<u32>,
    /// Member count per class (grows as de-sharing mints new classes).
    class_len: Vec<u32>,
    /// Classes at extraction time (before any de-sharing).
    classes: usize,
    /// Roots analyzed from scratch (masters, plus every member of a
    /// class whose table could not be shared).
    analyzed: u64,
    /// Roots emitted by pin-remapping a shared table.
    instanced: u64,
    /// Content fingerprint of the partition (keys + class assignment),
    /// advanced by every de-share.
    fp: u64,
}

impl Extraction {
    /// Number of equivalence classes at extraction time.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Roots analyzed from scratch.
    pub fn analyzed(&self) -> u64 {
        self.analyzed
    }

    /// Roots emitted by instancing a shared macromodel.
    pub fn instanced(&self) -> u64 {
        self.instanced
    }

    /// Content fingerprint of the class partition.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// De-shares the given root ordinals: each member of a class with
    /// more than one member is split into a fresh singleton class, so
    /// its subsequent re-analysis (the splice) never contaminates — and
    /// is never contaminated by — the siblings it used to share with.
    /// Returns how many roots actually split (already-singleton roots
    /// are no-ops) and bumps the `macro.desplit` counter by that much.
    pub(crate) fn desplit(&mut self, affected: &[u32]) -> u64 {
        let mut n = 0u64;
        for &r in affected {
            let Some(&c) = self.class_of.get(r as usize) else {
                continue;
            };
            if self.class_len[c as usize] > 1 {
                self.class_len[c as usize] -= 1;
                let fresh = self.class_len.len() as u32;
                self.class_of[r as usize] = fresh;
                self.class_len.push(1);
                self.fp = mix64(self.fp, 0xde5b_11f0 ^ r as u64);
                n += 1;
            }
        }
        if n > 0 {
            tv_obs::add(tv_obs::Counter::MacroDesplit, n);
        }
        n
    }
}

/// One pin-to-pin timing arc of a macromodel: [`Arc`] with both
/// endpoints replaced by pin ordinals into the owning root's pin table.
struct MacroArc {
    from_pin: u32,
    to_pin: u32,
    rise_delay: f64,
    fall_delay: f64,
    rise_tau: f64,
    fall_tau: f64,
    inverting: bool,
    kind: ArcKind,
}

/// The analysis result for one class: a shareable pin-indexed arc
/// table, or a marker that members must each build flat (an arc endpoint
/// fell outside the recorded pin table — impossible by construction,
/// kept as a verified fallback rather than an assumption).
enum MacroTable {
    Arcs(Vec<MacroArc>),
    Opaque,
}

/// Epoch-stamped NodeId → pin-ordinal map, reused across roots.
struct MacroScratch {
    mark: Vec<u32>,
    ord: Vec<u32>,
    epoch: u32,
}

impl MacroScratch {
    fn new(node_count: usize) -> Self {
        MacroScratch {
            mark: vec![0; node_count],
            ord: vec![0; node_count],
            epoch: 0,
        }
    }

    fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// The pin ordinal of `n`, assigning the next one on first
    /// encounter (and recording the node in `pins`).
    fn ordinal(&mut self, pins: &mut Vec<NodeId>, n: NodeId) -> u64 {
        let i = n.index();
        if self.mark[i] != self.epoch {
            self.mark[i] = self.epoch;
            self.ord[i] = pins.len() as u32;
            pins.push(n);
        }
        self.ord[i] as u64
    }

    /// The ordinal previously assigned to `n`, if any.
    fn lookup(&self, n: NodeId) -> Option<u32> {
        let i = n.index();
        (self.mark[i] == self.epoch).then(|| self.ord[i])
    }
}

const CANON_STAGE: u64 = 1;
const CANON_SOURCE: u64 = 2;
const CANON_PRECHARGE: u64 = 0x70;

fn opt_f64_words(canon: &mut Vec<u64>, v: Option<f64>) {
    match v {
        Some(x) => {
            canon.push(1);
            canon.push(x.to_bits());
        }
        None => {
            canon.push(0);
            canon.push(0);
        }
    }
}

/// Serializes the downstream walk exactly as `tree_delays` and the
/// emission loops consume it: per walk node, its pin ordinal, parent
/// walk index, connecting pass-device resistance and gate ordinal, node
/// cap, and domino (precharged) flag.
fn walk_canon(
    b: &GraphBuilder<'_>,
    scratch: &BuildScratch,
    ms: &mut MacroScratch,
    canon: &mut Vec<u64>,
    pins: &mut Vec<NodeId>,
) {
    let nl = b.netlist;
    let tech = nl.tech();
    canon.push(scratch.walk.len() as u64);
    for i in 0..scratch.walk.len() {
        let w = scratch.walk[i];
        canon.push(ms.ordinal(pins, w.node));
        canon.push(w.parent.map_or(u64::MAX, |p| p as u64));
        match w.via {
            Some(did) => {
                let dev = nl.device(did);
                canon.push(dev.resistance(tech).to_bits());
                canon.push(ms.ordinal(pins, dev.gate()));
            }
            None => canon.push(u64::MAX),
        }
        canon.push(nl.node_cap(w.node).to_bits());
        canon.push((b.flow.node_class(w.node) == NodeClass::Precharged) as u64);
    }
}

/// The canonical trace of one build root: every scalar the arc-emission
/// half of the flat builder reads, in a fixed scan order, with NodeIds
/// replaced by first-encounter ordinals (recorded in `pins`). Two roots
/// with equal traces produce bit-identical arcs modulo the pin mapping.
fn root_canon(
    b: &GraphBuilder<'_>,
    root: &(NodeId, RootKind),
    scratch: &mut BuildScratch,
    ms: &mut MacroScratch,
    canon: &mut Vec<u64>,
    pins: &mut Vec<NodeId>,
) {
    let nl = b.netlist;
    ms.begin();
    match root.1 {
        RootKind::Stage => {
            canon.push(CANON_STAGE);
            let out = root.0;
            // The drive resistances enter as *results*: the emission
            // only ever consumes the scalars, so canonizing the DFS
            // that produced them would be needless fragility.
            opt_f64_words(canon, pull_up_resistance(nl, b.flow, out));
            opt_f64_words(
                canon,
                pull_down_resistance_with(nl, b.flow, out, &mut scratch.on_path),
            );
            b.walk_downstream(out, scratch);
            walk_canon(b, scratch, ms, canon, pins);
            stage_inputs_into(nl, b.flow, out, scratch);
            canon.push(scratch.inputs.len() as u64);
            for i in 0..scratch.inputs.len() {
                let inp = scratch.inputs[i];
                canon.push(ms.ordinal(pins, inp.node));
                canon.push(match inp.kind {
                    StageInputKind::PullDownGate => 0,
                    StageInputKind::PullUpGate => 1,
                });
            }
            // Precharge devices the emission loop would fire, in channel
            // order, gated by the same case/qualification test.
            for &did in nl.node_devices(out).channel {
                if b.flow.device_role(did) != DeviceRole::Precharge {
                    continue;
                }
                let gate = nl.device(did).gate();
                let on = match (b.case.active, b.qualification[gate.index()]) {
                    (None, _) => true,
                    (Some(p), Qualification::Phase(q)) => p == q,
                    (Some(_), _) => true,
                };
                if !on {
                    continue;
                }
                canon.push(CANON_PRECHARGE);
                canon.push(ms.ordinal(pins, gate));
                canon.push(nl.device(did).resistance(nl.tech()).to_bits());
            }
        }
        RootKind::Source => {
            canon.push(CANON_SOURCE);
            b.walk_downstream(root.0, scratch);
            walk_canon(b, scratch, ms, canon, pins);
        }
    }
}

/// The grouping key of one root: the flow layer's order-independent
/// stage hash, salted with the root kind. Coarser than the canonical
/// trace on purpose — equal keys merely nominate candidates.
fn root_key(stage_hashes: &[u64], flow: &FlowAnalysis, root: &(NodeId, RootKind)) -> u64 {
    let sh = flow
        .stages()
        .stage_of(root.0)
        .map_or(0x517e_ab5e, |sid| stage_hashes[sid.index()]);
    mix64(
        sh,
        match root.1 {
            RootKind::Stage => 1,
            RootKind::Source => 2,
        },
    )
}

/// Per-chunk output of the signature phase.
struct Sigs {
    canon: Vec<u64>,
    pins: Vec<NodeId>,
    /// `(grouping key, canon word count, pin count)` per root.
    meta: Vec<(u64, u32, u32)>,
}

/// The hierarchical replacement for the flat spanned build: groups the
/// root set into equivalence classes, analyzes one master per class,
/// instances the rest, and finishes a graph whose arc list is
/// bit-identical to [`TimingGraph::build_par`]'s flat output at any
/// thread count. Returns the per-root arc spans (for splicing) and the
/// [`Extraction`] partition (for de-sharing); the extraction is `None`
/// when a panic degraded the build to flat per-stage isolation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_spanned(
    netlist: &Netlist,
    flow: &FlowAnalysis,
    qualification: &[Qualification],
    case: PhaseCase,
    model: DelayModel,
    source_resistance: f64,
    jobs: usize,
) -> (SpannedBuild, Option<Extraction>) {
    let builder = GraphBuilder {
        netlist,
        flow,
        qualification,
        case,
        model,
    };
    let roots = builder.roots();
    match hier_build(&builder, &roots, source_resistance, jobs) {
        Some((arcs, spans, extraction)) => {
            debug_assert_eq!(*spans.last().unwrap() as usize, arcs.len());
            (
                SpannedBuild {
                    graph: finish_graph(netlist.node_count(), arcs, case, Vec::new()),
                    roots,
                    spans: Some(spans),
                },
                Some(extraction),
            )
        }
        None => {
            // A stage build panicked during extraction: delegate to the
            // isolated flat builder, which contains the fault per stage
            // and records diagnostics. No spans, no sharing.
            tv_obs::incr(tv_obs::Counter::FaultDegraded);
            let graph = TimingGraph::build_isolated(
                netlist,
                flow,
                qualification,
                case,
                model,
                source_resistance,
                jobs,
                None,
            );
            (
                SpannedBuild {
                    graph,
                    roots,
                    spans: None,
                },
                None,
            )
        }
    }
}

/// The four-phase extraction. Phases A (signatures) and D (emission)
/// chunk the root set exactly like the flat parallel build, so the
/// concatenated output is independent of `jobs`; phase B (grouping) is
/// serial in root order; phase C parallelizes over class masters.
fn hier_build(
    builder: &GraphBuilder<'_>,
    roots: &[(NodeId, RootKind)],
    source_resistance: f64,
    jobs: usize,
) -> Option<(Vec<Arc>, Vec<u32>, Extraction)> {
    let nl = builder.netlist;
    let node_count = nl.node_count();
    let n_roots = roots.len();
    let stage_hashes = builder.flow.stages().structural_hashes(nl);
    let threads = jobs.max(1).min(n_roots.max(1));
    let serial = threads <= 1 || n_roots < PAR_MIN_ROOTS;

    // Phases A (signatures) and B (grouping): every root gets a key +
    // canonical trace + pin table, then joins its class in
    // deterministic root order, with the canonical-trace comparison
    // against the candidate class's master as the collision check —
    // equal keys with different traces stay separate classes.
    let mut class_of = vec![0u32; n_roots];
    let mut masters: Vec<u32> = Vec::new();
    let mut class_len: Vec<u32> = Vec::new();
    let mut keys: Vec<u64> = Vec::with_capacity(n_roots);
    let mut pins_all: Vec<NodeId> = Vec::new();
    let mut pin_starts: Vec<usize> = Vec::with_capacity(n_roots + 1);
    pin_starts.push(0);
    let mut by_key: HashMap<u64, Vec<u32>> = HashMap::new();

    if serial {
        // Fused A+B: one pass, grouping each root as it is signed. A
        // root's canon lives only for its own iteration unless it
        // founds a class — the store holds master traces only, so the
        // at-scale serial build never retains the all-roots canon
        // stream (hundreds of MB at a million devices) that the staged
        // parallel path trades for worker concurrency.
        let mut master_canon: Vec<u64> = Vec::new();
        let mut master_canon_starts: Vec<usize> = vec![0];
        catch_unwind(AssertUnwindSafe(|| {
            let mut scratch = BuildScratch::new(node_count);
            let mut ms = MacroScratch::new(node_count);
            let mut canon_buf: Vec<u64> = Vec::new();
            // Per-root pin buffer: ordinals recorded in the canon are
            // indices into *this root's* pin table, so it must restart
            // at zero for every root (a shared running buffer would
            // leak the root's position into its canon and kill all
            // sharing).
            let mut pin_buf: Vec<NodeId> = Vec::new();
            for (r, root) in roots.iter().enumerate() {
                graph_build_fault_point();
                canon_buf.clear();
                pin_buf.clear();
                root_canon(
                    builder,
                    root,
                    &mut scratch,
                    &mut ms,
                    &mut canon_buf,
                    &mut pin_buf,
                );
                keys.push(root_key(&stage_hashes, builder.flow, root));
                pins_all.extend_from_slice(&pin_buf);
                pin_starts.push(pins_all.len());
                let cands = by_key.entry(keys[r]).or_default();
                let hit = cands.iter().copied().find(|&cid| {
                    let c = cid as usize;
                    master_canon[master_canon_starts[c]..master_canon_starts[c + 1]]
                        == canon_buf[..]
                });
                match hit {
                    Some(cid) => {
                        class_of[r] = cid;
                        class_len[cid as usize] += 1;
                    }
                    None => {
                        let cid = masters.len() as u32;
                        masters.push(r as u32);
                        class_len.push(1);
                        class_of[r] = cid;
                        cands.push(cid);
                        master_canon.extend_from_slice(&canon_buf);
                        master_canon_starts.push(master_canon.len());
                    }
                }
            }
        }))
        .ok()?;
    } else {
        // Staged A then B: workers sign chunks of the root set in
        // parallel — the chunk cover is a pure function of the root
        // list, never of the schedule, so the merged root-ordered
        // signature stream (and therefore the grouping) is independent
        // of `jobs` and bit-identical to the fused path's.
        let sign_chunk = |root_chunk: &[(NodeId, RootKind)]| -> Result<Sigs, ()> {
            catch_unwind(AssertUnwindSafe(|| {
                let mut scratch = BuildScratch::new(node_count);
                let mut ms = MacroScratch::new(node_count);
                // See the fused path: pin ordinals restart per root.
                let mut pin_buf: Vec<NodeId> = Vec::new();
                let mut sigs = Sigs {
                    canon: Vec::new(),
                    pins: Vec::new(),
                    meta: Vec::with_capacity(root_chunk.len()),
                };
                for r in root_chunk {
                    graph_build_fault_point();
                    let c0 = sigs.canon.len();
                    pin_buf.clear();
                    root_canon(
                        builder,
                        r,
                        &mut scratch,
                        &mut ms,
                        &mut sigs.canon,
                        &mut pin_buf,
                    );
                    let key = root_key(&stage_hashes, builder.flow, r);
                    sigs.meta
                        .push((key, (sigs.canon.len() - c0) as u32, pin_buf.len() as u32));
                    sigs.pins.extend_from_slice(&pin_buf);
                }
                sigs
            }))
            .map_err(|_| ())
        };
        let chunk = n_roots.div_ceil(threads);
        let parts: Vec<Result<Sigs, ()>> = std::thread::scope(|s| {
            let handles: Vec<_> = roots
                .chunks(chunk)
                .map(|rc| {
                    let f = &sign_chunk;
                    s.spawn(move || f(rc))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panic is caught inside the closure"))
                .collect()
        });
        let mut sigs_parts: Vec<Sigs> = Vec::with_capacity(parts.len());
        for part in parts {
            sigs_parts.push(part.ok()?);
        }
        // Exact-capacity merge: these streams are large at scale, and
        // growth doubling would copy them more than once.
        let canon_total: usize = sigs_parts.iter().map(|p| p.canon.len()).sum();
        let pin_total: usize = sigs_parts.iter().map(|p| p.pins.len()).sum();
        let mut canon_all: Vec<u64> = Vec::with_capacity(canon_total);
        let mut canon_starts: Vec<usize> = Vec::with_capacity(n_roots + 1);
        canon_starts.push(0);
        pins_all.reserve_exact(pin_total);
        for sigs in sigs_parts {
            canon_all.extend_from_slice(&sigs.canon);
            pins_all.extend_from_slice(&sigs.pins);
            for (key, cw, pw) in sigs.meta {
                keys.push(key);
                canon_starts.push(canon_starts.last().unwrap() + cw as usize);
                pin_starts.push(pin_starts.last().unwrap() + pw as usize);
            }
        }
        for r in 0..n_roots {
            let c = &canon_all[canon_starts[r]..canon_starts[r + 1]];
            let cands = by_key.entry(keys[r]).or_default();
            let hit = cands.iter().copied().find(|&cid| {
                let m = masters[cid as usize] as usize;
                canon_all[canon_starts[m]..canon_starts[m + 1]] == *c
            });
            match hit {
                Some(cid) => {
                    class_of[r] = cid;
                    class_len[cid as usize] += 1;
                }
                None => {
                    let cid = masters.len() as u32;
                    masters.push(r as u32);
                    class_len.push(1);
                    class_of[r] = cid;
                    cands.push(cid);
                }
            }
        }
    }
    drop(by_key);

    // Phase C: analyze one master per class into a pin-indexed table.
    let n_classes = masters.len();
    let analyze_chunk = |master_chunk: &[u32]| -> Result<Vec<MacroTable>, ()> {
        catch_unwind(AssertUnwindSafe(|| {
            let mut scratch = BuildScratch::new(node_count);
            let mut ms = MacroScratch::new(node_count);
            let mut arcs: Vec<Arc> = Vec::new();
            let mut tables = Vec::with_capacity(master_chunk.len());
            for &m in master_chunk {
                let m = m as usize;
                arcs.clear();
                builder.build_root(&roots[m], source_resistance, &mut arcs, &mut scratch);
                let pins = &pins_all[pin_starts[m]..pin_starts[m + 1]];
                ms.begin();
                for (i, &p) in pins.iter().enumerate() {
                    ms.mark[p.index()] = ms.epoch;
                    ms.ord[p.index()] = i as u32;
                }
                let mut table = Vec::with_capacity(arcs.len());
                let mut complete = true;
                for a in &arcs {
                    let (Some(from_pin), Some(to_pin)) = (ms.lookup(a.from), ms.lookup(a.to))
                    else {
                        complete = false;
                        break;
                    };
                    table.push(MacroArc {
                        from_pin,
                        to_pin,
                        rise_delay: a.rise_delay,
                        fall_delay: a.fall_delay,
                        rise_tau: a.rise_tau,
                        fall_tau: a.fall_tau,
                        inverting: a.inverting,
                        kind: a.kind,
                    });
                }
                tables.push(if complete {
                    MacroTable::Arcs(table)
                } else {
                    MacroTable::Opaque
                });
            }
            tables
        }))
        .map_err(|_| ())
    };
    let table_parts: Vec<Result<Vec<MacroTable>, ()>> = if threads <= 1 || n_classes < PAR_MIN_ROOTS
    {
        vec![analyze_chunk(&masters)]
    } else {
        let chunk = n_classes.div_ceil(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = masters
                .chunks(chunk)
                .map(|mc| {
                    let f = &analyze_chunk;
                    s.spawn(move || f(mc))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panic is caught inside the closure"))
                .collect()
        })
    };
    let mut tables: Vec<MacroTable> = Vec::with_capacity(n_classes);
    for part in table_parts {
        tables.extend(part.ok()?);
    }

    // Phase D: emit every root in order — shared classes by pin remap,
    // opaque classes by direct flat build.
    let emit_chunk =
        |start: usize, root_chunk: &[(NodeId, RootKind)]| -> Result<(Vec<Arc>, Vec<u32>), ()> {
            catch_unwind(AssertUnwindSafe(|| {
                // Reserve the exact instanced-arc total upfront (opaque
                // roots still grow, but they are the rare case): at a
                // million devices the chunk emits tens of millions of
                // arcs, and growth doubling would copy them repeatedly.
                let est: usize = (0..root_chunk.len())
                    .map(|j| match &tables[class_of[start + j] as usize] {
                        MacroTable::Arcs(t) => t.len(),
                        MacroTable::Opaque => 0,
                    })
                    .sum();
                let mut arcs: Vec<Arc> = Vec::with_capacity(est);
                let mut counts: Vec<u32> = Vec::with_capacity(root_chunk.len());
                let mut scratch = BuildScratch::new(node_count);
                for (j, r) in root_chunk.iter().enumerate() {
                    let ri = start + j;
                    let before = arcs.len();
                    match &tables[class_of[ri] as usize] {
                        MacroTable::Arcs(table) => {
                            let pins = &pins_all[pin_starts[ri]..pin_starts[ri + 1]];
                            for ma in table {
                                arcs.push(Arc {
                                    from: pins[ma.from_pin as usize],
                                    to: pins[ma.to_pin as usize],
                                    rise_delay: ma.rise_delay,
                                    fall_delay: ma.fall_delay,
                                    rise_tau: ma.rise_tau,
                                    fall_tau: ma.fall_tau,
                                    inverting: ma.inverting,
                                    kind: ma.kind,
                                });
                            }
                        }
                        MacroTable::Opaque => {
                            builder.build_root(r, source_resistance, &mut arcs, &mut scratch);
                        }
                    }
                    counts.push((arcs.len() - before) as u32);
                }
                (arcs, counts)
            }))
            .map_err(|_| ())
        };
    type EmitResult = Result<(Vec<Arc>, Vec<u32>), ()>;
    let emit_parts: Vec<EmitResult> = if serial {
        vec![emit_chunk(0, roots)]
    } else {
        let chunk = n_roots.div_ceil(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = roots
                .chunks(chunk)
                .enumerate()
                .map(|(k, rc)| {
                    let f = &emit_chunk;
                    s.spawn(move || f(k * chunk, rc))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panic is caught inside the closure"))
                .collect()
        })
    };

    let mut parts_ok: Vec<(Vec<Arc>, Vec<u32>)> = Vec::with_capacity(emit_parts.len());
    for part in emit_parts {
        parts_ok.push(part.ok()?);
    }
    let arc_total: usize = parts_ok.iter().map(|(a, _)| a.len()).sum();
    let mut arcs: Vec<Arc> = Vec::new();
    let mut spans: Vec<u32> = Vec::with_capacity(n_roots + 1);
    spans.push(0);
    // The serial build produces one part: take its vector whole rather
    // than copying ~GBs of arcs through an extend.
    for (i, (part_arcs, counts)) in parts_ok.into_iter().enumerate() {
        for c in counts {
            spans.push(spans.last().unwrap() + c);
        }
        if i == 0 {
            arcs = part_arcs;
            arcs.reserve_exact(arc_total - arcs.len());
        } else {
            arcs.extend(part_arcs);
        }
    }

    // Work accounting: a class whose table shared counts one analysis
    // and `len - 1` instancings; an opaque class analyzed every member.
    let mut analyzed: u64 = 0;
    let mut instanced: u64 = 0;
    for (cid, &len) in class_len.iter().enumerate() {
        match &tables[cid] {
            MacroTable::Arcs(_) => {
                analyzed += 1;
                instanced += (len - 1) as u64;
            }
            MacroTable::Opaque => analyzed += len as u64,
        }
    }
    tv_obs::add(tv_obs::Counter::MacroClasses, n_classes as u64);
    tv_obs::add(tv_obs::Counter::MacroAnalyzed, analyzed);
    tv_obs::add(tv_obs::Counter::MacroInstanced, instanced);

    let mut fp = 0x9c0d_e1a2_57a9_0e5d_u64;
    for r in 0..n_roots {
        fp = mix64(fp, keys[r]);
        fp = mix64(fp, class_of[r] as u64);
    }

    Some((
        arcs,
        spans,
        Extraction {
            class_of,
            class_len,
            classes: n_classes,
            analyzed,
            instanced,
            fp,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DelayModel;
    use tv_clocks::qualify::qualify_with_flow;
    use tv_flow::{analyze, RuleSet};
    use tv_netlist::Tech;

    fn assert_hier_matches_flat(nl: &Netlist, case: PhaseCase) -> Extraction {
        let flow = analyze(nl, &RuleSet::all());
        let qual = qualify_with_flow(nl, &flow);
        let flat =
            TimingGraph::build_isolated(nl, &flow, &qual, case, DelayModel::Elmore, 1.0, 1, None);
        let mut last = None;
        for jobs in [1usize, 2, 8] {
            let (sb, ex) = build_spanned(nl, &flow, &qual, case, DelayModel::Elmore, 1.0, jobs);
            let ex = ex.expect("clean build must extract");
            assert_eq!(sb.graph.arc_count(), flat.arc_count(), "jobs {jobs}");
            for (h, f) in sb.graph.arcs.iter().zip(flat.arcs.iter()) {
                assert_eq!(h.from, f.from);
                assert_eq!(h.to, f.to);
                assert_eq!(h.kind, f.kind);
                assert_eq!(h.inverting, f.inverting);
                assert_eq!(h.rise_delay.to_bits(), f.rise_delay.to_bits());
                assert_eq!(h.fall_delay.to_bits(), f.fall_delay.to_bits());
                assert_eq!(h.rise_tau.to_bits(), f.rise_tau.to_bits());
                assert_eq!(h.fall_tau.to_bits(), f.fall_tau.to_bits());
            }
            assert_eq!(
                *sb.spans.as_ref().unwrap().last().unwrap() as usize,
                sb.graph.arc_count()
            );
            last = Some(ex);
        }
        last.unwrap()
    }

    #[test]
    fn replicated_datapath_shares_and_stays_bit_identical() {
        let mc = tv_gen::mips_mc::t6_mips_mc(Tech::nmos4um(), 3);
        for case in [
            PhaseCase::all_active(),
            PhaseCase::phase(0),
            PhaseCase::phase(1),
        ] {
            let ex = assert_hier_matches_flat(&mc.netlist, case);
            assert!(
                ex.instanced() >= 2 * ex.analyzed(),
                "3 identical cores must dedup heavily: analyzed {} instanced {}",
                ex.analyzed(),
                ex.instanced()
            );
        }
    }

    #[test]
    fn irregular_random_logic_stays_bit_identical() {
        let c = tv_gen::random::random_logic(
            Tech::nmos4um(),
            1200,
            0x9aa7,
            tv_gen::random::RandomMix::default(),
        );
        assert_hier_matches_flat(&c.netlist, PhaseCase::all_active());
    }

    #[test]
    fn manchester_carry_chain_stays_bit_identical() {
        let c = tv_gen::manchester::manchester_circuit(Tech::nmos4um(), 16, 4);
        for case in [PhaseCase::all_active(), PhaseCase::phase(0)] {
            assert_hier_matches_flat(&c.netlist, case);
        }
    }

    #[test]
    fn desplit_mints_singleton_classes_once() {
        let mc = tv_gen::mips_mc::t6_mips_mc(Tech::nmos4um(), 2);
        let flow = analyze(&mc.netlist, &RuleSet::all());
        let qual = qualify_with_flow(&mc.netlist, &flow);
        let (_, ex) = build_spanned(
            &mc.netlist,
            &flow,
            &qual,
            PhaseCase::all_active(),
            DelayModel::Elmore,
            1.0,
            2,
        );
        let mut ex = ex.unwrap();
        let fp0 = ex.fingerprint();
        // Find a root in a shared class.
        let shared = (0..ex.class_of.len() as u32)
            .find(|&r| ex.class_len[ex.class_of[r as usize] as usize] > 1)
            .expect("two identical cores must share something");
        assert_eq!(ex.desplit(&[shared]), 1);
        assert_ne!(ex.fingerprint(), fp0);
        // Now a singleton: a second de-share of the same root is a no-op.
        assert_eq!(ex.desplit(&[shared]), 0);
    }
}
