//! Text rendering of a [`TimingReport`] — the analyzer's output the way
//! a 1983 designer would read it.

use std::fmt::Write as _;

use tv_netlist::Netlist;

use crate::analyzer::TimingReport;

impl TimingReport {
    /// Renders the full report with node names resolved against the
    /// netlist it was produced from.
    pub fn render(&self, netlist: &Netlist) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "TV timing report — {} devices, {} nodes",
            netlist.device_count(),
            netlist.node_count()
        );
        if !self.is_complete() {
            let unresolved = self.unresolved_nodes();
            let _ = writeln!(
                s,
                "*** PARTIAL RESULTS: a resource guard (relaxation budget or \
                 deadline) stopped the analysis early ***"
            );
            let _ = writeln!(
                s,
                "*** {} node(s) unresolved; arrivals below are lower bounds ***",
                unresolved.len()
            );
            for &id in unresolved.iter().take(10) {
                let _ = writeln!(s, "***   unresolved: {}", netlist.node_name(id));
            }
            if unresolved.len() > 10 {
                let _ = writeln!(s, "***   ... and {} more", unresolved.len() - 10);
            }
        }
        let _ = writeln!(s, "flow: {}", self.flow_report);
        let _ = writeln!(s, "{}", self.census);
        let _ = writeln!(s, "latches: {}", self.latches.len());

        if let Some(t) = self.combinational.critical_arrival() {
            let _ = writeln!(s, "combinational critical arrival: {t:.3} ns");
        }
        if self.combinational.cyclic {
            let _ = writeln!(s, "WARNING: combinational view contains cycles");
        }

        for p in &self.phases {
            let _ = writeln!(
                s,
                "phase {}: arcs {}  critical {}  slack {}",
                p.phase + 1,
                p.arcs,
                p.result
                    .critical_arrival()
                    .map_or("-".to_string(), |t| format!("{t:.3} ns")),
                p.slack.map_or("-".to_string(), |x| format!("{x:.3} ns")),
            );
            if p.result.cyclic {
                let _ = writeln!(s, "  WARNING: phase {} has cycles", p.phase + 1);
            }
            for race in &p.races {
                let _ = writeln!(
                    s,
                    "  RACE: same-phase path reaches latch {} after only {:.3} ns",
                    netlist.node_name(race.capture),
                    race.min_arrival
                );
            }
            if let Some(path) = p.paths.first() {
                let _ = writeln!(s, "  critical path ({} steps):", path.len());
                let _ = write!(s, "{}", path.display(netlist));
            }
        }

        if let Some(mc) = self.min_cycle {
            let _ = writeln!(s, "minimum cycle: {mc:.3} ns");
        }

        if self.checks.is_empty() {
            let _ = writeln!(s, "electrical checks: clean");
        } else {
            let _ = writeln!(s, "electrical checks: {} issue(s)", self.checks.len());
            for c in &self.checks {
                let _ = writeln!(s, "  {}", c.display(netlist));
            }
        }

        if !self.diagnostics.is_empty() {
            let _ = writeln!(s, "diagnostics: {} finding(s)", self.diagnostics.len());
            for d in &self.diagnostics {
                let _ = writeln!(s, "  {}", d.render_text(None));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::analyzer::Analyzer;
    use crate::options::AnalysisOptions;
    use tv_gen::{chains, datapath};
    use tv_netlist::Tech;

    #[test]
    fn render_mentions_key_sections() {
        let dp = datapath::datapath(Tech::nmos4um(), datapath::DatapathConfig::small());
        let report = Analyzer::new(&dp.netlist).run(&AnalysisOptions::default());
        let text = report.render(&dp.netlist);
        assert!(text.contains("TV timing report"));
        assert!(text.contains("phase 1"));
        assert!(text.contains("phase 2"));
        assert!(text.contains("minimum cycle"));
        assert!(text.contains("latches"));
    }

    #[test]
    fn clean_circuit_reports_clean_checks() {
        let c = chains::inverter_chain(Tech::nmos4um(), 3, 1);
        let report = Analyzer::new(&c.netlist).run(&AnalysisOptions::default());
        let text = report.render(&c.netlist);
        assert!(text.contains("electrical checks: clean"), "{text}");
        assert!(!text.contains("PARTIAL RESULTS"), "{text}");
        assert!(!text.contains("diagnostics:"), "{text}");
    }

    #[test]
    fn partial_report_renders_prominent_warning() {
        use tv_netlist::{NetlistBuilder, Tech};
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.node("x");
        let y = b.node("y");
        b.inverter("i1", a, x);
        b.inverter("i2", x, y);
        b.inverter("i3", y, x);
        let nl = b.finish().unwrap();
        let opts = AnalysisOptions {
            relax_budget: Some(1),
            ..AnalysisOptions::default()
        };
        let report = Analyzer::new(&nl).run(&opts);
        let text = report.render(&nl);
        assert!(text.contains("PARTIAL RESULTS"), "{text}");
        assert!(text.contains("unresolved"), "{text}");
        assert!(text.contains("diagnostics:"), "{text}");
        assert!(text.contains("TV0301"), "{text}");
    }
}
