//! Electrical rule checks — the non-timing half of a 1983 timing
//! verifier's report.
//!
//! Ratioed nMOS fails silently in ways a modern static CMOS designer never
//! sees: a pull-up sized too strong leaves the low level above threshold;
//! a storage node sharing charge with a big undriven network loses its
//! value; an unorientable pass transistor makes every delay downstream of
//! it untrustworthy. TV printed these alongside the critical paths, and
//! so does this module.

use std::fmt;

use tv_clocks::qualify::Qualification;
use tv_flow::{DeviceRole, Direction, FlowAnalysis, NodeClass};
use tv_netlist::{codes, DeviceId, Diagnostic, Netlist, NodeId};

use crate::graph::{pull_down_resistance, pull_up_resistance};

/// One electrical diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckIssue {
    /// A restoring stage whose pull-up/pull-down resistance ratio is below
    /// the technology requirement: its logic-low output sits too high.
    RatioViolation {
        /// The stage output node.
        node: NodeId,
        /// Measured R_pu / R_pd.
        ratio: f64,
        /// Required minimum ratio (4, or 8 when driven through pass logic).
        required: f64,
    },
    /// A dynamic node whose stored charge can redistribute onto a
    /// comparable undriven capacitance when a pass device opens.
    ChargeSharing {
        /// The storage/precharged node at risk.
        node: NodeId,
        /// Its capacitance, pF.
        stored_pf: f64,
        /// The undriven capacitance it may share with, pF.
        shared_pf: f64,
    },
    /// A pass transistor no direction rule could orient: delays through it
    /// are analyzed conservatively and should be reviewed.
    UnresolvedDirection {
        /// The unoriented device.
        device: DeviceId,
    },
    /// A node derived from both clock phases.
    ClockConflict {
        /// The conflicted node.
        node: NodeId,
    },
}

impl CheckIssue {
    /// Renders with netlist names.
    pub fn display(&self, netlist: &Netlist) -> String {
        match self {
            CheckIssue::RatioViolation {
                node,
                ratio,
                required,
            } => format!(
                "ratio violation at {}: R_pu/R_pd = {ratio:.2}, need >= {required}",
                netlist.node_name(*node)
            ),
            CheckIssue::ChargeSharing {
                node,
                stored_pf,
                shared_pf,
            } => format!(
                "charge sharing at {}: {stored_pf:.4} pF stored vs {shared_pf:.4} pF shared",
                netlist.node_name(*node)
            ),
            CheckIssue::UnresolvedDirection { device } => format!(
                "unresolved pass direction: {}",
                netlist.device(*device).name()
            ),
            CheckIssue::ClockConflict { node } => format!(
                "clock qualification conflict at {}",
                netlist.node_name(*node)
            ),
        }
    }

    /// The stable diagnostic code for this check kind.
    pub fn code(&self) -> &'static str {
        match self {
            CheckIssue::RatioViolation { .. } => codes::CHECK_RATIO,
            CheckIssue::ChargeSharing { .. } => codes::CHECK_CHARGE_SHARING,
            CheckIssue::UnresolvedDirection { .. } => codes::FLOW_UNRESOLVED,
            CheckIssue::ClockConflict { .. } => codes::CHECK_CLOCK_CONFLICT,
        }
    }

    /// Renders this check as a [`Diagnostic`] on the unified stream.
    /// Electrical checks are warnings: the analysis completed, but the
    /// circuit may not work at the reported speed.
    pub fn diagnostic(&self, netlist: &Netlist) -> Diagnostic {
        Diagnostic::warning(self.code(), self.display(netlist))
    }
}

impl fmt::Display for CheckIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckIssue::RatioViolation {
                ratio, required, ..
            } => {
                write!(f, "ratio violation ({ratio:.2} < {required})")
            }
            CheckIssue::ChargeSharing { .. } => write!(f, "charge sharing hazard"),
            CheckIssue::UnresolvedDirection { device } => {
                write!(f, "unresolved pass direction ({device})")
            }
            CheckIssue::ClockConflict { node } => write!(f, "clock conflict ({node})"),
        }
    }
}

/// Fraction of a dynamic node's capacitance that undriven pass-adjacent
/// capacitance may reach before we call it a charge-sharing hazard.
pub const CHARGE_SHARE_LIMIT: f64 = 0.5;

/// Runs every electrical check. Deterministic order: ratio checks by node
/// id, then charge sharing, then unresolved directions, then conflicts.
pub fn check_electrical(
    netlist: &Netlist,
    flow: &FlowAnalysis,
    qualification: &[Qualification],
) -> Vec<CheckIssue> {
    let tech = netlist.tech();
    let mut issues = Vec::new();

    // Ratio checks on restored nodes.
    for id in netlist.node_ids() {
        if flow.node_class(id) != NodeClass::Restored {
            continue;
        }
        let (Some(r_pu), Some(r_pd)) = (
            pull_up_resistance(netlist, flow, id),
            pull_down_resistance(netlist, flow, id),
        ) else {
            continue;
        };
        let required = if stage_sees_degraded_input(netlist, flow, id) {
            tech.ratio_through_pass
        } else {
            tech.ratio_restored
        };
        let ratio = r_pu / r_pd;
        if ratio < required * 0.999 {
            issues.push(CheckIssue::RatioViolation {
                node: id,
                ratio,
                required,
            });
        }
    }

    // Charge sharing on dynamic nodes.
    for id in netlist.node_ids() {
        let class = flow.node_class(id);
        if !matches!(class, NodeClass::Storage | NodeClass::Precharged) {
            continue;
        }
        let stored = netlist.node_cap(id);
        let mut shared = 0.0;
        for &did in netlist.node_devices(id).channel {
            if flow.device_role(did) != DeviceRole::Pass {
                continue;
            }
            let other = netlist.device(did).other_channel_end(id);
            // Charge only redistributes onto sides nothing restores.
            if matches!(
                flow.node_class(other),
                NodeClass::PassInterior | NodeClass::Storage | NodeClass::GateOnly
            ) {
                shared += netlist.node_cap(other);
            }
        }
        if stored > 0.0 && shared > CHARGE_SHARE_LIMIT * stored {
            issues.push(CheckIssue::ChargeSharing {
                node: id,
                stored_pf: stored,
                shared_pf: shared,
            });
        }
    }

    // Unresolved pass directions.
    for dref in netlist.devices() {
        if flow.device_role(dref.id) == DeviceRole::Pass
            && flow.direction(dref.id) == Direction::Unresolved
        {
            issues.push(CheckIssue::UnresolvedDirection { device: dref.id });
        }
    }

    // Clock qualification conflicts.
    for id in netlist.node_ids() {
        if qualification[id.index()] == Qualification::Conflict {
            issues.push(CheckIssue::ClockConflict { node: id });
        }
    }

    issues
}

/// Whether any pull-down gate input of the stage under `out` is fed by a
/// pass network (degraded high level VDD − V_T), which doubles the
/// required ratio.
fn stage_sees_degraded_input(netlist: &Netlist, flow: &FlowAnalysis, out: NodeId) -> bool {
    let mut frontier = vec![out];
    let mut seen = std::collections::HashSet::new();
    seen.insert(out);
    while let Some(node) = frontier.pop() {
        for &did in netlist.node_devices(node).channel {
            if flow.device_role(did) != DeviceRole::PullDown {
                continue;
            }
            let dev = netlist.device(did);
            let gate_class = flow.node_class(dev.gate());
            if matches!(
                gate_class,
                NodeClass::Storage | NodeClass::PassInterior | NodeClass::Bus
            ) {
                return true;
            }
            let other = dev.other_channel_end(node);
            if other != netlist.gnd() && other != netlist.vdd() && seen.insert(other) {
                frontier.push(other);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_clocks::qualify::qualify_with_flow;
    use tv_flow::{analyze, RuleSet};
    use tv_netlist::{NetlistBuilder, Tech};

    fn run_checks(nl: &Netlist) -> Vec<CheckIssue> {
        let flow = analyze(nl, &RuleSet::all());
        let q = qualify_with_flow(nl, &flow);
        check_electrical(nl, &flow, &q)
    }

    #[test]
    fn standard_inverter_is_clean() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let out = b.output("out");
        b.inverter("i", a, out);
        let nl = b.finish().unwrap();
        assert!(run_checks(&nl).is_empty(), "{:?}", run_checks(&nl));
    }

    #[test]
    fn overstrong_pulldown_is_fine_overweak_is_not() {
        // Pull-up at 2 squares, pull-down deliberately long at 2 squares:
        // electrical ratio ≈ r_dep/r_enh (~1.4) < 4. Violation.
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let out = b.output("out");
        b.depletion_load(out, 4.0, 8.0);
        let gnd = b.gnd();
        b.enhancement("pd", a, gnd, out, 4.0, 8.0);
        let nl = b.finish().unwrap();
        let issues = run_checks(&nl);
        assert!(issues
            .iter()
            .any(|i| matches!(i, CheckIssue::RatioViolation { ratio, .. } if *ratio < 2.0)));
    }

    #[test]
    fn pass_driven_stage_needs_ratio_eight() {
        // Inverter whose input comes through a pass transistor: the
        // standard 4:1 inverter violates the 8:1 requirement.
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi = b.clock("phi1", 0);
        let d = b.input("d");
        let qb = b.node("qb");
        b.dynamic_latch("l", phi, d, qb);
        let nl = b.finish().unwrap();
        let issues = run_checks(&nl);
        assert!(
            issues.iter().any(|i| matches!(
                i,
                CheckIssue::RatioViolation { required, .. } if *required == 8.0
            )),
            "{issues:?}"
        );
    }

    #[test]
    fn charge_sharing_flagged_on_big_shared_cap() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi = b.clock("phi1", 0);
        let sel = b.clock("phi2", 1);
        let d = b.input("d");
        let qb = b.node("qb");
        let store = b.dynamic_latch("l", phi, d, qb);
        // Pass device from the storage node onto a big dead capacitance,
        // opened on the other phase.
        let big = b.node("big");
        b.pass("share", sel, store, big);
        b.add_cap(big, 1.0).unwrap();
        // Give `big` a second pass contact so it is not a single-contact
        // sink and stays an undriven interior node.
        let other = b.node("other");
        b.pass("share2", sel, big, other);
        let nl = b.finish().unwrap();
        let issues = run_checks(&nl);
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, CheckIssue::ChargeSharing { node, .. } if *node == store)),
            "{issues:?}"
        );
    }

    #[test]
    fn unresolved_direction_reported() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let c = b.input("c");
        let x = b.node("x");
        let y = b.node("y");
        // Channel between two floating internal nodes: nothing orients it.
        b.pass("mystery", c, x, y);
        // Keep x/y multi-contact so the sink rule stays quiet.
        let z = b.node("z");
        b.pass("m2", c, y, z);
        let nl = b.finish().unwrap();
        let issues = run_checks(&nl);
        assert!(issues
            .iter()
            .any(|i| matches!(i, CheckIssue::UnresolvedDirection { .. })));
    }

    #[test]
    fn clock_conflict_reported() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi1 = b.clock("phi1", 0);
        let phi2 = b.clock("phi2", 1);
        let bad = b.node("bad");
        b.nand("g", &[phi1, phi2], bad);
        let nl = b.finish().unwrap();
        let issues = run_checks(&nl);
        assert!(issues
            .iter()
            .any(|i| matches!(i, CheckIssue::ClockConflict { .. })));
    }

    #[test]
    fn issue_display_uses_names() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let out = b.output("badnode");
        b.depletion_load(out, 4.0, 8.0);
        let gnd = b.gnd();
        b.enhancement("pd", a, gnd, out, 4.0, 8.0);
        let nl = b.finish().unwrap();
        let issues = run_checks(&nl);
        let text = issues[0].display(&nl);
        assert!(text.contains("badnode"));
    }
}
