//! Analysis configuration.

use tv_clocks::TwoPhaseClock;
use tv_flow::RuleSet;
use tv_rc::SlopeModel;

/// Which RC delay model converts stage resistance and capacitance into an
/// arc delay (the A1 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayModel {
    /// Distributed Elmore delay over the stage's RC tree (TV's model, the
    /// default).
    #[default]
    Elmore,
    /// Lumped: driver resistance × total tree capacitance, ignoring pass
    /// and interconnect resistance. The pre-TV model; underestimates chain
    /// far ends.
    Lumped,
    /// The certified *upper* bound (`T_D / x` at the switching fraction) —
    /// maximally conservative.
    UpperBound,
}

/// Options controlling one analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Rules used by the signal-flow direction fixpoint.
    pub rules: RuleSet,
    /// The RC delay model for arcs.
    pub model: DelayModel,
    /// Whether to run per-phase case analysis (TV's approach). When
    /// `false`, all clocks are treated as simultaneously active — the
    /// naive mode the T4 ablation compares against.
    pub case_analysis: bool,
    /// The clock scheme setup checks are made against.
    pub clock: TwoPhaseClock,
    /// How many critical paths to extract per phase.
    pub top_k: usize,
    /// Waveform-slope handling ([`SlopeModel::calibrated`] by default;
    /// [`SlopeModel::disabled`] for pure step-response analysis).
    pub slope: SlopeModel,
    /// Worker threads for graph construction and levelized propagation.
    /// `1` (the default) runs fully serial; `0` means "use every
    /// available core". Results are bit-identical at any setting.
    pub jobs: usize,
    /// Reuse clean cones between the analysis cases of one run (and, via
    /// [`crate::incremental::IncrementalCache`], across runs): per-node
    /// stage fingerprints mark what changed, and only the forward cone of
    /// dirtied nodes is recomputed. Bit-identical to a cold run.
    pub incremental: bool,
    /// Overrides the cyclic-residue relaxation budget (default
    /// `64 × (arcs + nodes)`). Exhaustion returns *partial* results with
    /// the unresolved nodes listed, not an error-only exit.
    pub relax_budget: Option<usize>,
    /// Wall-clock deadline for the whole run, measured from the moment
    /// analysis starts. `None` (the default) never times out; setting it
    /// makes which nodes finish machine-dependent, so leave it off where
    /// reproducibility matters.
    pub deadline: Option<std::time::Duration>,
    /// Refuse (with [`crate::TvError::TooLarge`], via
    /// [`crate::Analyzer::try_run`]) netlists above this node count.
    pub max_nodes: Option<usize>,
    /// Refuse (with [`crate::TvError::TooLarge`], via
    /// [`crate::Analyzer::try_run`]) timing graphs above this arc count.
    pub max_arcs: Option<usize>,
}

impl AnalysisOptions {
    /// Resolves the `jobs` knob: `0` expands to the machine's available
    /// parallelism.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

impl Default for AnalysisOptions {
    /// Elmore model, full rule set, case analysis on, a roomy 100 ns
    /// symmetric clock, top-10 paths.
    fn default() -> Self {
        AnalysisOptions {
            rules: RuleSet::all(),
            model: DelayModel::Elmore,
            case_analysis: true,
            clock: TwoPhaseClock::symmetric(100.0, 2.0),
            top_k: 10,
            slope: SlopeModel::calibrated(),
            jobs: 1,
            incremental: false,
            relax_budget: None,
            deadline: None,
            max_nodes: None,
            max_arcs: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_elmore_with_case_analysis() {
        let o = AnalysisOptions::default();
        assert_eq!(o.model, DelayModel::Elmore);
        assert!(o.case_analysis);
        assert_eq!(o.top_k, 10);
        assert!(o.clock.cycle() > 0.0);
        assert_eq!(o.jobs, 1, "serial by default");
        assert!(!o.incremental);
        assert!(o.relax_budget.is_none());
        assert!(o.deadline.is_none());
        assert!(o.max_nodes.is_none());
        assert!(o.max_arcs.is_none());
    }

    #[test]
    fn effective_jobs_expands_zero_to_machine_width() {
        let o = AnalysisOptions {
            jobs: 0,
            ..AnalysisOptions::default()
        };
        assert!(o.effective_jobs() >= 1);
        let o4 = AnalysisOptions {
            jobs: 4,
            ..AnalysisOptions::default()
        };
        assert_eq!(o4.effective_jobs(), 4);
    }

    #[test]
    fn delay_model_default_is_elmore() {
        assert_eq!(DelayModel::default(), DelayModel::Elmore);
    }
}
