//! The `tv serve` wire protocol: versioned, length-delimited, typed.
//!
//! The session REPL (PR 4) speaks newline-delimited commands with one
//! JSON reply per line — a fine protocol for a pipe, but not for a
//! network: there is no version negotiation, no request/reply pairing,
//! no way to refuse a connection with a machine-readable reason, and a
//! torn read is indistinguishable from a clean close. This crate lifts
//! that protocol onto a framed wire format so the serving plane
//! (`tv_serve`) and its clients share one strictly-parsed, testable
//! surface — the engine/protocol/platform/client split of the related
//! STEAM/gwr system, where the protocol crate is a first-class citizen
//! rather than format strings scattered through the server.
//!
//! # Frame format
//!
//! Every frame is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON (one object). Payloads are capped at
//! [`MAX_FRAME`]; an oversized length prefix is rejected *before* any
//! allocation, so a hostile peer cannot balloon the server. The JSON is
//! parsed with the strict in-tree reader (`tv_obs::json`) — unknown
//! `"type"` values and missing fields are typed [`ProtoError`]s, never
//! panics.
//!
//! # Conversation shape
//!
//! ```text
//! client                          server
//!   Hello{proto,tenant,limits} ->
//!                              <- HelloOk{proto,server,resumed}
//!                                 (or Error{TV0701 version} / Error{TV0702 busy})
//!   Request{id,line}           ->
//!                              <- Reply{id,ok,body}     # body = one session reply line
//!   ...                           ...
//!   Bye                        ->   (or just close)
//! ```
//!
//! The `Reply` body is carried **verbatim** as a string — the exact
//! bytes the session REPL would have written to stdout — so a served
//! transcript can be diffed bit-for-bit against a `tv batch` replay of
//! the same script. Re-encoding the body through a JSON value type
//! would reorder keys and reformat floats; verbatim carriage is what
//! makes the golden-transcript story survive the network hop.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::{Read, Write};

use tv_obs::json::{self, Value};

/// Protocol version spoken by this build. A server refuses a `Hello`
/// carrying any other version with a typed [`codes::VERSION_MISMATCH`]
/// error frame — there is exactly one version per build, negotiated
/// down to "match or refuse" so old clients fail loudly, not subtly.
pub const VERSION: u32 = 1;

/// Hard cap on a frame payload, bytes. Session replies are a few KB;
/// the cap only exists to bound what a hostile length prefix can make
/// the reader allocate.
pub const MAX_FRAME: usize = 1 << 20;

/// Typed wire-protocol error codes (`TV07xx`), following the repo-wide
/// diagnostic code registry (`tv_netlist::codes` documents the ranges).
pub mod codes {
    /// The peer's protocol version is not this build's [`super::VERSION`].
    pub const VERSION_MISMATCH: &str = "TV0701";
    /// Admission control refused the session (global or per-tenant cap).
    pub const BUSY: &str = "TV0702";
    /// A frame length prefix exceeded [`super::MAX_FRAME`].
    pub const FRAME_TOO_LARGE: &str = "TV0703";
    /// A frame payload failed strict parsing or had a bad shape.
    pub const MALFORMED_FRAME: &str = "TV0704";
    /// The first frame on a connection was not `Hello`.
    pub const HELLO_REQUIRED: &str = "TV0705";
    /// The tenant name is empty, too long, or not `[A-Za-z0-9_.-]`.
    pub const BAD_TENANT: &str = "TV0706";
    /// The server could not restore the tenant's journaled session.
    pub const RESUME_FAILED: &str = "TV0707";
}

/// Per-request resource clamps a client may ask for in its `Hello`.
/// The server clamps each to its own configured ceiling — a tenant can
/// always ask for *less* work than the server allows, never more.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Limits {
    /// Requested relaxation budget (`AnalysisOptions::relax_budget`).
    pub relax_budget: Option<u64>,
    /// Requested per-run deadline, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Requested node-count admission limit (`max_nodes`).
    pub max_nodes: Option<u64>,
}

impl Limits {
    fn is_empty(&self) -> bool {
        self.relax_budget.is_none() && self.deadline_ms.is_none() && self.max_nodes.is_none()
    }
}

/// One protocol frame. See the module docs for the conversation shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client's first frame: version, tenant identity, resource asks.
    Hello {
        /// Protocol version the client speaks.
        proto: u32,
        /// Tenant name for admission control and journal routing.
        tenant: String,
        /// Free-form client identification (diagnostics only).
        client: String,
        /// Requested resource clamps (server clamps to its ceilings).
        limits: Limits,
    },
    /// Server's acceptance of a `Hello`.
    HelloOk {
        /// Protocol version the server speaks (== client's, by now).
        proto: u32,
        /// Free-form server identification.
        server: String,
        /// Journaled commands replayed to restore this tenant's session
        /// before the connection went live (0 = a fresh session).
        resumed: u64,
    },
    /// A typed refusal or connection-level failure. After an `Error`
    /// frame the sender closes the connection.
    Error {
        /// One of [`codes`].
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// One session command line, tagged for reply pairing.
    Request {
        /// Client-assigned id, echoed by the matching `Reply`. Ids must
        /// stay within JSON's exactly-representable integer range
        /// (below 2^53): the wire format is JSON and the strict parser
        /// reads numbers as `f64`, so larger ids would be silently
        /// rounded. Sequential per-connection counters — what every
        /// client in this workspace uses — never get close.
        id: u64,
        /// The command line, exactly as `tv session` would read it.
        line: String,
    },
    /// The reply to `Request` `id`.
    Reply {
        /// The request this answers.
        id: u64,
        /// Mirror of the body's `"ok"` field.
        ok: bool,
        /// The session's JSON reply line, verbatim (empty for a
        /// blank/comment line, which produces no reply).
        body: String,
    },
    /// Clean client-initiated close.
    Bye,
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// A length prefix exceeded [`MAX_FRAME`].
    TooLarge(usize),
    /// The payload failed strict JSON parsing or had a bad shape.
    Malformed(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl ProtoError {
    /// The [`codes`] entry a server should answer this error with.
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::Io(_) => codes::MALFORMED_FRAME,
            ProtoError::TooLarge(_) => codes::FRAME_TOO_LARGE,
            ProtoError::Malformed(_) => codes::MALFORMED_FRAME,
        }
    }
}

/// Renders a frame's JSON payload (no length prefix).
pub fn render(frame: &Frame) -> String {
    match frame {
        Frame::Hello {
            proto,
            tenant,
            client,
            limits,
        } => {
            let mut s = format!(
                r#"{{"type":"hello","proto":{},"tenant":"{}","client":"{}""#,
                proto,
                json::escape(tenant),
                json::escape(client)
            );
            if !limits.is_empty() {
                s.push_str(r#","limits":{"#);
                let mut first = true;
                let mut field = |k: &str, v: Option<u64>| {
                    if let Some(v) = v {
                        if !first {
                            s.push(',');
                        }
                        first = false;
                        s.push_str(&format!(r#""{k}":{v}"#));
                    }
                };
                field("relax_budget", limits.relax_budget);
                field("deadline_ms", limits.deadline_ms);
                field("max_nodes", limits.max_nodes);
                s.push('}');
            }
            s.push('}');
            s
        }
        Frame::HelloOk {
            proto,
            server,
            resumed,
        } => format!(
            r#"{{"type":"hello_ok","proto":{},"server":"{}","resumed":{}}}"#,
            proto,
            json::escape(server),
            resumed
        ),
        Frame::Error { code, message } => format!(
            r#"{{"type":"error","code":"{}","error":"{}"}}"#,
            json::escape(code),
            json::escape(message)
        ),
        Frame::Request { id, line } => format!(
            r#"{{"type":"request","id":{},"line":"{}"}}"#,
            id,
            json::escape(line)
        ),
        Frame::Reply { id, ok, body } => format!(
            r#"{{"type":"reply","id":{},"ok":{},"body":"{}"}}"#,
            id,
            ok,
            json::escape(body)
        ),
        Frame::Bye => r#"{"type":"bye"}"#.to_string(),
    }
}

/// Decodes one frame from its JSON payload text.
pub fn decode(payload: &str) -> Result<Frame, ProtoError> {
    let v = json::parse(payload).map_err(ProtoError::Malformed)?;
    let ty = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| ProtoError::Malformed("missing \"type\"".into()))?;
    let str_field = |k: &str| -> Result<String, ProtoError> {
        v.get(k)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ProtoError::Malformed(format!("missing string \"{k}\"")))
    };
    let num_field = |k: &str| -> Result<u64, ProtoError> {
        v.get(k)
            .and_then(Value::as_num)
            .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
            .ok_or_else(|| ProtoError::Malformed(format!("missing integer \"{k}\"")))
    };
    match ty {
        "hello" => {
            let mut limits = Limits::default();
            if let Some(l) = v.get("limits") {
                let opt = |k: &str| -> Result<Option<u64>, ProtoError> {
                    match l.get(k) {
                        None => Ok(None),
                        Some(x) => x
                            .as_num()
                            .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                            .map(|n| Some(n as u64))
                            .ok_or_else(|| ProtoError::Malformed(format!("bad limit \"{k}\""))),
                    }
                };
                limits.relax_budget = opt("relax_budget")?;
                limits.deadline_ms = opt("deadline_ms")?;
                limits.max_nodes = opt("max_nodes")?;
            }
            Ok(Frame::Hello {
                proto: num_field("proto")? as u32,
                tenant: str_field("tenant")?,
                client: str_field("client")?,
                limits,
            })
        }
        "hello_ok" => Ok(Frame::HelloOk {
            proto: num_field("proto")? as u32,
            server: str_field("server")?,
            resumed: num_field("resumed")?,
        }),
        "error" => Ok(Frame::Error {
            code: str_field("code")?,
            message: str_field("error")?,
        }),
        "request" => Ok(Frame::Request {
            id: num_field("id")?,
            line: str_field("line")?,
        }),
        "reply" => Ok(Frame::Reply {
            id: num_field("id")?,
            ok: v
                .get("ok")
                .and_then(|b| match b {
                    Value::Bool(b) => Some(*b),
                    _ => None,
                })
                .ok_or_else(|| ProtoError::Malformed("missing bool \"ok\"".into()))?,
            body: str_field("body")?,
        }),
        "bye" => Ok(Frame::Bye),
        other => Err(ProtoError::Malformed(format!(
            "unknown frame type {other:?}"
        ))),
    }
}

/// Writes one frame (length prefix + payload). The caller flushes.
///
/// Prefix and payload go out in a **single** write: on an unbuffered
/// TCP stream, splitting them into two small writes invites the
/// Nagle/delayed-ACK interaction — the second segment waits ~40 ms for
/// the peer's ACK — which turns every request/reply round trip into
/// tens of milliseconds of idle. One write, one segment, no stall.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    let payload = render(frame);
    debug_assert!(payload.len() <= MAX_FRAME);
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    wire.extend_from_slice(payload.as_bytes());
    w.write_all(&wire)
}

/// Reads one frame. Returns `Ok(None)` on a clean close (EOF before any
/// prefix byte); EOF *inside* a frame is a torn read and errors.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, ProtoError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut prefix[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(ProtoError::Malformed("torn length prefix".into()));
        }
        got += n;
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => ProtoError::Malformed("torn frame payload".into()),
        _ => ProtoError::Io(e),
    })?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| ProtoError::Malformed("frame payload is not UTF-8".into()))?;
    decode(text).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64, vendored (the same finalizer as `tv_gen::rng`) so the
    /// property tests stay dependency-free.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A string mixing ASCII, escapes, control bytes, and non-ASCII.
        fn string(&mut self) -> String {
            let alphabet: Vec<char> = "abz09 _-.\"\\\n\r\t\u{1}\u{7f}µλ√".chars().collect();
            let len = (self.next() % 24) as usize;
            (0..len)
                .map(|_| alphabet[(self.next() as usize) % alphabet.len()])
                .collect()
        }

        fn opt(&mut self) -> Option<u64> {
            self.next()
                .is_multiple_of(2)
                .then(|| self.next() % 1_000_000)
        }

        /// A request id within JSON's exact-integer range (< 2^53) —
        /// the documented contract on `Frame::Request::id`.
        fn id(&mut self) -> u64 {
            self.next() & ((1 << 53) - 1)
        }
    }

    fn random_frame(rng: &mut Rng) -> Frame {
        match rng.next() % 6 {
            0 => Frame::Hello {
                proto: (rng.next() % 4) as u32,
                tenant: rng.string(),
                client: rng.string(),
                limits: Limits {
                    relax_budget: rng.opt(),
                    deadline_ms: rng.opt(),
                    max_nodes: rng.opt(),
                },
            },
            1 => Frame::HelloOk {
                proto: VERSION,
                server: rng.string(),
                resumed: rng.next() % 100,
            },
            2 => Frame::Error {
                code: codes::BUSY.to_string(),
                message: rng.string(),
            },
            3 => Frame::Request {
                id: rng.id(),
                line: rng.string(),
            },
            4 => Frame::Reply {
                id: rng.id(),
                ok: rng.next().is_multiple_of(2),
                body: format!(r#"{{"ok":true,"x":"{}"}}"#, json::escape(&rng.string())),
            },
            _ => Frame::Bye,
        }
    }

    #[test]
    fn frames_round_trip_through_render_and_decode() {
        let mut rng = Rng(0x70_70);
        for _ in 0..500 {
            let f = random_frame(&mut rng);
            let payload = render(&f);
            let back = decode(&payload).unwrap_or_else(|e| panic!("{payload}: {e}"));
            assert_eq!(back, f, "payload {payload}");
        }
    }

    #[test]
    fn frames_round_trip_through_the_wire_format() {
        let mut rng = Rng(0xF8A3);
        let frames: Vec<Frame> = (0..64).map(|_| random_frame(&mut rng)).collect();
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).expect("vec write");
        }
        let mut cursor = std::io::Cursor::new(&wire);
        for want in &frames {
            let got = read_frame(&mut cursor).expect("read").expect("frame");
            assert_eq!(&got, want);
        }
        assert!(read_frame(&mut cursor).expect("eof").is_none(), "clean EOF");
    }

    #[test]
    fn reply_bodies_are_carried_verbatim() {
        // The property the golden-transcript story rests on: a session
        // reply with float formatting and ordered keys survives the hop
        // byte for byte.
        let body = r#"{"ok":true,"cmd":"analyze","min_cycle":120.8789417596438,"passes":[{"pass":"flow","outcome":"reused"}]}"#;
        let f = Frame::Reply {
            id: 7,
            ok: true,
            body: body.to_string(),
        };
        let Frame::Reply { body: got, .. } = decode(&render(&f)).expect("round trip") else {
            panic!("wrong frame type");
        };
        assert_eq!(got, body);
    }

    #[test]
    fn torn_prefix_and_payload_are_malformed_not_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Bye).expect("vec write");
        // Clip inside the length prefix.
        let mut c = std::io::Cursor::new(&wire[..2]);
        assert!(matches!(read_frame(&mut c), Err(ProtoError::Malformed(_))));
        // Clip inside the payload.
        let mut c = std::io::Cursor::new(&wire[..wire.len() - 3]);
        assert!(matches!(read_frame(&mut c), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let wire = (MAX_FRAME as u32 + 1).to_be_bytes();
        let mut c = std::io::Cursor::new(&wire[..]);
        assert!(matches!(read_frame(&mut c), Err(ProtoError::TooLarge(_))));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        for bad in [
            "not json",
            "{}",
            r#"{"type":"warp"}"#,
            r#"{"type":"request","id":-1,"line":"x"}"#,
            r#"{"type":"request","id":1.5,"line":"x"}"#,
            r#"{"type":"reply","id":1,"ok":"yes","body":""}"#,
            r#"{"type":"hello","proto":1,"tenant":"t","client":"c","limits":{"deadline_ms":"soon"}}"#,
        ] {
            assert!(
                matches!(decode(bad), Err(ProtoError::Malformed(_))),
                "{bad} must be malformed"
            );
        }
    }

    #[test]
    fn non_utf8_payload_is_malformed() {
        let mut wire = vec![0, 0, 0, 2, 0xff, 0xfe];
        let mut c = std::io::Cursor::new(&mut wire);
        assert!(matches!(read_frame(&mut c), Err(ProtoError::Malformed(_))));
    }
}
