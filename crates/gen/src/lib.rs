//! Generators of nMOS benchmark circuits.
//!
//! TV's evaluation ran on the Stanford MIPS processor and on extracted test
//! structures; neither artifact survives, so this crate *generates* the
//! equivalent workloads at the transistor level:
//!
//! * [`chains`] — the calibration structures of every delay-model table:
//!   inverter/NAND/NOR chains with parameterized fanout, loaded inverters,
//!   super-buffer drivers, pass-transistor chains (raw and buffered), and
//!   precharged buses;
//! * [`adder`] — ripple-carry adders built from NAND gates (the ALU core);
//! * [`manchester`] — the Manchester precharged carry chain, nMOS's fast
//!   adder (a precharged pass chain with optional buffer insertion);
//! * [`pla`] — NOR-NOR programmable logic arrays, the control-logic idiom;
//! * [`shifter`] — a pass-transistor barrel shifter, the structure that
//!   forces signal-flow analysis;
//! * [`regfile`] — two-phase master–slave register files with pass-gate
//!   read/write ports;
//! * [`datapath`] — a MIPS-class n-bit two-phase datapath combining all of
//!   the above (experiments T3/T4);
//! * [`random`] — seeded random logic of arbitrary size for the runtime
//!   scaling experiment (T5);
//! * [`mips_mc`] — a multi-core tiling of the datapath with per-core
//!   cache banks, reaching a million devices for the ingest-at-scale
//!   experiment (T6).
//!
//! Every generator returns a [`Circuit`]: the finished netlist plus the
//! handles harness code needs (primary input, primary output, clocks).
//!
//! # Example
//!
//! ```
//! use tv_gen::chains;
//! use tv_netlist::Tech;
//!
//! let c = chains::inverter_chain(Tech::nmos4um(), 8, 2);
//! assert_eq!(c.netlist.inputs().len(), 1);
//! assert!(c.netlist.device_count() >= 16); // 8 stages × 2 devices + fanout
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod chains;
pub mod datapath;
pub mod manchester;
pub mod mips_mc;
pub mod pla;
pub mod random;
pub mod regfile;
pub mod rng;
pub mod shifter;
pub mod workload;

use tv_netlist::{Netlist, NodeId};

/// A generated benchmark circuit: the netlist plus the handles experiments
/// need.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// The finished netlist.
    pub netlist: Netlist,
    /// The primary signal input the experiment toggles.
    pub input: NodeId,
    /// The observed output.
    pub output: NodeId,
}

impl Circuit {
    /// Convenience: the netlist node with the given name.
    ///
    /// # Panics
    ///
    /// Panics if the name does not exist — generator names are part of
    /// their documented interface, so a miss is a bug.
    pub fn node(&self, name: &str) -> NodeId {
        self.netlist
            .node_by_name(name)
            .unwrap_or_else(|| panic!("generated circuit has no node named {name:?}"))
    }
}
