//! Calibration structures: the stage types every delay table sweeps.
//!
//! Node-name conventions (part of the interface, used by the harness):
//! the toggled input is `in`, the observed output is `out`, pass-gate
//! controls that must be held high are `en`, and chain-interior nodes are
//! `s0`, `s1`, ….

use tv_netlist::{NetlistBuilder, Tech};

use crate::Circuit;

/// A chain of `n` standard inverters; every stage additionally drives
/// `fanout − 1` dummy inverter gates so the per-stage load is `fanout`
/// unit gates.
///
/// # Panics
///
/// Panics if `n == 0` or `fanout == 0`.
pub fn inverter_chain(tech: Tech, n: usize, fanout: usize) -> Circuit {
    assert!(n > 0, "chain needs at least one stage");
    assert!(fanout > 0, "fanout is at least the next stage itself");
    let mut b = NetlistBuilder::new(tech);
    let input = b.input("in");
    let mut prev = input;
    for i in 0..n {
        let next = if i + 1 == n {
            b.output("out")
        } else {
            b.node(format!("s{i}"))
        };
        b.inverter(format!("inv{i}"), prev, next);
        for f in 1..fanout {
            let dummy = b.node(format!("dummy{i}_{f}"));
            b.inverter(format!("dload{i}_{f}"), prev, dummy);
        }
        prev = next;
    }
    finishing(b, "in", "out")
}

/// A chain of `n` k-input NAND gates; the signal threads the first input
/// of each gate, the remaining `k − 1` inputs are tied to an always-high
/// enable `en` so the chain is logically transparent (and the worst-case
/// series pull-down is exercised).
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
pub fn nand_chain(tech: Tech, n: usize, k: usize) -> Circuit {
    assert!(n > 0 && k > 0, "need at least one gate with one input");
    let mut b = NetlistBuilder::new(tech);
    let input = b.input("in");
    let en = b.input("en");
    let mut prev = input;
    for i in 0..n {
        let next = if i + 1 == n {
            b.output("out")
        } else {
            b.node(format!("s{i}"))
        };
        let mut ins = vec![prev];
        ins.extend(std::iter::repeat_n(en, k - 1));
        b.nand(format!("nand{i}"), &ins, next);
        prev = next;
    }
    finishing(b, "in", "out")
}

/// A chain of `n` k-input NOR gates; the extra inputs tie to an
/// always-low `en` node so the chain is transparent.
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
pub fn nor_chain(tech: Tech, n: usize, k: usize) -> Circuit {
    assert!(n > 0 && k > 0, "need at least one gate with one input");
    let mut b = NetlistBuilder::new(tech);
    let input = b.input("in");
    let en = b.input("en"); // drive low in experiments
    let mut prev = input;
    for i in 0..n {
        let next = if i + 1 == n {
            b.output("out")
        } else {
            b.node(format!("s{i}"))
        };
        let mut ins = vec![prev];
        ins.extend(std::iter::repeat_n(en, k - 1));
        b.nor(format!("nor{i}"), &ins, next);
        prev = next;
    }
    finishing(b, "in", "out")
}

/// One standard inverter driving an explicit capacitive load of `load_pf`
/// picofarads (experiment F2's sweep variable).
pub fn loaded_inverter(tech: Tech, load_pf: f64) -> Circuit {
    let mut b = NetlistBuilder::new(tech);
    let input = b.input("in");
    let out = b.output("out");
    b.inverter("inv", input, out);
    b.add_cap(out, load_pf).expect("load is non-negative");
    finishing(b, "in", "out")
}

/// A super buffer of the given scale driving an explicit load.
pub fn super_buffer_drive(tech: Tech, load_pf: f64, scale: f64) -> Circuit {
    let mut b = NetlistBuilder::new(tech);
    let input = b.input("in");
    let out = b.output("out");
    b.super_buffer("sb", input, out, scale);
    b.add_cap(out, load_pf).expect("load is non-negative");
    finishing(b, "in", "out")
}

/// Wiring capacitance carried by each pass-chain node, pF — pass chains
/// in real layouts run along buses, and it is this capacitance that makes
/// their quadratic delay growth bite.
pub const PASS_NODE_WIRE_PF: f64 = 0.05;

/// An inverter driving `n` series pass transistors (gates tied to the
/// always-high `en`), restored by a final inverter into `out`. Each chain
/// node carries [`PASS_NODE_WIRE_PF`] of wiring. The structure whose delay
/// grows quadratically with `n` (figure F1).
///
/// `in` → inverter → `s0` → pass → `s1` → … → `s(n)` → inverter → `out`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn pass_chain(tech: Tech, n: usize) -> Circuit {
    assert!(n > 0, "pass chain needs at least one device");
    let mut b = NetlistBuilder::new(tech);
    let input = b.input("in");
    let en = b.input("en");
    let mut prev = b.node("s0");
    b.inverter("drv", input, prev);
    for i in 0..n {
        let next = b.node(format!("s{}", i + 1));
        b.add_cap(next, PASS_NODE_WIRE_PF).expect("cap >= 0");
        b.pass(format!("p{i}"), en, prev, next);
        prev = next;
    }
    let out = b.output("out");
    b.inverter("rcv", prev, out);
    finishing(b, "in", "out")
}

/// Like [`pass_chain`], but with a restoring buffer (two inverters) every
/// `k` pass devices — the fix for the quadratic blow-up.
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
pub fn buffered_pass_chain(tech: Tech, n: usize, k: usize) -> Circuit {
    assert!(n > 0 && k > 0, "need at least one device and interval >= 1");
    let mut b = NetlistBuilder::new(tech);
    let input = b.input("in");
    let en = b.input("en");
    let mut prev = b.node("s0");
    b.inverter("drv", input, prev);
    for i in 0..n {
        let next = b.node(format!("s{}", i + 1));
        b.add_cap(next, PASS_NODE_WIRE_PF).expect("cap >= 0");
        b.pass(format!("p{i}"), en, prev, next);
        prev = next;
        // Insert a non-inverting buffer after every k-th device (but not
        // after the last one; the receiver restores there anyway).
        if (i + 1) % k == 0 && i + 1 < n {
            let half = b.node(format!("b{i}_half"));
            let buffered = b.node(format!("b{i}_out"));
            b.inverter(format!("buf{i}_a"), prev, half);
            b.inverter(format!("buf{i}_b"), half, buffered);
            prev = buffered;
        }
    }
    let out = b.output("out");
    b.inverter("rcv", prev, out);
    finishing(b, "in", "out")
}

/// A precharged bus: a clock-gated precharge device on the bus node plus
/// `n_drivers` conditional pull-down legs (each a 2-series enhancement path
/// gated by a driver input and `in`). The bus feeds an inverter to `out`.
///
/// # Panics
///
/// Panics if `n_drivers == 0`.
pub fn precharged_bus(tech: Tech, n_drivers: usize) -> Circuit {
    assert!(n_drivers > 0, "bus needs at least one driver");
    let s = tech.min_size();
    let mut b = NetlistBuilder::new(tech);
    let phi = b.clock("phi1", 0);
    let input = b.input("in");
    let bus = b.node("bus");
    b.precharge("pre", phi, bus);
    // Bus wiring capacitance grows with the number of taps.
    b.add_cap(bus, 0.02 * n_drivers as f64)
        .expect("cap is non-negative");
    for i in 0..n_drivers {
        let sel = b.input(format!("sel{i}"));
        let mid = b.node(format!("leg{i}"));
        let gnd = b.gnd();
        b.enhancement(format!("dis{i}_a"), input, gnd, mid, 2.0 * s, s);
        b.enhancement(format!("dis{i}_b"), sel, mid, bus, 2.0 * s, s);
    }
    let out = b.output("out");
    b.inverter("rcv", bus, out);
    finishing(b, "in", "out")
}

fn finishing(b: NetlistBuilder, input: &str, output: &str) -> Circuit {
    let netlist = b.finish().expect("generator produced an invalid netlist");
    let input = netlist.node_by_name(input).expect("input exists");
    let output = netlist.node_by_name(output).expect("output exists");
    Circuit {
        netlist,
        input,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_netlist::validate;

    fn tech() -> Tech {
        Tech::nmos4um()
    }

    #[test]
    fn inverter_chain_counts() {
        let c = inverter_chain(tech(), 5, 1);
        assert_eq!(c.netlist.device_count(), 10);
        let c3 = inverter_chain(tech(), 5, 3);
        // Each of 5 stages adds 2 dummy inverters of 2 devices.
        assert_eq!(c3.netlist.device_count(), 10 + 5 * 2 * 2);
    }

    #[test]
    fn chains_validate_cleanly() {
        for c in [
            inverter_chain(tech(), 4, 2),
            nand_chain(tech(), 3, 3),
            nor_chain(tech(), 3, 2),
            pass_chain(tech(), 5),
            buffered_pass_chain(tech(), 9, 3),
            loaded_inverter(tech(), 0.2),
            super_buffer_drive(tech(), 0.5, 4.0),
            precharged_bus(tech(), 4),
        ] {
            let issues = validate::check(&c.netlist);
            assert!(issues.is_empty(), "issues: {issues:?}");
        }
    }

    #[test]
    fn nand_chain_has_series_structure() {
        let c = nand_chain(tech(), 2, 3);
        // Per gate: 1 load + 3 pull-downs.
        assert_eq!(c.netlist.device_count(), 8);
        // Interior series nodes exist.
        assert!(c.netlist.node_by_name("nand0_s0").is_some());
    }

    #[test]
    fn pass_chain_node_count_scales() {
        let c = pass_chain(tech(), 7);
        // s0..s7 plus in/out plus en plus rails.
        assert_eq!(c.netlist.device_count(), 2 + 7 + 2);
        assert!(c.netlist.node_by_name("s7").is_some());
        assert!(c.netlist.node_by_name("s8").is_none());
    }

    #[test]
    fn buffered_chain_has_more_devices_than_raw() {
        let raw = pass_chain(tech(), 9);
        let buf = buffered_pass_chain(tech(), 9, 3);
        assert!(buf.netlist.device_count() > raw.netlist.device_count());
    }

    #[test]
    fn buffered_chain_with_huge_interval_equals_raw() {
        let raw = pass_chain(tech(), 5);
        let buf = buffered_pass_chain(tech(), 5, 100);
        assert_eq!(raw.netlist.device_count(), buf.netlist.device_count());
    }

    #[test]
    fn precharged_bus_has_clock_and_bus_cap() {
        let c = precharged_bus(tech(), 6);
        assert_eq!(c.netlist.clocks().len(), 1);
        let bus = c.node("bus");
        assert!(c.netlist.node_cap(bus) > 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_length_chain_panics() {
        let _ = inverter_chain(tech(), 0, 1);
    }

    #[test]
    fn circuit_node_lookup_panics_on_missing() {
        let c = loaded_inverter(tech(), 0.1);
        assert!(std::panic::catch_unwind(|| c.node("nope")).is_err());
    }
}
