//! Programmable logic array (PLA) generator — how 1983 chips implemented
//! control logic (the MIPS instruction decoder was a PLA).
//!
//! An nMOS PLA is two NOR planes:
//!
//! * the **AND plane**: one NOR per product term over the true/complement
//!   input columns (a term's row node is pulled down by every literal in
//!   the term, so it is high only when the term matches);
//! * the **OR plane**: one NOR per output over the product-term rows,
//!   followed by an inverter (NOR-NOR = AND-OR).
//!
//! Plane wires are long polysilicon/metal lines: each row/column carries
//! wiring capacitance proportional to its span, which is what makes PLA
//! timing interesting — and what the per-line `wire_pf_per_tap` models.

use tv_netlist::{Netlist, NetlistBuilder, NodeId, Tech};

use crate::rng::Rng64;
use crate::Circuit;

/// A personality matrix: which literals appear in each product term and
/// which terms feed each output.
#[derive(Debug, Clone)]
pub struct PlaProgram {
    /// Number of inputs.
    pub inputs: usize,
    /// `terms[t][i]`: does product term `t` use input `i`, and in which
    /// polarity? `None` = don't care.
    pub terms: Vec<Vec<Option<bool>>>,
    /// `outputs[o]`: the product terms OR-ed into output `o`.
    pub outputs: Vec<Vec<usize>>,
}

impl PlaProgram {
    /// A pseudorandom program with the given shape: each term uses each
    /// input with probability ½ (random polarity), each output ORs ~¼ of
    /// the terms. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn random(inputs: usize, terms: usize, outputs: usize, seed: u64) -> Self {
        assert!(
            inputs > 0 && terms > 0 && outputs > 0,
            "PLA dimensions must be positive"
        );
        let mut rng = Rng64::new(seed);
        let terms_m: Vec<Vec<Option<bool>>> = (0..terms)
            .map(|_| {
                let mut lits: Vec<Option<bool>> = (0..inputs)
                    .map(|_| {
                        if rng.bool(0.5) {
                            Some(rng.bool(0.5))
                        } else {
                            None
                        }
                    })
                    .collect();
                // Every product term must use at least one literal.
                if lits.iter().all(|l| l.is_none()) {
                    let i = rng.usize_range(0, inputs);
                    lits[i] = Some(rng.bool(0.5));
                }
                lits
            })
            .collect();
        let outputs_m: Vec<Vec<usize>> = (0..outputs)
            .map(|_| {
                let mut used: Vec<usize> = (0..terms).filter(|_| rng.bool(0.25)).collect();
                if used.is_empty() {
                    used.push(rng.usize_range(0, terms));
                }
                used
            })
            .collect();
        PlaProgram {
            inputs,
            terms: terms_m,
            outputs: outputs_m,
        }
    }
}

/// The generated PLA with its handles.
#[derive(Debug, Clone)]
pub struct Pla {
    /// The netlist.
    pub netlist: Netlist,
    /// Product-term row nodes.
    pub term_rows: Vec<NodeId>,
    /// Output nodes.
    pub outputs: Vec<NodeId>,
}

/// Elaborates a PLA from its program. Inputs are `in0..`; outputs
/// `out0..`. Each plane wire carries `0.005` pF per transistor tap of
/// wiring capacitance.
pub fn pla(tech: Tech, program: &PlaProgram) -> Pla {
    let mut b = NetlistBuilder::new(tech);
    const WIRE_PF_PER_TAP: f64 = 0.005;

    // Input columns: true and complement drivers.
    let mut true_cols = Vec::with_capacity(program.inputs);
    let mut comp_cols = Vec::with_capacity(program.inputs);
    for i in 0..program.inputs {
        let pin = b.input(format!("in{i}"));
        let t = b.node(format!("col{i}_t"));
        let half = b.node(format!("col{i}_h"));
        b.inverter(format!("cinv{i}"), pin, half);
        b.inverter(format!("cbuf{i}"), half, t);
        let c = b.node(format!("col{i}_c"));
        b.inverter(format!("ccmp{i}"), pin, c);
        true_cols.push(t);
        comp_cols.push(c);
    }

    // AND plane: one NOR row per product term.
    let mut term_rows = Vec::with_capacity(program.terms.len());
    let s = b.tech().min_size();
    for (t, literals) in program.terms.iter().enumerate() {
        let row = b.node(format!("term{t}"));
        b.depletion_load(row, s, 2.0 * s);
        let mut taps = 0usize;
        for (i, lit) in literals.iter().enumerate() {
            let Some(polarity) = lit else { continue };
            // Term is high only when every used literal is low on its
            // column: tap the column of the *opposite* polarity.
            let col = if *polarity {
                comp_cols[i]
            } else {
                true_cols[i]
            };
            let gnd = b.gnd();
            b.enhancement(format!("and{t}_{i}"), col, gnd, row, 2.0 * s, s);
            taps += 1;
        }
        // A term with no literals would float high: give it a ground leg
        // gated by VDD-tied... instead, guarantee programs have ≥1 literal.
        assert!(taps > 0, "product term {t} uses no literals");
        b.add_cap(row, WIRE_PF_PER_TAP * taps as f64)
            .expect("cap >= 0");
        term_rows.push(row);
    }

    // OR plane: one NOR per output, inverted to restore AND-OR polarity.
    let mut outputs = Vec::with_capacity(program.outputs.len());
    for (o, used) in program.outputs.iter().enumerate() {
        let nor = b.node(format!("or{o}"));
        let ins: Vec<NodeId> = used.iter().map(|&t| term_rows[t]).collect();
        b.nor(format!("org{o}"), &ins, nor);
        b.add_cap(nor, WIRE_PF_PER_TAP * used.len() as f64)
            .expect("cap >= 0");
        let out = b.output(format!("out{o}"));
        b.inverter(format!("obuf{o}"), nor, out);
        outputs.push(out);
    }

    let netlist = b.finish().expect("PLA generator is valid");
    let lookup = |name: String| netlist.node_by_name(&name).expect("known node");
    Pla {
        term_rows: (0..program.terms.len())
            .map(|t| lookup(format!("term{t}")))
            .collect(),
        outputs: (0..program.outputs.len())
            .map(|o| lookup(format!("out{o}")))
            .collect(),
        netlist,
    }
}

/// Convenience wrapper as a [`Circuit`]: input `in0`, output `out0`.
pub fn pla_circuit(tech: Tech, inputs: usize, terms: usize, outputs: usize, seed: u64) -> Circuit {
    let program = PlaProgram::random(inputs, terms, outputs, seed);
    let p = pla(tech, &program);
    let input = p.netlist.node_by_name("in0").expect("in0");
    let output = p.outputs[0];
    Circuit {
        netlist: p.netlist,
        input,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_core::{AnalysisOptions, Analyzer};
    use tv_netlist::validate;

    #[test]
    fn random_program_shape() {
        let p = PlaProgram::random(6, 10, 4, 1);
        assert_eq!(p.terms.len(), 10);
        assert_eq!(p.outputs.len(), 4);
        for outs in &p.outputs {
            assert!(!outs.is_empty());
        }
    }

    #[test]
    fn pla_elaborates_and_validates() {
        let program = PlaProgram::random(8, 16, 6, 7);
        let p = pla(Tech::nmos4um(), &program);
        assert_eq!(p.term_rows.len(), 16);
        assert_eq!(p.outputs.len(), 6);
        let issues = validate::check(&p.netlist);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn pla_is_deterministic_in_seed() {
        let a = pla_circuit(Tech::nmos4um(), 6, 12, 4, 3);
        let b = pla_circuit(Tech::nmos4um(), 6, 12, 4, 3);
        assert_eq!(a.netlist.device_count(), b.netlist.device_count());
        let c = pla_circuit(Tech::nmos4um(), 6, 12, 4, 4);
        // Different programming yields a different transistor count with
        // overwhelming probability.
        assert_ne!(a.netlist.device_count(), c.netlist.device_count());
    }

    #[test]
    fn analyzer_finds_output_delay() {
        let c = pla_circuit(Tech::nmos4um(), 8, 16, 4, 11);
        let report = Analyzer::new(&c.netlist).run(&AnalysisOptions::default());
        let d = report.arrival(c.output).expect("reachable");
        assert!(d > 0.0);
        // The PLA is static logic: no latches, no races, clean checks on
        // the timing side (ratio checks may flag wide NORs by design).
        assert!(report.latches.is_empty());
    }

    #[test]
    fn bigger_pla_is_slower() {
        let opts = AnalysisOptions::default();
        let small = pla_circuit(Tech::nmos4um(), 4, 8, 2, 5);
        let large = pla_circuit(Tech::nmos4um(), 16, 48, 8, 5);
        let ds = Analyzer::new(&small.netlist)
            .run(&opts)
            .arrival(small.output)
            .unwrap();
        let dl = Analyzer::new(&large.netlist)
            .run(&opts)
            .arrival(large.output)
            .unwrap();
        assert!(dl > ds);
    }
}
