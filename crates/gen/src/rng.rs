//! A tiny seeded PRNG so the generators build with no external
//! dependencies (and therefore offline).
//!
//! The generators only need *deterministic variety*, not cryptographic or
//! statistical-suite quality: SplitMix64 (Steele, Lea & Flood, OOPSLA'14)
//! passes BigCrush on 64-bit outputs, is two multiplies and three xors per
//! draw, and — unlike `rand::StdRng` — its stream is guaranteed stable
//! forever, which keeps every seeded circuit reproducible across builds.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 mantissa bits of the draw.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.f64() * (hi - lo)
    }

    /// A uniform draw in `[lo, hi)` (half-open, like `Rng::gen_range`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        // Multiply-shift rejection-free mapping is fine here: spans are
        // tiny (gate fan-ins, pool sizes), so modulo bias is negligible,
        // but use widening multiply anyway — it is just as cheap.
        let hi64 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi64 as usize
    }

    /// A uniform draw in the inclusive range `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        self.usize_range(lo, hi + 1)
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_change_the_stream() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn usize_range_respects_bounds_and_hits_all_values() {
        let mut r = Rng64::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.usize_range(2, 7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable: {seen:?}");
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut r = Rng64::new(3);
        let hits = (0..10_000).filter(|_| r.bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
