//! Manchester carry-chain adder — the classic nMOS fast-adder structure,
//! and a showcase for everything a transistor-level analyzer must handle
//! at once: a **precharged** carry chain evaluated through **pass
//! transistors**, clock-qualified by the two-phase scheme.
//!
//! Per bit `i` the carry chain has:
//!
//! * a precharge device (φ2) pulling chain node `c<i>` high;
//! * a *propagate* pass transistor gated by `p<i> = a⊕b` connecting
//!   `c<i−1>` to `c<i>` (carries ripple through open pass gates);
//! * a *generate* pull-down gated by `g̅<i>`… in this active-low
//!   formulation the chain carries "no-carry" high: a generate condition
//!   discharges the node through an enhancement leg gated by `g<i> = a·b`
//!   qualified with the evaluate clock.
//!
//! The structural point (and what the F1/T3 experiments probe): carry
//! propagation through `k` consecutive propagate bits is a pass chain of
//! length `k`, quadratic in `k` — which is why real Manchester designs
//! break the chain with buffers every few bits, exactly like
//! [`crate::chains::buffered_pass_chain`].

use tv_netlist::{Netlist, NetlistBuilder, NodeId, Tech};

use crate::Circuit;

/// The generated Manchester adder with its handles.
#[derive(Debug, Clone)]
pub struct ManchesterAdder {
    /// The netlist.
    pub netlist: Netlist,
    /// Carry-chain nodes `c0..` (active-low carry, precharged high).
    pub chain: Vec<NodeId>,
    /// Sum outputs `s0..`.
    pub sums: Vec<NodeId>,
    /// The evaluate clock (φ1).
    pub phi1: NodeId,
    /// The precharge clock (φ2).
    pub phi2: NodeId,
}

/// Builds a `width`-bit Manchester carry-chain adder with a restoring
/// buffer on the chain every `buffer_every` bits (`0` = never, the
/// textbook-naive version).
///
/// Inputs `a0..`, `b0..`, `cin`; outputs `s0..`; clocks `phi1`
/// (evaluate), `phi2` (precharge).
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn manchester_adder(tech: Tech, width: usize, buffer_every: usize) -> ManchesterAdder {
    assert!(width > 0, "adder needs at least one bit");
    let s = tech.min_size();
    let mut b = NetlistBuilder::new(tech);
    let phi1 = b.clock("phi1", 0);
    let phi2 = b.clock("phi2", 1);
    let cin = b.input("cin");

    // Per-bit propagate / generate logic (static, computed during φ2 so
    // they are stable when evaluation opens).
    let mut p = Vec::with_capacity(width);
    let mut g = Vec::with_capacity(width);
    let mut a_bits = Vec::with_capacity(width);
    for i in 0..width {
        let a = b.input(format!("a{i}"));
        let bb = b.input(format!("b{i}"));
        a_bits.push(a);
        // p = a ⊕ b via four NANDs.
        let n1 = b.node(format!("px{i}_n1"));
        b.nand(format!("px{i}_g1"), &[a, bb], n1);
        let n2 = b.node(format!("px{i}_n2"));
        b.nand(format!("px{i}_g2"), &[a, n1], n2);
        let n3 = b.node(format!("px{i}_n3"));
        b.nand(format!("px{i}_g3"), &[bb, n1], n3);
        let pi = b.node(format!("p{i}"));
        b.nand(format!("px{i}_g4"), &[n2, n3], pi);
        p.push(pi);
        // g = a·b: the XOR's first NAND inverted.
        let gi = b.node(format!("g{i}"));
        b.inverter(format!("gi{i}"), n1, gi);
        g.push(gi);
    }

    // Carry chain: precharged nodes linked by propagate pass devices,
    // discharged by generate legs qualified with φ1.
    let mut chain = Vec::with_capacity(width + 1);
    // Chain entry: the (restored) carry-in, injected through a φ1 pass.
    let c_entry = b.node("c_in_chain");
    b.pass("cin_inject", phi1, cin, c_entry);
    chain.push(c_entry);
    let mut prev = c_entry;
    for i in 0..width {
        let ci = b.node(format!("c{i}"));
        b.precharge(format!("pre{i}"), phi2, ci);
        // The chain runs the full width of the ALU: real wiring load.
        b.add_cap(ci, 0.05).expect("cap >= 0");
        // Propagate: pass device linking the chain.
        b.pass(format!("prop{i}"), p[i], prev, ci);
        // Generate: discharge leg (g AND φ1 in series).
        let mid = b.node(format!("gen{i}_mid"));
        let gnd = b.gnd();
        b.enhancement(format!("gen{i}_a"), g[i], gnd, mid, 2.0 * s, s);
        b.enhancement(format!("gen{i}_b"), phi1, mid, ci, 2.0 * s, s);

        // Optional chain buffer: restore and continue.
        prev = if buffer_every > 0 && (i + 1) % buffer_every == 0 && i + 1 < width {
            let inv = b.node(format!("cb{i}_n"));
            b.inverter(format!("cbuf{i}_a"), ci, inv);
            let restored = b.node(format!("cb{i}_r"));
            b.inverter(format!("cbuf{i}_b"), inv, restored);
            restored
        } else {
            ci
        };
        chain.push(ci);
    }

    // Sums: s = p ⊕ c_{i-1}, built from NANDs on the restored chain taps.
    let mut sums = Vec::with_capacity(width);
    for i in 0..width {
        let c_prev = chain[i];
        // Restore the (dynamic) chain tap before using it in logic.
        let ct = b.node(format!("ct{i}"));
        b.inverter(format!("ctinv{i}"), c_prev, ct);
        let n1 = b.node(format!("sx{i}_n1"));
        b.nand(format!("sx{i}_g1"), &[p[i], ct], n1);
        let n2 = b.node(format!("sx{i}_n2"));
        b.nand(format!("sx{i}_g2"), &[p[i], n1], n2);
        let n3 = b.node(format!("sx{i}_n3"));
        b.nand(format!("sx{i}_g3"), &[ct, n1], n3);
        let si = b.output(format!("s{i}"));
        b.nand(format!("sx{i}_g4"), &[n2, n3], si);
        sums.push(si);
    }

    let netlist = b.finish().expect("manchester generator is valid");
    let lookup = |name: &str| netlist.node_by_name(name).expect("known node");
    ManchesterAdder {
        chain: (0..width).map(|i| lookup(&format!("c{i}"))).collect(),
        sums: (0..width).map(|i| lookup(&format!("s{i}"))).collect(),
        phi1: lookup("phi1"),
        phi2: lookup("phi2"),
        netlist,
    }
}

/// Convenience wrapper as a [`Circuit`]: input `cin`, output the top sum.
pub fn manchester_circuit(tech: Tech, width: usize, buffer_every: usize) -> Circuit {
    let m = manchester_adder(tech, width, buffer_every);
    let input = m.netlist.node_by_name("cin").expect("cin");
    let output = *m.sums.last().expect("width > 0");
    Circuit {
        netlist: m.netlist,
        input,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_core::{AnalysisOptions, Analyzer};
    use tv_flow::{analyze, NodeClass, RuleSet};
    use tv_netlist::validate;

    #[test]
    fn structure_elaborates_and_validates() {
        let m = manchester_adder(Tech::nmos4um(), 8, 0);
        assert_eq!(m.chain.len(), 8);
        assert_eq!(m.sums.len(), 8);
        let issues = validate::check(&m.netlist);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn chain_nodes_are_precharged_class() {
        let m = manchester_adder(Tech::nmos4um(), 4, 0);
        let flow = analyze(&m.netlist, &RuleSet::all());
        for &c in &m.chain {
            assert_eq!(flow.node_class(c), NodeClass::Precharged);
        }
    }

    #[test]
    fn analyzer_runs_both_phases_without_cycles() {
        let m = manchester_adder(Tech::nmos4um(), 8, 0);
        let report = Analyzer::new(&m.netlist).run(&AnalysisOptions::default());
        assert_eq!(report.phases.len(), 2);
        for p in &report.phases {
            assert!(!p.result.cyclic, "phase {} cyclic", p.phase);
        }
        // Sums are reachable in the evaluate phase.
        let p1 = report.phase(0).unwrap();
        assert!(p1.result.arrival(*m.sums.last().unwrap()).is_some());
    }

    #[test]
    fn carry_delay_grows_superlinearly_without_buffers() {
        let opts = AnalysisOptions::default();
        let delay_at = |width: usize| {
            let m = manchester_adder(Tech::nmos4um(), width, 0);
            let report = Analyzer::new(&m.netlist).run(&opts);
            report
                .phase(0)
                .unwrap()
                .result
                .arrival(*m.chain.last().unwrap())
                .expect("chain end reachable")
        };
        let d4 = delay_at(4);
        let d8 = delay_at(8);
        let d16 = delay_at(16);
        assert!(d8 - d4 > 0.0);
        assert!(
            d16 - d8 > 1.5 * (d8 - d4),
            "chain must accelerate: {d4} {d8} {d16}"
        );
    }

    #[test]
    fn buffers_tame_the_chain() {
        let opts = AnalysisOptions::default();
        let end_delay = |buffer_every: usize| {
            let m = manchester_adder(Tech::nmos4um(), 16, buffer_every);
            let report = Analyzer::new(&m.netlist).run(&opts);
            report
                .phase(0)
                .unwrap()
                .result
                .arrival(*m.chain.last().unwrap())
                .expect("reachable")
        };
        let raw = end_delay(0);
        let buffered = end_delay(4);
        assert!(
            buffered < raw,
            "buffered chain {buffered} must beat raw {raw}"
        );
    }

    #[test]
    fn circuit_wrapper_exposes_cin_to_top_sum() {
        let c = manchester_circuit(Tech::nmos4um(), 4, 0);
        assert_eq!(c.netlist.node_name(c.input), "cin");
        assert_eq!(c.netlist.node_name(c.output), "s3");
    }
}
