//! Pass-transistor barrel shifter — the structure that made static
//! signal-flow analysis necessary. An n×k crossbar of pass transistors
//! routes each input bit to the output selected by a one-hot shift-amount
//! control.

use tv_netlist::{NetlistBuilder, NodeId, Tech};

use crate::Circuit;

/// Adds a barrel shifter to an existing builder.
///
/// `data` are the (restored) input bits; `shift` are one-hot control
/// nodes, one per supported shift amount. Output bit `j` connects through
/// a pass transistor to `data[(j + s) % n]` for every shift amount `s`.
/// Returns the (unrestored) output nodes; callers restore them with
/// inverters or latch them.
pub fn shifter_into(
    b: &mut NetlistBuilder,
    name: &str,
    data: &[NodeId],
    shift: &[NodeId],
) -> Vec<NodeId> {
    let n = data.len();
    let outs: Vec<NodeId> = (0..n).map(|j| b.node(format!("{name}_o{j}"))).collect();
    for (s, &ctrl) in shift.iter().enumerate() {
        for (j, &out) in outs.iter().enumerate() {
            let src = data[(j + s) % n];
            b.pass(format!("{name}_p{s}_{j}"), ctrl, src, out);
        }
    }
    outs
}

/// A standalone barrel shifter over `width` bits supporting `amounts`
/// distinct shift amounts.
///
/// Inputs: `d0..` (restored through driver inverters from primary inputs
/// `in0..`), one-hot controls `sh0..`. Outputs: `q0..` (restored).
/// The [`Circuit`] handles are `in0` → `q0`.
///
/// # Panics
///
/// Panics if `width == 0` or `amounts == 0`.
pub fn barrel_shifter(tech: Tech, width: usize, amounts: usize) -> Circuit {
    assert!(width > 0 && amounts > 0, "shifter needs bits and amounts");
    let mut b = NetlistBuilder::new(tech);
    let mut data = Vec::with_capacity(width);
    for i in 0..width {
        let pin = b.input(format!("in{i}"));
        let d = b.node(format!("d{i}"));
        b.inverter(format!("drv{i}"), pin, d);
        data.push(d);
    }
    let shift: Vec<NodeId> = (0..amounts).map(|s| b.input(format!("sh{s}"))).collect();
    let outs = shifter_into(&mut b, "bs", &data, &shift);
    for (j, &o) in outs.iter().enumerate() {
        let q = b.output(format!("q{j}"));
        b.inverter(format!("rcv{j}"), o, q);
    }
    let netlist = b.finish().expect("shifter generator is valid");
    let input = netlist.node_by_name("in0").expect("in0 exists");
    let output = netlist.node_by_name("q0").expect("q0 exists");
    Circuit {
        netlist,
        input,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_flow::{analyze, Direction, RuleSet};
    use tv_netlist::validate;

    #[test]
    fn device_count_is_crossbar_plus_buffers() {
        let (w, k) = (8, 4);
        let c = barrel_shifter(Tech::nmos4um(), w, k);
        // w·k pass devices + w driver inverters + w receivers (2 each).
        assert_eq!(c.netlist.device_count(), w * k + 2 * w + 2 * w);
    }

    #[test]
    fn shifter_validates_cleanly() {
        let c = barrel_shifter(Tech::nmos4um(), 4, 2);
        let issues = validate::check(&c.netlist);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn all_pass_devices_resolve_toward_outputs() {
        let c = barrel_shifter(Tech::nmos4um(), 8, 4);
        let flow = analyze(&c.netlist, &RuleSet::all());
        let report = flow.report(&c.netlist);
        assert_eq!(report.pass_devices, 32);
        assert_eq!(report.unresolved, 0, "{report}");
        // Every oriented pass device flows into an output column node.
        for d in c.netlist.devices() {
            if let Direction::Toward(dst) = flow.direction(d.id) {
                if c.netlist.device(d.id).name().starts_with("bs_p") {
                    let name = c.netlist.node_name(dst);
                    assert!(name.starts_with("bs_o"), "flows into {name}");
                }
            }
        }
    }

    #[test]
    fn wraparound_wiring_touches_all_inputs() {
        let c = barrel_shifter(Tech::nmos4um(), 4, 4);
        // Output column 0 must connect to every data bit across shifts.
        let o0 = c.node("bs_o0");
        let contacts = c.netlist.node_devices(o0).channel.len();
        assert_eq!(contacts, 4);
    }
}
