//! Seeded random logic for the runtime-scaling experiment (T5).
//!
//! Real chips are not random graphs, but for measuring how the analyzer's
//! runtime grows with device count all that matters is realistic *local*
//! structure: a mix of inverters, NAND/NOR gates, pass muxes, and latches
//! whose fan-ins point at earlier signals (a DAG, like synthesized logic).

use tv_netlist::{NetlistBuilder, NodeId, Tech};

use crate::rng::Rng64;
use crate::Circuit;

/// Mix of generated structures, as relative weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomMix {
    /// Weight of plain inverters.
    pub inverter: f64,
    /// Weight of 2–3 input NAND gates.
    pub nand: f64,
    /// Weight of 2–3 input NOR gates.
    pub nor: f64,
    /// Weight of 2-way pass-transistor muxes into a restored node.
    pub pass_mux: f64,
    /// Weight of φ1-clocked dynamic latches.
    pub latch: f64,
}

impl Default for RandomMix {
    /// Roughly the composition of an early-80s datapath-plus-control chip.
    fn default() -> Self {
        RandomMix {
            inverter: 0.35,
            nand: 0.25,
            nor: 0.15,
            pass_mux: 0.15,
            latch: 0.10,
        }
    }
}

/// Generates a random-logic circuit of approximately `target_devices`
/// transistors, deterministically from `seed`.
///
/// The circuit always has 8 primary inputs, a φ1 clock, and one output
/// (`out`) fed by the last generated signal.
///
/// # Panics
///
/// Panics if `target_devices` is zero.
pub fn random_logic(tech: Tech, target_devices: usize, seed: u64, mix: RandomMix) -> Circuit {
    assert!(target_devices > 0, "need a positive size target");
    let mut rng = Rng64::new(seed);
    let mut b = NetlistBuilder::new(tech);
    let phi = b.clock("phi1", 0);

    // Signal pool: every restored node generated so far.
    let mut pool: Vec<NodeId> = (0..8).map(|i| b.input(format!("in{i}"))).collect();

    let total_weight = mix.inverter + mix.nand + mix.nor + mix.pass_mux + mix.latch;
    assert!(total_weight > 0.0, "mix weights must not all be zero");

    let mut gate_idx = 0usize;
    while b.device_count() < target_devices {
        let pick = rng.f64_range(0.0, total_weight);
        let name = format!("g{gate_idx}");
        gate_idx += 1;
        let out = b.node(format!("{name}_o"));
        let sig = |rng: &mut Rng64, pool: &Vec<NodeId>| pool[rng.usize_range(0, pool.len())];
        if pick < mix.inverter {
            let a = sig(&mut rng, &pool);
            b.inverter(&name, a, out);
        } else if pick < mix.inverter + mix.nand {
            let k = rng.usize_inclusive(2, 3);
            let ins: Vec<NodeId> = (0..k).map(|_| sig(&mut rng, &pool)).collect();
            b.nand(&name, &ins, out);
        } else if pick < mix.inverter + mix.nand + mix.nor {
            let k = rng.usize_inclusive(2, 3);
            let ins: Vec<NodeId> = (0..k).map(|_| sig(&mut rng, &pool)).collect();
            b.nor(&name, &ins, out);
        } else if pick < mix.inverter + mix.nand + mix.nor + mix.pass_mux {
            // Two sources pass-muxed onto a shared node, restored by an
            // inverter into `out`.
            let s0 = sig(&mut rng, &pool);
            let s1 = sig(&mut rng, &pool);
            let c0 = sig(&mut rng, &pool);
            let c1 = sig(&mut rng, &pool);
            let m = b.node(format!("{name}_m"));
            b.pass(format!("{name}_p0"), c0, s0, m);
            b.pass(format!("{name}_p1"), c1, s1, m);
            b.inverter(format!("{name}_r"), m, out);
        } else {
            let d = sig(&mut rng, &pool);
            b.dynamic_latch(&name, phi, d, out);
        }
        pool.push(out);
    }

    let last = *pool.last().expect("pool is never empty");
    let out = b.output("out");
    b.inverter("final", last, out);
    let netlist = b.finish().expect("random generator is valid");
    let input = netlist.node_by_name("in0").expect("in0 exists");
    let output = netlist.node_by_name("out").expect("out exists");
    Circuit {
        netlist,
        input,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_flow::{analyze, RuleSet};

    #[test]
    fn size_target_is_respected() {
        let c = random_logic(Tech::nmos4um(), 500, 7, RandomMix::default());
        let n = c.netlist.device_count();
        assert!((500..520).contains(&n), "got {n}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_logic(Tech::nmos4um(), 300, 42, RandomMix::default());
        let b = random_logic(Tech::nmos4um(), 300, 42, RandomMix::default());
        assert_eq!(a.netlist.device_count(), b.netlist.device_count());
        assert_eq!(a.netlist.node_count(), b.netlist.node_count());
        // Spot-check some structure, not just counts.
        for name in ["g0_o", "g10_o", "out"] {
            assert_eq!(
                a.netlist.node_by_name(name).map(|n| n.index()),
                b.netlist.node_by_name(name).map(|n| n.index())
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_logic(Tech::nmos4um(), 300, 1, RandomMix::default());
        let b = random_logic(Tech::nmos4um(), 300, 2, RandomMix::default());
        // Device counts may coincide; adjacency will not. Compare the cap
        // of the output's driver region as a cheap structural fingerprint.
        let fa = a.netlist.total_capacitance();
        let fb = b.netlist.total_capacitance();
        assert!((fa - fb).abs() > 1e-9);
    }

    #[test]
    fn flow_analysis_handles_random_logic() {
        let c = random_logic(Tech::nmos4um(), 400, 11, RandomMix::default());
        let flow = analyze(&c.netlist, &RuleSet::all());
        let r = flow.report(&c.netlist);
        assert!(r.coverage() > 0.9, "coverage {:.3}: {r}", r.coverage());
    }

    #[test]
    fn pure_inverter_mix_works() {
        let mix = RandomMix {
            inverter: 1.0,
            nand: 0.0,
            nor: 0.0,
            pass_mux: 0.0,
            latch: 0.0,
        };
        let c = random_logic(Tech::nmos4um(), 100, 3, mix);
        // Target plus the final output buffer.
        assert_eq!(c.netlist.device_count(), 102);
    }
}
