//! A MIPS-class two-phase datapath — the workspace's stand-in for the
//! Stanford MIPS chip that TV's evaluation analyzed.
//!
//! Per bit the datapath contains, exactly in the 1983 idiom:
//!
//! * a register file (master–slave dynamic latches) with **two read
//!   ports** onto precharged buses A and B (precharged on φ2, read on φ1);
//! * an **ALU**: operand inverters, a NAND leg, a NOR leg, and a
//!   ripple-carry adder, with a one-hot pass-transistor **function mux**;
//! * a pass-transistor **barrel shifter** on the ALU result;
//! * a super-buffer **writeback driver** returning the shifted result to
//!   the register file's write lines.
//!
//! Primary inputs are the control signals (read selects, write-qualified
//! clocks, ALU op one-hot, shift one-hot) and an external operand port;
//! the loop register file → buses → ALU → shifter → writeback closes on
//! itself the way a real datapath does.

use tv_netlist::{Netlist, NetlistBuilder, NodeId, Tech};

use crate::adder::adder_into;
use crate::shifter::shifter_into;

/// Size parameters of the generated datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatapathConfig {
    /// Bit width of the datapath.
    pub width: usize,
    /// Number of general registers.
    pub regs: usize,
    /// Number of one-hot shift amounts the barrel shifter supports.
    pub shift_amounts: usize,
}

impl DatapathConfig {
    /// A small configuration for tests: 4 bits, 2 registers, 2 shifts.
    pub fn small() -> Self {
        DatapathConfig {
            width: 4,
            regs: 2,
            shift_amounts: 2,
        }
    }

    /// The MIPS-class configuration: 32 bits, 8 registers, 4 shifts.
    pub fn mips32() -> Self {
        DatapathConfig {
            width: 32,
            regs: 8,
            shift_amounts: 4,
        }
    }
}

impl Default for DatapathConfig {
    fn default() -> Self {
        Self::mips32()
    }
}

/// The generated datapath with its interface handles.
#[derive(Debug, Clone)]
pub struct Datapath {
    /// The finished netlist.
    pub netlist: Netlist,
    /// Configuration it was generated with.
    pub config: DatapathConfig,
    /// φ1 clock node.
    pub phi1: NodeId,
    /// φ2 clock node.
    pub phi2: NodeId,
    /// External operand port, one node per bit (`ext<i>`).
    pub ext: Vec<NodeId>,
    /// The writeback lines feeding the register file (`wb<i>`).
    pub writeback: Vec<NodeId>,
    /// The ALU carry out (end of the canonical critical path).
    pub carry_out: NodeId,
}

/// Instantiates one datapath into an existing builder under a name
/// `prefix`, sharing the caller's clock nodes.
///
/// With an empty prefix this builds exactly the netlist [`datapath`]
/// returns; [`crate::mips_mc`] tiles many cores into one netlist with
/// `c<k>_` prefixes. All control inputs, the external operand port, and
/// the observed output are created under the prefix.
///
/// # Panics
///
/// Panics if any configuration dimension is zero.
pub fn datapath_into(
    b: &mut NetlistBuilder,
    prefix: &str,
    phi1: NodeId,
    phi2: NodeId,
    config: DatapathConfig,
) {
    let DatapathConfig {
        width,
        regs,
        shift_amounts,
    } = config;
    assert!(
        width > 0 && regs > 0 && shift_amounts > 0,
        "datapath dimensions must be positive"
    );
    let p = prefix;

    // Control inputs.
    let rd_a: Vec<NodeId> = (0..regs).map(|r| b.input(format!("{p}rdA{r}"))).collect();
    let rd_b: Vec<NodeId> = (0..regs).map(|r| b.input(format!("{p}rdB{r}"))).collect();
    // Qualified write clocks: wq<r> = we<r> ∧ φ1, built from a NAND and an
    // inverter the way real control logic did — this is what the clock
    // qualification analysis must recognize.
    let wq: Vec<NodeId> = (0..regs)
        .map(|r| {
            let we = b.input(format!("{p}we{r}"));
            let nq = b.node(format!("{p}wqbar{r}"));
            b.nand(format!("{p}wqgate{r}"), &[we, phi1], nq);
            let wq = b.node(format!("{p}wq{r}"));
            b.inverter(format!("{p}wqinv{r}"), nq, wq);
            wq
        })
        .collect();
    let op_add = b.input(format!("{p}op_add"));
    let op_nand = b.input(format!("{p}op_nand"));
    let op_nor = b.input(format!("{p}op_nor"));
    let use_ext = b.input(format!("{p}use_ext"));
    let sh: Vec<NodeId> = (0..shift_amounts)
        .map(|s| b.input(format!("{p}sh{s}")))
        .collect();
    let cin = b.input(format!("{p}cin"));
    let ext: Vec<NodeId> = (0..width).map(|i| b.input(format!("{p}ext{i}"))).collect();

    // Writeback lines (defined up front; driven at the end).
    let wb: Vec<NodeId> = (0..width).map(|i| b.node(format!("{p}wb{i}"))).collect();

    // Precharged operand buses.
    let bus_a: Vec<NodeId> = (0..width).map(|i| b.node(format!("{p}busA{i}"))).collect();
    let bus_b: Vec<NodeId> = (0..width).map(|i| b.node(format!("{p}busB{i}"))).collect();
    for i in 0..width {
        b.precharge(format!("{p}preA{i}"), phi2, bus_a[i]);
        b.precharge(format!("{p}preB{i}"), phi2, bus_b[i]);
        b.add_cap(bus_a[i], 0.01 * regs as f64).expect("cap >= 0");
        b.add_cap(bus_b[i], 0.01 * regs as f64).expect("cap >= 0");
    }

    // Register file: master–slave per bit, two read ports.
    for r in 0..regs {
        for i in 0..width {
            let cell = format!("{p}rf_r{r}_b{i}");
            let m_out = b.node(format!("{cell}_m"));
            b.dynamic_latch(format!("{cell}_master"), wq[r], wb[i], m_out);
            let q = b.node(format!("{cell}_q"));
            b.dynamic_latch(format!("{cell}_slave"), phi2, m_out, q);
            b.pass(format!("{cell}_rdA"), rd_a[r], q, bus_a[i]);
            b.pass(format!("{cell}_rdB"), rd_b[r], q, bus_b[i]);
        }
    }

    // External operand onto bus B.
    for i in 0..width {
        b.pass(format!("{p}extmux{i}"), use_ext, ext[i], bus_b[i]);
    }

    // ALU operand conditioning: restore the buses.
    let mut a_op = Vec::with_capacity(width);
    let mut b_op = Vec::with_capacity(width);
    for i in 0..width {
        let an = b.node(format!("{p}aN{i}"));
        let ap = b.node(format!("{p}aP{i}"));
        b.inverter(format!("{p}ainv{i}"), bus_a[i], an);
        b.inverter(format!("{p}abuf{i}"), an, ap);
        let bn = b.node(format!("{p}bN{i}"));
        let bp = b.node(format!("{p}bP{i}"));
        b.inverter(format!("{p}binv{i}"), bus_b[i], bn);
        b.inverter(format!("{p}bbuf{i}"), bn, bp);
        a_op.push(ap);
        b_op.push(bp);
    }

    // ALU: adder + logic legs + one-hot function mux.
    let (sums, _carry_out) = adder_into(b, &format!("{p}alu"), &a_op, &b_op, cin);
    let mut results = Vec::with_capacity(width);
    for i in 0..width {
        let nand_leg = b.node(format!("{p}lnand{i}"));
        b.nand(format!("{p}gnand{i}"), &[a_op[i], b_op[i]], nand_leg);
        let nor_leg = b.node(format!("{p}lnor{i}"));
        b.nor(format!("{p}gnor{i}"), &[a_op[i], b_op[i]], nor_leg);
        let res = b.node(format!("{p}res{i}"));
        b.pass(format!("{p}fmux_add{i}"), op_add, sums[i], res);
        b.pass(format!("{p}fmux_nand{i}"), op_nand, nand_leg, res);
        b.pass(format!("{p}fmux_nor{i}"), op_nor, nor_leg, res);
        // Restore the mux output before the shifter.
        let resr = b.node(format!("{p}resR{i}"));
        let resrr = b.node(format!("{p}resRR{i}"));
        b.inverter(format!("{p}resinv{i}"), res, resr);
        b.inverter(format!("{p}resbuf{i}"), resr, resrr);
        results.push(resrr);
    }

    // Barrel shifter on the restored result.
    let shifted = shifter_into(b, &format!("{p}shift"), &results, &sh);

    // Writeback: restore and drive the write lines with super buffers.
    for i in 0..width {
        let sr = b.node(format!("{p}shR{i}"));
        b.inverter(format!("{p}shinv{i}"), shifted[i], sr);
        b.super_buffer(format!("{p}wbdrv{i}"), sr, wb[i], 4.0);
        // Observe the low bit externally.
    }
    let out0 = b.output(format!("{p}out0"));
    b.inverter(format!("{p}outinv"), wb[0], out0);
}

/// Generates the datapath.
///
/// # Panics
///
/// Panics if any configuration dimension is zero.
pub fn datapath(tech: Tech, config: DatapathConfig) -> Datapath {
    let width = config.width;
    let mut b = NetlistBuilder::new(tech);
    let phi1 = b.clock("phi1", 0);
    let phi2 = b.clock("phi2", 1);
    datapath_into(&mut b, "", phi1, phi2, config);

    let netlist = b.finish().expect("datapath generator is valid");
    let lookup = |name: &str| netlist.node_by_name(name).expect("known node");
    Datapath {
        phi1: lookup("phi1"),
        phi2: lookup("phi2"),
        ext: (0..width).map(|i| lookup(&format!("ext{i}"))).collect(),
        writeback: (0..width).map(|i| lookup(&format!("wb{i}"))).collect(),
        carry_out: lookup(&format!("alu_fa{}_cout", width - 1)),
        netlist,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_flow::{analyze, RuleSet};
    use tv_netlist::validate;

    #[test]
    fn small_datapath_elaborates() {
        let dp = datapath(Tech::nmos4um(), DatapathConfig::small());
        assert!(dp.netlist.device_count() > 100);
        assert_eq!(dp.ext.len(), 4);
        assert_eq!(dp.netlist.clocks().len(), 2);
    }

    #[test]
    fn mips32_is_thousands_of_devices() {
        let dp = datapath(Tech::nmos4um(), DatapathConfig::mips32());
        let n = dp.netlist.device_count();
        assert!(
            (3000..40000).contains(&n),
            "expected a MIPS-scale device count, got {n}"
        );
    }

    #[test]
    fn datapath_validates_cleanly() {
        let dp = datapath(Tech::nmos4um(), DatapathConfig::small());
        let issues = validate::check(&dp.netlist);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn flow_resolves_nearly_everything() {
        let dp = datapath(Tech::nmos4um(), DatapathConfig::small());
        let flow = analyze(&dp.netlist, &RuleSet::all());
        let report = flow.report(&dp.netlist);
        assert!(
            report.coverage() > 0.95,
            "coverage {:.3} too low: {report}",
            report.coverage()
        );
    }

    #[test]
    fn device_count_scales_with_width() {
        let d4 = datapath(Tech::nmos4um(), DatapathConfig::small());
        let d8 = datapath(
            Tech::nmos4um(),
            DatapathConfig {
                width: 8,
                ..DatapathConfig::small()
            },
        );
        let ratio = d8.netlist.device_count() as f64 / d4.netlist.device_count() as f64;
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn carry_out_is_last_adder_stage() {
        let dp = datapath(Tech::nmos4um(), DatapathConfig::small());
        let name = dp.netlist.node_name(dp.carry_out).to_owned();
        assert_eq!(name, "alu_fa3_cout");
    }
}
