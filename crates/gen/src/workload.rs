//! Named workload presets shared by the benchmark harness, the report
//! binary, and the integration tests, so every experiment sees the same
//! circuits.

use tv_netlist::Tech;

use crate::{chains, shifter, Circuit};

/// A circuit with the name used in report tables.
#[derive(Debug, Clone)]
pub struct NamedCircuit {
    /// Row label in the tables.
    pub name: &'static str,
    /// The circuit itself.
    pub circuit: Circuit,
    /// Whether the observed output falls (true) or rises when the input
    /// rises — needed to pick measurement edges.
    pub output_falls_on_input_rise: bool,
}

/// The T1 calibration suite: the representative stage structures whose
/// static estimates are compared against transient simulation.
///
/// Kept deliberately small-signal (every circuit is simulable in well
/// under a second) while covering every stage species the classifier
/// knows: restoring chains, series pull-downs, parallel pull-downs,
/// loaded and super-buffered drivers, and pass chains.
pub fn t1_suite(tech: &Tech) -> Vec<NamedCircuit> {
    vec![
        NamedCircuit {
            name: "inv-chain-4/fo1",
            circuit: chains::inverter_chain(tech.clone(), 4, 1),
            output_falls_on_input_rise: false, // even number of inversions
        },
        NamedCircuit {
            name: "inv-chain-8/fo1",
            circuit: chains::inverter_chain(tech.clone(), 8, 1),
            output_falls_on_input_rise: false,
        },
        NamedCircuit {
            name: "inv-chain-4/fo4",
            circuit: chains::inverter_chain(tech.clone(), 4, 4),
            output_falls_on_input_rise: false,
        },
        NamedCircuit {
            name: "nand3-chain-4",
            circuit: chains::nand_chain(tech.clone(), 4, 3),
            output_falls_on_input_rise: false,
        },
        NamedCircuit {
            name: "nor2-chain-4",
            circuit: chains::nor_chain(tech.clone(), 4, 2),
            output_falls_on_input_rise: false,
        },
        NamedCircuit {
            name: "inv-loaded-0.2pF",
            circuit: chains::loaded_inverter(tech.clone(), 0.2),
            output_falls_on_input_rise: true,
        },
        NamedCircuit {
            name: "superbuf-0.5pF",
            circuit: chains::super_buffer_drive(tech.clone(), 0.5, 4.0),
            output_falls_on_input_rise: true,
        },
        NamedCircuit {
            name: "pass-chain-2",
            circuit: chains::pass_chain(tech.clone(), 2),
            output_falls_on_input_rise: false, // drv inverts, rcv inverts
        },
        NamedCircuit {
            name: "pass-chain-6",
            circuit: chains::pass_chain(tech.clone(), 6),
            output_falls_on_input_rise: false,
        },
    ]
}

/// The T2/A2 flow-resolution suite: structures rich in pass transistors.
pub fn t2_suite(tech: &Tech) -> Vec<NamedCircuit> {
    vec![
        NamedCircuit {
            name: "barrel-8x4",
            circuit: shifter::barrel_shifter(tech.clone(), 8, 4),
            output_falls_on_input_rise: false,
        },
        NamedCircuit {
            name: "barrel-16x4",
            circuit: shifter::barrel_shifter(tech.clone(), 16, 4),
            output_falls_on_input_rise: false,
        },
        NamedCircuit {
            name: "regfile-4x8",
            circuit: crate::regfile::register_file(tech.clone(), 4, 8),
            output_falls_on_input_rise: false,
        },
        NamedCircuit {
            name: "datapath-4x2",
            circuit: {
                let dp = crate::datapath::datapath(
                    tech.clone(),
                    crate::datapath::DatapathConfig::small(),
                );
                let input = dp.ext[0];
                let output = dp.netlist.node_by_name("out0").expect("out0");
                crate::Circuit {
                    netlist: dp.netlist,
                    input,
                    output,
                }
            },
            output_falls_on_input_rise: false,
        },
        NamedCircuit {
            name: "pass-chain-8",
            circuit: chains::pass_chain(tech.clone(), 8),
            output_falls_on_input_rise: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_suite_names_are_unique_and_circuits_nonempty() {
        let suite = t1_suite(&Tech::nmos4um());
        let mut names: Vec<&str> = suite.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
        for c in &suite {
            assert!(c.circuit.netlist.device_count() > 0, "{} empty", c.name);
        }
    }

    #[test]
    fn t2_suite_has_pass_devices() {
        use tv_flow::{analyze, RuleSet};
        for c in t2_suite(&Tech::nmos4um()) {
            let flow = analyze(&c.circuit.netlist, &RuleSet::all());
            let r = flow.report(&c.circuit.netlist);
            assert!(r.pass_devices > 0, "{} has no pass devices", c.name);
        }
    }
}
