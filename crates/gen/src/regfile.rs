//! Two-phase registers and register files.
//!
//! The 1983 storage idiom: a master dynamic latch sampled on φ1 and a
//! slave sampled on φ2 make an edge-equivalent register; a file of them
//! reads onto shared buses through pass gates.

use tv_netlist::{NetlistBuilder, NodeId, Tech};

use crate::Circuit;

/// Adds one master–slave register bit: `d` is sampled into the master
/// while `phi1` is high; the master's restored output is sampled into the
/// slave while `phi2` is high. Returns the slave's restored output
/// (`q`, the value of `d` one full cycle earlier, inverted twice).
pub fn register_bit(
    b: &mut NetlistBuilder,
    name: &str,
    phi1: NodeId,
    phi2: NodeId,
    d: NodeId,
) -> NodeId {
    let m_out = b.node(format!("{name}_m"));
    b.dynamic_latch(format!("{name}_master"), phi1, d, m_out);
    let q = b.node(format!("{name}_q"));
    b.dynamic_latch(format!("{name}_slave"), phi2, m_out, q);
    q
}

/// Adds a `width`-bit register. Returns the restored output bits.
pub fn register_into(
    b: &mut NetlistBuilder,
    name: &str,
    phi1: NodeId,
    phi2: NodeId,
    d: &[NodeId],
) -> Vec<NodeId> {
    d.iter()
        .enumerate()
        .map(|(i, &bit)| register_bit(b, &format!("{name}_b{i}"), phi1, phi2, bit))
        .collect()
}

/// Adds a register file of `regs` registers × `width` bits with one shared
/// read bus per bit line. Each register drives the bus through a read
/// pass gate controlled by its (externally driven) `rd<r>` select; writes
/// come from the shared `w<i>` bit lines through the registers' own
/// clocked latches gated by `we<r>`-qualified φ1.
///
/// Returns the per-bit read bus nodes.
#[allow(clippy::too_many_arguments)] // ports of a hardware block, not a config soup
pub fn regfile_into(
    b: &mut NetlistBuilder,
    name: &str,
    phi1: NodeId,
    phi2: NodeId,
    write_bits: &[NodeId],
    regs: usize,
    read_selects: &[NodeId],
    write_qualified_phi1: &[NodeId],
) -> Vec<NodeId> {
    assert_eq!(read_selects.len(), regs, "one read select per register");
    assert_eq!(
        write_qualified_phi1.len(),
        regs,
        "one qualified write clock per register"
    );
    let width = write_bits.len();
    let bus: Vec<NodeId> = (0..width)
        .map(|i| b.node(format!("{name}_bus{i}")))
        .collect();
    for (&node, _) in bus.iter().zip(0..) {
        // Bus wiring capacitance proportional to the number of taps.
        b.add_cap(node, 0.01 * regs as f64).expect("cap >= 0");
    }
    for r in 0..regs {
        for (i, &w) in write_bits.iter().enumerate() {
            let bitname = format!("{name}_r{r}_b{i}");
            // Master gated by this register's qualified φ1; slave by φ2.
            let m_out = b.node(format!("{bitname}_m"));
            b.dynamic_latch(
                format!("{bitname}_master"),
                write_qualified_phi1[r],
                w,
                m_out,
            );
            let q = b.node(format!("{bitname}_q"));
            b.dynamic_latch(format!("{bitname}_slave"), phi2, m_out, q);
            // Read port: pass gate from the restored q onto the bus.
            b.pass(format!("{bitname}_rd"), read_selects[r], q, bus[i]);
        }
    }
    let _ = (phi1, phi2);
    bus
}

/// A standalone register file circuit: `regs` × `width`, primary inputs
/// `w0..` (write data), `rd0..` (read selects), clocks `phi1`/`phi2`, and
/// per-register write enables folded into qualified clocks `wq0..`
/// (driven externally in experiments). Outputs `q0..` restore the bus.
///
/// The [`Circuit`] handles are `w0` → `q0`.
///
/// # Panics
///
/// Panics if `regs == 0` or `width == 0`.
pub fn register_file(tech: Tech, regs: usize, width: usize) -> Circuit {
    assert!(
        regs > 0 && width > 0,
        "register file needs registers and bits"
    );
    let mut b = NetlistBuilder::new(tech);
    let phi1 = b.clock("phi1", 0);
    let phi2 = b.clock("phi2", 1);
    let write_bits: Vec<NodeId> = (0..width).map(|i| b.input(format!("w{i}"))).collect();
    let read_selects: Vec<NodeId> = (0..regs).map(|r| b.input(format!("rd{r}"))).collect();
    // Qualified write clocks: wq<r> = we<r> ∧ φ1.
    let wq: Vec<NodeId> = (0..regs)
        .map(|r| {
            let we = b.input(format!("we{r}"));
            let nq = b.node(format!("wqbar{r}"));
            b.nand(format!("wqgate{r}"), &[we, phi1], nq);
            let wqn = b.node(format!("wq{r}"));
            b.inverter(format!("wqinv{r}"), nq, wqn);
            wqn
        })
        .collect();
    let bus = regfile_into(
        &mut b,
        "rf",
        phi1,
        phi2,
        &write_bits,
        regs,
        &read_selects,
        &wq,
    );
    for (i, &line) in bus.iter().enumerate() {
        let q = b.output(format!("q{i}"));
        b.inverter(format!("rcv{i}"), line, q);
    }
    let netlist = b.finish().expect("register file generator is valid");
    let input = netlist.node_by_name("w0").expect("w0 exists");
    let output = netlist.node_by_name("q0").expect("q0 exists");
    Circuit {
        netlist,
        input,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_flow::{analyze, NodeClass, RuleSet};
    use tv_netlist::validate;

    #[test]
    fn register_bit_structure() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi1 = b.clock("phi1", 0);
        let phi2 = b.clock("phi2", 1);
        let d = b.input("d");
        let q = register_bit(&mut b, "r", phi1, phi2, d);
        let nl = b.finish().unwrap();
        // 2 latches × (pass + inverter) = 6 devices.
        assert_eq!(nl.device_count(), 6);
        assert_eq!(nl.node_name(q), "r_q");
    }

    #[test]
    fn storage_nodes_are_classified_storage() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let phi1 = b.clock("phi1", 0);
        let phi2 = b.clock("phi2", 1);
        let d = b.input("d");
        register_bit(&mut b, "r", phi1, phi2, d);
        let nl = b.finish().unwrap();
        let flow = analyze(&nl, &RuleSet::all());
        let master_mem = nl.node_by_name("r_master_mem").unwrap();
        let slave_mem = nl.node_by_name("r_slave_mem").unwrap();
        assert_eq!(flow.node_class(master_mem), NodeClass::Storage);
        assert_eq!(flow.node_class(slave_mem), NodeClass::Storage);
    }

    #[test]
    fn regfile_device_count() {
        let (regs, width) = (4, 8);
        let c = register_file(Tech::nmos4um(), regs, width);
        // Per bit-cell: master (3) + slave (3) + read pass (1) = 7; plus
        // `width` bus receivers (2 each) and per-register write
        // qualification (NAND2 = 3, inverter = 2).
        assert_eq!(
            c.netlist.device_count(),
            regs * width * 7 + width * 2 + regs * 5
        );
    }

    #[test]
    fn regfile_validates_cleanly() {
        let c = register_file(Tech::nmos4um(), 2, 4);
        let issues = validate::check(&c.netlist);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn bus_lines_have_tap_proportional_cap() {
        let small = register_file(Tech::nmos4um(), 2, 2);
        let big = register_file(Tech::nmos4um(), 8, 2);
        let cb_small = small.netlist.node_cap(small.node("rf_bus0"));
        let cb_big = big.netlist.node_cap(big.node("rf_bus0"));
        assert!(cb_big > cb_small);
    }

    #[test]
    fn read_paths_resolve_onto_bus() {
        let c = register_file(Tech::nmos4um(), 4, 2);
        let flow = analyze(&c.netlist, &RuleSet::all());
        let report = flow.report(&c.netlist);
        assert_eq!(report.unresolved, 0, "{report}");
    }
}
