//! Ripple-carry adders built from NAND gates — the ALU core and the
//! canonical critical path (the carry chain) of experiment T3.

use tv_netlist::{NetlistBuilder, NodeId, Tech};

use crate::Circuit;

/// Adds the classic 9-NAND full adder into an existing builder.
///
/// Returns `(sum, carry_out)`. Gate and node names are prefixed with
/// `name`.
pub fn full_adder(
    b: &mut NetlistBuilder,
    name: &str,
    a: NodeId,
    bb: NodeId,
    cin: NodeId,
) -> (NodeId, NodeId) {
    let n1 = b.node(format!("{name}_n1"));
    let n2 = b.node(format!("{name}_n2"));
    let n3 = b.node(format!("{name}_n3"));
    let n4 = b.node(format!("{name}_n4"));
    let n5 = b.node(format!("{name}_n5"));
    let n6 = b.node(format!("{name}_n6"));
    let n7 = b.node(format!("{name}_n7"));
    let sum = b.node(format!("{name}_sum"));
    let cout = b.node(format!("{name}_cout"));
    b.nand(format!("{name}_g1"), &[a, bb], n1);
    b.nand(format!("{name}_g2"), &[a, n1], n2);
    b.nand(format!("{name}_g3"), &[bb, n1], n3);
    b.nand(format!("{name}_g4"), &[n2, n3], n4); // a ⊕ b
    b.nand(format!("{name}_g5"), &[n4, cin], n5);
    b.nand(format!("{name}_g6"), &[n4, n5], n6);
    b.nand(format!("{name}_g7"), &[cin, n5], n7);
    b.nand(format!("{name}_g8"), &[n6, n7], sum); // a ⊕ b ⊕ cin
    b.nand(format!("{name}_g9"), &[n5, n1], cout); // majority
    (sum, cout)
}

/// Adds a `width`-bit ripple-carry adder into an existing builder, given
/// the input bit vectors. Returns the sum bits and the carry out.
///
/// # Panics
///
/// Panics if `a` and `bb` differ in length or are empty.
pub fn adder_into(
    b: &mut NetlistBuilder,
    name: &str,
    a: &[NodeId],
    bb: &[NodeId],
    cin: NodeId,
) -> (Vec<NodeId>, NodeId) {
    assert_eq!(a.len(), bb.len(), "operand widths must match");
    assert!(!a.is_empty(), "adder needs at least one bit");
    let mut sums = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (i, (&ai, &bi)) in a.iter().zip(bb).enumerate() {
        let (s, c) = full_adder(b, &format!("{name}_fa{i}"), ai, bi, carry);
        sums.push(s);
        carry = c;
    }
    (sums, carry)
}

/// A standalone `width`-bit ripple-carry adder with primary inputs
/// `a0..`, `b0..`, `cin` and outputs `s0..`, `cout`.
///
/// The returned [`Circuit`]'s input/output handles are `cin` → `cout`,
/// the carry chain — the structure's critical path.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn ripple_carry_adder(tech: Tech, width: usize) -> Circuit {
    assert!(width > 0, "adder needs at least one bit");
    let mut b = NetlistBuilder::new(tech);
    let a: Vec<NodeId> = (0..width).map(|i| b.input(format!("a{i}"))).collect();
    let bv: Vec<NodeId> = (0..width).map(|i| b.input(format!("b{i}"))).collect();
    let cin = b.input("cin");
    let (sums, cout) = adder_into(&mut b, "add", &a, &bv, cin);
    for (i, s) in sums.iter().enumerate() {
        let out = b.output(format!("s{i}"));
        // Buffer each sum to a named output through an inverter pair so
        // outputs are restored nodes.
        let inv = b.node(format!("sbuf{i}"));
        b.inverter(format!("sinv{i}a"), *s, inv);
        b.inverter(format!("sinv{i}b"), inv, out);
    }
    let cout_pad = b.output("cout");
    let cinv = b.node("cbuf");
    b.inverter("cinva", cout, cinv);
    b.inverter("cinvb", cinv, cout_pad);
    let netlist = b.finish().expect("adder generator is structurally valid");
    let input = netlist.node_by_name("cin").expect("cin exists");
    let output = netlist.node_by_name("cout").expect("cout exists");
    Circuit {
        netlist,
        input,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_netlist::validate;

    #[test]
    fn one_bit_adder_counts() {
        let c = ripple_carry_adder(Tech::nmos4um(), 1);
        // 9 NAND2 (3 devices each) + 2×2 output buffers ×2 outputs = 27 + 8.
        assert_eq!(c.netlist.device_count(), 27 + 8);
    }

    #[test]
    fn width_scales_linearly() {
        let c4 = ripple_carry_adder(Tech::nmos4um(), 4);
        let c8 = ripple_carry_adder(Tech::nmos4um(), 8);
        let per_bit4 = c4.netlist.device_count() as f64 / 4.0;
        let per_bit8 = c8.netlist.device_count() as f64 / 8.0;
        assert!((per_bit4 - per_bit8).abs() < 1.0);
    }

    #[test]
    fn adder_validates_cleanly() {
        let c = ripple_carry_adder(Tech::nmos4um(), 4);
        let issues = validate::check(&c.netlist);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn carry_chain_nodes_exist_per_bit() {
        let c = ripple_carry_adder(Tech::nmos4um(), 3);
        for i in 0..3 {
            assert!(c.netlist.node_by_name(&format!("add_fa{i}_cout")).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn mismatched_operands_panic() {
        let mut b = NetlistBuilder::new(Tech::nmos4um());
        let a = b.input("a");
        let x = b.input("x");
        let y = b.input("y");
        let cin = b.input("cin");
        let _ = adder_into(&mut b, "bad", &[a], &[x, y], cin);
    }
}
